//! Offline stand-in for `criterion`, implementing the macro/API
//! surface the workspace benches use: [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`Throughput`] and `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery it runs an adaptive
//! timing loop (warm up, then enough iterations to fill a sampling
//! window, repeated for `sample_size` samples) and prints mean / best
//! per-iteration times, plus derived throughput when declared. Honest
//! wall-clock, no HTML reports, no outlier analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{name}/{param}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId { label: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Work-per-iteration declaration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing harness passed to every benchmark closure.
pub struct Bencher {
    /// Mean seconds per iteration over all samples.
    mean_s: f64,
    /// Best (minimum) sample mean, seconds per iteration.
    best_s: f64,
    samples: usize,
    sample_window: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher { mean_s: 0.0, best_s: 0.0, samples, sample_window: Duration::from_millis(50) }
    }

    /// Time `f`, adaptively choosing an iteration count per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up + calibration: one timed call
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (self.sample_window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut total = Duration::ZERO;
        let mut best = f64::MAX;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            let dt = t.elapsed();
            total += dt;
            best = best.min(dt.as_secs_f64() / per_sample as f64);
            iters += per_sample as u64;
        }
        // clamp at one nanosecond so fully optimized-out bodies still
        // report a nonzero time
        self.mean_s = (total.as_secs_f64() / iters as f64).max(1e-9);
        self.best_s = best.max(1e-9);
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare work per iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let mut line = format!(
            "{}/{}: mean {} best {}",
            self.name,
            label,
            fmt_time(b.mean_s),
            fmt_time(b.best_s)
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if b.mean_s > 0.0 => {
                line += &format!("  ({:.3e} elem/s)", n as f64 / b.mean_s);
            }
            Some(Throughput::Bytes(n)) if b.mean_s > 0.0 => {
                line += &format!("  ({:.3e} B/s)", n as f64 / b.mean_s);
            }
            _ => {}
        }
        println!("{line}");
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.label, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(10);
        f(&mut b);
        println!("{}: mean {} best {}", name, fmt_time(b.mean_s), fmt_time(b.best_s));
        self
    }
}

/// Re-export for benches that import it from criterion rather than
/// `std::hint`.
pub use std::hint::black_box;

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut b = Bencher::new(3);
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.mean_s > 0.0);
        assert!(b.best_s > 0.0);
        assert!(b.best_s <= b.mean_s * 1.5 + 1e-9);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &x| b.iter(|| x + 1));
        g.bench_function("plain", |b| b.iter(|| 2 + 2));
        g.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
