//! Offline stand-in for the `rand` crate, implementing the subset of
//! the 0.9 API this workspace uses: [`RngCore`], [`Rng`] with
//! `random_range` / `random_bool` / `random`, and
//! [`SeedableRng::seed_from_u64`].
//!
//! Output streams are deterministic but are *not* bit-compatible with
//! the real `rand` crate; all in-tree consumers are tolerance-based or
//! purely statistical, so only determinism matters.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Map 64 random bits onto `[0, 1)` with 53-bit resolution.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self) < p
    }

    /// A sample of a type with a canonical distribution (`f64`/`f32`
    /// uniform in `[0, 1)`, integers uniform over their full range).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution.
pub trait Standard {
    /// Draw one sample.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                // guard against rounding up to the excluded endpoint
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_range!(f64, f32);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator state from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Default generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    pub(crate) fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            StdRng {
                s: [splitmix(&mut st), splitmix(&mut st), splitmix(&mut st), splitmix(&mut st)],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let k: usize = rng.random_range(3..17);
            assert!((3..17).contains(&k));
            let j: i32 = rng.random_range(-8i32..=30);
            assert!((-8..=30).contains(&j));
        }
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..100_000).map(|_| rng.random::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
