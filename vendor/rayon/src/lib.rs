//! Offline stand-in for `rayon`, implementing the combinator surface
//! this workspace uses on top of `std::thread::scope`.
//!
//! Differences from the real crate (none observable in-tree):
//!
//! * combinators are **eager** — every `map`/`map_init` call fans its
//!   input out over scoped worker threads immediately and materializes
//!   the results (in input order), instead of building a lazy plan;
//! * there is no global thread pool: each operation spawns up to
//!   [`current_num_threads`] scoped threads, which the OS reuses
//!   cheaply;
//! * `par_sort_unstable_by_key` delegates to the (already fast)
//!   sequential sort.
//!
//! Ordering guarantees match rayon: results of indexed combinators are
//! returned in input order, so all deterministic-output call sites stay
//! deterministic.

use std::ops::Range;

pub mod prelude {
    //! Traits that make `.par_iter()` / `.into_par_iter()` available.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

/// Number of worker threads an operation may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() < 2 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Parallel map preserving input order: split `items` into contiguous
/// chunks, one scoped thread per chunk, each with its own `init()`
/// state.
fn par_map_init_vec<T, R, S, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return items.into_iter().map(|t| f(&mut state, t)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let fr = &f;
    let ir = &init;
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move || {
                    let mut state = ir();
                    c.into_iter().map(|t| fr(&mut state, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(n);
    for c in per_chunk {
        out.extend(c);
    }
    out
}

/// An eager "parallel iterator": holds already-materialized items; each
/// combinator processes them across worker threads and returns the next
/// stage, again materialized in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter { items: par_map_init_vec(self.items, || (), |(), t| f(t)) }
    }

    /// Parallel map with per-worker scratch state (rayon's `map_init`).
    pub fn map_init<S, R, I, F>(self, init: I, f: F) -> ParIter<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParIter { items: par_map_init_vec(self.items, init, f) }
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Sum the (already computed) items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Fold the items with an identity constructor and an associative
    /// operator (rayon's `reduce`).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Collect the items, preserving input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Run a side-effecting function over every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = par_map_init_vec(self.items, || (), |(), t| f(t));
    }
}

/// Conversion into an eager parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_into_par!(usize, u32, u64, i32, i64);

/// `.par_iter()` on slices (and through deref, `Vec`/arrays).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send;
    /// Iterate by reference.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Parallel in-place slice operations (subset).
pub trait ParallelSliceMut<T: Send> {
    /// Unstable sort by key (delegates to the sequential sort).
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_unstable_by_key(f);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<i64> = (0..10_000i64).collect();
        let out: Vec<i64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000i64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |buf, k| {
                buf.push(k);
                buf.len()
            })
            .collect();
        // each worker's buffer grows monotonically within its chunk
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|&l| l >= 1));
    }

    #[test]
    fn reduce_and_sum_agree() {
        let v: Vec<u64> = (0..1000).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        let r = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 499_500);
        assert_eq!(r, s);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn enumerate_indexes_in_order() {
        let v = vec![10, 20, 30];
        let out: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
    }
}
