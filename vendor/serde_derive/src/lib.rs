//! Offline stand-in for `serde_derive`.
//!
//! The companion `serde` stand-in blanket-implements its marker
//! `Serialize`/`Deserialize` traits for every type, so these derive
//! macros expand to nothing: `#[derive(Serialize, Deserialize)]`
//! attributes across the workspace stay valid without pulling in the
//! real proc-macro stack (syn/quote), which is unavailable offline.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (the trait is blanket-implemented).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (the trait is blanket-implemented).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
