//! Offline stand-in for `proptest`, implementing the subset this
//! workspace uses: the [`proptest!`] macro, `prop_assert!`/
//! `prop_assert_eq!`, range / tuple / function strategies,
//! [`Strategy::prop_map`], [`collection::vec`], [`any`], `prop_oneof!`
//! and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: no shrinking (a failing case
//! panics with the generated values in scope of the assertion
//! message), no persisted failure seeds, and a smaller default case
//! count. Generation is deterministic per test name, so failures
//! reproduce run-to-run.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used by the harness (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a generator from a test-function name (FNV-1a hash), so
    /// every test gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        (self.next_u64() % n as u64) as usize
    }
}

/// Test-runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start
                    + (rng.unit_f64() as $t) * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_range_strategy!(f64, f32);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, sign-symmetric, wide dynamic range
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = (rng.next_u64() % 41) as i32 - 20;
        m * 10f64.powi(e)
    }
}

/// Strategy over a type's full (finite) domain.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Uniform choice among same-typed alternatives (see `prop_oneof!`).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S> Union<S> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<S>) -> Union<S> {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let k = rng.index(self.options.len());
        self.options[k].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies (subset: `vec`).
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a
    /// half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` — vectors of `element` samples.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            // hi is exclusive and always > lo (enforced by the From impls)
            let len = self.size.lo + rng.index(self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import every consumer uses.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property (no shrinking: behaves as `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($s),+])
    };
}

/// The property-test macro: each `fn name(pat in strategy, ...)` body
/// runs for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(
                    ::std::module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let ($($pat,)+) = (
                        $($crate::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..5.0, k in 1usize..9, b in 0u32..=7) {
            prop_assert!((-3.0..5.0).contains(&x));
            prop_assert!((1..9).contains(&k));
            prop_assert!(b <= 7);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0.0f64..1.0, 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_and_map_compose((a, b) in (0i32..10, 0i32..10).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
        }

        #[test]
        fn oneof_picks_from_both(x in prop_oneof![0.0f64..1.0, 10.0f64..11.0]) {
            prop_assert!((0.0..1.0).contains(&x) || (10.0..11.0).contains(&x));
        }

        #[test]
        fn any_generates(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn exact_vec_size() {
        let s = crate::collection::vec(0.0f64..1.0, 16usize);
        let mut rng = crate::TestRng::from_name("exact_vec_size");
        for _ in 0..10 {
            assert_eq!(crate::Strategy::generate(&s, &mut rng).len(), 16);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let s = 0.0f64..1.0;
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        for _ in 0..32 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
