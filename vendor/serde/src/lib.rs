//! Offline stand-in for `serde`.
//!
//! Nothing in this workspace actually serializes through serde (the
//! snapshot format is hand-rolled binary I/O), but many types carry
//! `#[derive(Serialize, Deserialize)]` so they are ready for real
//! serde once registry access exists. This stand-in keeps those
//! derives compiling: the traits are empty markers blanket-implemented
//! for every type, and the derive macros (re-exported from the
//! companion `serde_derive` stand-in) expand to nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// `serde::ser` namespace stub.
pub mod ser {
    pub use crate::Serialize;
}

/// `serde::de` namespace stub.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
