//! Offline stand-in for `rand_chacha`.
//!
//! Provides [`ChaCha8Rng`] with the `SeedableRng::seed_from_u64` entry
//! point the workspace uses. The stream is a xoshiro256++ generator
//! (seeded via SplitMix64), *not* actual ChaCha output — every in-tree
//! consumer needs determinism and statistical quality, not
//! bit-compatibility with the real crate.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256++ behind the familiar
/// name).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        // SplitMix64 expansion, the standard way to seed xoshiro
        let mut st = seed;
        let mut next = move || {
            st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = st;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        ChaCha8Rng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x: f64 = rng.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
