//! Device-level tests of the GRAPE-5 simulator: multi-call sessions,
//! register persistence, accounting arithmetic, and physical sanity of
//! the hardware force against closed-form references.

use g5util::vec3::Vec3;
use grape5::{ArithMode, ClockAccounting, Grape5, Grape5Config};
use rand::{Rng, SeedableRng};

fn open_exact() -> Grape5 {
    let mut g5 = Grape5::open(Grape5Config::paper_exact());
    g5.set_range(-4.0, 4.0);
    g5
}

#[test]
fn repeated_j_loads_replace_not_append() {
    let mut g5 = open_exact();
    let a = vec![Vec3::new(1.0, 0.0, 0.0)];
    let b = vec![Vec3::new(-1.0, 0.0, 0.0)];
    g5.set_j_particles(&a, &[1.0]);
    g5.set_j_particles(&b, &[1.0]);
    assert_eq!(g5.nj(), 1);
    let f = g5.force_on(&[Vec3::ZERO]);
    // only b remains: force points in -x
    assert!(f[0].acc.x < 0.0);
}

#[test]
fn force_scale_does_not_change_results_in_range() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let pos: Vec<Vec3> = (0..50)
        .map(|_| {
            Vec3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            )
        })
        .collect();
    let mass = vec![0.02; 50];
    let mut a = open_exact();
    let mut b = open_exact();
    b.set_force_scale(1e-3);
    a.set_j_particles(&pos, &mass);
    b.set_j_particles(&pos, &mass);
    let fa = a.force_on(&pos);
    let fb = b.force_on(&pos);
    for (x, y) in fa.iter().zip(&fb) {
        // scale changes quantization granularity, not the value
        assert!((x.acc - y.acc).norm() < 1e-6 + 1e-4 * x.acc.norm());
    }
}

#[test]
fn superposition_of_j_sets() {
    // force from the union equals the sum of forces from two halves
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let pos: Vec<Vec3> = (0..64)
        .map(|_| {
            Vec3::new(
                rng.random_range(-2.0..2.0),
                rng.random_range(-2.0..2.0),
                rng.random_range(-2.0..2.0),
            )
        })
        .collect();
    let mass = vec![0.5; 64];
    let xi = [Vec3::new(3.0, 3.0, 3.0)];

    let mut g5 = open_exact();
    g5.set_eps(0.1);
    g5.set_j_particles(&pos, &mass);
    let whole = g5.force_on(&xi);

    g5.set_j_particles(&pos[..32], &mass[..32]);
    let h1 = g5.force_on(&xi);
    g5.set_j_particles(&pos[32..], &mass[32..]);
    let h2 = g5.force_on(&xi);

    assert!((whole[0].acc - (h1[0].acc + h2[0].acc)).norm() < 1e-9);
    assert!((whole[0].pot - (h1[0].pot + h2[0].pot)).abs() < 1e-9);
}

#[test]
fn kepler_acceleration_magnitude() {
    // a point mass M at distance r: |a| = M/r^2 across a range of radii
    let mut g5 = open_exact();
    g5.set_range(-64.0, 64.0);
    g5.set_j_particles(&[Vec3::ZERO], &[5.0]);
    for r in [0.5, 1.0, 2.0, 10.0, 30.0] {
        let f = g5.force_on(&[Vec3::new(r, 0.0, 0.0)]);
        let expect = 5.0 / (r * r);
        assert!(
            (f[0].acc.norm() - expect).abs() / expect < 1e-5,
            "r={r}: {} vs {expect}",
            f[0].acc.norm()
        );
    }
}

#[test]
fn lns_mode_kepler_within_hardware_tolerance() {
    let mut g5 = Grape5::open(Grape5Config::paper());
    g5.set_range(-64.0, 64.0);
    g5.set_j_particles(&[Vec3::ZERO], &[5.0]);
    for r in [0.7, 3.0, 21.0] {
        let f = g5.force_on(&[Vec3::new(r, 0.0, 0.0)]);
        let expect = 5.0 / (r * r);
        let rel = (f[0].acc.norm() - expect).abs() / expect;
        assert!(rel < 0.01, "r={r}: rel {rel}");
    }
}

#[test]
fn accounting_accumulates_across_calls_and_resets() {
    let mut g5 = open_exact();
    let pos = vec![Vec3::new(0.5, 0.0, 0.0); 10];
    let mass = vec![1.0; 10];
    g5.set_j_particles(&pos, &mass);
    let xi = vec![Vec3::ZERO; 7];
    let _ = g5.force_on(&xi);
    let _ = g5.force_on(&xi);
    let acc = g5.accounting();
    assert_eq!(acc.calls, 2);
    assert_eq!(acc.interactions, 2 * 7 * 10);
    g5.reset_accounting();
    assert_eq!(g5.accounting(), ClockAccounting::new());
}

#[test]
fn empty_i_set_is_harmless() {
    let mut g5 = open_exact();
    g5.set_j_particles(&[Vec3::ZERO], &[1.0]);
    let f = g5.force_on(&[]);
    assert!(f.is_empty());
}

#[test]
fn empty_j_set_gives_zero_forces() {
    let mut g5 = open_exact();
    g5.set_j_particles(&[], &[]);
    let f = g5.force_on(&[Vec3::ZERO, Vec3::ONE]);
    assert!(f.iter().all(|x| x.acc == Vec3::ZERO && x.pot == 0.0));
}

#[test]
fn single_board_half_cycles_per_call() {
    // same j-set: one board streams all nj, two boards stream nj/2
    let mk = |boards: usize| {
        let cfg = Grape5Config { boards, mode: ArithMode::Exact, ..Grape5Config::paper() };
        let mut g5 = Grape5::open(cfg);
        g5.set_range(-2.0, 2.0);
        let pos: Vec<Vec3> = (0..100).map(|k| Vec3::new(k as f64 * 0.01, 0.1, 0.0)).collect();
        let mass = vec![1.0; 100];
        g5.set_j_particles(&pos, &mass);
        let _ = g5.force_on(&[Vec3::ZERO]);
        g5.accounting().pipeline_cycles
    };
    let one = mk(1);
    let two = mk(2);
    let lat = Grape5Config::paper().pipeline_latency_cycles;
    assert_eq!(one, 100 + lat);
    assert_eq!(two, 50 + lat);
}

#[test]
fn quantum_shrinks_with_window() {
    let mut g5 = open_exact();
    g5.set_range(-1.0, 1.0);
    let q1 = g5.quantum();
    g5.set_range(-1024.0, 1024.0);
    let q2 = g5.quantum();
    assert!((q2 / q1 - 1024.0).abs() < 1e-9);
}
