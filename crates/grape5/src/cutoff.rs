//! Cutoff-function support — the GRAPE-5 hardware feature beyond plain
//! 1/r² gravity.
//!
//! Unlike its predecessors, the G5 chip can multiply the pairwise force
//! and potential by a **user-loaded cutoff function** g(r), which is
//! what lets GRAPE-5 compute the short-range (particle–particle) part
//! of P³M / TreePM forces in hardware (Kawai et al. 2000, the "[11]"
//! companion paper of this reproduction's target). The chip stores the
//! shape in a ROM-like table addressed by the squared distance and
//! multiplies the pipeline output by the looked-up factor.
//!
//! We model the table with `2^addr_bits` bins, uniform in `r²/r_cut²`,
//! values rounded to `frac_bits` fractional bits; beyond the cutoff
//! radius the factor is exactly zero (the hardware suppresses the
//! interaction). The standard TreePM/Ewald short-range shape
//! `erfc(r/2r_s) + (r/r_s√π)·exp(−r²/4r_s²)` is provided as a built-in
//! constructor alongside arbitrary user shapes.

use serde::{Deserialize, Serialize};

/// A hardware cutoff table pair: force multiplier and potential
/// multiplier as functions of `r²`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutoffTable {
    rcut2: f64,
    force: Vec<f64>,
    pot: Vec<f64>,
}

impl CutoffTable {
    /// Build a table from user shape functions of `x = r / r_cut`
    /// (force multiplier and potential multiplier, both expected in
    /// `[0, 1]`-ish range), sampled at bin centers.
    pub fn from_shapes<F, P>(
        rcut: f64,
        addr_bits: u32,
        frac_bits: u32,
        force_shape: F,
        pot_shape: P,
    ) -> CutoffTable
    where
        F: Fn(f64) -> f64,
        P: Fn(f64) -> f64,
    {
        assert!(rcut > 0.0, "non-positive cutoff radius");
        assert!((1..=20).contains(&addr_bits), "address bits {addr_bits} out of 1..=20");
        assert!(frac_bits <= 32, "fraction bits too large");
        let n = 1usize << addr_bits;
        let quant = (frac_bits as f64).exp2();
        let round = |v: f64| (v * quant).round() / quant;
        let mut force = Vec::with_capacity(n);
        let mut pot = Vec::with_capacity(n);
        for i in 0..n {
            // bin center in r^2/rcut^2
            let u = (i as f64 + 0.5) / n as f64;
            let x = u.sqrt();
            force.push(round(force_shape(x)));
            pot.push(round(pot_shape(x)));
        }
        CutoffTable { rcut2: rcut * rcut, force, pot }
    }

    /// The TreePM / Ewald short-range shape with split scale `r_s`:
    /// force multiplier `erfc(r/2r_s) + (r/(r_s√π))·e^(−r²/4r_s²)`,
    /// potential multiplier `erfc(r/2r_s)`.
    pub fn treepm(rs: f64, rcut: f64, addr_bits: u32, frac_bits: u32) -> CutoffTable {
        assert!(rs > 0.0, "non-positive split scale");
        CutoffTable::from_shapes(
            rcut,
            addr_bits,
            frac_bits,
            move |x| {
                let r = x * rcut;
                let a = r / (2.0 * rs);
                erfc(a) + (r / (rs * std::f64::consts::PI.sqrt())) * (-a * a).exp()
            },
            move |x| {
                let r = x * rcut;
                erfc(r / (2.0 * rs))
            },
        )
    }

    /// Cutoff radius squared.
    #[inline]
    pub fn rcut2(&self) -> f64 {
        self.rcut2
    }

    /// Table entries per function.
    pub fn len(&self) -> usize {
        self.force.len()
    }

    /// Always false (construction requires ≥ 2 entries).
    pub fn is_empty(&self) -> bool {
        self.force.is_empty()
    }

    #[inline]
    fn index(&self, r2: f64) -> Option<usize> {
        if r2 >= self.rcut2 {
            return None;
        }
        let n = self.force.len();
        Some(((r2 / self.rcut2) * n as f64) as usize)
    }

    /// Force multiplier at squared distance `r2`; zero beyond cutoff.
    #[inline]
    pub fn force_factor(&self, r2: f64) -> f64 {
        match self.index(r2) {
            Some(i) => self.force[i.min(self.force.len() - 1)],
            None => 0.0,
        }
    }

    /// Potential multiplier at squared distance `r2`; zero beyond cutoff.
    #[inline]
    pub fn pot_factor(&self, r2: f64) -> f64 {
        match self.index(r2) {
            Some(i) => self.pot[i.min(self.pot.len() - 1)],
            None => 0.0,
        }
    }
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |err| ≤
/// 1.5 × 10⁻⁷ — far below the table's own quantization).
pub fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let e = poly * (-x * x).exp();
    if sign_neg {
        2.0 - e
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_2)).abs() < 1e-6);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn factors_are_zero_beyond_cutoff() {
        let t = CutoffTable::treepm(0.3, 1.0, 8, 16);
        assert_eq!(t.force_factor(1.0), 0.0);
        assert_eq!(t.force_factor(25.0), 0.0);
        assert_eq!(t.pot_factor(1.0001), 0.0);
    }

    #[test]
    fn treepm_shape_limits() {
        // r -> 0: multiplier -> 1 (full Newtonian force at short range)
        let t = CutoffTable::treepm(0.25, 1.0, 10, 20);
        assert!((t.force_factor(1e-6) - 1.0).abs() < 0.01);
        // the potential shape falls linearly in r near 0, so the first
        // bin's center value sits a few percent below 1
        assert!((t.pot_factor(1e-6) - 1.0).abs() < 0.06);
        // monotone decline toward the cutoff
        let near = t.force_factor(0.01);
        let mid = t.force_factor(0.25);
        let far = t.force_factor(0.81);
        assert!(near > mid && mid > far, "{near} {mid} {far}");
        assert!(far < 0.1, "shape must be strongly suppressed near r_cut");
    }

    #[test]
    fn table_quantization_grid() {
        let t = CutoffTable::from_shapes(1.0, 4, 8, |x| 1.0 - x, |x| 1.0 - x * x);
        for i in 0..t.len() {
            let v = t.force[i] * 256.0;
            assert!((v - v.round()).abs() < 1e-9);
        }
        assert_eq!(t.len(), 16);
        assert!(!t.is_empty());
    }

    #[test]
    fn finer_tables_are_more_accurate() {
        let shape = |x: f64| 1.0 - x * x;
        let coarse = CutoffTable::from_shapes(1.0, 3, 24, shape, shape);
        let fine = CutoffTable::from_shapes(1.0, 10, 24, shape, shape);
        let mut err_coarse = 0.0f64;
        let mut err_fine = 0.0f64;
        for s in 0..1000 {
            let r2 = s as f64 / 1000.0 * 0.999;
            let exact = shape(r2.sqrt());
            err_coarse = err_coarse.max((coarse.force_factor(r2) - exact).abs());
            err_fine = err_fine.max((fine.force_factor(r2) - exact).abs());
        }
        assert!(err_fine < err_coarse / 10.0, "{err_fine} vs {err_coarse}");
    }

    #[test]
    #[should_panic(expected = "non-positive cutoff")]
    fn zero_rcut_rejected() {
        CutoffTable::treepm(0.1, 0.0, 8, 8);
    }
}
