//! The GRAPE-5 processor board: 8 G5 chips (16 pipelines) and a
//! j-particle memory.
//!
//! A board evaluates forces **from** every particle in its j-memory
//! **on** an arbitrary set of i-particles. The 16 pipelines serve 16
//! i-particles concurrently while j-particles stream from memory one
//! per cycle, so a call with `ni` i-particles and `nj` j-particles
//! costs `ceil(ni/16) × (nj + pipeline_latency)` chip cycles.
//!
//! Per-pipeline force accumulation happens on the board in wide
//! fixed-point registers (`acc_format`), scaled by a host-declared
//! force scale; only the final sums cross the interface.

use crate::config::Grape5Config;
use crate::pipeline::{Force, G5Pipeline, JSlices, JWord};
use g5util::fixed::{Fixed, FixedFormat};
use g5util::lns::Lns;
use g5util::vec3::Vec3;
use rayon::prelude::*;

/// One processor board.
///
/// The j-memory is held as structure-of-arrays columns — the layout the
/// batch kernel streams — rather than an array of [`JWord`]s; `load_j`
/// still accepts the interface's word form.
#[derive(Debug, Clone)]
pub struct ProcessorBoard {
    jx: Vec<i64>,
    jy: Vec<i64>,
    jz: Vec<i64>,
    jm: Vec<f64>,
    jm_lns: Vec<Lns>,
    capacity: usize,
    pipes: usize,
    /// Pipelines taken out of service by the host (fault quarantine).
    /// Work is re-spread over the survivors, so the schedule degrades
    /// gracefully instead of the board dying with its pipe.
    disabled_pipes: usize,
    latency: u64,
    acc_format: FixedFormat,
    vmp: bool,
}

impl ProcessorBoard {
    /// Build an empty board per the system configuration.
    pub fn new(cfg: &Grape5Config) -> Self {
        ProcessorBoard {
            jx: Vec::new(),
            jy: Vec::new(),
            jz: Vec::new(),
            jm: Vec::new(),
            jm_lns: Vec::new(),
            capacity: cfg.jmem_capacity,
            pipes: cfg.pipes_per_board(),
            disabled_pipes: 0,
            latency: cfg.pipeline_latency_cycles,
            acc_format: cfg.acc_format,
            vmp: cfg.vmp,
        }
    }

    /// Pipelines currently in service.
    #[inline]
    pub fn active_pipes(&self) -> usize {
        self.pipes - self.disabled_pipes
    }

    /// Take one pipeline out of service; its i-lanes are redistributed
    /// over the remaining pipes (at a cycle-count penalty). Returns the
    /// number of pipes still active. The last pipe cannot be disabled —
    /// a board with nothing left should be quarantined whole.
    pub fn disable_pipe(&mut self) -> usize {
        if self.active_pipes() > 1 {
            self.disabled_pipes += 1;
        }
        self.active_pipes()
    }

    /// Return every disabled pipeline to service — the repair path:
    /// after a probation self-test comes back clean, the host undoes
    /// the quarantine penalty. Schedule-only; forces never depended on
    /// the pipe count.
    pub fn enable_all_pipes(&mut self) {
        self.disabled_pipes = 0;
    }

    /// Particles currently in j-memory.
    #[inline]
    pub fn nj(&self) -> usize {
        self.jx.len()
    }

    /// j-memory capacity in particles.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Load the j-particle memory, replacing its contents.
    ///
    /// # Panics
    /// If `words` exceeds the memory capacity — the host library layer
    /// is responsible for chunking larger j-sets into multiple passes.
    pub fn load_j(&mut self, words: &[JWord]) {
        assert!(
            words.len() <= self.capacity,
            "j-set of {} exceeds board memory capacity {}",
            words.len(),
            self.capacity
        );
        self.jx.clear();
        self.jy.clear();
        self.jz.clear();
        self.jm.clear();
        self.jm_lns.clear();
        for w in words {
            self.jx.push(w.raw[0]);
            self.jy.push(w.raw[1]);
            self.jz.push(w.raw[2]);
            self.jm.push(w.m);
            self.jm_lns.push(w.m_lns);
        }
    }

    /// The j-memory contents as structure-of-arrays slices.
    #[inline]
    pub fn j_slices(&self) -> JSlices<'_> {
        JSlices { x: &self.jx, y: &self.jy, z: &self.jz, m: &self.jm, m_lns: &self.jm_lns }
    }

    /// Chip cycles needed to evaluate `ni` i-particles against the
    /// current j-memory contents.
    #[inline]
    pub fn cycles_for(&self, ni: usize) -> u64 {
        if ni == 0 || self.jx.is_empty() {
            return 0;
        }
        let nj = self.jx.len() as u64;
        let pipes = self.active_pipes();
        if self.vmp && ni < pipes {
            // virtual pipelines: idle pipes take j-subsets, partials
            // combined on-board; work is spread over all pipes
            (ni as u64 * nj).div_ceil(pipes as u64) + self.latency
        } else {
            let chunks = ni.div_ceil(pipes) as u64;
            chunks * (nj + self.latency)
        }
    }

    /// Evaluate the partial force from this board's j-memory on each
    /// i-particle (raw grid coordinates), returning the per-particle
    /// force read back over the interface.
    ///
    /// `force_scale` is the host-declared unit of the fixed-point
    /// accumulators: accumulated values saturate at
    /// `acc_format.max_value() × force_scale`.
    pub fn compute(&self, pipe: &G5Pipeline, xi: &[[i64; 3]], force_scale: f64) -> Vec<Force> {
        let mut out = Vec::new();
        self.compute_into(pipe, xi, force_scale, &mut out);
        out
    }

    /// [`compute`](Self::compute) into a caller-owned buffer, so a
    /// steady-state force loop performs no per-call allocation. The
    /// buffer is cleared and refilled to `xi.len()`.
    pub fn compute_into(
        &self,
        pipe: &G5Pipeline,
        xi: &[[i64; 3]],
        force_scale: f64,
        out: &mut Vec<Force>,
    ) {
        assert!(force_scale > 0.0, "non-positive force scale");
        out.clear();
        out.resize(xi.len(), Force::ZERO);
        pipe.interact_block(xi, &self.j_slices(), force_scale, self.acc_format, out);
    }

    /// The pre-batch board compute, verbatim: one scalar
    /// [`G5Pipeline::interact_reference`] call per (i, j) pair with
    /// per-i fixed-point accumulation. The batch kernel must reproduce
    /// its output bit for bit; kept callable for the golden-vector
    /// tests and the perf harness's same-run baseline.
    pub fn compute_reference(
        &self,
        pipe: &G5Pipeline,
        xi: &[[i64; 3]],
        force_scale: f64,
    ) -> Vec<Force> {
        assert!(force_scale > 0.0, "non-positive force scale");
        let fmt = self.acc_format;
        xi.par_iter()
            .map(|&x| {
                let mut ax = Fixed::zero(fmt);
                let mut ay = Fixed::zero(fmt);
                let mut az = Fixed::zero(fmt);
                let mut ap = Fixed::zero(fmt);
                for jj in 0..self.jx.len() {
                    let w = JWord {
                        raw: [self.jx[jj], self.jy[jj], self.jz[jj]],
                        m_lns: self.jm_lns[jj],
                        m: self.jm[jj],
                    };
                    let f = pipe.interact_reference(x, &w);
                    ax = ax.accumulate(f.acc.x / force_scale);
                    ay = ay.accumulate(f.acc.y / force_scale);
                    az = az.accumulate(f.acc.z / force_scale);
                    ap = ap.accumulate(f.pot / force_scale);
                }
                Force {
                    acc: Vec3::new(
                        ax.to_f64() * force_scale,
                        ay.to_f64() * force_scale,
                        az.to_f64() * force_scale,
                    ),
                    pot: ap.to_f64() * force_scale,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArithMode;

    fn setup(mode: ArithMode) -> (ProcessorBoard, G5Pipeline) {
        let cfg = Grape5Config { mode, ..Grape5Config::paper() };
        let board = ProcessorBoard::new(&cfg);
        let pipe = G5Pipeline::new(&cfg, 1.0 / (1u64 << 24) as f64, 0.0);
        (board, pipe)
    }

    fn jw(pipe: &G5Pipeline, raw: [i64; 3], m: f64) -> JWord {
        JWord { raw, m_lns: pipe.encode_mass(m), m }
    }

    #[test]
    fn empty_board_returns_zero_forces() {
        let (board, pipe) = setup(ArithMode::Exact);
        let out = board.compute(&pipe, &[[0, 0, 0], [1, 2, 3]], 1.0);
        assert_eq!(out, vec![Force::ZERO, Force::ZERO]);
        assert_eq!(board.cycles_for(2), 0);
    }

    #[test]
    fn cycle_model_matches_schedule() {
        let cfg = Grape5Config::paper(); // 16 pipes/board, latency 56
        let mut board = ProcessorBoard::new(&cfg);
        let pipe = G5Pipeline::new(&cfg, 1e-6, 0.0);
        let words: Vec<JWord> = (0..100).map(|k| jw(&pipe, [k, 0, 0], 1.0)).collect();
        board.load_j(&words);
        // 16 i fit in one pass: 100 + 56 cycles
        assert_eq!(board.cycles_for(16), 156);
        // 17 i need two passes
        assert_eq!(board.cycles_for(17), 312);
        assert_eq!(board.cycles_for(0), 0);
    }

    #[test]
    fn vmp_spreads_small_i_sets_over_all_pipes() {
        let cfg = Grape5Config { vmp: true, ..Grape5Config::paper() };
        let mut board = ProcessorBoard::new(&cfg);
        let pipe = G5Pipeline::new(&cfg, 1e-6, 0.0);
        let words: Vec<JWord> = (0..1600).map(|k| jw(&pipe, [k, 0, 0], 1.0)).collect();
        board.load_j(&words);
        // 1 i-particle over 16 pipes: 1600/16 = 100 cycles + latency
        assert_eq!(board.cycles_for(1), 100 + cfg.pipeline_latency_cycles);
        // at ni = pipes the schedules coincide
        assert_eq!(board.cycles_for(16), 1600 + cfg.pipeline_latency_cycles);
        // without VMP the lone i-particle pays the full stream
        let plain = ProcessorBoard::new(&Grape5Config::paper());
        let mut plain = plain;
        plain.load_j(&words);
        assert_eq!(plain.cycles_for(1), 1600 + cfg.pipeline_latency_cycles);
    }

    #[test]
    fn disabled_pipes_slow_the_schedule_but_keep_the_board() {
        let cfg = Grape5Config::paper(); // 16 pipes/board, latency 56
        let mut board = ProcessorBoard::new(&cfg);
        let pipe = G5Pipeline::new(&cfg, 1e-6, 0.0);
        let words: Vec<JWord> = (0..100).map(|k| jw(&pipe, [k, 0, 0], 1.0)).collect();
        board.load_j(&words);
        assert_eq!(board.cycles_for(16), 156); // one 16-wide pass
        assert_eq!(board.disable_pipe(), 15);
        // 16 i over 15 pipes: two passes now
        assert_eq!(board.cycles_for(16), 312);
        // forces are unaffected — only the schedule degrades
        let f = board.compute(&pipe, &[[5, 5, 5]], 1.0);
        assert_ne!(f[0], Force::ZERO);
        // the last pipe can never be disabled
        for _ in 0..40 {
            board.disable_pipe();
        }
        assert_eq!(board.active_pipes(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds board memory capacity")]
    fn overfull_jmem_panics() {
        let cfg = Grape5Config { jmem_capacity: 2, ..Grape5Config::paper() };
        let mut board = ProcessorBoard::new(&cfg);
        let pipe = G5Pipeline::new(&cfg, 1e-6, 0.0);
        let words: Vec<JWord> = (0..3).map(|k| jw(&pipe, [k, 0, 0], 1.0)).collect();
        board.load_j(&words);
    }

    #[test]
    fn exact_mode_matches_direct_sum() {
        let (mut board, pipe) = setup(ArithMode::Exact);
        let q = pipe.quantum();
        let raws = [[1_000_000i64, 0, 0], [0, 2_000_000, 0], [-500_000, -500_000, 777]];
        let masses = [1.0, 2.5, 0.5];
        let words: Vec<JWord> = raws.iter().zip(&masses).map(|(&r, &m)| jw(&pipe, r, m)).collect();
        board.load_j(&words);
        let xi = [[10_000i64, 20_000, -30_000]];
        let out = board.compute(&pipe, &xi, 1.0);

        let mut expect = Force::ZERO;
        for (r, &m) in raws.iter().zip(&masses) {
            let dx = Vec3::new(
                (r[0] - xi[0][0]) as f64 * q,
                (r[1] - xi[0][1]) as f64 * q,
                (r[2] - xi[0][2]) as f64 * q,
            );
            let r2 = dx.norm2();
            expect.acc += dx * (m / (r2 * r2.sqrt()));
            expect.pot += m / r2.sqrt();
        }
        assert!((out[0].acc - expect.acc).norm() / expect.acc.norm() < 1e-8);
        assert!((out[0].pot - expect.pot).abs() / expect.pot < 1e-8);
    }

    #[test]
    fn lns_mode_is_close_to_exact_mode() {
        let (mut bl, pl) = setup(ArithMode::Lns);
        let (mut be, pe) = setup(ArithMode::Exact);
        let words: Vec<JWord> = (1..200)
            .map(|k| {
                let r = [k * 37_501, (k % 13) * 91_001 - 500_000, k * k % 800_000];
                jw(&pl, r, 1.0 + (k % 5) as f64)
            })
            .collect();
        bl.load_j(&words);
        be.load_j(&words);
        let xi = [[123i64, -456, 789]];
        let fl = bl.compute(&pl, &xi, 1.0);
        let fe = be.compute(&pe, &xi, 1.0);
        let rel = (fl[0].acc - fe[0].acc).norm() / fe[0].acc.norm();
        assert!(rel < 0.01, "board LNS vs exact rel err {rel}");
        assert!(rel > 0.0);
    }

    #[test]
    fn accumulator_saturates_at_force_scale_range() {
        // force_scale tiny => accumulator clamps rather than wrapping
        let cfg = Grape5Config {
            mode: ArithMode::Exact,
            acc_format: FixedFormat::new(16, 8),
            ..Grape5Config::paper()
        };
        let mut board = ProcessorBoard::new(&cfg);
        let pipe = G5Pipeline::new(&cfg, 1e-3, 0.0);
        let words: Vec<JWord> = (1..50).map(|k| jw(&pipe, [k, 0, 0], 1e6)).collect();
        board.load_j(&words);
        let out = board.compute(&pipe, &[[0, 0, 0]], 1.0);
        let max = FixedFormat::new(16, 8).max_value();
        assert!(out[0].acc.x <= max + 1e-9, "saturated value {} > {}", out[0].acc.x, max);
    }

    #[test]
    fn zero_distance_j_contributes_nothing() {
        let (mut board, pipe) = setup(ArithMode::Exact);
        let words = vec![jw(&pipe, [5, 5, 5], 3.0)];
        board.load_j(&words);
        let out = board.compute(&pipe, &[[5, 5, 5]], 1.0);
        assert_eq!(out[0], Force::ZERO);
    }
}
