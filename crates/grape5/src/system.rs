//! The GRAPE-5 system: processor boards + host interfaces, exposed
//! through an API shaped like the real `g5_*` host library.
//!
//! Usage mirrors the hardware's programming model:
//!
//! ```
//! use grape5::{Grape5, Grape5Config};
//! use g5util::Vec3;
//!
//! let mut g5 = Grape5::open(Grape5Config::paper_exact());
//! g5.set_range(-10.0, 10.0);      // coordinate window (g5_set_range)
//! g5.set_eps(0.01);               // softening       (g5_set_eps_to_all)
//! let pos = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)];
//! let mass = [1.0, 1.0];
//! g5.set_j_particles(&pos, &mass); // load j-memory   (g5_set_xmj / g5_set_n)
//! let f = g5.force_on(&pos);       // g5_calculate_force_on_x
//! assert!(f[0].acc.x < 0.0 && f[1].acc.x > 0.0); // mutual attraction
//! ```
//!
//! With several boards the j-set is split across boards; every board
//! computes the partial force from its share on the same i-particles
//! and the host sums the partials in double precision — the scheme the
//! paper's host library uses, which is why peak throughput is
//! `32 pipelines × 90 MHz`.

use crate::board::ProcessorBoard;
use crate::clock::ClockAccounting;
use crate::config::Grape5Config;
use crate::cutoff::CutoffTable;
use crate::fault::{
    corrupt_mass, corrupt_readback, CallFault, DeviceError, FaultConfig, FaultState,
};
use crate::lanes::LanePath;
use crate::pipeline::{Force, G5Pipeline, JWord};
use g5util::fixed::RangeScaler;
use g5util::vec3::Vec3;
use rayon::prelude::*;

/// Interface words per j-particle (x, y, z, m).
const WORDS_PER_J: u64 = 4;
/// Interface words sent per i-particle (x, y, z).
const WORDS_PER_I: u64 = 3;
/// Interface words read back per i-particle (ax, ay, az, pot).
const WORDS_PER_F: u64 = 4;

/// What the device's built-in self-test reports: persistent faults
/// currently manifesting on hardware still in active service. The host
/// recovery layer runs this after repeated failures to decide what to
/// quarantine (the real library's equivalent is a JTAG/test-pattern
/// scan of each pipeline).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelfTest {
    /// `(board, pipe)` pairs returning garbage on their lanes.
    pub stuck_pipes: Vec<(usize, usize)>,
    /// Boards not answering DMA.
    pub dead_boards: Vec<usize>,
}

impl SelfTest {
    /// No persistent fault found.
    pub fn is_clean(&self) -> bool {
        self.stuck_pipes.is_empty() && self.dead_boards.is_empty()
    }
}

/// An open GRAPE-5 system.
#[derive(Debug, Clone)]
pub struct Grape5 {
    cfg: Grape5Config,
    boards: Vec<ProcessorBoard>,
    scaler: RangeScaler,
    pipeline: G5Pipeline,
    eps: f64,
    cutoff: Option<CutoffTable>,
    force_scale: f64,
    clock: ClockAccounting,
    nj_total: usize,
    /// Injected-fault process, if armed.
    fault: Option<FaultState>,
    /// Host quarantine state: `false` = board taken out of service.
    board_ok: Vec<bool>,
    /// Host quarantine state: pipes taken out of service.
    quarantined_pipes: Vec<(usize, usize)>,
    /// Reusable per-board partial-force buffers: the b-th board's batch
    /// kernel writes its share here, the merge loop reads them back in
    /// board order. Capacity persists across calls, so the steady-state
    /// force loop never allocates.
    partials: Vec<Vec<Force>>,
    /// Reusable quantized i-coordinate buffer.
    i_scratch: Vec<[i64; 3]>,
    /// Host-forced exact-mode lane path, surviving pipeline rebuilds.
    lane_override: Option<LanePath>,
}

impl Grape5 {
    /// Power on a system with the given configuration.
    ///
    /// The coordinate window defaults to `[-1, 1)`; call
    /// [`set_range`](Self::set_range) before loading particles that
    /// live elsewhere.
    pub fn open(cfg: Grape5Config) -> Self {
        cfg.validate();
        let boards = (0..cfg.boards).map(|_| ProcessorBoard::new(&cfg)).collect();
        let scaler = RangeScaler::new(-1.0, 1.0, cfg.coord_bits);
        let pipeline = G5Pipeline::new(&cfg, scaler.quantum(), 0.0);
        let nb = cfg.boards;
        Grape5 {
            cfg,
            boards,
            scaler,
            pipeline,
            eps: 0.0,
            cutoff: None,
            force_scale: 1.0,
            clock: ClockAccounting::new(),
            nj_total: 0,
            fault: None,
            board_ok: vec![true; nb],
            quarantined_pipes: Vec::new(),
            partials: vec![Vec::new(); nb],
            i_scratch: Vec::new(),
            lane_override: None,
        }
    }

    fn rebuild_pipeline(&mut self) {
        self.pipeline = G5Pipeline::new(&self.cfg, self.scaler.quantum(), self.eps)
            .with_cutoff(self.cutoff.clone());
        if let Some(path) = self.lane_override {
            self.pipeline.set_lane_path(path);
        }
    }

    /// Force the exact-mode batch kernel onto a specific lane
    /// implementation (see [`LanePath`]); sticks across `set_range` /
    /// `set_eps` pipeline rebuilds. Used by the perf harness and the
    /// bit-identity referees.
    pub fn set_lane_path(&mut self, path: LanePath) {
        self.lane_override = Some(path);
        self.pipeline.set_lane_path(path);
    }

    /// The lane implementation currently active in the exact-mode batch
    /// kernel.
    pub fn lane_path(&self) -> LanePath {
        self.pipeline.lane_path()
    }

    /// The configuration this system was opened with.
    pub fn config(&self) -> &Grape5Config {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Fault injection and quarantine
    // ------------------------------------------------------------------

    /// Arm (or replace) the deterministic fault injector. Every fault
    /// the device suffers from here on is drawn from `cfg`'s seeded
    /// process; the same seed and call sequence reproduce the same
    /// faults bit for bit.
    pub fn set_fault_injector(&mut self, cfg: FaultConfig) {
        self.fault = Some(FaultState::new(cfg));
    }

    /// Disarm the injector (quarantine state is host-side and stays).
    pub fn clear_fault_injector(&mut self) {
        self.fault = None;
    }

    /// Checkpointable position of the fault process (RNG + counters),
    /// if an injector is armed. Quarantine state is deliberately *not*
    /// included: persistent faults re-manifest after a restore and the
    /// recovery layer re-quarantines them, which affects only the
    /// timing model, never the forces.
    pub fn fault_state_words(&self) -> Option<Vec<u64>> {
        self.fault.as_ref().map(|f| f.to_words())
    }

    /// Restore a fault-process position saved by
    /// [`fault_state_words`](Self::fault_state_words). An injector with
    /// the original [`FaultConfig`] must already be armed.
    pub fn restore_fault_state(&mut self, words: &[u64]) -> Result<(), DeviceError> {
        let cfg = *self.fault.as_ref().ok_or(DeviceError::BadFaultState)?.config();
        self.fault = Some(FaultState::restore(cfg, words)?);
        Ok(())
    }

    /// Run the device self-test: report persistent faults manifesting
    /// on hardware still in active service.
    pub fn self_test(&self) -> SelfTest {
        let mut report = SelfTest::default();
        if let Some(f) = &self.fault {
            if let Some(s) = f.manifesting_stuck_pipe() {
                if self.board_ok[s.board] && !self.quarantined_pipes.contains(&(s.board, s.pipe)) {
                    report.stuck_pipes.push((s.board, s.pipe));
                }
            }
            if let Some(d) = f.manifesting_dropout() {
                if self.board_ok[d.board] {
                    report.dead_boards.push(d.board);
                }
            }
        }
        report
    }

    /// Take a whole board out of service. Its j-memory share is gone —
    /// reload the j-set to redistribute over the survivors. Returns the
    /// number of boards still active.
    pub fn quarantine_board(&mut self, board: usize) -> usize {
        if board < self.board_ok.len() && self.board_ok[board] {
            self.board_ok[board] = false;
            self.boards[board].load_j(&[]);
            self.nj_total = self.boards.iter().map(|b| b.nj()).sum();
        }
        self.active_boards()
    }

    /// Take one pipeline out of service: its lanes re-spread over the
    /// board's remaining pipes at a cycle-count penalty.
    pub fn quarantine_pipe(&mut self, board: usize, pipe: usize) {
        if board < self.boards.len() && !self.quarantined_pipes.contains(&(board, pipe)) {
            self.quarantined_pipes.push((board, pipe));
            self.boards[board].disable_pipe();
        }
    }

    /// Undo every host-side quarantine: all boards and pipes back in
    /// service. This is the probation entry point — the caller runs
    /// [`self_test`](Self::self_test) right after and re-quarantines
    /// whatever it still convicts, so a persistent fault that has not
    /// been repaired goes straight back out of service. Quarantined
    /// boards come back with empty j-memory; reload the j-set before
    /// computing.
    pub fn return_to_service(&mut self) {
        for ok in &mut self.board_ok {
            *ok = true;
        }
        for b in &mut self.boards {
            b.enable_all_pipes();
        }
        self.quarantined_pipes.clear();
        self.nj_total = self.boards.iter().map(|b| b.nj()).sum();
    }

    /// Repair the persistent fault classes of the armed injector (stuck
    /// pipe, board dropout) — the "card was replaced" event a chaos
    /// schedule fires so a later probation self-test can pass. No-op
    /// without an injector; transient rates and the RNG position stay.
    pub fn clear_persistent_faults(&mut self) {
        if let Some(f) = &mut self.fault {
            f.clear_persistent();
        }
    }

    /// Boards currently in service.
    pub fn active_boards(&self) -> usize {
        self.board_ok.iter().filter(|&&ok| ok).count()
    }

    /// Host quarantine state: `(quarantined boards, quarantined pipes)`.
    pub fn quarantined(&self) -> (Vec<usize>, Vec<(usize, usize)>) {
        let boards = (0..self.board_ok.len()).filter(|&b| !self.board_ok[b]).collect();
        (boards, self.quarantined_pipes.clone())
    }

    /// Declare the coordinate window (`g5_set_range`). Invalidate any
    /// loaded j-set: particles must be reloaded on the new grid.
    pub fn set_range(&mut self, min: f64, max: f64) {
        self.scaler = RangeScaler::new(min, max, self.cfg.coord_bits);
        self.rebuild_pipeline();
        for b in &mut self.boards {
            b.load_j(&[]);
        }
        self.nj_total = 0;
    }

    /// Current coordinate window.
    pub fn range(&self) -> (f64, f64) {
        (self.scaler.min(), self.scaler.max())
    }

    /// Size of one coordinate quantum in simulation units.
    pub fn quantum(&self) -> f64 {
        self.scaler.quantum()
    }

    /// Set the softening length ε shared by all interactions
    /// (`g5_set_eps_to_all`).
    pub fn set_eps(&mut self, eps: f64) {
        assert!(eps >= 0.0, "negative softening");
        self.eps = eps;
        self.rebuild_pipeline();
    }

    /// Load (or clear) the hardware cutoff table — the P³M/TreePM mode
    /// of the real library. The table survives range and softening
    /// changes until explicitly cleared.
    pub fn set_cutoff(&mut self, cutoff: Option<CutoffTable>) {
        self.cutoff = cutoff;
        self.rebuild_pipeline();
    }

    /// The loaded cutoff table, if any.
    pub fn cutoff(&self) -> Option<&CutoffTable> {
        self.cutoff.as_ref()
    }

    /// Current softening length.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Declare the unit of the on-board force accumulators. Accumulated
    /// components saturate at `acc_format.max_value() × scale`.
    pub fn set_force_scale(&mut self, scale: f64) {
        assert!(scale > 0.0, "non-positive force scale");
        self.force_scale = scale;
    }

    /// Total j-memory capacity across boards in service, in particles.
    pub fn jmem_capacity(&self) -> usize {
        self.cfg.jmem_capacity * self.active_boards()
    }

    /// Number of j-particles currently loaded.
    pub fn nj(&self) -> usize {
        self.nj_total
    }

    /// Load the j-particle set (`g5_set_n` + `g5_set_xmj`), splitting it
    /// evenly across boards and charging the interface transfer.
    ///
    /// # Panics
    /// If the set exceeds [`jmem_capacity`](Self::jmem_capacity); chunk
    /// larger sets with [`force_on_chunked`](Self::force_on_chunked).
    pub fn set_j_particles(&mut self, pos: &[Vec3], mass: &[f64]) {
        assert_eq!(pos.len(), mass.len(), "position/mass length mismatch");
        assert!(
            pos.len() <= self.jmem_capacity(),
            "j-set of {} exceeds total j-memory {}",
            pos.len(),
            self.jmem_capacity()
        );
        let mut words: Vec<JWord> = pos
            .iter()
            .zip(mass)
            .map(|(p, &m)| JWord {
                raw: [
                    self.scaler.quantize(p.x),
                    self.scaler.quantize(p.y),
                    self.scaler.quantize(p.z),
                ],
                m_lns: self.pipeline.encode_mass(m),
                m,
            })
            .collect();
        // injected DMA corruption: this load may flip a mass bit upward
        // in one word; a retry re-drives the transfer with a fresh draw
        if let Some(f) = &mut self.fault {
            if let Some(k) = f.on_j_load(words.len()) {
                let m = corrupt_mass(words[k].m);
                words[k].m = m;
                words[k].m_lns = self.pipeline.encode_mass(m);
            }
        }
        // Even split: the b-th board in service takes the b-th
        // contiguous share.
        for b in &mut self.boards {
            b.load_j(&[]);
        }
        let active: Vec<usize> = (0..self.boards.len()).filter(|&b| self.board_ok[b]).collect();
        let per = words.len().div_ceil(active.len().max(1));
        let mut max_words_one_iface = 0u64;
        for (&b, chunk) in active.iter().zip(words.chunks(per.max(1))) {
            self.boards[b].load_j(chunk);
            max_words_one_iface = max_words_one_iface.max(chunk.len() as u64 * WORDS_PER_J);
        }
        self.nj_total = words.len();
        // j-load moves through per-board interfaces in parallel: charge
        // the busiest one, no pipeline cycles, no call latency (the
        // transfer piggybacks on the next force call). Tracked as
        // j-words so double-buffered pricing can overlap it.
        self.clock.record_j_load(max_words_one_iface);
    }

    /// Compute forces on `xi` from the loaded j-set
    /// (`g5_calculate_force_on_x`).
    ///
    /// # Panics
    /// On an injected device fault that would need host-side recovery;
    /// use [`try_force_on`](Self::try_force_on) (or the recovering
    /// [`crate::DeviceSession`]) when an injector is armed.
    pub fn force_on(&mut self, xi: &[Vec3]) -> Vec<Force> {
        self.try_force_on(xi).unwrap_or_else(|e| panic!("unrecovered device error: {e}"))
    }

    /// Fallible force call: like [`force_on`](Self::force_on) but a
    /// dead board surfaces as [`DeviceError::BoardTimeout`] instead of
    /// a panic, and injected corruption reaches the returned forces for
    /// the host validation layer to catch.
    pub fn try_force_on(&mut self, xi: &[Vec3]) -> Result<Vec<Force>, DeviceError> {
        // the fault process decides this call's fate first; the call
        // counter advances even on a timeout (the host burned a DMA)
        let call_fault = match &mut self.fault {
            None => CallFault::Clean,
            Some(f) => {
                let ok = self.board_ok.clone();
                f.on_force_call(xi.len(), |b| ok.get(b).copied().unwrap_or(false))
            }
        };
        if let CallFault::Timeout { board } = call_fault {
            // the call dies at the interface: charge the call overhead,
            // no pipeline work, no data moved
            self.clock.record_call(0, 0, 0);
            return Err(DeviceError::BoardTimeout { board });
        }

        self.i_scratch.clear();
        self.i_scratch.extend(xi.iter().map(|p| {
            [self.scaler.quantize(p.x), self.scaler.quantize(p.y), self.scaler.quantize(p.z)]
        }));

        let stuck = self.fault.as_ref().and_then(|f| f.manifesting_stuck_pipe()).filter(|s| {
            s.board < self.boards.len()
                && self.board_ok[s.board]
                && !self.quarantined_pipes.contains(&(s.board, s.pipe))
        });

        // Dispatch every in-service board concurrently; each writes its
        // partials into its own scratch buffer, so the later host merge
        // runs in fixed board order no matter which board finishes
        // first — forces are deterministic under any thread schedule.
        {
            let pipeline = &self.pipeline;
            let raw = &self.i_scratch[..];
            let force_scale = self.force_scale;
            let board_ok = &self.board_ok;
            let tasks: Vec<_> = self
                .boards
                .iter()
                .zip(self.partials.iter_mut())
                .enumerate()
                .filter(|(bi, (b, _))| board_ok[*bi] && b.nj() > 0)
                .map(|(_, t)| t)
                .collect();
            tasks
                .into_par_iter()
                .for_each(|(b, out)| b.compute_into(pipeline, raw, force_scale, out));
        }

        let mut total: Vec<Force> = vec![Force::ZERO; xi.len()];
        let mut max_cycles = 0u64;
        let pipes = self.cfg.pipes_per_board();
        for (bi, b) in self.boards.iter().enumerate() {
            if !self.board_ok[bi] || b.nj() == 0 {
                continue;
            }
            let partial = &mut self.partials[bi];
            if let Some(s) = stuck.filter(|s| s.board == bi) {
                // every lane the stuck pipe serves reads back garbage
                for k in (s.pipe..partial.len()).step_by(pipes) {
                    partial[k].acc.x = corrupt_readback(partial[k].acc.x);
                    partial[k].acc.y = corrupt_readback(partial[k].acc.y);
                    partial[k].acc.z = corrupt_readback(partial[k].acc.z);
                    partial[k].pot = corrupt_readback(partial[k].pot);
                }
            }
            for (t, p) in total.iter_mut().zip(partial.iter()) {
                *t = t.merged(*p);
            }
            max_cycles = max_cycles.max(b.cycles_for(xi.len()));
        }
        if let CallFault::Transient { index, word } = call_fault {
            let f = &mut total[index];
            match word {
                0 => f.acc.x = corrupt_readback(f.acc.x),
                1 => f.acc.y = corrupt_readback(f.acc.y),
                2 => f.acc.z = corrupt_readback(f.acc.z),
                _ => f.pot = corrupt_readback(f.pot),
            }
        }
        let words = xi.len() as u64 * (WORDS_PER_I + WORDS_PER_F);
        let interactions = xi.len() as u64 * self.nj_total as u64;
        self.clock.record_call(max_cycles, words, interactions);
        Ok(total)
    }

    /// Convenience: compute forces on `xi` from an arbitrarily large
    /// j-set, chunking it through j-memory in as many passes as needed
    /// and summing partials on the host.
    pub fn force_on_chunked(&mut self, jpos: &[Vec3], jmass: &[f64], xi: &[Vec3]) -> Vec<Force> {
        assert_eq!(jpos.len(), jmass.len(), "position/mass length mismatch");
        let cap = self.jmem_capacity();
        let mut total: Vec<Force> = vec![Force::ZERO; xi.len()];
        let mut start = 0;
        while start < jpos.len() {
            let end = (start + cap).min(jpos.len());
            self.set_j_particles(&jpos[start..end], &jmass[start..end]);
            for (t, p) in total.iter_mut().zip(self.force_on(xi)) {
                *t = t.merged(p);
            }
            start = end;
        }
        total
    }

    /// Compute forces on `xi` through the pre-batch scalar path:
    /// sequential per-board [`ProcessorBoard::compute_reference`] with
    /// formula LNS converters, merged in board order. No fault
    /// injection and no accounting — this exists so the perf harness
    /// can measure the pre-batch baseline in the same run and the
    /// golden tests can pin `force_on` to it bit for bit.
    pub fn force_on_reference(&self, xi: &[Vec3]) -> Vec<Force> {
        let raw: Vec<[i64; 3]> = xi
            .iter()
            .map(|p| {
                [self.scaler.quantize(p.x), self.scaler.quantize(p.y), self.scaler.quantize(p.z)]
            })
            .collect();
        let mut total: Vec<Force> = vec![Force::ZERO; xi.len()];
        for (bi, b) in self.boards.iter().enumerate() {
            if !self.board_ok[bi] || b.nj() == 0 {
                continue;
            }
            let partial = b.compute_reference(&self.pipeline, &raw, self.force_scale);
            for (t, p) in total.iter_mut().zip(partial) {
                *t = t.merged(p);
            }
        }
        total
    }

    /// Snapshot of the hardware-work accounting.
    pub fn accounting(&self) -> ClockAccounting {
        self.clock
    }

    /// Zero the hardware-work accounting.
    pub fn reset_accounting(&mut self) {
        self.clock.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArithMode;

    fn two_body_system(mode: ArithMode) -> (Grape5, Vec<Vec3>, Vec<f64>) {
        let cfg = Grape5Config { mode, ..Grape5Config::paper() };
        let mut g5 = Grape5::open(cfg);
        g5.set_range(-4.0, 4.0);
        g5.set_eps(0.0);
        let pos = vec![Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)];
        let mass = vec![2.0, 3.0];
        (g5, pos, mass)
    }

    #[test]
    fn two_body_forces_exact_mode() {
        let (mut g5, pos, mass) = two_body_system(ArithMode::Exact);
        g5.set_j_particles(&pos, &mass);
        let f = g5.force_on(&pos);
        // a_0 = m_1 (x_1 - x_0)/|..|^3 = 3 * (-2)/8 = -0.75
        assert!((f[0].acc.x + 0.75).abs() < 1e-6);
        // a_1 = m_0 (x_0 - x_1)/8 = 2 * 2 / 8 = 0.5
        assert!((f[1].acc.x - 0.5).abs() < 1e-6);
        // potentials: p_0 = m_1/2, p_1 = m_0/2
        assert!((f[0].pot - 1.5).abs() < 1e-6);
        assert!((f[1].pot - 1.0).abs() < 1e-6);
        // Newton's third law for the force (mass-weighted)
        assert!((mass[0] * f[0].acc.x + mass[1] * f[1].acc.x).abs() < 1e-6);
    }

    #[test]
    fn two_body_forces_lns_mode_within_hardware_error() {
        let (mut g5, pos, mass) = two_body_system(ArithMode::Lns);
        g5.set_j_particles(&pos, &mass);
        let f = g5.force_on(&pos);
        assert!((f[0].acc.x + 0.75).abs() < 0.75 * 0.01);
        assert!((f[1].acc.x - 0.5).abs() < 0.5 * 0.01);
    }

    #[test]
    fn accounting_counts_cycles_words_interactions() {
        let (mut g5, pos, mass) = two_body_system(ArithMode::Exact);
        g5.set_j_particles(&pos, &mass);
        let _ = g5.force_on(&pos);
        let a = g5.accounting();
        assert_eq!(a.calls, 1);
        assert_eq!(a.interactions, 4); // 2 i × 2 j
                                       // 2 boards, 1 j each: slowest board streams 1 j + latency
        assert_eq!(a.pipeline_cycles, 1 + Grape5Config::paper().pipeline_latency_cycles);
        // words: j-load max(4,4)=4, i send 2×3, f read 2×4
        assert_eq!(a.iface_words, 4 + 6 + 8);
        g5.reset_accounting();
        assert_eq!(g5.accounting(), ClockAccounting::new());
    }

    #[test]
    fn chunked_equals_single_pass() {
        let cfg = Grape5Config { mode: ArithMode::Exact, ..Grape5Config::paper() };
        let mut big = Grape5::open(cfg);
        let cfg_small =
            Grape5Config { mode: ArithMode::Exact, jmem_capacity: 3, ..Grape5Config::paper() };
        let mut small = Grape5::open(cfg_small);
        for g in [&mut big, &mut small] {
            g.set_range(-2.0, 2.0);
            g.set_eps(0.05);
        }
        let jpos: Vec<Vec3> = (0..20)
            .map(|k| Vec3::new((k as f64 * 0.09) - 0.9, (k % 7) as f64 * 0.1, 0.3))
            .collect();
        let jm: Vec<f64> = (0..20).map(|k| 1.0 + (k % 3) as f64).collect();
        let xi = vec![Vec3::new(0.11, -0.2, 0.0), Vec3::new(-0.5, 0.6, 1.0)];

        let fa = big.force_on_chunked(&jpos, &jm, &xi);
        let fb = small.force_on_chunked(&jpos, &jm, &xi);
        for (a, b) in fa.iter().zip(&fb) {
            assert!((a.acc - b.acc).norm() < 1e-9);
            assert!((a.pot - b.pot).abs() < 1e-9);
        }
    }

    #[test]
    fn range_change_invalidates_j_set() {
        let (mut g5, pos, mass) = two_body_system(ArithMode::Exact);
        g5.set_j_particles(&pos, &mass);
        assert_eq!(g5.nj(), 2);
        g5.set_range(-8.0, 8.0);
        assert_eq!(g5.nj(), 0);
        let f = g5.force_on(&pos);
        assert_eq!(f[0], Force::ZERO);
    }

    #[test]
    fn out_of_range_positions_saturate_not_crash() {
        let (mut g5, _, _) = two_body_system(ArithMode::Exact);
        let far = vec![Vec3::new(1e9, -1e9, 0.0)];
        g5.set_j_particles(&far, &[1.0]);
        let f = g5.force_on(&[Vec3::ZERO]);
        assert!(f[0].acc.is_finite());
    }

    #[test]
    #[should_panic(expected = "exceeds total j-memory")]
    fn oversize_j_set_rejected() {
        let cfg = Grape5Config {
            mode: ArithMode::Exact,
            jmem_capacity: 1,
            boards: 1,
            ..Grape5Config::paper()
        };
        let mut g5 = Grape5::open(cfg);
        let pos = vec![Vec3::ZERO, Vec3::ONE];
        g5.set_j_particles(&pos, &[1.0, 1.0]);
    }

    #[test]
    fn cutoff_suppresses_far_interactions() {
        use crate::cutoff::CutoffTable;
        let (mut g5, _, _) = two_body_system(ArithMode::Exact);
        // cutoff at r = 1.5: the pair at separation 2 must vanish
        g5.set_cutoff(Some(CutoffTable::treepm(0.3, 1.5, 10, 20)));
        let pos = vec![Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)];
        let mass = vec![1.0, 1.0];
        g5.set_j_particles(&pos, &mass);
        let f = g5.force_on(&pos);
        assert_eq!(f[0], Force::ZERO);
        // a close pair still interacts, with a sub-Newtonian factor
        let close = vec![Vec3::new(0.05, 0.0, 0.0), Vec3::new(-0.05, 0.0, 0.0)];
        g5.set_j_particles(&close, &mass);
        let fc = g5.force_on(&close);
        assert!(fc[0].acc.x < 0.0, "close pair must still attract");
        let newton = 1.0 / (0.1f64 * 0.1);
        assert!(fc[0].acc.x.abs() <= newton);
        // clearing the table restores plain gravity
        g5.set_cutoff(None);
        g5.set_j_particles(&close, &mass);
        let fn_ = g5.force_on(&close);
        assert!((fn_[0].acc.x.abs() - newton).abs() / newton < 1e-5);
    }

    #[test]
    fn cutoff_survives_range_and_eps_changes() {
        use crate::cutoff::CutoffTable;
        let (mut g5, pos, mass) = two_body_system(ArithMode::Exact);
        g5.set_cutoff(Some(CutoffTable::treepm(0.3, 1.5, 8, 16)));
        g5.set_range(-8.0, 8.0);
        g5.set_eps(0.01);
        assert!(g5.cutoff().is_some());
        g5.set_j_particles(&pos, &mass);
        let f = g5.force_on(&pos);
        assert_eq!(f[0], Force::ZERO, "separation 2 > cutoff 1.5 must vanish");
    }

    #[test]
    fn cutoff_lns_mode_matches_exact_mode_shape() {
        use crate::cutoff::CutoffTable;
        let mut exact = two_body_system(ArithMode::Exact).0;
        let mut lns = two_body_system(ArithMode::Lns).0;
        let pos = vec![Vec3::new(0.2, 0.1, 0.0), Vec3::new(-0.2, -0.1, 0.0)];
        let mass = vec![1.0, 2.0];
        for g in [&mut exact, &mut lns] {
            g.set_cutoff(Some(CutoffTable::treepm(0.25, 1.0, 10, 20)));
            g.set_j_particles(&pos, &mass);
        }
        let fe = exact.force_on(&pos);
        let fl = lns.force_on(&pos);
        let rel = (fe[0].acc - fl[0].acc).norm() / fe[0].acc.norm();
        assert!(rel < 0.02, "LNS cutoff path off by {rel}");
    }

    mod faults {
        use super::*;
        use crate::fault::{BoardDropout, FaultConfig, StuckPipe};

        /// Bit patterns of every force component — corrupted outputs are
        /// NaN, so reproducibility checks cannot use `==` on `f64`.
        fn force_bits(f: &[Force]) -> Vec<[u64; 4]> {
            f.iter()
                .map(|w| [w.acc.x.to_bits(), w.acc.y.to_bits(), w.acc.z.to_bits(), w.pot.to_bits()])
                .collect()
        }

        fn loaded_system() -> (Grape5, Vec<Vec3>, Vec<f64>) {
            let cfg = Grape5Config { mode: ArithMode::Exact, ..Grape5Config::paper() };
            let mut g5 = Grape5::open(cfg);
            g5.set_range(-2.0, 2.0);
            g5.set_eps(0.05);
            let pos: Vec<Vec3> = (0..40)
                .map(|k| Vec3::new((k as f64 * 0.04) - 0.8, (k % 5) as f64 * 0.1, 0.2))
                .collect();
            let mass = vec![0.025; 40];
            (g5, pos, mass)
        }

        #[test]
        fn transient_corruption_is_non_finite_and_reproducible() {
            let (mut clean, pos, mass) = loaded_system();
            clean.set_j_particles(&pos, &mass);
            let reference = clean.force_on(&pos);

            let mut runs = Vec::new();
            for _ in 0..2 {
                let (mut g5, _, _) = loaded_system();
                g5.set_fault_injector(FaultConfig::transient(42, 0.7));
                g5.set_j_particles(&pos, &mass);
                let mut forces = Vec::new();
                for _ in 0..20 {
                    forces.push(g5.try_force_on(&pos).unwrap());
                }
                runs.push(forces);
            }
            for (a, b) in runs[0].iter().zip(&runs[1]) {
                assert_eq!(force_bits(a), force_bits(b), "same seed must inject identical faults");
            }
            let mut corrupted_calls = 0;
            for f in &runs[0] {
                let bad: Vec<_> =
                    f.iter().filter(|w| !(w.acc.is_finite() && w.pot.is_finite())).collect();
                if !bad.is_empty() {
                    corrupted_calls += 1;
                    assert_eq!(bad.len(), 1, "transient corrupts exactly one word");
                }
            }
            assert!(corrupted_calls >= 8, "rate 0.7 corrupted only {corrupted_calls}/20 calls");
            // uncorrupted calls match the fault-free device bit for bit
            let clean_call =
                runs[0].iter().find(|f| f.iter().all(|w| w.acc.is_finite() && w.pot.is_finite()));
            assert_eq!(clean_call.unwrap(), &reference);
        }

        #[test]
        fn jmem_corruption_blows_past_the_mass_scale() {
            let (mut g5, pos, mass) = loaded_system();
            g5.set_fault_injector(FaultConfig::jmem(9, 1.0)); // corrupt every load
            g5.set_j_particles(&pos, &mass);
            let f = g5.force_on(&pos);
            // total mass is 1; with eps = 0.05 the force bound is
            // Σm/ε² = 400 — a 2^600-scaled mass saturates far beyond it
            let worst = f.iter().map(|w| w.acc.norm().max(w.pot.abs())).fold(0.0, f64::max);
            assert!(worst > 400.0, "corrupted load stayed under the bound: {worst}");
        }

        #[test]
        fn board_dropout_times_out_until_quarantined() {
            let (mut g5, pos, mass) = loaded_system();
            g5.set_fault_injector(FaultConfig::dropout(
                1,
                BoardDropout { after_call: 2, board: 1 },
            ));
            g5.set_j_particles(&pos, &mass);
            let f0 = g5.try_force_on(&pos).unwrap();
            let _ = g5.try_force_on(&pos).unwrap();
            let err = g5.try_force_on(&pos).unwrap_err();
            assert_eq!(err, DeviceError::BoardTimeout { board: 1 });
            assert_eq!(g5.self_test().dead_boards, vec![1]);
            // quarantine halves the machine; the j-set must be reloaded
            assert_eq!(g5.quarantine_board(1), 1);
            assert_eq!(g5.jmem_capacity(), g5.config().jmem_capacity);
            g5.set_j_particles(&pos, &mass);
            let f1 = g5.try_force_on(&pos).unwrap();
            assert!(g5.self_test().is_clean());
            for (a, b) in f0.iter().zip(&f1) {
                assert!((a.acc - b.acc).norm() <= 1e-12 * a.acc.norm().max(1.0));
            }
        }

        #[test]
        fn stuck_pipe_corrupts_its_lanes_until_quarantined() {
            let (mut g5, pos, mass) = loaded_system();
            let stuck = StuckPipe { after_call: 0, board: 0, pipe: 3 };
            g5.set_fault_injector(FaultConfig::stuck(1, stuck));
            g5.set_j_particles(&pos, &mass);
            let f = g5.try_force_on(&pos).unwrap();
            let pipes = g5.config().pipes_per_board();
            for (k, w) in f.iter().enumerate() {
                let on_stuck_lane = k % pipes == stuck.pipe;
                assert_eq!(
                    !(w.acc.is_finite() && w.pot.is_finite()),
                    on_stuck_lane,
                    "lane {k} corruption mismatch"
                );
            }
            assert_eq!(g5.self_test().stuck_pipes, vec![(0, 3)]);
            // 32 i-particles: 2 passes over 16 pipes, 3 over 15 — the
            // quarantine penalty is visible in the schedule
            let cycles_before = {
                let mut probe = g5.clone();
                probe.reset_accounting();
                let _ = probe.try_force_on(&pos[..32]).unwrap();
                probe.accounting().pipeline_cycles
            };
            g5.quarantine_pipe(0, 3);
            assert!(g5.self_test().is_clean());
            g5.reset_accounting();
            let f2 = g5.try_force_on(&pos[..32]).unwrap();
            assert!(f2.iter().all(|w| w.acc.is_finite() && w.pot.is_finite()));
            // graceful degradation: the board runs on, slower
            assert!(
                g5.accounting().pipeline_cycles > cycles_before,
                "quarantine must cost cycles: {} vs {cycles_before}",
                g5.accounting().pipeline_cycles
            );
        }

        #[test]
        fn return_to_service_reverses_quarantine_after_repair() {
            let (mut g5, pos, mass) = loaded_system();
            g5.set_fault_injector(FaultConfig::dropout(
                4,
                BoardDropout { after_call: 0, board: 1 },
            ));
            g5.set_j_particles(&pos, &mass);
            let err = g5.try_force_on(&pos).unwrap_err();
            assert_eq!(err, DeviceError::BoardTimeout { board: 1 });
            assert_eq!(g5.quarantine_board(1), 1);

            // un-repaired: service restore + self-test convicts it again
            g5.return_to_service();
            assert_eq!(g5.active_boards(), 2);
            assert_eq!(g5.self_test().dead_boards, vec![1]);
            assert_eq!(g5.quarantine_board(1), 1);

            // repaired: the probe passes and the full machine returns
            g5.clear_persistent_faults();
            g5.return_to_service();
            assert!(g5.self_test().is_clean());
            assert_eq!(g5.active_boards(), 2);
            assert_eq!(g5.jmem_capacity(), 2 * g5.config().jmem_capacity);
            g5.set_j_particles(&pos, &mass);
            let f = g5.try_force_on(&pos).unwrap();
            assert!(f.iter().all(|w| w.acc.is_finite() && w.pot.is_finite()));
        }

        #[test]
        fn return_to_service_restores_pipe_schedule() {
            let (mut g5, pos, mass) = loaded_system();
            g5.set_j_particles(&pos, &mass);
            g5.reset_accounting();
            let _ = g5.try_force_on(&pos[..32]).unwrap();
            let healthy_cycles = g5.accounting().pipeline_cycles;
            g5.quarantine_pipe(0, 3);
            g5.reset_accounting();
            let _ = g5.try_force_on(&pos[..32]).unwrap();
            assert!(g5.accounting().pipeline_cycles > healthy_cycles);
            g5.return_to_service();
            assert!(g5.quarantined().1.is_empty());
            g5.reset_accounting();
            let _ = g5.try_force_on(&pos[..32]).unwrap();
            assert_eq!(g5.accounting().pipeline_cycles, healthy_cycles);
        }

        #[test]
        fn fault_state_roundtrip_resumes_the_same_fault_stream() {
            let (mut g5, pos, mass) = loaded_system();
            let cfg = FaultConfig::transient(77, 0.5);
            g5.set_fault_injector(cfg);
            g5.set_j_particles(&pos, &mass);
            for _ in 0..7 {
                let _ = g5.try_force_on(&pos).unwrap();
            }
            let words = g5.fault_state_words().unwrap();

            // a "restarted" device armed with the same config + state
            let (mut resumed, _, _) = loaded_system();
            resumed.set_fault_injector(cfg);
            resumed.restore_fault_state(&words).unwrap();
            resumed.set_j_particles(&pos, &mass);
            // fault decisions diverge if the j-load advanced only one
            // process — both counted it, so streams stay aligned
            g5.set_j_particles(&pos, &mass);
            for _ in 0..10 {
                let a = g5.try_force_on(&pos).unwrap();
                let b = resumed.try_force_on(&pos).unwrap();
                assert_eq!(force_bits(&a), force_bits(&b));
            }
        }
    }

    #[test]
    fn boards_split_j_work() {
        // 2 boards, 10 j: each board streams 5 j per i-chunk
        let cfg = Grape5Config { mode: ArithMode::Exact, ..Grape5Config::paper() };
        let mut g5 = Grape5::open(cfg);
        g5.set_range(-2.0, 2.0);
        let jpos: Vec<Vec3> = (0..10).map(|k| Vec3::new(k as f64 * 0.1, 0.1, 0.2)).collect();
        let jm = vec![1.0; 10];
        g5.set_j_particles(&jpos, &jm);
        let _ = g5.force_on(&[Vec3::ZERO]);
        let a = g5.accounting();
        assert_eq!(a.pipeline_cycles, 5 + cfg.pipeline_latency_cycles);
        assert_eq!(a.interactions, 10);
    }
}
