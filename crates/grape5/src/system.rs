//! The GRAPE-5 system: processor boards + host interfaces, exposed
//! through an API shaped like the real `g5_*` host library.
//!
//! Usage mirrors the hardware's programming model:
//!
//! ```
//! use grape5::{Grape5, Grape5Config};
//! use g5util::Vec3;
//!
//! let mut g5 = Grape5::open(Grape5Config::paper_exact());
//! g5.set_range(-10.0, 10.0);      // coordinate window (g5_set_range)
//! g5.set_eps(0.01);               // softening       (g5_set_eps_to_all)
//! let pos = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)];
//! let mass = [1.0, 1.0];
//! g5.set_j_particles(&pos, &mass); // load j-memory   (g5_set_xmj / g5_set_n)
//! let f = g5.force_on(&pos);       // g5_calculate_force_on_x
//! assert!(f[0].acc.x < 0.0 && f[1].acc.x > 0.0); // mutual attraction
//! ```
//!
//! With several boards the j-set is split across boards; every board
//! computes the partial force from its share on the same i-particles
//! and the host sums the partials in double precision — the scheme the
//! paper's host library uses, which is why peak throughput is
//! `32 pipelines × 90 MHz`.

use crate::board::ProcessorBoard;
use crate::clock::ClockAccounting;
use crate::config::Grape5Config;
use crate::cutoff::CutoffTable;
use crate::pipeline::{Force, G5Pipeline, JWord};
use g5util::fixed::RangeScaler;
use g5util::vec3::Vec3;

/// Interface words per j-particle (x, y, z, m).
const WORDS_PER_J: u64 = 4;
/// Interface words sent per i-particle (x, y, z).
const WORDS_PER_I: u64 = 3;
/// Interface words read back per i-particle (ax, ay, az, pot).
const WORDS_PER_F: u64 = 4;

/// An open GRAPE-5 system.
#[derive(Debug, Clone)]
pub struct Grape5 {
    cfg: Grape5Config,
    boards: Vec<ProcessorBoard>,
    scaler: RangeScaler,
    pipeline: G5Pipeline,
    eps: f64,
    cutoff: Option<CutoffTable>,
    force_scale: f64,
    clock: ClockAccounting,
    nj_total: usize,
}

impl Grape5 {
    /// Power on a system with the given configuration.
    ///
    /// The coordinate window defaults to `[-1, 1)`; call
    /// [`set_range`](Self::set_range) before loading particles that
    /// live elsewhere.
    pub fn open(cfg: Grape5Config) -> Self {
        cfg.validate();
        let boards = (0..cfg.boards).map(|_| ProcessorBoard::new(&cfg)).collect();
        let scaler = RangeScaler::new(-1.0, 1.0, cfg.coord_bits);
        let pipeline = G5Pipeline::new(&cfg, scaler.quantum(), 0.0);
        Grape5 {
            cfg,
            boards,
            scaler,
            pipeline,
            eps: 0.0,
            cutoff: None,
            force_scale: 1.0,
            clock: ClockAccounting::new(),
            nj_total: 0,
        }
    }

    fn rebuild_pipeline(&mut self) {
        self.pipeline = G5Pipeline::new(&self.cfg, self.scaler.quantum(), self.eps)
            .with_cutoff(self.cutoff.clone());
    }

    /// The configuration this system was opened with.
    pub fn config(&self) -> &Grape5Config {
        &self.cfg
    }

    /// Declare the coordinate window (`g5_set_range`). Invalidate any
    /// loaded j-set: particles must be reloaded on the new grid.
    pub fn set_range(&mut self, min: f64, max: f64) {
        self.scaler = RangeScaler::new(min, max, self.cfg.coord_bits);
        self.rebuild_pipeline();
        for b in &mut self.boards {
            b.load_j(&[]);
        }
        self.nj_total = 0;
    }

    /// Current coordinate window.
    pub fn range(&self) -> (f64, f64) {
        (self.scaler.min(), self.scaler.max())
    }

    /// Size of one coordinate quantum in simulation units.
    pub fn quantum(&self) -> f64 {
        self.scaler.quantum()
    }

    /// Set the softening length ε shared by all interactions
    /// (`g5_set_eps_to_all`).
    pub fn set_eps(&mut self, eps: f64) {
        assert!(eps >= 0.0, "negative softening");
        self.eps = eps;
        self.rebuild_pipeline();
    }

    /// Load (or clear) the hardware cutoff table — the P³M/TreePM mode
    /// of the real library. The table survives range and softening
    /// changes until explicitly cleared.
    pub fn set_cutoff(&mut self, cutoff: Option<CutoffTable>) {
        self.cutoff = cutoff;
        self.rebuild_pipeline();
    }

    /// The loaded cutoff table, if any.
    pub fn cutoff(&self) -> Option<&CutoffTable> {
        self.cutoff.as_ref()
    }

    /// Current softening length.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Declare the unit of the on-board force accumulators. Accumulated
    /// components saturate at `acc_format.max_value() × scale`.
    pub fn set_force_scale(&mut self, scale: f64) {
        assert!(scale > 0.0, "non-positive force scale");
        self.force_scale = scale;
    }

    /// Total j-memory capacity across boards, in particles.
    pub fn jmem_capacity(&self) -> usize {
        self.cfg.jmem_capacity * self.cfg.boards
    }

    /// Number of j-particles currently loaded.
    pub fn nj(&self) -> usize {
        self.nj_total
    }

    /// Load the j-particle set (`g5_set_n` + `g5_set_xmj`), splitting it
    /// evenly across boards and charging the interface transfer.
    ///
    /// # Panics
    /// If the set exceeds [`jmem_capacity`](Self::jmem_capacity); chunk
    /// larger sets with [`force_on_chunked`](Self::force_on_chunked).
    pub fn set_j_particles(&mut self, pos: &[Vec3], mass: &[f64]) {
        assert_eq!(pos.len(), mass.len(), "position/mass length mismatch");
        assert!(
            pos.len() <= self.jmem_capacity(),
            "j-set of {} exceeds total j-memory {}",
            pos.len(),
            self.jmem_capacity()
        );
        let words: Vec<JWord> = pos
            .iter()
            .zip(mass)
            .map(|(p, &m)| JWord {
                raw: [
                    self.scaler.quantize(p.x),
                    self.scaler.quantize(p.y),
                    self.scaler.quantize(p.z),
                ],
                m_lns: self.pipeline.encode_mass(m),
                m,
            })
            .collect();
        // Even split: board b takes the b-th contiguous share.
        let nb = self.boards.len();
        let per = words.len().div_ceil(nb.max(1));
        let mut max_words_one_iface = 0u64;
        for (b, chunk) in self.boards.iter_mut().zip(words.chunks(per.max(1))) {
            b.load_j(chunk);
            max_words_one_iface = max_words_one_iface.max(chunk.len() as u64 * WORDS_PER_J);
        }
        // boards whose chunk is empty after a short set
        if words.is_empty() {
            for b in &mut self.boards {
                b.load_j(&[]);
            }
        }
        self.nj_total = words.len();
        // j-load moves through per-board interfaces in parallel: charge
        // the busiest one, no pipeline cycles, no call latency.
        self.clock.record_call(0, max_words_one_iface, 0);
        self.clock.calls -= 1; // transfers piggyback on the next force call
    }

    /// Compute forces on `xi` from the loaded j-set
    /// (`g5_calculate_force_on_x`).
    pub fn force_on(&mut self, xi: &[Vec3]) -> Vec<Force> {
        let raw: Vec<[i64; 3]> = xi
            .iter()
            .map(|p| {
                [self.scaler.quantize(p.x), self.scaler.quantize(p.y), self.scaler.quantize(p.z)]
            })
            .collect();

        let mut total: Vec<Force> = vec![Force::ZERO; xi.len()];
        let mut max_cycles = 0u64;
        for b in &self.boards {
            if b.nj() == 0 {
                continue;
            }
            let partial = b.compute(&self.pipeline, &raw, self.force_scale);
            for (t, p) in total.iter_mut().zip(partial) {
                *t = t.merged(p);
            }
            max_cycles = max_cycles.max(b.cycles_for(xi.len()));
        }
        let words = xi.len() as u64 * (WORDS_PER_I + WORDS_PER_F);
        let interactions = xi.len() as u64 * self.nj_total as u64;
        self.clock.record_call(max_cycles, words, interactions);
        total
    }

    /// Convenience: compute forces on `xi` from an arbitrarily large
    /// j-set, chunking it through j-memory in as many passes as needed
    /// and summing partials on the host.
    pub fn force_on_chunked(&mut self, jpos: &[Vec3], jmass: &[f64], xi: &[Vec3]) -> Vec<Force> {
        assert_eq!(jpos.len(), jmass.len(), "position/mass length mismatch");
        let cap = self.jmem_capacity();
        let mut total: Vec<Force> = vec![Force::ZERO; xi.len()];
        let mut start = 0;
        while start < jpos.len() {
            let end = (start + cap).min(jpos.len());
            self.set_j_particles(&jpos[start..end], &jmass[start..end]);
            for (t, p) in total.iter_mut().zip(self.force_on(xi)) {
                *t = t.merged(p);
            }
            start = end;
        }
        total
    }

    /// Snapshot of the hardware-work accounting.
    pub fn accounting(&self) -> ClockAccounting {
        self.clock
    }

    /// Zero the hardware-work accounting.
    pub fn reset_accounting(&mut self) {
        self.clock.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArithMode;

    fn two_body_system(mode: ArithMode) -> (Grape5, Vec<Vec3>, Vec<f64>) {
        let cfg = Grape5Config { mode, ..Grape5Config::paper() };
        let mut g5 = Grape5::open(cfg);
        g5.set_range(-4.0, 4.0);
        g5.set_eps(0.0);
        let pos = vec![Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)];
        let mass = vec![2.0, 3.0];
        (g5, pos, mass)
    }

    #[test]
    fn two_body_forces_exact_mode() {
        let (mut g5, pos, mass) = two_body_system(ArithMode::Exact);
        g5.set_j_particles(&pos, &mass);
        let f = g5.force_on(&pos);
        // a_0 = m_1 (x_1 - x_0)/|..|^3 = 3 * (-2)/8 = -0.75
        assert!((f[0].acc.x + 0.75).abs() < 1e-6);
        // a_1 = m_0 (x_0 - x_1)/8 = 2 * 2 / 8 = 0.5
        assert!((f[1].acc.x - 0.5).abs() < 1e-6);
        // potentials: p_0 = m_1/2, p_1 = m_0/2
        assert!((f[0].pot - 1.5).abs() < 1e-6);
        assert!((f[1].pot - 1.0).abs() < 1e-6);
        // Newton's third law for the force (mass-weighted)
        assert!((mass[0] * f[0].acc.x + mass[1] * f[1].acc.x).abs() < 1e-6);
    }

    #[test]
    fn two_body_forces_lns_mode_within_hardware_error() {
        let (mut g5, pos, mass) = two_body_system(ArithMode::Lns);
        g5.set_j_particles(&pos, &mass);
        let f = g5.force_on(&pos);
        assert!((f[0].acc.x + 0.75).abs() < 0.75 * 0.01);
        assert!((f[1].acc.x - 0.5).abs() < 0.5 * 0.01);
    }

    #[test]
    fn accounting_counts_cycles_words_interactions() {
        let (mut g5, pos, mass) = two_body_system(ArithMode::Exact);
        g5.set_j_particles(&pos, &mass);
        let _ = g5.force_on(&pos);
        let a = g5.accounting();
        assert_eq!(a.calls, 1);
        assert_eq!(a.interactions, 4); // 2 i × 2 j
                                       // 2 boards, 1 j each: slowest board streams 1 j + latency
        assert_eq!(a.pipeline_cycles, 1 + Grape5Config::paper().pipeline_latency_cycles);
        // words: j-load max(4,4)=4, i send 2×3, f read 2×4
        assert_eq!(a.iface_words, 4 + 6 + 8);
        g5.reset_accounting();
        assert_eq!(g5.accounting(), ClockAccounting::new());
    }

    #[test]
    fn chunked_equals_single_pass() {
        let cfg = Grape5Config { mode: ArithMode::Exact, ..Grape5Config::paper() };
        let mut big = Grape5::open(cfg);
        let cfg_small =
            Grape5Config { mode: ArithMode::Exact, jmem_capacity: 3, ..Grape5Config::paper() };
        let mut small = Grape5::open(cfg_small);
        for g in [&mut big, &mut small] {
            g.set_range(-2.0, 2.0);
            g.set_eps(0.05);
        }
        let jpos: Vec<Vec3> = (0..20)
            .map(|k| Vec3::new((k as f64 * 0.09) - 0.9, (k % 7) as f64 * 0.1, 0.3))
            .collect();
        let jm: Vec<f64> = (0..20).map(|k| 1.0 + (k % 3) as f64).collect();
        let xi = vec![Vec3::new(0.11, -0.2, 0.0), Vec3::new(-0.5, 0.6, 1.0)];

        let fa = big.force_on_chunked(&jpos, &jm, &xi);
        let fb = small.force_on_chunked(&jpos, &jm, &xi);
        for (a, b) in fa.iter().zip(&fb) {
            assert!((a.acc - b.acc).norm() < 1e-9);
            assert!((a.pot - b.pot).abs() < 1e-9);
        }
    }

    #[test]
    fn range_change_invalidates_j_set() {
        let (mut g5, pos, mass) = two_body_system(ArithMode::Exact);
        g5.set_j_particles(&pos, &mass);
        assert_eq!(g5.nj(), 2);
        g5.set_range(-8.0, 8.0);
        assert_eq!(g5.nj(), 0);
        let f = g5.force_on(&pos);
        assert_eq!(f[0], Force::ZERO);
    }

    #[test]
    fn out_of_range_positions_saturate_not_crash() {
        let (mut g5, _, _) = two_body_system(ArithMode::Exact);
        let far = vec![Vec3::new(1e9, -1e9, 0.0)];
        g5.set_j_particles(&far, &[1.0]);
        let f = g5.force_on(&[Vec3::ZERO]);
        assert!(f[0].acc.is_finite());
    }

    #[test]
    #[should_panic(expected = "exceeds total j-memory")]
    fn oversize_j_set_rejected() {
        let cfg = Grape5Config {
            mode: ArithMode::Exact,
            jmem_capacity: 1,
            boards: 1,
            ..Grape5Config::paper()
        };
        let mut g5 = Grape5::open(cfg);
        let pos = vec![Vec3::ZERO, Vec3::ONE];
        g5.set_j_particles(&pos, &[1.0, 1.0]);
    }

    #[test]
    fn cutoff_suppresses_far_interactions() {
        use crate::cutoff::CutoffTable;
        let (mut g5, _, _) = two_body_system(ArithMode::Exact);
        // cutoff at r = 1.5: the pair at separation 2 must vanish
        g5.set_cutoff(Some(CutoffTable::treepm(0.3, 1.5, 10, 20)));
        let pos = vec![Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)];
        let mass = vec![1.0, 1.0];
        g5.set_j_particles(&pos, &mass);
        let f = g5.force_on(&pos);
        assert_eq!(f[0], Force::ZERO);
        // a close pair still interacts, with a sub-Newtonian factor
        let close = vec![Vec3::new(0.05, 0.0, 0.0), Vec3::new(-0.05, 0.0, 0.0)];
        g5.set_j_particles(&close, &mass);
        let fc = g5.force_on(&close);
        assert!(fc[0].acc.x < 0.0, "close pair must still attract");
        let newton = 1.0 / (0.1f64 * 0.1);
        assert!(fc[0].acc.x.abs() <= newton);
        // clearing the table restores plain gravity
        g5.set_cutoff(None);
        g5.set_j_particles(&close, &mass);
        let fn_ = g5.force_on(&close);
        assert!((fn_[0].acc.x.abs() - newton).abs() / newton < 1e-5);
    }

    #[test]
    fn cutoff_survives_range_and_eps_changes() {
        use crate::cutoff::CutoffTable;
        let (mut g5, pos, mass) = two_body_system(ArithMode::Exact);
        g5.set_cutoff(Some(CutoffTable::treepm(0.3, 1.5, 8, 16)));
        g5.set_range(-8.0, 8.0);
        g5.set_eps(0.01);
        assert!(g5.cutoff().is_some());
        g5.set_j_particles(&pos, &mass);
        let f = g5.force_on(&pos);
        assert_eq!(f[0], Force::ZERO, "separation 2 > cutoff 1.5 must vanish");
    }

    #[test]
    fn cutoff_lns_mode_matches_exact_mode_shape() {
        use crate::cutoff::CutoffTable;
        let mut exact = two_body_system(ArithMode::Exact).0;
        let mut lns = two_body_system(ArithMode::Lns).0;
        let pos = vec![Vec3::new(0.2, 0.1, 0.0), Vec3::new(-0.2, -0.1, 0.0)];
        let mass = vec![1.0, 2.0];
        for g in [&mut exact, &mut lns] {
            g.set_cutoff(Some(CutoffTable::treepm(0.25, 1.0, 10, 20)));
            g.set_j_particles(&pos, &mass);
        }
        let fe = exact.force_on(&pos);
        let fl = lns.force_on(&pos);
        let rel = (fe[0].acc - fl[0].acc).norm() / fe[0].acc.norm();
        assert!(rel < 0.02, "LNS cutoff path off by {rel}");
    }

    #[test]
    fn boards_split_j_work() {
        // 2 boards, 10 j: each board streams 5 j per i-chunk
        let cfg = Grape5Config { mode: ArithMode::Exact, ..Grape5Config::paper() };
        let mut g5 = Grape5::open(cfg);
        g5.set_range(-2.0, 2.0);
        let jpos: Vec<Vec3> = (0..10).map(|k| Vec3::new(k as f64 * 0.1, 0.1, 0.2)).collect();
        let jm = vec![1.0; 10];
        g5.set_j_particles(&jpos, &jm);
        let _ = g5.force_on(&[Vec3::ZERO]);
        let a = g5.accounting();
        assert_eq!(a.pipeline_cycles, 5 + cfg.pipeline_latency_cycles);
        assert_eq!(a.interactions, 10);
    }
}
