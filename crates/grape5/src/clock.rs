//! Cycle and transfer accounting — the timing half of the simulator.
//!
//! Owning no GRAPE-5 hardware, we regenerate the paper's wall-clock and
//! Gflops numbers from *counted work*: every force call records how
//! many pipeline cycles the board schedule needs (boards run in
//! parallel, so the per-call figure is the slowest board's count) and
//! how many 32-bit words cross one host interface (each board has its
//! own interface board, so again the per-call maximum). The
//! [`ClockReport`] then prices that work at the real clocks: 90 MHz
//! pipelines, 15 MHz interface words, plus a per-call driver latency.
//!
//! Pipeline time and transfer time are charged **serially** — the
//! paper-era library did not double-buffer j-memory loads against
//! pipeline runs — which makes the model conservative. The
//! [`Grape5Config::double_buffer_j`] flag (off by default) relaxes
//! exactly that assumption: j-load words are tracked separately
//! ([`ClockAccounting::j_words`]) and the report credits back the part
//! of the j-load transfer that fits under pipeline time
//! ([`ClockReport::hidden_s`]), the way a double-buffered j-memory
//! hides next-step loads behind the tail of this step's pipeline runs.
//! Recorded counters are identical either way — the flag changes only
//! how the report prices them.

use crate::config::Grape5Config;
use serde::{Deserialize, Serialize};

/// Accumulated hardware work since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockAccounting {
    /// Pipeline cycles of the critical (slowest) board, summed over calls.
    pub pipeline_cycles: u64,
    /// 32-bit words through the busiest host interface, summed over calls.
    pub iface_words: u64,
    /// Number of force-calculation calls.
    pub calls: u64,
    /// Total pairwise interactions evaluated (all boards).
    pub interactions: u64,
    /// The subset of `iface_words` that moved j-particle loads — the
    /// words a double-buffered j-memory can overlap with pipeline runs.
    /// (`serde(default)` keeps accountings serialized before this field
    /// loadable; they price as if nothing were overlappable.)
    #[serde(default)]
    pub j_words: u64,
}

impl ClockAccounting {
    /// Fresh, zeroed accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one force call.
    #[inline]
    pub fn record_call(&mut self, cycles: u64, words: u64, interactions: u64) {
        self.pipeline_cycles += cycles;
        self.iface_words += words;
        self.calls += 1;
        self.interactions += interactions;
    }

    /// Record a j-particle load: `words` through the interface, no
    /// pipeline cycles, no call latency (the transfer piggybacks on the
    /// next force call). Tracked separately from i/f traffic because
    /// only j-loads are candidates for double-buffered overlap.
    #[inline]
    pub fn record_j_load(&mut self, words: u64) {
        self.iface_words += words;
        self.j_words += words;
    }

    /// Combine with another accounting (e.g. from a parallel partition).
    pub fn merged(self, o: ClockAccounting) -> ClockAccounting {
        ClockAccounting {
            pipeline_cycles: self.pipeline_cycles + o.pipeline_cycles,
            iface_words: self.iface_words + o.iface_words,
            calls: self.calls + o.calls,
            interactions: self.interactions + o.interactions,
            j_words: self.j_words + o.j_words,
        }
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        *self = ClockAccounting::default();
    }

    /// Price the recorded work at the configured clocks.
    ///
    /// With [`Grape5Config::double_buffer_j`] set, the j-load share of
    /// the transfer time is overlapped with pipeline time: up to
    /// `min(pipeline_s, j_words / iface_word_hz)` seconds are credited
    /// back through [`ClockReport::hidden_s`]. The aggregate bound is
    /// what a per-call schedule converges to when every j-reload has a
    /// preceding pipeline run to hide behind (the steady state of a
    /// streamed group evaluation); it never hides more transfer than
    /// there is pipeline time to hide it under.
    pub fn report(&self, cfg: &Grape5Config) -> ClockReport {
        let pipeline_s = self.pipeline_cycles as f64 / cfg.chip_clock_hz;
        let transfer_s = self.iface_words as f64 / cfg.iface_word_hz;
        let latency_s = self.calls as f64 * cfg.call_latency_s;
        let hidden_s = if cfg.double_buffer_j {
            (self.j_words as f64 / cfg.iface_word_hz).min(pipeline_s)
        } else {
            0.0
        };
        ClockReport {
            pipeline_s,
            transfer_s,
            latency_s,
            hidden_s,
            interactions: self.interactions,
            calls: self.calls,
        }
    }
}

/// Modeled wall-clock breakdown of GRAPE-side work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockReport {
    /// Time the pipelines are busy.
    pub pipeline_s: f64,
    /// Time moving words across the host interface.
    pub transfer_s: f64,
    /// Accumulated per-call driver latency.
    pub latency_s: f64,
    /// Transfer seconds hidden behind pipeline runs by double-buffered
    /// j-memory loads ([`Grape5Config::double_buffer_j`]); zero when
    /// the flag is off, so pricing is unchanged for existing configs.
    #[serde(default)]
    pub hidden_s: f64,
    /// Total pairwise interactions.
    pub interactions: u64,
    /// Number of force calls.
    pub calls: u64,
}

impl ClockReport {
    /// Total modeled GRAPE-side wall-clock.
    #[inline]
    pub fn total_s(&self) -> f64 {
        self.pipeline_s + self.transfer_s + self.latency_s - self.hidden_s
    }

    /// Sustained speed in Gflops under the 38-op convention, over the
    /// GRAPE-side time alone.
    pub fn gflops(&self) -> f64 {
        if self.total_s() == 0.0 {
            0.0
        } else {
            self.interactions as f64 * 38.0 / self.total_s() / 1e9
        }
    }

    /// Fraction of theoretical pipeline peak achieved.
    pub fn efficiency(&self, cfg: &Grape5Config) -> f64 {
        if self.total_s() == 0.0 {
            0.0
        } else {
            (self.interactions as f64 / self.total_s()) / cfg.peak_interactions_per_s()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_report() {
        let cfg = Grape5Config::paper();
        let mut acc = ClockAccounting::new();
        // one call: 9e6 cycles at 90 MHz = 0.1 s; 1.5e6 words at 15 MHz = 0.1 s
        acc.record_call(9_000_000, 1_500_000, 288_000_000);
        let r = acc.report(&cfg);
        assert!((r.pipeline_s - 0.1).abs() < 1e-12);
        assert!((r.transfer_s - 0.1).abs() < 1e-12);
        assert!((r.latency_s - cfg.call_latency_s).abs() < 1e-15);
        assert_eq!(r.interactions, 288_000_000);
        assert!(r.total_s() > 0.2);
    }

    #[test]
    fn peak_efficiency_when_only_pipeline_time() {
        let cfg = Grape5Config::paper();
        // 90e6 cycles = 1 s of pipeline with all 32 pipes busy
        let mut acc = ClockAccounting::new();
        acc.record_call(90_000_000, 0, (32.0 * 90.0e6) as u64);
        let mut r = acc.report(&cfg);
        r.latency_s = 0.0; // isolate the pipeline term
        assert!((r.efficiency(&cfg) - 1.0).abs() < 1e-9);
        assert!((r.gflops() - 109.44).abs() < 1e-6);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ClockAccounting::new();
        a.record_call(10, 20, 30);
        a.record_j_load(5);
        let mut b = ClockAccounting::new();
        b.record_call(1, 2, 3);
        b.record_j_load(2);
        let m = a.merged(b);
        assert_eq!(m.pipeline_cycles, 11);
        assert_eq!(m.iface_words, 29);
        assert_eq!(m.calls, 2);
        assert_eq!(m.interactions, 33);
        assert_eq!(m.j_words, 7);
    }

    #[test]
    fn double_buffer_hides_j_load_under_pipeline_time() {
        let serial = Grape5Config::paper();
        let db = Grape5Config { double_buffer_j: true, ..Grape5Config::paper() };
        let mut acc = ClockAccounting::new();
        // 9e6 cycles = 0.1 s pipeline; j-load of 750k words = 0.05 s;
        // i/f traffic of 750k words = 0.05 s (not hideable)
        acc.record_call(9_000_000, 750_000, 1_000_000);
        acc.record_j_load(750_000);
        let r0 = acc.report(&serial);
        let r1 = acc.report(&db);
        // counters and component times identical; only pricing differs
        assert_eq!(r0.pipeline_s, r1.pipeline_s);
        assert_eq!(r0.transfer_s, r1.transfer_s);
        assert_eq!(r0.latency_s, r1.latency_s);
        assert_eq!(r0.hidden_s, 0.0);
        assert!((r1.hidden_s - 0.05).abs() < 1e-12);
        assert!((r0.total_s() - r1.total_s() - 0.05).abs() < 1e-12);
        // gflops improves with the same counted work
        assert!(r1.gflops() > r0.gflops());
    }

    #[test]
    fn double_buffer_never_hides_more_than_pipeline_time() {
        let db = Grape5Config { double_buffer_j: true, ..Grape5Config::paper() };
        let mut acc = ClockAccounting::new();
        // tiny pipeline (1e-6 s), huge j-load (1 s): overlap is capped
        acc.record_call(90, 0, 10);
        acc.record_j_load(15_000_000);
        let r = acc.report(&db);
        assert!((r.hidden_s - r.pipeline_s).abs() < 1e-15);
        assert!(r.total_s() > 0.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = ClockAccounting::new().report(&Grape5Config::paper());
        assert_eq!(r.total_s(), 0.0);
        assert_eq!(r.gflops(), 0.0);
        assert_eq!(r.efficiency(&Grape5Config::paper()), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut a = ClockAccounting::new();
        a.record_call(1, 1, 1);
        a.reset();
        assert_eq!(a, ClockAccounting::default());
    }
}
