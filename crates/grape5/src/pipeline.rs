//! The G5 force pipeline.
//!
//! One pipeline evaluates, per clock cycle, one pairwise interaction
//!
//! ```text
//! f_ij = m_j · dx / (r² + ε²)^(3/2),      p_ij = m_j / (r² + ε²)^(1/2)
//! ```
//!
//! with `dx = x_j − x_i` formed **exactly** in fixed point (both
//! coordinates sit on the same `set_range` grid, so their difference is
//! an integer number of quanta) and everything downstream of the
//! squarer carried in the logarithmic number system. The reproduction
//! applies a rounding to the LNS grid after each table/functional unit,
//! which is precisely the error model of the real chip at
//! full-resolution tables.
//!
//! The pipeline also implements the chip's **zero-distance guard**: an
//! interaction with `dx = dy = dz = 0` contributes nothing, which is
//! what lets the treecode include a particle in its own group's
//! interaction list.

use crate::config::{ArithMode, Grape5Config};
use crate::cutoff::CutoffTable;
use g5util::lns::{Lns, LnsConfig};
use g5util::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Per-particle pipeline output: acceleration contribution and (positive)
/// potential sum `Σ m_j / r`. The host applies the −G convention.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Force {
    /// Acceleration contribution (force per unit i-mass).
    pub acc: Vec3,
    /// Positive potential `Σ m_j (r²+ε²)^(−1/2)`.
    pub pot: f64,
}

impl Force {
    /// The zero contribution.
    pub const ZERO: Force = Force { acc: Vec3::ZERO, pot: 0.0 };

    /// Component-wise sum.
    #[inline]
    pub fn merged(self, o: Force) -> Force {
        Force { acc: self.acc + o.acc, pot: self.pot + o.pot }
    }
}

/// A j-particle as stored in board memory: raw fixed-point coordinates
/// plus the mass in both LNS and `f64` form (the memory feeds whichever
/// arithmetic path is active).
#[derive(Debug, Clone, Copy)]
pub struct JWord {
    /// Fixed-point grid coordinates (quantized by the range scaler).
    pub raw: [i64; 3],
    /// Mass in the pipeline's logarithmic format.
    pub m_lns: Lns,
    /// Mass in `f64`, for the fast exact mode.
    pub m: f64,
}

/// The functional model of one G5 pipeline.
///
/// Stateless apart from the softening, scale and cutoff registers, so a
/// single instance can be shared by every simulated pipeline in the
/// system.
#[derive(Debug, Clone)]
pub struct G5Pipeline {
    lns: LnsConfig,
    mode: ArithMode,
    /// Size of one coordinate quantum in simulation units.
    quantum: f64,
    /// ε² in simulation units, plus its LNS encoding.
    eps2: f64,
    eps2_lns: Lns,
    /// Optional hardware cutoff table (P³M/TreePM short-range support).
    cutoff: Option<CutoffTable>,
}

impl G5Pipeline {
    /// Build a pipeline for a given configuration, coordinate quantum
    /// and softening.
    pub fn new(cfg: &Grape5Config, quantum: f64, eps: f64) -> Self {
        assert!(quantum > 0.0, "non-positive coordinate quantum");
        assert!(eps >= 0.0, "negative softening");
        let eps2 = eps * eps;
        G5Pipeline {
            lns: cfg.lns,
            mode: cfg.mode,
            quantum,
            eps2,
            eps2_lns: cfg.lns.encode(eps2),
            cutoff: None,
        }
    }

    /// Load (or clear) the cutoff table — `g5_set_cutoff_table` in the
    /// real library's P³M mode.
    pub fn with_cutoff(mut self, cutoff: Option<CutoffTable>) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// The loaded cutoff table, if any.
    pub fn cutoff(&self) -> Option<&CutoffTable> {
        self.cutoff.as_ref()
    }

    /// The coordinate quantum this pipeline was configured with.
    #[inline]
    pub fn quantum(&self) -> f64 {
        self.quantum
    }

    /// Encode a mass for j-memory.
    #[inline]
    pub fn encode_mass(&self, m: f64) -> Lns {
        self.lns.encode(m)
    }

    /// Evaluate one pairwise interaction between an i-particle at raw
    /// grid position `xi` and a j-word.
    #[inline]
    pub fn interact(&self, xi: [i64; 3], j: &JWord) -> Force {
        let d = [j.raw[0] - xi[0], j.raw[1] - xi[1], j.raw[2] - xi[2]];
        if d == [0, 0, 0] {
            return Force::ZERO; // zero-distance guard
        }
        match self.mode {
            ArithMode::Exact => self.interact_exact(d, j.m),
            ArithMode::Lns => self.interact_lns(d, j.m_lns),
        }
    }

    /// `f64` path: position quantization only.
    #[inline]
    fn interact_exact(&self, d: [i64; 3], m: f64) -> Force {
        let dx = Vec3::new(
            d[0] as f64 * self.quantum,
            d[1] as f64 * self.quantum,
            d[2] as f64 * self.quantum,
        );
        let r2_raw = dx.norm2();
        let r2 = r2_raw + self.eps2;
        let rinv = 1.0 / r2.sqrt();
        let rinv3 = rinv / r2;
        let (gf, gp) = match &self.cutoff {
            None => (1.0, 1.0),
            Some(t) => (t.force_factor(r2_raw), t.pot_factor(r2_raw)),
        };
        Force { acc: dx * (m * rinv3 * gf), pot: m * rinv * gp }
    }

    /// Bit-faithful LNS path: one rounding to the log grid after each
    /// functional unit, exactly like the hardware tables.
    fn interact_lns(&self, d: [i64; 3], m: Lns) -> Force {
        let c = self.lns;
        // dx enters the LNS converter after the exact fixed-point subtract
        let dx = c.encode(d[0] as f64 * self.quantum);
        let dy = c.encode(d[1] as f64 * self.quantum);
        let dz = c.encode(d[2] as f64 * self.quantum);
        // squarers are exact in LNS (log doubling)
        let r2 = dx.square().add(dy.square()).add(dz.square());
        let r2e = r2.add(self.eps2_lns);
        // combined sqrt + reciprocal-cube unit
        let rinv3 = r2e.pow_neg_3_2();
        let rinv = r2e.powi_rational(-1, 2);
        // hardware cutoff unit: table addressed by the LNS r^2, factors
        // re-encoded into the log format before the multipliers
        let (gf, gp) = match &self.cutoff {
            None => (None, None),
            Some(t) => {
                let r2_val = r2.to_f64();
                (Some(c.encode(t.force_factor(r2_val))), Some(c.encode(t.pot_factor(r2_val))))
            }
        };
        let mut mf = m.mul(rinv3);
        if let Some(g) = gf {
            mf = mf.mul(g);
        }
        let mut mp = m.mul(rinv);
        if let Some(g) = gp {
            mp = mp.mul(g);
        }
        Force {
            acc: Vec3::new(dx.mul(mf).to_f64(), dy.mul(mf).to_f64(), dz.mul(mf).to_f64()),
            pot: mp.to_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g5util::fixed::RangeScaler;

    fn pipe(mode: ArithMode, quantum: f64, eps: f64) -> G5Pipeline {
        let cfg = Grape5Config { mode, ..Grape5Config::paper() };
        G5Pipeline::new(&cfg, quantum, eps)
    }

    fn jword(p: &G5Pipeline, raw: [i64; 3], m: f64) -> JWord {
        JWord { raw, m_lns: p.encode_mass(m), m }
    }

    #[test]
    fn zero_distance_guard() {
        for mode in [ArithMode::Exact, ArithMode::Lns] {
            let p = pipe(mode, 1e-6, 0.0);
            let j = jword(&p, [42, -7, 3], 1.0);
            assert_eq!(p.interact([42, -7, 3], &j), Force::ZERO);
        }
    }

    #[test]
    fn exact_mode_matches_f64_formula() {
        let q = 1.0 / 1024.0;
        let p = pipe(ArithMode::Exact, q, 0.01);
        let j = jword(&p, [1024, 0, 0], 2.0); // x_j = 1.0
        let f = p.interact([0, 0, 0], &j);
        let r2: f64 = 1.0 + 0.0001;
        let expect_ax = 2.0 / (r2 * r2.sqrt());
        assert!((f.acc.x - expect_ax).abs() < 1e-12);
        assert_eq!(f.acc.y, 0.0);
        assert!((f.pot - 2.0 / r2.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn lns_mode_relative_error_is_small_but_nonzero() {
        let q = 1.0 / (1 << 20) as f64;
        let pl = pipe(ArithMode::Lns, q, 0.0);
        let pe = pipe(ArithMode::Exact, q, 0.0);
        let j_l = jword(&pl, [123_456, -654_321, 777_777], 1.5);
        let f_l = pl.interact([1000, 2000, -3000], &j_l);
        let f_e = pe.interact([1000, 2000, -3000], &j_l);
        let rel = (f_l.acc - f_e.acc).norm() / f_e.acc.norm();
        assert!(rel > 0.0, "LNS path must differ from exact");
        assert!(rel < 0.01, "rel={rel} exceeds 1 %");
    }

    #[test]
    fn pairwise_error_rms_is_about_0_3_percent() {
        // §2 of the paper: "calculates a pair-wise force with a relative
        // error of about 0.3%". Sample random geometries and check the
        // RMS relative force error lands in that band.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let scaler = RangeScaler::new(-1.0, 1.0, 32);
        let q = scaler.quantum();
        let pl = pipe(ArithMode::Lns, q, 0.0);
        let mut sum_sq = 0.0;
        let n = 4000;
        for _ in 0..n {
            let xi = [0i64, 0, 0];
            let raw = [
                scaler.quantize(rng.random_range(-0.9..0.9)),
                scaler.quantize(rng.random_range(-0.9..0.9)),
                scaler.quantize(rng.random_range(-0.9..0.9)),
            ];
            if raw == [0, 0, 0] {
                continue;
            }
            let m = rng.random_range(0.1..10.0);
            let j = JWord { raw, m_lns: pl.encode_mass(m), m };
            let f = pl.interact(xi, &j);
            // reference: exact f64 on the same quantized geometry
            let dx = Vec3::new(raw[0] as f64 * q, raw[1] as f64 * q, raw[2] as f64 * q);
            let r2 = dx.norm2();
            let fe = dx * (m / (r2 * r2.sqrt()));
            sum_sq += (f.acc - fe).norm2() / fe.norm2();
        }
        let rms = (sum_sq / n as f64).sqrt();
        assert!(
            (0.001..0.006).contains(&rms),
            "pairwise RMS force error {rms:.5} outside the 0.1–0.6 % band"
        );
    }

    #[test]
    fn force_is_antisymmetric_under_swap_in_exact_mode() {
        let q = 1e-5;
        let p = pipe(ArithMode::Exact, q, 0.0);
        let a = [100, 200, 300];
        let b = [-400, 50, 0];
        let m = 1.0;
        let fab = p.interact(a, &jword(&p, b, m));
        let fba = p.interact(b, &jword(&p, a, m));
        assert!((fab.acc + fba.acc).norm() < 1e-15);
    }

    #[test]
    fn merged_forces_add() {
        let f1 = Force { acc: Vec3::new(1.0, 2.0, 3.0), pot: 4.0 };
        let f2 = Force { acc: Vec3::new(-1.0, 0.5, 0.0), pot: 1.0 };
        let m = f1.merged(f2);
        assert_eq!(m.acc, Vec3::new(0.0, 2.5, 3.0));
        assert_eq!(m.pot, 5.0);
    }

    #[test]
    fn softening_regularizes_close_pairs() {
        let q = 1e-6;
        let p = pipe(ArithMode::Exact, q, 0.1);
        // one quantum apart: without softening the force would be ~1e12
        let j = jword(&p, [1, 0, 0], 1.0);
        let f = p.interact([0, 0, 0], &j);
        assert!(f.acc.norm() < 1.0 / (0.1f64.powi(2)), "softening must bound the force");
    }
}
