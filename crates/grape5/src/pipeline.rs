//! The G5 force pipeline.
//!
//! One pipeline evaluates, per clock cycle, one pairwise interaction
//!
//! ```text
//! f_ij = m_j · dx / (r² + ε²)^(3/2),      p_ij = m_j / (r² + ε²)^(1/2)
//! ```
//!
//! with `dx = x_j − x_i` formed **exactly** in fixed point (both
//! coordinates sit on the same `set_range` grid, so their difference is
//! an integer number of quanta) and everything downstream of the
//! squarer carried in the logarithmic number system. The reproduction
//! applies a rounding to the LNS grid after each table/functional unit,
//! which is precisely the error model of the real chip at
//! full-resolution tables.
//!
//! The pipeline also implements the chip's **zero-distance guard**: an
//! interaction with `dx = dy = dz = 0` contributes nothing, which is
//! what lets the treecode include a particle in its own group's
//! interaction list.

use crate::config::{ArithMode, Grape5Config};
use crate::cutoff::CutoffTable;
use crate::lanes::{self, LanePath};
use g5util::fixed::{Fixed, FixedFormat};
use g5util::lns::{Lns, LnsConfig};
use g5util::lns_table::{conv_tables, LnsConvTables};
use g5util::vec3::Vec3;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-particle pipeline output: acceleration contribution and (positive)
/// potential sum `Σ m_j / r`. The host applies the −G convention.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Force {
    /// Acceleration contribution (force per unit i-mass).
    pub acc: Vec3,
    /// Positive potential `Σ m_j (r²+ε²)^(−1/2)`.
    pub pot: f64,
}

impl Force {
    /// The zero contribution.
    pub const ZERO: Force = Force { acc: Vec3::ZERO, pot: 0.0 };

    /// Component-wise sum.
    #[inline]
    pub fn merged(self, o: Force) -> Force {
        Force { acc: self.acc + o.acc, pot: self.pot + o.pot }
    }
}

/// A j-particle as stored in board memory: raw fixed-point coordinates
/// plus the mass in both LNS and `f64` form (the memory feeds whichever
/// arithmetic path is active).
#[derive(Debug, Clone, Copy)]
pub struct JWord {
    /// Fixed-point grid coordinates (quantized by the range scaler).
    pub raw: [i64; 3],
    /// Mass in the pipeline's logarithmic format.
    pub m_lns: Lns,
    /// Mass in `f64`, for the fast exact mode.
    pub m: f64,
}

/// The j-particle memory of one board viewed as structure-of-arrays
/// slices — the layout the batch kernel streams.
#[derive(Debug, Clone, Copy)]
pub struct JSlices<'a> {
    /// Fixed-point x coordinates.
    pub x: &'a [i64],
    /// Fixed-point y coordinates.
    pub y: &'a [i64],
    /// Fixed-point z coordinates.
    pub z: &'a [i64],
    /// Masses in `f64` (exact mode).
    pub m: &'a [f64],
    /// Masses in the pipeline's logarithmic format (LNS mode).
    pub m_lns: &'a [Lns],
}

impl JSlices<'_> {
    /// Number of j-particles in the slices.
    #[inline]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when no j-particles are loaded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// The cutoff table re-addressed by the LNS r² word: one pre-encoded
/// (force, potential) factor pair per representable squared distance,
/// plus the pair for an underflowed-to-zero r². Replaces the
/// per-interaction LNS → `f64` → re-encode round trip of the scalar
/// path with a single indexed load; every entry is exactly
/// `encode(factor(r2_word.to_f64()))`, so the bits cannot differ.
pub(crate) struct LnsCutoffTable {
    raw_min: i64,
    force: Vec<Lns>,
    pot: Vec<Lns>,
    zero_force: Lns,
    zero_pot: Lns,
}

impl std::fmt::Debug for LnsCutoffTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LnsCutoffTable")
            .field("raw_min", &self.raw_min)
            .field("entries", &self.force.len())
            .finish()
    }
}

impl LnsCutoffTable {
    fn build(cfg: LnsConfig, t: &CutoffTable) -> LnsCutoffTable {
        let q = cfg.quantum();
        let (raw_min, raw_max) = (cfg.raw_word_min(), cfg.raw_word_max());
        let n = (raw_max - raw_min + 1) as usize;
        let mut force = Vec::with_capacity(n);
        let mut pot = Vec::with_capacity(n);
        for raw in raw_min..=raw_max {
            let r2 = (raw as f64 * q).exp2(); // == Lns::to_f64 of the word
            force.push(cfg.encode(t.force_factor(r2)));
            pot.push(cfg.encode(t.pot_factor(r2)));
        }
        LnsCutoffTable {
            raw_min,
            force,
            pot,
            zero_force: cfg.encode(t.force_factor(0.0)),
            zero_pot: cfg.encode(t.pot_factor(0.0)),
        }
    }

    /// The pre-encoded (force, potential) factors for a squared-distance
    /// word.
    #[inline]
    fn factors(&self, r2: Lns) -> (Lns, Lns) {
        if r2.is_zero() {
            return (self.zero_force, self.zero_pot);
        }
        let i = (r2.raw() - self.raw_min) as usize;
        (self.force[i], self.pot[i])
    }
}

/// The functional model of one G5 pipeline.
///
/// Stateless apart from the softening, scale and cutoff registers, so a
/// single instance can be shared by every simulated pipeline in the
/// system.
#[derive(Debug, Clone)]
pub struct G5Pipeline {
    lns: LnsConfig,
    mode: ArithMode,
    /// Size of one coordinate quantum in simulation units.
    quantum: f64,
    /// ε² in simulation units, plus its LNS encoding.
    eps2: f64,
    eps2_lns: Lns,
    /// Optional hardware cutoff table (P³M/TreePM short-range support).
    cutoff: Option<CutoffTable>,
    /// Table-driven LNS converter set (`None` for formats too wide to
    /// tabulate, which fall back to the formula converters).
    conv: Option<&'static LnsConvTables>,
    /// Cutoff factors re-indexed by the LNS r² word; built whenever the
    /// pipeline runs LNS arithmetic with a cutoff loaded and the format
    /// is tabulable.
    lns_cutoff: Option<Arc<LnsCutoffTable>>,
    /// Which lane implementation the exact-mode batch kernel dispatches
    /// to (detected once at construction; see [`lanes`]).
    lane_path: LanePath,
}

impl G5Pipeline {
    /// Build a pipeline for a given configuration, coordinate quantum
    /// and softening.
    pub fn new(cfg: &Grape5Config, quantum: f64, eps: f64) -> Self {
        assert!(quantum > 0.0, "non-positive coordinate quantum");
        assert!(eps >= 0.0, "negative softening");
        let eps2 = eps * eps;
        G5Pipeline {
            lns: cfg.lns,
            mode: cfg.mode,
            quantum,
            eps2,
            eps2_lns: cfg.lns.encode(eps2),
            cutoff: None,
            conv: conv_tables(cfg.lns),
            lns_cutoff: None,
            lane_path: lanes::detect_lane_path(),
        }
    }

    /// The lane implementation the exact-mode batch kernel uses.
    #[inline]
    pub fn lane_path(&self) -> LanePath {
        self.lane_path
    }

    /// Override the exact-mode lane implementation — used by the perf
    /// harness to A/B the SIMD, portable and scalar paths, and by tests
    /// to referee them against each other.
    pub fn set_lane_path(&mut self, path: LanePath) {
        self.lane_path = path;
    }

    /// Load (or clear) the cutoff table — `g5_set_cutoff_table` in the
    /// real library's P³M mode.
    pub fn with_cutoff(mut self, cutoff: Option<CutoffTable>) -> Self {
        self.lns_cutoff = match (&cutoff, self.mode, self.conv) {
            (Some(t), ArithMode::Lns, Some(_)) => {
                Some(Arc::new(LnsCutoffTable::build(self.lns, t)))
            }
            _ => None,
        };
        self.cutoff = cutoff;
        self
    }

    /// The loaded cutoff table, if any.
    pub fn cutoff(&self) -> Option<&CutoffTable> {
        self.cutoff.as_ref()
    }

    /// The coordinate quantum this pipeline was configured with.
    #[inline]
    pub fn quantum(&self) -> f64 {
        self.quantum
    }

    /// Encode a mass for j-memory.
    #[inline]
    pub fn encode_mass(&self, m: f64) -> Lns {
        self.lns.encode(m)
    }

    /// Evaluate one pairwise interaction between an i-particle at raw
    /// grid position `xi` and a j-word.
    #[inline]
    pub fn interact(&self, xi: [i64; 3], j: &JWord) -> Force {
        let d = [j.raw[0] - xi[0], j.raw[1] - xi[1], j.raw[2] - xi[2]];
        if d == [0, 0, 0] {
            return Force::ZERO; // zero-distance guard
        }
        match (self.mode, self.conv) {
            (ArithMode::Exact, _) => {
                Self::pair_exact(self.quantum, self.eps2, self.cutoff.as_ref(), d, j.m)
            }
            (ArithMode::Lns, Some(conv)) => Self::pair_lns_tab(
                conv,
                self.lns_cutoff.as_deref(),
                self.eps2_lns,
                self.quantum,
                d,
                j.m_lns,
            ),
            (ArithMode::Lns, None) => self.pair_lns_formula(d, j.m_lns),
        }
    }

    /// Evaluate one pairwise interaction through the pre-batch scalar
    /// path: formula LNS converters (`f64::log2`/`exp2` per operand) and
    /// the LNS → `f64` → re-encode cutoff round trip. The batch kernel
    /// and the table converters are required to reproduce this path bit
    /// for bit; it is kept callable so the golden-vector tests and the
    /// perf harness can compare against it in the same build.
    #[inline]
    pub fn interact_reference(&self, xi: [i64; 3], j: &JWord) -> Force {
        let d = [j.raw[0] - xi[0], j.raw[1] - xi[1], j.raw[2] - xi[2]];
        if d == [0, 0, 0] {
            return Force::ZERO; // zero-distance guard
        }
        match self.mode {
            ArithMode::Exact => {
                Self::pair_exact(self.quantum, self.eps2, self.cutoff.as_ref(), d, j.m)
            }
            ArithMode::Lns => self.pair_lns_reference(d, j.m_lns),
        }
    }

    /// `f64` path: position quantization only.
    #[inline(always)]
    pub(crate) fn pair_exact(
        quantum: f64,
        eps2: f64,
        cutoff: Option<&CutoffTable>,
        d: [i64; 3],
        m: f64,
    ) -> Force {
        let dx = Vec3::new(d[0] as f64 * quantum, d[1] as f64 * quantum, d[2] as f64 * quantum);
        let r2_raw = dx.norm2();
        let r2 = r2_raw + eps2;
        let rinv = 1.0 / r2.sqrt();
        let rinv3 = rinv / r2;
        let (gf, gp) = match cutoff {
            None => (1.0, 1.0),
            Some(t) => (t.force_factor(r2_raw), t.pot_factor(r2_raw)),
        };
        Force { acc: dx * (m * rinv3 * gf), pot: m * rinv * gp }
    }

    /// Table-driven LNS path: same functional units as the formula path
    /// but every converter and adder is an integer table lookup, and the
    /// cutoff factors come pre-encoded from the LNS-indexed table. Each
    /// table is proven bit-identical to its formula counterpart, so this
    /// path reproduces [`pair_lns_reference`](Self::pair_lns_reference)
    /// exactly.
    #[inline(always)]
    fn pair_lns_tab(
        conv: &LnsConvTables,
        cutoff: Option<&LnsCutoffTable>,
        eps2_lns: Lns,
        quantum: f64,
        d: [i64; 3],
        m: Lns,
    ) -> Force {
        // dx enters the LNS converter after the exact fixed-point subtract
        let dx = conv.encode(d[0] as f64 * quantum);
        let dy = conv.encode(d[1] as f64 * quantum);
        let dz = conv.encode(d[2] as f64 * quantum);
        // squarers are exact in LNS (log doubling)
        let r2 = conv.add(conv.add(dx.square(), dy.square()), dz.square());
        let r2e = conv.add(r2, eps2_lns);
        // combined sqrt + reciprocal-cube unit (integer log scaling)
        let rinv3 = r2e.pow_neg_3_2();
        let rinv = r2e.powi_rational(-1, 2);
        let mut mf = m.mul(rinv3);
        let mut mp = m.mul(rinv);
        if let Some(t) = cutoff {
            let (gf, gp) = t.factors(r2);
            mf = mf.mul(gf);
            mp = mp.mul(gp);
        }
        Force {
            acc: Vec3::new(
                conv.decode(dx.mul(mf)),
                conv.decode(dy.mul(mf)),
                conv.decode(dz.mul(mf)),
            ),
            pot: conv.decode(mp),
        }
    }

    /// Formula LNS path for formats too wide to tabulate: one rounding
    /// to the log grid after each functional unit, exactly like the
    /// hardware tables.
    fn pair_lns_formula(&self, d: [i64; 3], m: Lns) -> Force {
        let c = self.lns;
        let dx = c.encode(d[0] as f64 * self.quantum);
        let dy = c.encode(d[1] as f64 * self.quantum);
        let dz = c.encode(d[2] as f64 * self.quantum);
        let r2 = dx.square().add(dy.square()).add(dz.square());
        let r2e = r2.add(self.eps2_lns);
        let rinv3 = r2e.pow_neg_3_2();
        let rinv = r2e.powi_rational(-1, 2);
        // hardware cutoff unit: table addressed by the LNS r^2, factors
        // re-encoded into the log format before the multipliers
        let (gf, gp) = match &self.cutoff {
            None => (None, None),
            Some(t) => {
                let r2_val = r2.to_f64();
                (Some(c.encode(t.force_factor(r2_val))), Some(c.encode(t.pot_factor(r2_val))))
            }
        };
        let mut mf = m.mul(rinv3);
        if let Some(g) = gf {
            mf = mf.mul(g);
        }
        let mut mp = m.mul(rinv);
        if let Some(g) = gp {
            mp = mp.mul(g);
        }
        Force {
            acc: Vec3::new(dx.mul(mf).to_f64(), dy.mul(mf).to_f64(), dz.mul(mf).to_f64()),
            pot: mp.to_f64(),
        }
    }

    /// The pre-batch scalar LNS path, verbatim: libm converters and the
    /// cutoff round trip through `f64`.
    fn pair_lns_reference(&self, d: [i64; 3], m: Lns) -> Force {
        let c = self.lns;
        let dx = c.encode_libm(d[0] as f64 * self.quantum);
        let dy = c.encode_libm(d[1] as f64 * self.quantum);
        let dz = c.encode_libm(d[2] as f64 * self.quantum);
        let r2 = dx.square().add(dy.square()).add(dz.square());
        let r2e = r2.add(self.eps2_lns);
        let rinv3 = r2e.pow_neg_3_2();
        let rinv = r2e.powi_rational(-1, 2);
        let (gf, gp) = match &self.cutoff {
            None => (None, None),
            Some(t) => {
                let r2_val = r2.to_f64();
                (
                    Some(c.encode_libm(t.force_factor(r2_val))),
                    Some(c.encode_libm(t.pot_factor(r2_val))),
                )
            }
        };
        let mut mf = m.mul(rinv3);
        if let Some(g) = gf {
            mf = mf.mul(g);
        }
        let mut mp = m.mul(rinv);
        if let Some(g) = gp {
            mp = mp.mul(g);
        }
        Force {
            acc: Vec3::new(dx.mul(mf).to_f64(), dy.mul(mf).to_f64(), dz.mul(mf).to_f64()),
            pot: mp.to_f64(),
        }
    }

    /// Batch kernel: evaluate the force from every j-particle in `j` on
    /// every i-particle in `xi`, accumulating in the board's fixed-point
    /// format and writing one readback word per i-particle into `out`.
    ///
    /// The loop is tiled — a pipeline-width group of i-particles shares
    /// each streamed block of j-data, the structure Makino's modified
    /// tree algorithm feeds the real hardware — and all per-call
    /// invariants (mode and cutoff dispatch, converter/adder tables,
    /// ε² word, quantum) are hoisted out of the pair loop. Per-i
    /// accumulation order over j is ascending, identical to the scalar
    /// path, so every saturating fixed-point sum matches bit for bit.
    pub fn interact_block(
        &self,
        xi: &[[i64; 3]],
        j: &JSlices<'_>,
        force_scale: f64,
        fmt: FixedFormat,
        out: &mut [Force],
    ) {
        assert_eq!(xi.len(), out.len(), "output length mismatch");
        assert!(force_scale > 0.0, "non-positive force scale");
        debug_assert!(
            j.x.len() == j.y.len()
                && j.x.len() == j.z.len()
                && j.x.len() == j.m.len()
                && j.x.len() == j.m_lns.len(),
            "ragged j-slices"
        );
        match (self.mode, self.conv) {
            (ArithMode::Exact, _) => {
                let (quantum, eps2, cutoff) = (self.quantum, self.eps2, self.cutoff.as_ref());
                // The lane kernels cover the dominant exact/no-cutoff
                // configuration; cutoff'd exact mode keeps the scalar
                // skeleton (the factors are per-pair table lookups).
                if cutoff.is_none() && self.lane_path != LanePath::Scalar {
                    lanes::block_exact_lanes(
                        self.lane_path,
                        quantum,
                        eps2,
                        xi,
                        j,
                        force_scale,
                        fmt,
                        out,
                    );
                    return;
                }
                Self::block_with(xi, j, force_scale, fmt, out, |d, jj| {
                    Self::pair_exact(quantum, eps2, cutoff, d, j.m[jj])
                });
            }
            (ArithMode::Lns, Some(conv)) => {
                let (cutoff, eps2_lns, quantum) =
                    (self.lns_cutoff.as_deref(), self.eps2_lns, self.quantum);
                Self::block_with(xi, j, force_scale, fmt, out, |d, jj| {
                    Self::pair_lns_tab(conv, cutoff, eps2_lns, quantum, d, j.m_lns[jj])
                });
            }
            (ArithMode::Lns, None) => {
                Self::block_with(xi, j, force_scale, fmt, out, |d, jj| {
                    self.pair_lns_formula(d, j.m_lns[jj])
                });
            }
        }
    }

    /// Shared tiling skeleton of the batch kernel: i-tiles the width of
    /// one chip's pipeline set, j-blocks sized to stay cache-resident,
    /// per-i fixed-point accumulators carried across j-blocks in
    /// ascending j order.
    #[inline(always)]
    fn block_with(
        xi: &[[i64; 3]],
        j: &JSlices<'_>,
        force_scale: f64,
        fmt: FixedFormat,
        out: &mut [Force],
        pair: impl Fn([i64; 3], usize) -> Force,
    ) {
        /// i-particles sharing one streamed j-block (pipelines per chip set).
        const I_TILE: usize = 16;
        /// j-particles per block; 5 SoA streams stay well inside L1.
        const J_BLOCK: usize = 512;
        let nj = j.x.len();
        // 2^frac_bits hoisted out of the pair loop: `accumulate` computes
        // it per term through `exp2`, `accumulate_with_scale` takes it
        // ready-made (bit-identical by construction).
        let enc = fmt.encode_scale();
        // When the scale is a power of two its reciprocal is exact, and
        // multiplying by it rounds the same real value division would —
        // bit-identical, one multiply instead of four divides per pair.
        let inv_scale = 1.0 / force_scale;
        let pow2_scale = force_scale.to_bits() & ((1u64 << 52) - 1) == 0
            && force_scale.is_normal()
            && inv_scale.is_normal();
        let unscale = |t: f64| {
            if force_scale == 1.0 {
                t
            } else if pow2_scale {
                t * inv_scale
            } else {
                t / force_scale
            }
        };
        for (xc, oc) in xi.chunks(I_TILE).zip(out.chunks_mut(I_TILE)) {
            let mut acc = [[Fixed::zero(fmt); 4]; I_TILE];
            let mut js = 0;
            while js < nj {
                let je = (js + J_BLOCK).min(nj);
                let (bx, by, bz) = (&j.x[js..je], &j.y[js..je], &j.z[js..je]);
                for (ii, &x) in xc.iter().enumerate() {
                    let a = &mut acc[ii];
                    for (k, ((&jx, &jy), &jz)) in bx.iter().zip(by).zip(bz).enumerate() {
                        let d = [jx - x[0], jy - x[1], jz - x[2]];
                        if (d[0] | d[1] | d[2]) == 0 {
                            continue; // zero-distance guard
                        }
                        let f = pair(d, js + k);
                        a[0] = a[0].accumulate_with_scale(enc, unscale(f.acc.x));
                        a[1] = a[1].accumulate_with_scale(enc, unscale(f.acc.y));
                        a[2] = a[2].accumulate_with_scale(enc, unscale(f.acc.z));
                        a[3] = a[3].accumulate_with_scale(enc, unscale(f.pot));
                    }
                }
                js = je;
            }
            for (o, a) in oc.iter_mut().zip(&acc) {
                *o = Force {
                    acc: Vec3::new(
                        a[0].to_f64() * force_scale,
                        a[1].to_f64() * force_scale,
                        a[2].to_f64() * force_scale,
                    ),
                    pot: a[3].to_f64() * force_scale,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g5util::fixed::RangeScaler;

    fn pipe(mode: ArithMode, quantum: f64, eps: f64) -> G5Pipeline {
        let cfg = Grape5Config { mode, ..Grape5Config::paper() };
        G5Pipeline::new(&cfg, quantum, eps)
    }

    fn jword(p: &G5Pipeline, raw: [i64; 3], m: f64) -> JWord {
        JWord { raw, m_lns: p.encode_mass(m), m }
    }

    #[test]
    fn zero_distance_guard() {
        for mode in [ArithMode::Exact, ArithMode::Lns] {
            let p = pipe(mode, 1e-6, 0.0);
            let j = jword(&p, [42, -7, 3], 1.0);
            assert_eq!(p.interact([42, -7, 3], &j), Force::ZERO);
        }
    }

    #[test]
    fn exact_mode_matches_f64_formula() {
        let q = 1.0 / 1024.0;
        let p = pipe(ArithMode::Exact, q, 0.01);
        let j = jword(&p, [1024, 0, 0], 2.0); // x_j = 1.0
        let f = p.interact([0, 0, 0], &j);
        let r2: f64 = 1.0 + 0.0001;
        let expect_ax = 2.0 / (r2 * r2.sqrt());
        assert!((f.acc.x - expect_ax).abs() < 1e-12);
        assert_eq!(f.acc.y, 0.0);
        assert!((f.pot - 2.0 / r2.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn lns_mode_relative_error_is_small_but_nonzero() {
        let q = 1.0 / (1 << 20) as f64;
        let pl = pipe(ArithMode::Lns, q, 0.0);
        let pe = pipe(ArithMode::Exact, q, 0.0);
        let j_l = jword(&pl, [123_456, -654_321, 777_777], 1.5);
        let f_l = pl.interact([1000, 2000, -3000], &j_l);
        let f_e = pe.interact([1000, 2000, -3000], &j_l);
        let rel = (f_l.acc - f_e.acc).norm() / f_e.acc.norm();
        assert!(rel > 0.0, "LNS path must differ from exact");
        assert!(rel < 0.01, "rel={rel} exceeds 1 %");
    }

    #[test]
    fn pairwise_error_rms_is_about_0_3_percent() {
        // §2 of the paper: "calculates a pair-wise force with a relative
        // error of about 0.3%". Sample random geometries and check the
        // RMS relative force error lands in that band.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let scaler = RangeScaler::new(-1.0, 1.0, 32);
        let q = scaler.quantum();
        let pl = pipe(ArithMode::Lns, q, 0.0);
        let mut sum_sq = 0.0;
        let n = 4000;
        for _ in 0..n {
            let xi = [0i64, 0, 0];
            let raw = [
                scaler.quantize(rng.random_range(-0.9..0.9)),
                scaler.quantize(rng.random_range(-0.9..0.9)),
                scaler.quantize(rng.random_range(-0.9..0.9)),
            ];
            if raw == [0, 0, 0] {
                continue;
            }
            let m = rng.random_range(0.1..10.0);
            let j = JWord { raw, m_lns: pl.encode_mass(m), m };
            let f = pl.interact(xi, &j);
            // reference: exact f64 on the same quantized geometry
            let dx = Vec3::new(raw[0] as f64 * q, raw[1] as f64 * q, raw[2] as f64 * q);
            let r2 = dx.norm2();
            let fe = dx * (m / (r2 * r2.sqrt()));
            sum_sq += (f.acc - fe).norm2() / fe.norm2();
        }
        let rms = (sum_sq / n as f64).sqrt();
        assert!(
            (0.001..0.006).contains(&rms),
            "pairwise RMS force error {rms:.5} outside the 0.1–0.6 % band"
        );
    }

    #[test]
    fn force_is_antisymmetric_under_swap_in_exact_mode() {
        let q = 1e-5;
        let p = pipe(ArithMode::Exact, q, 0.0);
        let a = [100, 200, 300];
        let b = [-400, 50, 0];
        let m = 1.0;
        let fab = p.interact(a, &jword(&p, b, m));
        let fba = p.interact(b, &jword(&p, a, m));
        assert!((fab.acc + fba.acc).norm() < 1e-15);
    }

    #[test]
    fn merged_forces_add() {
        let f1 = Force { acc: Vec3::new(1.0, 2.0, 3.0), pot: 4.0 };
        let f2 = Force { acc: Vec3::new(-1.0, 0.5, 0.0), pot: 1.0 };
        let m = f1.merged(f2);
        assert_eq!(m.acc, Vec3::new(0.0, 2.5, 3.0));
        assert_eq!(m.pot, 5.0);
    }

    #[test]
    fn softening_regularizes_close_pairs() {
        let q = 1e-6;
        let p = pipe(ArithMode::Exact, q, 0.1);
        // one quantum apart: without softening the force would be ~1e12
        let j = jword(&p, [1, 0, 0], 1.0);
        let f = p.interact([0, 0, 0], &j);
        assert!(f.acc.norm() < 1.0 / (0.1f64.powi(2)), "softening must bound the force");
    }
}
