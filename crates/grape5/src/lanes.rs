//! Lane-parallel exact-mode force kernel.
//!
//! The real pipeline's throughput comes from evaluating many j-particles
//! per cycle against a held i-set; this module models that data
//! parallelism on CPU lanes for the `Exact` arithmetic mode. Four
//! j-particles are processed per iteration over the SoA
//! [`JSlices`](crate::pipeline::JSlices) streams:
//!
//! ```text
//!   interact_block (Exact, no cutoff)
//!        │ detect_lane_path()                   is_x86_feature_detected!
//!        ├── LanePath::Avx2 ──────► block_exact  (core::arch intrinsics,
//!        │                          4 × f64: vpsubq dx, magic i64→f64,
//!        │                          vsqrtpd/vdivpd, vector round +
//!        │                          saturating-add fixed accumulate)
//!        ├── LanePath::Portable ──► block_exact_portable
//!        │                          (array-of-lanes, plain scalar ops)
//!        └── LanePath::Scalar ────► block_with (the pre-lane skeleton)
//! ```
//!
//! **Bit-identity contract.** Every path reproduces the scalar
//! `pair_exact` + `Fixed::accumulate` sequence bit for bit:
//!
//! * IEEE 754 mul/add/div/sqrt are deterministic and correctly rounded,
//!   in scalar and vector forms alike, and no FMA contraction is ever
//!   emitted from explicit intrinsics — so vectorizing the identical
//!   operation sequence preserves every bit.
//! * The fixed-point `dx` subtract stays in 64-bit integers (`vpsubq`),
//!   and the i64 → f64 conversion uses the exact `2⁵²+2⁵¹` shifter,
//!   valid because a coordinate-magnitude guard routes any call with
//!   raw words ≥ 2⁵⁰ to the portable path.
//! * `FixedFormat::encode`'s round-half-away-from-zero is emulated as
//!   truncate + signed bump where `|frac| ≥ ½` (exact: the fraction of
//!   a truncation is computed without rounding error), and its
//!   saturation as clamp-after-round, equivalent for `|scaled| < 2⁵⁰`;
//!   any lane outside that window — or NaN — falls back to the scalar
//!   `encode` itself.
//! * The zero-distance guard blends guarded lanes to `+0.0`, which
//!   encodes to a raw `0` term — a bitwise no-op on the accumulator,
//!   exactly like the scalar path's `continue`.
//!
//! Accumulation order over j is ascending per i on every path, so the
//! saturating fixed-point sums agree bit for bit; `tests/golden_kernel.rs`
//! and the in-crate proptests referee all of this.

use crate::pipeline::{Force, G5Pipeline, JSlices};
use g5util::fixed::{Fixed, FixedFormat};
use g5util::vec3::Vec3;

/// j-particles evaluated per lane iteration.
pub const LANES: usize = 4;

/// i-particles sharing one streamed j-block (pipelines per chip set).
const I_TILE: usize = 16;
/// j-particles per block; the SoA streams stay well inside L1.
const J_BLOCK: usize = 512;

/// Which implementation the exact-mode `interact_block` dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePath {
    /// Explicit AVX2 `core::arch` intrinsics, 4 × f64 per iteration.
    Avx2,
    /// Portable array-of-lanes fallback (any architecture).
    Portable,
    /// Route exact mode through the pre-lane scalar batch skeleton —
    /// the A/B reference for the perf harness.
    Scalar,
}

/// Pick the lane path for this process: the `G5_LANE_PATH` environment
/// variable (`portable` / `scalar` / `avx2`) wins, then runtime CPU
/// feature detection, then the portable fallback. Requesting `avx2` on
/// hardware without it degrades to `Portable` rather than faulting.
pub fn detect_lane_path() -> LanePath {
    let forced_avx2 = match std::env::var("G5_LANE_PATH").as_deref() {
        Ok("portable") => return LanePath::Portable,
        Ok("scalar") => return LanePath::Scalar,
        Ok("avx2") => true,
        _ => false,
    };
    let _ = forced_avx2;
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") {
            return LanePath::Avx2;
        }
    }
    LanePath::Portable
}

/// How the per-interaction terms are mapped into accumulator units —
/// hoisted once per block call, bit-identical to the scalar `unscale`.
#[derive(Debug, Clone, Copy)]
enum ScaleMode {
    /// `force_scale == 1.0`: terms pass through.
    One,
    /// Power-of-two scale: multiply by the exact reciprocal.
    Pow2Mul(f64),
    /// General scale: divide.
    Div(f64),
}

fn scale_mode(force_scale: f64) -> ScaleMode {
    let inv_scale = 1.0 / force_scale;
    let pow2_scale = force_scale.to_bits() & ((1u64 << 52) - 1) == 0
        && force_scale.is_normal()
        && inv_scale.is_normal();
    if force_scale == 1.0 {
        ScaleMode::One
    } else if pow2_scale {
        ScaleMode::Pow2Mul(inv_scale)
    } else {
        ScaleMode::Div(force_scale)
    }
}

impl ScaleMode {
    #[inline(always)]
    fn apply(self, t: f64) -> f64 {
        match self {
            ScaleMode::One => t,
            ScaleMode::Pow2Mul(inv) => t * inv,
            ScaleMode::Div(s) => t / s,
        }
    }
}

/// Entry point: dispatch the exact-mode no-cutoff block to the selected
/// lane implementation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn block_exact_lanes(
    path: LanePath,
    quantum: f64,
    eps2: f64,
    xi: &[[i64; 3]],
    j: &JSlices<'_>,
    force_scale: f64,
    fmt: FixedFormat,
    out: &mut [Force],
) {
    match path {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `detect_lane_path` only yields `Avx2` after
        // `is_x86_feature_detected!("avx2")` succeeded.
        LanePath::Avx2 => unsafe { avx2::block_exact(quantum, eps2, xi, j, force_scale, fmt, out) },
        #[cfg(not(target_arch = "x86_64"))]
        LanePath::Avx2 => block_exact_portable(quantum, eps2, xi, j, force_scale, fmt, out),
        _ => block_exact_portable(quantum, eps2, xi, j, force_scale, fmt, out),
    }
}

/// Portable lane kernel: the same 4-lane structure as the AVX2 path in
/// plain scalar ops over `[f64; LANES]` arrays. This is both the
/// non-x86 implementation and the referee the intrinsics path is
/// bit-compared against.
#[allow(clippy::too_many_arguments)]
pub(crate) fn block_exact_portable(
    quantum: f64,
    eps2: f64,
    xi: &[[i64; 3]],
    j: &JSlices<'_>,
    force_scale: f64,
    fmt: FixedFormat,
    out: &mut [Force],
) {
    let nj = j.x.len();
    let enc = fmt.encode_scale();
    let sm = scale_mode(force_scale);
    for (xc, oc) in xi.chunks(I_TILE).zip(out.chunks_mut(I_TILE)) {
        let mut acc = [[Fixed::zero(fmt); 4]; I_TILE];
        let mut js = 0;
        while js < nj {
            let je = (js + J_BLOCK).min(nj);
            let (bx, by, bz, bm) = (&j.x[js..je], &j.y[js..je], &j.z[js..je], &j.m[js..je]);
            let bn = je - js;
            let lanes_end = bn - bn % LANES;
            for (ii, &x) in xc.iter().enumerate() {
                let a = &mut acc[ii];
                let mut k = 0;
                while k < lanes_end {
                    // Lane force evaluation; guarded lanes stay +0.0,
                    // which accumulates as a raw-0 no-op below.
                    let mut fx = [0.0f64; LANES];
                    let mut fy = [0.0f64; LANES];
                    let mut fz = [0.0f64; LANES];
                    let mut fp = [0.0f64; LANES];
                    for l in 0..LANES {
                        let d0 = bx[k + l] - x[0];
                        let d1 = by[k + l] - x[1];
                        let d2 = bz[k + l] - x[2];
                        if (d0 | d1 | d2) == 0 {
                            continue; // zero-distance guard
                        }
                        let dx = d0 as f64 * quantum;
                        let dy = d1 as f64 * quantum;
                        let dz = d2 as f64 * quantum;
                        let r2 = (dx * dx + dy * dy) + dz * dz + eps2;
                        let rinv = 1.0 / r2.sqrt();
                        let rinv3 = rinv / r2;
                        let m = bm[k + l];
                        let s = m * rinv3;
                        fx[l] = dx * s;
                        fy[l] = dy * s;
                        fz[l] = dz * s;
                        fp[l] = m * rinv;
                    }
                    for l in 0..LANES {
                        a[0] = a[0].accumulate_with_scale(enc, sm.apply(fx[l]));
                        a[1] = a[1].accumulate_with_scale(enc, sm.apply(fy[l]));
                        a[2] = a[2].accumulate_with_scale(enc, sm.apply(fz[l]));
                        a[3] = a[3].accumulate_with_scale(enc, sm.apply(fp[l]));
                    }
                    k += LANES;
                }
                while k < bn {
                    let d = [bx[k] - x[0], by[k] - x[1], bz[k] - x[2]];
                    if (d[0] | d[1] | d[2]) != 0 {
                        let f = G5Pipeline::pair_exact(quantum, eps2, None, d, bm[k]);
                        a[0] = a[0].accumulate_with_scale(enc, sm.apply(f.acc.x));
                        a[1] = a[1].accumulate_with_scale(enc, sm.apply(f.acc.y));
                        a[2] = a[2].accumulate_with_scale(enc, sm.apply(f.acc.z));
                        a[3] = a[3].accumulate_with_scale(enc, sm.apply(f.pot));
                    }
                    k += 1;
                }
            }
            js = je;
        }
        for (o, a) in oc.iter_mut().zip(&acc) {
            *o = Force {
                acc: Vec3::new(
                    a[0].to_f64() * force_scale,
                    a[1].to_f64() * force_scale,
                    a[2].to_f64() * force_scale,
                ),
                pot: a[3].to_f64() * force_scale,
            };
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{scale_mode, ScaleMode, I_TILE, J_BLOCK, LANES};
    use crate::pipeline::{Force, G5Pipeline, JSlices};
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;
    use g5util::fixed::{Fixed, FixedFormat};
    use g5util::vec3::Vec3;

    /// `2⁵² + 2⁵¹`: the shifter that makes i64 ↔ f64 conversion exact
    /// for `|v| < 2⁵¹` (the integer lands in the double's mantissa).
    const MAGIC: f64 = 6_755_399_441_055_744.0;
    /// The same shifter as raw double bits, for the integer-domain side.
    const MAGIC_BITS: i64 = 0x4338_0000_0000_0000;
    /// Fast-path window for the vector encode: `|scaled| < 2⁵⁰` keeps
    /// the magic conversion exact and round-then-clamp equivalent to
    /// `FixedFormat::encode`'s saturate-then-round.
    const ENC_LIM: f64 = (1u64 << 50) as f64;

    /// Hoisted per-call constants of the vector fixed accumulate.
    #[derive(Clone, Copy)]
    struct AccCtx {
        encv: __m256d,
        enc: f64,
        fmt: FixedFormat,
        rmin: __m256i,
        rmax: __m256i,
    }

    /// Vector unscale, fixed per call.
    #[derive(Clone, Copy)]
    enum VScale {
        None,
        Mul(__m256d),
        Div(__m256d),
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn i64x4_to_f64(v: __m256i) -> __m256d {
        // Exact for |v| < 2^51 — guaranteed by the coordinate guard.
        let shifted = _mm256_add_epi64(v, _mm256_set1_epi64x(MAGIC_BITS));
        _mm256_sub_pd(_mm256_castpd_si256_inverse(shifted), _mm256_set1_pd(MAGIC))
    }

    /// `_mm256_castsi256_pd` under a name that reads as the inverse of
    /// the pd→si cast used alongside it.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn _mm256_castpd_si256_inverse(v: __m256i) -> __m256d {
        _mm256_castsi256_pd(v)
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn clamp_epi64(v: __m256i, lo: __m256i, hi: __m256i) -> __m256i {
        let v = _mm256_blendv_epi8(v, hi, _mm256_cmpgt_epi64(v, hi));
        _mm256_blendv_epi8(v, lo, _mm256_cmpgt_epi64(lo, v))
    }

    /// Per-lane `|scaled| < 2⁵⁰` (false for NaN), as a pd mask.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn in_window(scaled: __m256d) -> __m256d {
        let abs = _mm256_andnot_pd(_mm256_set1_pd(-0.0), scaled);
        _mm256_cmp_pd::<_CMP_LT_OQ>(abs, _mm256_set1_pd(ENC_LIM))
    }

    /// Round half away from zero and convert to i64 — `scaled.round()
    /// as i64`, bit for bit, valid for `|scaled| < 2⁵⁰`: truncate, bump
    /// ±1 where `|frac| ≥ ½` (the fraction of a truncation is exact, so
    /// this reproduces `f64::round`), then the exact magic conversion.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn round_away_to_i64(scaled: __m256d) -> __m256i {
        let tr = _mm256_round_pd::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(scaled);
        let frac = _mm256_sub_pd(scaled, tr);
        let afrac = _mm256_andnot_pd(_mm256_set1_pd(-0.0), frac);
        let bump = _mm256_cmp_pd::<_CMP_GE_OQ>(afrac, _mm256_set1_pd(0.5));
        let sign1 = _mm256_or_pd(_mm256_and_pd(scaled, _mm256_set1_pd(-0.0)), _mm256_set1_pd(1.0));
        let rounded = _mm256_add_pd(tr, _mm256_and_pd(bump, sign1));
        _mm256_sub_epi64(
            _mm256_castpd_si256(_mm256_add_pd(rounded, _mm256_set1_pd(MAGIC))),
            _mm256_set1_epi64x(MAGIC_BITS),
        )
    }

    /// One vector `Fixed::accumulate_with_scale` over the 4 components
    /// `[fx, fy, fz, pot]` of a single j-interaction.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn accumulate4(acc: __m256i, v: __m256d, c: &AccCtx) -> __m256i {
        let scaled = _mm256_mul_pd(v, c.encv);
        let ok = in_window(scaled);
        if _mm256_movemask_pd(ok) != 0b1111 {
            // Rare: a term saturates the format or is NaN. The scalar
            // encode is the definition of correctness — defer to it.
            let mut a = [0i64; 4];
            let mut t = [0f64; 4];
            _mm256_storeu_si256(a.as_mut_ptr().cast(), acc);
            _mm256_storeu_pd(t.as_mut_ptr(), v);
            for k in 0..4 {
                a[k] = Fixed { raw: a[k], fmt: c.fmt }.accumulate_with_scale(c.enc, t[k]).raw;
            }
            return _mm256_loadu_si256(a.as_ptr().cast());
        }
        // encode = round (window checked above), then its saturation;
        // sat_add: wrapping add, overflow detected by sign algebra,
        // clamped to the format range.
        let term = clamp_epi64(round_away_to_i64(scaled), c.rmin, c.rmax);
        let sum = _mm256_add_epi64(acc, term);
        let ovf = _mm256_and_si256(_mm256_xor_si256(acc, sum), _mm256_xor_si256(term, sum));
        let ovf = _mm256_cmpgt_epi64(_mm256_setzero_si256(), ovf);
        let acc_neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), acc);
        let sat =
            _mm256_blendv_epi8(_mm256_set1_epi64x(i64::MAX), _mm256_set1_epi64x(i64::MIN), acc_neg);
        clamp_epi64(_mm256_blendv_epi8(sum, sat, ovf), c.rmin, c.rmax)
    }

    /// The AVX2 exact-mode block kernel. Caller must have verified AVX2
    /// support.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn block_exact(
        quantum: f64,
        eps2: f64,
        xi: &[[i64; 3]],
        j: &JSlices<'_>,
        force_scale: f64,
        fmt: FixedFormat,
        out: &mut [Force],
    ) {
        // Coordinate-magnitude guard: |a|,|b| < 2^50 bounds every
        // subtract |a−b| < 2^51, the window where the vector i64→f64
        // conversion is exact. Wider coordinate formats (coord_bits can
        // reach 62) take the portable path instead.
        let lim = 1i64 << 50;
        let within = |s: &[i64]| s.iter().all(|&v| -lim < v && v < lim);
        if !(within(j.x)
            && within(j.y)
            && within(j.z)
            && xi.iter().all(|x| x.iter().all(|&v| -lim < v && v < lim)))
        {
            return super::block_exact_portable(quantum, eps2, xi, j, force_scale, fmt, out);
        }
        let nj = j.x.len();
        let enc = fmt.encode_scale();
        let ctx = AccCtx {
            encv: _mm256_set1_pd(enc),
            enc,
            fmt,
            rmin: _mm256_set1_epi64x(fmt.raw_min()),
            rmax: _mm256_set1_epi64x(fmt.raw_max()),
        };
        // Group fast path: when the format's range covers the encode
        // window (so the per-term clamp cannot bind) and the running
        // accumulator has ≥ 2⁵² of headroom (> 4 terms × 2⁵⁰, so no
        // prefix sum can clamp or overflow), the four saturating adds
        // of a j-group collapse to one associative integer sum — the
        // serial accumulate dependency is replaced by a tree add.
        let group_fast = fmt.raw_max() >= (1i64 << 50) && fmt.raw_min() <= -(1i64 << 50) && {
            let hmax = fmt.raw_max().saturating_sub(1 << 52);
            let hmin = fmt.raw_min().saturating_add(1 << 52);
            hmin < hmax
        };
        let hmaxv = _mm256_set1_epi64x(fmt.raw_max().saturating_sub(1 << 52));
        let hminv = _mm256_set1_epi64x(fmt.raw_min().saturating_add(1 << 52));
        let sm = scale_mode(force_scale);
        let vs = match sm {
            ScaleMode::One => VScale::None,
            ScaleMode::Pow2Mul(inv) => VScale::Mul(_mm256_set1_pd(inv)),
            ScaleMode::Div(s) => VScale::Div(_mm256_set1_pd(s)),
        };
        let qv = _mm256_set1_pd(quantum);
        let e2v = _mm256_set1_pd(eps2);
        let onev = _mm256_set1_pd(1.0);
        for (xc, oc) in xi.chunks(I_TILE).zip(out.chunks_mut(I_TILE)) {
            let mut acc = [_mm256_setzero_si256(); I_TILE];
            let mut js = 0;
            while js < nj {
                let je = (js + J_BLOCK).min(nj);
                let (bx, by, bz, bm) = (&j.x[js..je], &j.y[js..je], &j.z[js..je], &j.m[js..je]);
                let bn = je - js;
                let lanes_end = bn - bn % LANES;
                for (ii, &x) in xc.iter().enumerate() {
                    let mut av = acc[ii];
                    let xv0 = _mm256_set1_epi64x(x[0]);
                    let xv1 = _mm256_set1_epi64x(x[1]);
                    let xv2 = _mm256_set1_epi64x(x[2]);
                    let mut k = 0usize;
                    while k < lanes_end {
                        let jx = _mm256_loadu_si256(bx.as_ptr().add(k).cast());
                        let jy = _mm256_loadu_si256(by.as_ptr().add(k).cast());
                        let jz = _mm256_loadu_si256(bz.as_ptr().add(k).cast());
                        let d0 = _mm256_sub_epi64(jx, xv0);
                        let d1 = _mm256_sub_epi64(jy, xv1);
                        let d2 = _mm256_sub_epi64(jz, xv2);
                        let zero = _mm256_cmpeq_epi64(
                            _mm256_or_si256(_mm256_or_si256(d0, d1), d2),
                            _mm256_setzero_si256(),
                        );
                        let dx = _mm256_mul_pd(i64x4_to_f64(d0), qv);
                        let dy = _mm256_mul_pd(i64x4_to_f64(d1), qv);
                        let dz = _mm256_mul_pd(i64x4_to_f64(d2), qv);
                        // (dx² + dy²) + dz² — explicit mul/add, never FMA,
                        // matching pair_exact's association
                        let r2 = _mm256_add_pd(
                            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                            _mm256_mul_pd(dz, dz),
                        );
                        let r2e = _mm256_add_pd(r2, e2v);
                        let rinv = _mm256_div_pd(onev, _mm256_sqrt_pd(r2e));
                        let rinv3 = _mm256_div_pd(rinv, r2e);
                        let m4 = _mm256_loadu_pd(bm.as_ptr().add(k));
                        let s = _mm256_mul_pd(m4, rinv3);
                        // zero-distance guard: blend guarded lanes to +0.0
                        let zm = _mm256_castsi256_pd(zero);
                        let mut fx = _mm256_andnot_pd(zm, _mm256_mul_pd(dx, s));
                        let mut fy = _mm256_andnot_pd(zm, _mm256_mul_pd(dy, s));
                        let mut fz = _mm256_andnot_pd(zm, _mm256_mul_pd(dz, s));
                        let mut fp = _mm256_andnot_pd(zm, _mm256_mul_pd(m4, rinv));
                        match vs {
                            VScale::None => {}
                            VScale::Mul(iv) => {
                                fx = _mm256_mul_pd(fx, iv);
                                fy = _mm256_mul_pd(fy, iv);
                                fz = _mm256_mul_pd(fz, iv);
                                fp = _mm256_mul_pd(fp, iv);
                            }
                            VScale::Div(sv) => {
                                fx = _mm256_div_pd(fx, sv);
                                fy = _mm256_div_pd(fy, sv);
                                fz = _mm256_div_pd(fz, sv);
                                fp = _mm256_div_pd(fp, sv);
                            }
                        }
                        // 4×4 transpose to per-j [fx, fy, fz, pot], then
                        // accumulate in ascending j order
                        let t0 = _mm256_unpacklo_pd(fx, fy);
                        let t1 = _mm256_unpackhi_pd(fx, fy);
                        let t2 = _mm256_unpacklo_pd(fz, fp);
                        let t3 = _mm256_unpackhi_pd(fz, fp);
                        let v0 = _mm256_permute2f128_pd::<0x20>(t0, t2);
                        let v1 = _mm256_permute2f128_pd::<0x20>(t1, t3);
                        let v2 = _mm256_permute2f128_pd::<0x31>(t0, t2);
                        let v3 = _mm256_permute2f128_pd::<0x31>(t1, t3);
                        let s0 = _mm256_mul_pd(v0, ctx.encv);
                        let s1 = _mm256_mul_pd(v1, ctx.encv);
                        let s2 = _mm256_mul_pd(v2, ctx.encv);
                        let s3 = _mm256_mul_pd(v3, ctx.encv);
                        let ok = _mm256_and_pd(
                            _mm256_and_pd(in_window(s0), in_window(s1)),
                            _mm256_and_pd(in_window(s2), in_window(s3)),
                        );
                        let acc_tight = _mm256_or_si256(
                            _mm256_cmpgt_epi64(av, hmaxv),
                            _mm256_cmpgt_epi64(hminv, av),
                        );
                        if group_fast
                            && _mm256_movemask_pd(ok) == 0b1111
                            && _mm256_testz_si256(acc_tight, acc_tight) != 0
                        {
                            // all terms in-window, accumulator far from
                            // saturation: the sat-adds are plain adds
                            let t = _mm256_add_epi64(
                                _mm256_add_epi64(round_away_to_i64(s0), round_away_to_i64(s1)),
                                _mm256_add_epi64(round_away_to_i64(s2), round_away_to_i64(s3)),
                            );
                            av = _mm256_add_epi64(av, t);
                        } else {
                            av = accumulate4(av, v0, &ctx);
                            av = accumulate4(av, v1, &ctx);
                            av = accumulate4(av, v2, &ctx);
                            av = accumulate4(av, v3, &ctx);
                        }
                        k += LANES;
                    }
                    if k < bn {
                        // scalar remainder tail, same ops as the scalar
                        // batch path
                        let mut a = [0i64; 4];
                        _mm256_storeu_si256(a.as_mut_ptr().cast(), av);
                        while k < bn {
                            let d = [bx[k] - x[0], by[k] - x[1], bz[k] - x[2]];
                            if (d[0] | d[1] | d[2]) != 0 {
                                let f = G5Pipeline::pair_exact(quantum, eps2, None, d, bm[k]);
                                a[0] = Fixed { raw: a[0], fmt }
                                    .accumulate_with_scale(enc, sm.apply(f.acc.x))
                                    .raw;
                                a[1] = Fixed { raw: a[1], fmt }
                                    .accumulate_with_scale(enc, sm.apply(f.acc.y))
                                    .raw;
                                a[2] = Fixed { raw: a[2], fmt }
                                    .accumulate_with_scale(enc, sm.apply(f.acc.z))
                                    .raw;
                                a[3] = Fixed { raw: a[3], fmt }
                                    .accumulate_with_scale(enc, sm.apply(f.pot))
                                    .raw;
                            }
                            k += 1;
                        }
                        av = _mm256_loadu_si256(a.as_ptr().cast());
                    }
                    acc[ii] = av;
                }
                js = je;
            }
            for (o, a) in oc.iter_mut().zip(&acc) {
                let mut r = [0i64; 4];
                _mm256_storeu_si256(r.as_mut_ptr().cast(), *a);
                *o = Force {
                    acc: Vec3::new(
                        Fixed { raw: r[0], fmt }.to_f64() * force_scale,
                        Fixed { raw: r[1], fmt }.to_f64() * force_scale,
                        Fixed { raw: r[2], fmt }.to_f64() * force_scale,
                    ),
                    pot: Fixed { raw: r[3], fmt }.to_f64() * force_scale,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArithMode, Grape5Config};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Run one exact-mode block through a forced lane path.
    #[allow(clippy::too_many_arguments)]
    fn run_path(
        path: LanePath,
        quantum: f64,
        eps: f64,
        xi: &[[i64; 3]],
        j: &JSlices<'_>,
        force_scale: f64,
        fmt: FixedFormat,
    ) -> Vec<Force> {
        let cfg = Grape5Config { mode: ArithMode::Exact, ..Grape5Config::paper() };
        let mut p = G5Pipeline::new(&cfg, quantum, eps);
        p.set_lane_path(path);
        let mut out = vec![Force::ZERO; xi.len()];
        p.interact_block(xi, j, force_scale, fmt, &mut out);
        out
    }

    fn assert_bits_equal(a: &[Force], b: &[Force], what: &str) {
        for (i, (fa, fb)) in a.iter().zip(b).enumerate() {
            let pa = [fa.acc.x, fa.acc.y, fa.acc.z, fa.pot].map(f64::to_bits);
            let pb = [fb.acc.x, fb.acc.y, fb.acc.z, fb.pot].map(f64::to_bits);
            assert_eq!(pa, pb, "{what}: bit mismatch at i-particle {i}: {fa:?} vs {fb:?}");
        }
    }

    /// i-positions plus SoA j-streams (x, y, z, m) for one test block.
    type RandomBlock = (Vec<[i64; 3]>, Vec<i64>, Vec<i64>, Vec<i64>, Vec<f64>);

    /// Random j-set with some coincident-with-i and zero-mass entries.
    fn random_block(rng: &mut ChaCha8Rng, ni: usize, nj: usize, span: i64) -> RandomBlock {
        let xi: Vec<[i64; 3]> = (0..ni)
            .map(|_| {
                [
                    rng.random_range(-span..span),
                    rng.random_range(-span..span),
                    rng.random_range(-span..span),
                ]
            })
            .collect();
        let mut jx = Vec::with_capacity(nj);
        let mut jy = Vec::with_capacity(nj);
        let mut jz = Vec::with_capacity(nj);
        let mut jm = Vec::with_capacity(nj);
        for k in 0..nj {
            if k % 17 == 3 && !xi.is_empty() {
                // coincident with some i-particle: zero-distance lane
                let x = xi[k % xi.len()];
                jx.push(x[0]);
                jy.push(x[1]);
                jz.push(x[2]);
            } else {
                jx.push(rng.random_range(-span..span));
                jy.push(rng.random_range(-span..span));
                jz.push(rng.random_range(-span..span));
            }
            jm.push(if k % 23 == 7 { 0.0 } else { rng.random_range(0.01..10.0) });
        }
        (xi, jx, jy, jz, jm)
    }

    fn all_paths() -> Vec<LanePath> {
        let mut v = vec![LanePath::Portable, LanePath::Scalar];
        #[cfg(target_arch = "x86_64")]
        if std::is_x86_feature_detected!("avx2") {
            v.push(LanePath::Avx2);
        }
        v
    }

    #[test]
    fn lane_paths_agree_bitwise_on_random_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
        let fmt = FixedFormat::new(64, 32);
        let lns = crate::config::Grape5Config::paper().lns;
        // j-counts cover remainder tails (≢ 0 mod 4) and block edges
        for &nj in &[0usize, 1, 3, 4, 5, 17, 301, 512, 513, 1000] {
            for &ni in &[1usize, 2, 16, 17] {
                let (xi, jx, jy, jz, jm) = random_block(&mut rng, ni, nj, 1 << 30);
                let jml: Vec<_> = jm.iter().map(|&m| lns.encode(m)).collect();
                let j = JSlices { x: &jx, y: &jy, z: &jz, m: &jm, m_lns: &jml };
                for &(eps, fs) in &[(0.0, 1.0), (0.01, 0.25), (0.01, 1.37e-7)] {
                    let refr = run_path(LanePath::Scalar, 2e-10, eps, &xi, &j, fs, fmt);
                    for path in all_paths() {
                        let got = run_path(path, 2e-10, eps, &xi, &j, fs, fmt);
                        assert_bits_equal(
                            &refr,
                            &got,
                            &format!("{path:?} nj={nj} ni={ni} eps={eps} fs={fs}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn saturating_terms_agree_via_encode_fallback() {
        // Huge masses push |scaled| past 2^50: the vector path must
        // defer to the scalar encode, including format saturation.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let lns = crate::config::Grape5Config::paper().lns;
        for fmt in [FixedFormat::new(64, 32), FixedFormat::new(16, 8)] {
            let (xi, jx, jy, jz, mut jm) = random_block(&mut rng, 5, 37, 1 << 20);
            for (k, m) in jm.iter_mut().enumerate() {
                if k % 3 == 0 {
                    *m *= 1e30; // saturating term
                }
            }
            let jml: Vec<_> = jm.iter().map(|&m| lns.encode(m)).collect();
            let j = JSlices { x: &jx, y: &jy, z: &jz, m: &jm, m_lns: &jml };
            let refr = run_path(LanePath::Scalar, 1e-6, 0.001, &xi, &j, 1.0, fmt);
            for path in all_paths() {
                let got = run_path(path, 1e-6, 0.001, &xi, &j, 1.0, fmt);
                assert_bits_equal(&refr, &got, &format!("{path:?} fmt={fmt:?}"));
            }
        }
    }

    #[test]
    fn wide_coordinates_take_the_guard_and_agree() {
        // Raw words at ±2^60: outside the magic-conversion window, so
        // the AVX2 entry must fall back to the portable kernel whole.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let fmt = FixedFormat::new(64, 32);
        let lns = crate::config::Grape5Config::paper().lns;
        let (xi, jx, jy, jz, jm) = random_block(&mut rng, 4, 29, 1 << 60);
        let jml: Vec<_> = jm.iter().map(|&m| lns.encode(m)).collect();
        let j = JSlices { x: &jx, y: &jy, z: &jz, m: &jm, m_lns: &jml };
        let refr = run_path(LanePath::Scalar, 1e-19, 0.0, &xi, &j, 1.0, fmt);
        for path in all_paths() {
            let got = run_path(path, 1e-19, 0.0, &xi, &j, 1.0, fmt);
            assert_bits_equal(&refr, &got, &format!("{path:?} wide coords"));
        }
    }

    #[test]
    fn detect_honors_env_override() {
        // Can't mutate the environment safely in a threaded test binary;
        // just pin down that detection returns a usable path.
        let p = detect_lane_path();
        assert!(matches!(p, LanePath::Avx2 | LanePath::Portable | LanePath::Scalar));
    }
}
