//! Per-step device session: the host-library protocol around a batch of
//! force calls, with validation and fault recovery.
//!
//! Every force computation against GRAPE-5 repeats the same preamble —
//! declare the coordinate window (`g5_set_range`), set the softening,
//! then stream j-sets through the board memory, chunking any set larger
//! than the memory. [`DeviceSession`] owns that protocol for one
//! evaluation (one simulation step), so every backend drives the device
//! through the same code path instead of re-implementing the
//! window/eps/chunking dance.
//!
//! A session borrows the device mutably for its lifetime: the range and
//! softening it declares stay valid exactly as long as the session
//! lives, which is the invariant the hardware requires (changing the
//! range invalidates loaded j-particles).
//!
//! ## Recovery
//!
//! At production scale the device misbehaves (see [`crate::fault`]),
//! so the session's `try_*` calls treat every returned force set as
//! suspect:
//!
//! 1. **validate** — every component must be finite and within the
//!    magnitude bound the j-set implies (`Σ|m| / max(ε, quantum)²`,
//!    with a small margin for LNS arithmetic);
//! 2. **retry** — a failed call is re-driven with exponential backoff,
//!    re-loading the j-memory (a corrupted DMA is healed by
//!    re-transferring);
//! 3. **quarantine** — after [`RetryPolicy::quarantine_after`] failed
//!    attempts the device self-test runs, persistently-bad pipelines
//!    are taken out of service (their lanes re-spread over surviving
//!    pipes at a cycle penalty) and dead boards are dropped with the
//!    j-set redistributed over the remainder — graceful degradation
//!    instead of a crash.
//!
//! Every recovery action lands in [`RecoveryStats`] so callers can
//! report retry/quarantine overhead.

use crate::fault::DeviceError;
use crate::pipeline::Force;
use crate::system::Grape5;
use g5util::vec3::Vec3;
use rayon::prelude::*;

/// A padded scalar window covering every coordinate — what the host
/// library passes to `g5_set_range` each step as the system evolves.
///
/// A single NaN/inf position would silently poison the window (every
/// particle would then quantize against a garbage grid), so non-finite
/// input is a typed error, not a garbage range.
pub fn bounding_window(pos: &[Vec3]) -> Result<(f64, f64), DeviceError> {
    let bad = pos
        .par_iter()
        .enumerate()
        .map(
            |(i, p)| {
                if p.x.is_finite() && p.y.is_finite() && p.z.is_finite() {
                    usize::MAX
                } else {
                    i
                }
            },
        )
        .reduce(|| usize::MAX, |a, b| a.min(b));
    if bad != usize::MAX {
        return Err(DeviceError::NonFinitePosition { index: bad });
    }
    let (lo, hi) = pos
        .par_iter()
        .map(|p| (p.min_component(), p.max_component()))
        .reduce(|| (f64::INFINITY, f64::NEG_INFINITY), |a, b| (a.0.min(b.0), a.1.max(b.1)));
    let pad = ((hi - lo) * 0.01).max(1e-12);
    Ok((lo - pad, hi + pad))
}

/// How the session retries and escalates failed device calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt before giving up.
    pub max_retries: u32,
    /// Failed attempts tolerated before the self-test runs and
    /// persistent faults are quarantined.
    pub quarantine_after: u32,
    /// First backoff delay; doubles per retry (0 = no waiting).
    pub backoff_base_s: f64,
    /// Backoff ceiling.
    pub backoff_cap_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            quarantine_after: 2,
            backoff_base_s: 1e-4,
            backoff_cap_s: 1e-2,
        }
    }
}

impl RetryPolicy {
    /// Default escalation without real-time sleeping — for tests and
    /// simulated-time runs where wall-clock backoff is meaningless.
    pub fn no_wait() -> Self {
        RetryPolicy { backoff_base_s: 0.0, ..RetryPolicy::default() }
    }
}

/// Tally of recovery actions a session performed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Failed attempts that were retried.
    pub retries: u64,
    /// j-memory re-transfers driven by retries.
    pub j_reloads: u64,
    /// Returned force sets rejected by host validation.
    pub validation_failures: u64,
    /// Device-side errors (timeouts).
    pub device_errors: u64,
    /// Pipelines taken out of service.
    pub quarantined_pipes: u64,
    /// Boards taken out of service.
    pub quarantined_boards: u64,
    /// Wall-clock seconds spent in backoff sleeps.
    pub backoff_s: f64,
}

impl RecoveryStats {
    /// Component-wise sum.
    pub fn merged(self, o: RecoveryStats) -> RecoveryStats {
        RecoveryStats {
            retries: self.retries + o.retries,
            j_reloads: self.j_reloads + o.j_reloads,
            validation_failures: self.validation_failures + o.validation_failures,
            device_errors: self.device_errors + o.device_errors,
            quarantined_pipes: self.quarantined_pipes + o.quarantined_pipes,
            quarantined_boards: self.quarantined_boards + o.quarantined_boards,
            backoff_s: self.backoff_s + o.backoff_s,
        }
    }

    /// Did any recovery action fire at all?
    pub fn any(&self) -> bool {
        self.retries > 0 || self.quarantined_pipes > 0 || self.quarantined_boards > 0
    }
}

/// One step's worth of device protocol: range + softening declared
/// once, j-memory chunking, validation and recovery handled per force
/// call.
pub struct DeviceSession<'a> {
    g5: &'a mut Grape5,
    eps: f64,
    retry: RetryPolicy,
    stats: RecoveryStats,
    /// Copy of the resident j-set loaded via [`load_j`](Self::load_j),
    /// kept host-side so a corrupted or redistributed j-memory can be
    /// re-driven without the caller's involvement.
    resident: Option<(Vec<Vec3>, Vec<f64>)>,
}

impl<'a> DeviceSession<'a> {
    /// Open a session for a snapshot: declare the bounding window of
    /// `pos` and the softening, then hand back the configured device.
    /// Non-finite positions surface as
    /// [`DeviceError::NonFinitePosition`].
    pub fn try_open(g5: &'a mut Grape5, pos: &[Vec3], eps: f64) -> Result<Self, DeviceError> {
        let (lo, hi) = bounding_window(pos)?;
        g5.set_range(lo, hi);
        g5.set_eps(eps);
        Ok(DeviceSession {
            g5,
            eps,
            retry: RetryPolicy::default(),
            stats: RecoveryStats::default(),
            resident: None,
        })
    }

    /// Like [`try_open`](Self::try_open), panicking on invalid input.
    pub fn open(g5: &'a mut Grape5, pos: &[Vec3], eps: f64) -> DeviceSession<'a> {
        DeviceSession::try_open(g5, pos, eps)
            .unwrap_or_else(|e| panic!("cannot open device session: {e}"))
    }

    /// Replace the retry/escalation policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Recovery actions performed so far in this session.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Total j-particles the boards in service can hold at once.
    pub fn jmem_capacity(&self) -> usize {
        self.g5.jmem_capacity()
    }

    /// Load a j-set that fits the board memory, keeping it resident for
    /// subsequent [`force_on`](Self::force_on) calls. The session keeps
    /// a host-side copy so recovery can re-drive the transfer.
    ///
    /// # Panics
    /// If the set exceeds [`jmem_capacity`](Self::jmem_capacity); use
    /// [`force_for`](Self::force_for) for arbitrary sizes.
    pub fn load_j(&mut self, jpos: &[Vec3], jmass: &[f64]) {
        self.g5.set_j_particles(jpos, jmass);
        self.resident = Some((jpos.to_vec(), jmass.to_vec()));
    }

    /// Forces on `xi` from the resident j-set — fast path without
    /// validation or recovery.
    pub fn force_on(&mut self, xi: &[Vec3]) -> Vec<Force> {
        self.g5.force_on(xi)
    }

    /// Forces on `xi` from the resident j-set, validated and recovered:
    /// a bad result is retried (re-loading the j-memory from the
    /// host-side copy), persistent faults are quarantined.
    pub fn try_force_on(&mut self, xi: &[Vec3]) -> Result<Vec<Force>, DeviceError> {
        let (jpos, jmass) = self
            .resident
            .take()
            .expect("try_force_on requires a resident j-set (call load_j first)");
        let out = self.recovering_call(&jpos, &jmass, xi, true);
        self.resident = Some((jpos, jmass));
        out
    }

    /// Forces on `xi` from an arbitrary j-set: loads it whole when it
    /// fits the board memory, otherwise chunks it through in passes and
    /// sums the partials on the host. Fast path without validation.
    pub fn force_for(&mut self, jpos: &[Vec3], jmass: &[f64], xi: &[Vec3]) -> Vec<Force> {
        if jpos.len() <= self.g5.jmem_capacity() {
            self.g5.set_j_particles(jpos, jmass);
            self.g5.force_on(xi)
        } else {
            self.g5.force_on_chunked(jpos, jmass, xi)
        }
    }

    /// Validated + recovered variant of [`force_for`](Self::force_for).
    pub fn try_force_for(
        &mut self,
        jpos: &[Vec3],
        jmass: &[f64],
        xi: &[Vec3],
    ) -> Result<Vec<Force>, DeviceError> {
        self.recovering_call(jpos, jmass, xi, false)
    }

    // ------------------------------------------------------------------
    // Recovery internals
    // ------------------------------------------------------------------

    /// Magnitude bounds implied by a j-set: no valid acceleration
    /// component can exceed `Σ|m| / r_min²` and no potential
    /// `Σ|m| / r_min`, where `r_min = max(ε, quantum)` is the smallest
    /// nonzero separation the hardware can represent (the zero-distance
    /// guard removes r = 0). The 5 % margin covers LNS round-off.
    fn bounds(&self, jmass: &[f64]) -> (f64, f64) {
        let msum: f64 = jmass.iter().map(|m| m.abs()).sum();
        let r_min = self.eps.max(self.g5.quantum());
        (1.05 * msum / (r_min * r_min), 1.05 * msum / r_min)
    }

    fn validate(f: &[Force], acc_bound: f64, pot_bound: f64) -> Result<(), DeviceError> {
        for (index, w) in f.iter().enumerate() {
            for (value, bound) in [
                (w.acc.x, acc_bound),
                (w.acc.y, acc_bound),
                (w.acc.z, acc_bound),
                (w.pot, pot_bound),
            ] {
                if !value.is_finite() {
                    return Err(DeviceError::InvalidForce { index, value, bound: f64::INFINITY });
                }
                if value.abs() > bound {
                    return Err(DeviceError::InvalidForce { index, value, bound });
                }
            }
        }
        Ok(())
    }

    /// One attempt: (re)load the j-set if asked, run the call(s),
    /// validate the result.
    fn attempt(
        &mut self,
        jpos: &[Vec3],
        jmass: &[f64],
        xi: &[Vec3],
        load: bool,
        acc_bound: f64,
        pot_bound: f64,
    ) -> Result<Vec<Force>, DeviceError> {
        let cap = self.g5.jmem_capacity();
        if cap == 0 {
            return Err(DeviceError::NoBoardsLeft);
        }
        let forces = if jpos.len() <= cap {
            if load {
                self.g5.set_j_particles(jpos, jmass);
            }
            self.g5.try_force_on(xi)?
        } else {
            // chunk the j-set through memory, merging partials on the
            // host; validation sees the merged result (corruption
            // survives merging: non-finite stays non-finite, saturated
            // values stay over the bound)
            let mut total = vec![Force::ZERO; xi.len()];
            let mut start = 0;
            while start < jpos.len() {
                let end = (start + cap).min(jpos.len());
                self.g5.set_j_particles(&jpos[start..end], &jmass[start..end]);
                for (t, p) in total.iter_mut().zip(self.g5.try_force_on(xi)?) {
                    *t = t.merged(p);
                }
                start = end;
            }
            total
        };
        Self::validate(&forces, acc_bound, pot_bound)?;
        Ok(forces)
    }

    /// The retry / backoff / quarantine loop around [`attempt`].
    /// `resident` marks the j-set as already loaded, so the first
    /// attempt skips the transfer and only retries re-drive it.
    fn recovering_call(
        &mut self,
        jpos: &[Vec3],
        jmass: &[f64],
        xi: &[Vec3],
        resident: bool,
    ) -> Result<Vec<Force>, DeviceError> {
        let (acc_bound, pot_bound) = self.bounds(jmass);
        let mut attempts = 0u32;
        loop {
            let load = !(resident && attempts == 0);
            if load && attempts > 0 {
                self.stats.j_reloads += 1;
            }
            let err = match self.attempt(jpos, jmass, xi, load, acc_bound, pot_bound) {
                Ok(f) => return Ok(f),
                Err(e) => e,
            };
            match &err {
                DeviceError::InvalidForce { .. } => self.stats.validation_failures += 1,
                _ => self.stats.device_errors += 1,
            }
            attempts += 1;
            if attempts > self.retry.max_retries {
                return Err(DeviceError::RetriesExhausted { attempts, last: err.to_string() });
            }
            self.stats.retries += 1;
            self.backoff(attempts);
            if attempts > self.retry.quarantine_after {
                // persistent fault: scan the hardware and cut out
                // whatever the self-test convicts
                let report = self.g5.self_test();
                for (b, p) in report.stuck_pipes {
                    self.g5.quarantine_pipe(b, p);
                    self.stats.quarantined_pipes += 1;
                }
                for b in report.dead_boards {
                    self.stats.quarantined_boards += 1;
                    if self.g5.quarantine_board(b) == 0 {
                        return Err(DeviceError::NoBoardsLeft);
                    }
                }
            }
        }
    }

    /// Exponential backoff before retry `attempt` (1-based).
    fn backoff(&mut self, attempt: u32) {
        if self.retry.backoff_base_s <= 0.0 {
            return;
        }
        let delay = (self.retry.backoff_base_s * f64::exp2((attempt - 1) as f64))
            .min(self.retry.backoff_cap_s);
        self.stats.backoff_s += delay;
        std::thread::sleep(std::time::Duration::from_secs_f64(delay));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Grape5Config;
    use crate::fault::{BoardDropout, FaultConfig, StuckPipe};

    #[test]
    fn window_covers_and_pads() {
        let pos = vec![Vec3::new(-1.0, 0.0, 0.5), Vec3::new(2.0, -3.0, 1.0)];
        let (lo, hi) = bounding_window(&pos).unwrap();
        assert!(lo < -3.0 && hi > 2.0);
        assert!((hi - lo) > 5.0);
    }

    #[test]
    fn window_degenerate_point_still_valid() {
        let pos = vec![Vec3::new(1.0, 1.0, 1.0)];
        let (lo, hi) = bounding_window(&pos).unwrap();
        assert!(lo < 1.0 && hi > 1.0);
    }

    #[test]
    fn window_rejects_non_finite_positions() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let pos = vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, bad, 0.0)];
            assert_eq!(
                bounding_window(&pos).unwrap_err(),
                DeviceError::NonFinitePosition { index: 1 }
            );
        }
        let mut g5 = Grape5::open(Grape5Config::paper_exact());
        let pos = vec![Vec3::new(f64::NAN, 0.0, 0.0)];
        assert!(matches!(
            DeviceSession::try_open(&mut g5, &pos, 0.01),
            Err(DeviceError::NonFinitePosition { index: 0 })
        ));
    }

    #[test]
    fn session_matches_manual_protocol() {
        let pos: Vec<Vec3> = (0..300)
            .map(|k| {
                let t = k as f64 * 0.1;
                Vec3::new(t.sin(), (1.3 * t).cos(), 0.3 * t.sin() * t.cos())
            })
            .collect();
        let mass = vec![1.0 / 300.0; 300];
        let xi = &pos[..64];

        let mut a = Grape5::open(Grape5Config::paper_exact());
        let (lo, hi) = bounding_window(&pos).unwrap();
        a.set_range(lo, hi);
        a.set_eps(0.01);
        a.set_j_particles(&pos, &mass);
        let manual = a.force_on(xi);

        let mut b = Grape5::open(Grape5Config::paper_exact());
        let mut s = DeviceSession::open(&mut b, &pos, 0.01);
        let via_session = s.force_for(&pos, &mass, xi);

        for (m, v) in manual.iter().zip(&via_session) {
            assert_eq!(m.acc, v.acc);
            assert_eq!(m.pot, v.pot);
        }
    }

    #[test]
    fn session_chunks_oversized_j_sets() {
        let cfg = Grape5Config { jmem_capacity: 64, ..Grape5Config::paper_exact() };
        let pos: Vec<Vec3> = (0..500)
            .map(|k| {
                let t = k as f64 * 0.07;
                Vec3::new(t.cos(), (0.7 * t).sin(), (0.3 * t).cos())
            })
            .collect();
        let mass = vec![2e-3; 500];
        let xi = &pos[..32];

        let mut small = Grape5::open(cfg);
        let mut s = DeviceSession::open(&mut small, &pos, 0.02);
        assert!(pos.len() > s.jmem_capacity());
        let chunked = s.force_for(&pos, &mass, xi);

        let mut big = Grape5::open(Grape5Config::paper_exact());
        let mut s2 = DeviceSession::open(&mut big, &pos, 0.02);
        let whole = s2.force_for(&pos, &mass, xi);

        for (c, w) in chunked.iter().zip(&whole) {
            assert!((c.acc - w.acc).norm() <= 1e-12 * w.acc.norm().max(1.0));
            assert!((c.pot - w.pot).abs() <= 1e-12 * w.pot.abs().max(1.0));
        }
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    fn cloud(n: usize) -> (Vec<Vec3>, Vec<f64>) {
        let pos = (0..n)
            .map(|k| {
                let t = k as f64 * 0.13;
                Vec3::new(t.sin(), (0.6 * t).cos(), (0.31 * t).sin() * 0.5)
            })
            .collect();
        (pos, vec![1.0 / n as f64; n])
    }

    /// Forces under each fault class, recovered, must equal the
    /// fault-free forces bit for bit (transient classes) or to fixed-
    /// point re-grouping accuracy (board dropout).
    #[test]
    fn recovery_restores_fault_free_forces() {
        let (pos, mass) = cloud(200);
        let mut clean_dev = Grape5::open(Grape5Config::paper_exact());
        let mut clean = DeviceSession::open(&mut clean_dev, &pos, 0.01);
        let reference = clean.try_force_for(&pos, &mass, &pos).unwrap();
        assert!(!clean.recovery_stats().any());

        let transient_like = [
            FaultConfig::transient(3, 0.8),
            FaultConfig::jmem(4, 0.8),
            FaultConfig::stuck(5, StuckPipe { after_call: 0, board: 1, pipe: 7 }),
        ];
        for cfg in transient_like {
            let mut dev = Grape5::open(Grape5Config::paper_exact());
            dev.set_fault_injector(cfg);
            let mut s = DeviceSession::open(&mut dev, &pos, 0.01)
                .with_retry(RetryPolicy { max_retries: 30, ..RetryPolicy::no_wait() });
            let recovered = s.try_force_for(&pos, &mass, &pos).unwrap();
            assert!(s.recovery_stats().retries > 0, "{cfg:?} never exercised recovery");
            assert_eq!(recovered, reference, "{cfg:?} not bit-identical after recovery");
        }

        // whole-board dropout: the machine degrades to one board; the
        // re-split changes fixed-point accumulation grouping, so equality
        // is to rounding, not bitwise
        let mut dev = Grape5::open(Grape5Config::paper_exact());
        dev.set_fault_injector(FaultConfig::dropout(6, BoardDropout { after_call: 0, board: 0 }));
        let mut s = DeviceSession::open(&mut dev, &pos, 0.01).with_retry(RetryPolicy::no_wait());
        let recovered = s.try_force_for(&pos, &mass, &pos).unwrap();
        let st = s.recovery_stats();
        assert_eq!(st.quarantined_boards, 1);
        for (r, w) in recovered.iter().zip(&reference) {
            assert!((r.acc - w.acc).norm() <= 1e-12 * w.acc.norm().max(1.0));
            assert!((r.pot - w.pot).abs() <= 1e-12 * w.pot.abs().max(1.0));
        }
        assert_eq!(dev.active_boards(), 1);
    }

    #[test]
    fn resident_path_recovers_with_reload() {
        let (pos, mass) = cloud(150);
        let mut clean_dev = Grape5::open(Grape5Config::paper_exact());
        let mut clean = DeviceSession::open(&mut clean_dev, &pos, 0.01);
        clean.load_j(&pos, &mass);
        let reference = clean.try_force_on(&pos).unwrap();

        let mut dev = Grape5::open(Grape5Config::paper_exact());
        dev.set_fault_injector(FaultConfig::jmem(11, 1.0)); // every load corrupted...
        let mut s = DeviceSession::open(&mut dev, &pos, 0.01).with_retry(RetryPolicy {
            max_retries: 40, // ...so recovery needs the lucky uncorrupted retry
            ..RetryPolicy::no_wait()
        });
        s.load_j(&pos, &mass);
        let out = s.try_force_on(&pos);
        // rate 1.0 corrupts every reload, but the corrupted word is
        // drawn fresh each time; the call only succeeds if some reload's
        // corrupted mass aliases the zero-distance guard. Either outcome
        // is legitimate; what matters is that reloads were driven and
        // no garbage ever escaped validation.
        if let Ok(f) = out {
            assert_eq!(f, reference);
        }
        assert!(s.recovery_stats().j_reloads > 0);

        // at a survivable rate the resident path heals exactly
        let mut dev2 = Grape5::open(Grape5Config::paper_exact());
        dev2.set_fault_injector(FaultConfig::jmem(12, 0.5));
        let mut s2 = DeviceSession::open(&mut dev2, &pos, 0.01)
            .with_retry(RetryPolicy { max_retries: 20, ..RetryPolicy::no_wait() });
        s2.load_j(&pos, &mass);
        for _ in 0..5 {
            assert_eq!(s2.try_force_on(&pos).unwrap(), reference);
        }
    }

    #[test]
    fn retries_exhausted_is_an_error_not_a_crash() {
        let (pos, mass) = cloud(60);
        let mut dev = Grape5::open(Grape5Config::paper_exact());
        // transient corruption on every call: quarantine cannot help
        // (the self-test only convicts persistent faults) and every
        // retry fails, so recovery must give up with a typed error
        dev.set_fault_injector(FaultConfig::transient(1, 1.0));
        let mut s = DeviceSession::open(&mut dev, &pos, 0.01)
            .with_retry(RetryPolicy { max_retries: 3, ..RetryPolicy::no_wait() });
        let err = s.try_force_for(&pos, &mass, &pos).unwrap_err();
        assert!(matches!(err, DeviceError::RetriesExhausted { attempts: 4, .. }), "{err}");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut dev = Grape5::open(Grape5Config::paper_exact());
        let pos = vec![Vec3::ZERO];
        let mut s = DeviceSession::open(&mut dev, &pos, 0.01).with_retry(RetryPolicy {
            backoff_base_s: 1e-6,
            backoff_cap_s: 3e-6,
            ..RetryPolicy::default()
        });
        s.backoff(1);
        s.backoff(2);
        s.backoff(3); // 4e-6 capped to 3e-6
        assert!((s.recovery_stats().backoff_s - 6e-6).abs() < 1e-12);
    }
}
