//! Per-step device session: the host-library protocol around a batch of
//! force calls.
//!
//! Every force computation against GRAPE-5 repeats the same preamble —
//! declare the coordinate window (`g5_set_range`), set the softening,
//! then stream j-sets through the board memory, chunking any set larger
//! than the memory. [`DeviceSession`] owns that protocol for one
//! evaluation (one simulation step), so every backend drives the device
//! through the same code path instead of re-implementing the
//! window/eps/chunking dance.
//!
//! A session borrows the device mutably for its lifetime: the range and
//! softening it declares stay valid exactly as long as the session
//! lives, which is the invariant the hardware requires (changing the
//! range invalidates loaded j-particles).

use crate::pipeline::Force;
use crate::system::Grape5;
use g5util::vec3::Vec3;
use rayon::prelude::*;

/// A padded scalar window covering every coordinate — what the host
/// library passes to `g5_set_range` each step as the system evolves.
pub fn bounding_window(pos: &[Vec3]) -> (f64, f64) {
    let (lo, hi) = pos
        .par_iter()
        .map(|p| (p.min_component(), p.max_component()))
        .reduce(|| (f64::INFINITY, f64::NEG_INFINITY), |a, b| (a.0.min(b.0), a.1.max(b.1)));
    let pad = ((hi - lo) * 0.01).max(1e-12);
    (lo - pad, hi + pad)
}

/// One step's worth of device protocol: range + softening declared
/// once, j-memory chunking handled per force call.
pub struct DeviceSession<'a> {
    g5: &'a mut Grape5,
}

impl<'a> DeviceSession<'a> {
    /// Open a session for a snapshot: declare the bounding window of
    /// `pos` and the softening, then hand back the configured device.
    pub fn open(g5: &'a mut Grape5, pos: &[Vec3], eps: f64) -> DeviceSession<'a> {
        let (lo, hi) = bounding_window(pos);
        g5.set_range(lo, hi);
        g5.set_eps(eps);
        DeviceSession { g5 }
    }

    /// Total j-particles the boards can hold at once.
    pub fn jmem_capacity(&self) -> usize {
        self.g5.jmem_capacity()
    }

    /// Load a j-set that fits the board memory, keeping it resident for
    /// subsequent [`force_on`](Self::force_on) calls.
    ///
    /// # Panics
    /// If the set exceeds [`jmem_capacity`](Self::jmem_capacity); use
    /// [`force_for`](Self::force_for) for arbitrary sizes.
    pub fn load_j(&mut self, jpos: &[Vec3], jmass: &[f64]) {
        self.g5.set_j_particles(jpos, jmass);
    }

    /// Forces on `xi` from the resident j-set.
    pub fn force_on(&mut self, xi: &[Vec3]) -> Vec<Force> {
        self.g5.force_on(xi)
    }

    /// Forces on `xi` from an arbitrary j-set: loads it whole when it
    /// fits the board memory, otherwise chunks it through in passes and
    /// sums the partials on the host.
    pub fn force_for(&mut self, jpos: &[Vec3], jmass: &[f64], xi: &[Vec3]) -> Vec<Force> {
        if jpos.len() <= self.g5.jmem_capacity() {
            self.g5.set_j_particles(jpos, jmass);
            self.g5.force_on(xi)
        } else {
            self.g5.force_on_chunked(jpos, jmass, xi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Grape5Config;

    #[test]
    fn window_covers_and_pads() {
        let pos = vec![Vec3::new(-1.0, 0.0, 0.5), Vec3::new(2.0, -3.0, 1.0)];
        let (lo, hi) = bounding_window(&pos);
        assert!(lo < -3.0 && hi > 2.0);
        assert!((hi - lo) > 5.0);
    }

    #[test]
    fn window_degenerate_point_still_valid() {
        let pos = vec![Vec3::new(1.0, 1.0, 1.0)];
        let (lo, hi) = bounding_window(&pos);
        assert!(lo < 1.0 && hi > 1.0);
    }

    #[test]
    fn session_matches_manual_protocol() {
        let pos: Vec<Vec3> = (0..300)
            .map(|k| {
                let t = k as f64 * 0.1;
                Vec3::new(t.sin(), (1.3 * t).cos(), 0.3 * t.sin() * t.cos())
            })
            .collect();
        let mass = vec![1.0 / 300.0; 300];
        let xi = &pos[..64];

        let mut a = Grape5::open(Grape5Config::paper_exact());
        let (lo, hi) = bounding_window(&pos);
        a.set_range(lo, hi);
        a.set_eps(0.01);
        a.set_j_particles(&pos, &mass);
        let manual = a.force_on(xi);

        let mut b = Grape5::open(Grape5Config::paper_exact());
        let mut s = DeviceSession::open(&mut b, &pos, 0.01);
        let via_session = s.force_for(&pos, &mass, xi);

        for (m, v) in manual.iter().zip(&via_session) {
            assert_eq!(m.acc, v.acc);
            assert_eq!(m.pot, v.pot);
        }
    }

    #[test]
    fn session_chunks_oversized_j_sets() {
        let cfg = Grape5Config { jmem_capacity: 64, ..Grape5Config::paper_exact() };
        let pos: Vec<Vec3> = (0..500)
            .map(|k| {
                let t = k as f64 * 0.07;
                Vec3::new(t.cos(), (0.7 * t).sin(), (0.3 * t).cos())
            })
            .collect();
        let mass = vec![2e-3; 500];
        let xi = &pos[..32];

        let mut small = Grape5::open(cfg);
        let mut s = DeviceSession::open(&mut small, &pos, 0.02);
        assert!(pos.len() > s.jmem_capacity());
        let chunked = s.force_for(&pos, &mass, xi);

        let mut big = Grape5::open(Grape5Config::paper_exact());
        let mut s2 = DeviceSession::open(&mut big, &pos, 0.02);
        let whole = s2.force_for(&pos, &mass, xi);

        for (c, w) in chunked.iter().zip(&whole) {
            assert!((c.acc - w.acc).norm() <= 1e-12 * w.acc.norm().max(1.0));
            assert!((c.pot - w.pot).abs() <= 1e-12 * w.pot.abs().max(1.0));
        }
    }
}
