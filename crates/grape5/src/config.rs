//! Configuration of the simulated GRAPE-5 system.

use g5util::fixed::FixedFormat;
use g5util::lns::LnsConfig;
use serde::{Deserialize, Serialize};

/// How the pipeline arithmetic is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArithMode {
    /// Bit-faithful hardware arithmetic: fixed-point positions, LNS
    /// intermediates, fixed-point accumulation. Slow but reproduces the
    /// ≈ 0.3 % pairwise error of §2 of the paper. Use for accuracy
    /// experiments and validation.
    Lns,
    /// `f64` arithmetic with only the position quantization applied.
    /// Fast; identical cycle/transfer accounting. Use for long
    /// simulations where hardware round-off is irrelevant to the
    /// quantities being measured.
    Exact,
}

/// Full description of a GRAPE-5 installation.
///
/// Defaults reproduce the paper's system: 2 processor boards × 8 G5
/// chips × 2 pipelines at 90 MHz (⇒ 32 pipelines, peak
/// 32 × 90 MHz × 38 ops = 109.44 Gflops), 15 MHz board/interface logic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grape5Config {
    /// Number of processor boards (paper: 2).
    pub boards: usize,
    /// G5 chips per board (paper: 8).
    pub chips_per_board: usize,
    /// Force pipelines per chip (paper: 2).
    pub pipes_per_chip: usize,
    /// Pipeline clock in Hz (paper: 90 MHz).
    pub chip_clock_hz: f64,
    /// Board-logic / host-interface clock in Hz (paper: 15 MHz). One
    /// 32-bit word moves per interface clock per board.
    pub iface_word_hz: f64,
    /// Fixed per-call host-interface latency in seconds (driver call,
    /// DMA setup).
    pub call_latency_s: f64,
    /// Pipeline fill latency in clock cycles, charged once per
    /// i-particle chunk.
    pub pipeline_latency_cycles: u64,
    /// Capacity of one board's j-particle memory, in particles.
    pub jmem_capacity: usize,
    /// Word format of the logarithmic pipeline intermediates.
    pub lns: LnsConfig,
    /// Bits of the fixed-point coordinate words (positions after
    /// `set_range` scaling).
    pub coord_bits: u32,
    /// Format of the on-board force/potential accumulators, relative to
    /// the declared force scale.
    pub acc_format: FixedFormat,
    /// Arithmetic simulation mode.
    pub mode: ArithMode,
    /// Price j-memory loads as double-buffered: the modeled clock hides
    /// j-load transfer words under pipeline time
    /// ([`crate::clock::ClockReport::hidden_s`]), the way a host that
    /// stages the next step's j-set while this step's groups are still
    /// streaming overlaps the reload with evaluation. Off by default —
    /// the paper-era library charged the load serially — and purely a
    /// pricing-mode change: recorded counters and computed forces are
    /// identical either way. (`serde(default)` keeps configs serialized
    /// before this flag loadable.)
    #[serde(default)]
    pub double_buffer_j: bool,
    /// Virtual-multiple-pipeline scheduling: when fewer i-particles
    /// than pipelines are submitted, idle pipelines take disjoint
    /// j-subsets and an on-board adder combines the partials, so a
    /// call costs `≈ ni·nj/pipes` cycles instead of `nj`. (The VMP
    /// technique of the GRAPE lineage; off by default to match the
    /// plain schedule assumed by the paper's timing.)
    pub vmp: bool,
}

impl Default for Grape5Config {
    fn default() -> Self {
        Grape5Config::paper()
    }
}

impl Grape5Config {
    /// The exact configuration of the paper's system (§2).
    pub fn paper() -> Self {
        Grape5Config {
            boards: 2,
            chips_per_board: 8,
            pipes_per_chip: 2,
            chip_clock_hz: 90.0e6,
            iface_word_hz: 15.0e6,
            call_latency_s: 100.0e-6,
            pipeline_latency_cycles: 56,
            jmem_capacity: 1 << 20,
            lns: LnsConfig::GRAPE5,
            coord_bits: 32,
            // 64-bit accumulator, 2^-32 quantum relative to force scale:
            // dynamic range ±2^31 force units with ~2e-10 resolution.
            acc_format: FixedFormat { bits: 64, frac_bits: 32 },
            mode: ArithMode::Lns,
            double_buffer_j: false,
            vmp: false,
        }
    }

    /// Paper hardware but `f64` pipeline arithmetic (fast simulation).
    pub fn paper_exact() -> Self {
        Grape5Config { mode: ArithMode::Exact, ..Grape5Config::paper() }
    }

    /// A single-board half system, as sold commercially (§4).
    pub fn single_board() -> Self {
        Grape5Config { boards: 1, ..Grape5Config::paper() }
    }

    /// Pipelines per board.
    #[inline]
    pub fn pipes_per_board(&self) -> usize {
        self.chips_per_board * self.pipes_per_chip
    }

    /// Total pipelines in the system (paper: 32).
    #[inline]
    pub fn total_pipes(&self) -> usize {
        self.boards * self.pipes_per_board()
    }

    /// Peak interactions per second with every pipeline busy.
    #[inline]
    pub fn peak_interactions_per_s(&self) -> f64 {
        self.total_pipes() as f64 * self.chip_clock_hz
    }

    /// Theoretical peak in flops under the 38-op convention
    /// (paper: 109.44 Gflops).
    #[inline]
    pub fn peak_flops(&self) -> f64 {
        self.peak_interactions_per_s() * 38.0
    }

    /// Sanity-check the configuration, panicking with a description of
    /// the first problem found.
    pub fn validate(&self) {
        assert!(self.boards > 0, "no boards");
        assert!(self.chips_per_board > 0, "no chips");
        assert!(self.pipes_per_chip > 0, "no pipelines");
        assert!(self.chip_clock_hz > 0.0, "non-positive chip clock");
        assert!(self.iface_word_hz > 0.0, "non-positive interface clock");
        assert!(self.jmem_capacity > 0, "empty j-memory");
        assert!((4..=62).contains(&self.coord_bits), "coordinate width out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_section_2() {
        let c = Grape5Config::paper();
        c.validate();
        assert_eq!(c.total_pipes(), 32);
        assert_eq!(c.pipes_per_board(), 16);
        // peak 109.44 Gflops as stated in the paper
        assert!((c.peak_flops() / 1e9 - 109.44).abs() < 1e-9);
    }

    #[test]
    fn single_board_is_half_peak() {
        let c = Grape5Config::single_board();
        assert!((c.peak_flops() - Grape5Config::paper().peak_flops() / 2.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "no boards")]
    fn validate_rejects_zero_boards() {
        Grape5Config { boards: 0, ..Grape5Config::paper() }.validate();
    }
}
