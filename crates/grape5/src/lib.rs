#![warn(missing_docs)]
//! # grape5 — a functional + timing simulator of the GRAPE-5 system
//!
//! GRAPE-5 ("GRAvity PipE 5") is the special-purpose computer the paper
//! runs on: 2 processor boards, each carrying 8 custom G5 chips (2
//! force pipelines per chip, 90 MHz) and a j-particle memory, attached
//! through host-interface boards to a workstation. The pipelines
//! evaluate softened pairwise gravity
//!
//! ```text
//! a_i = Σ_j m_j (x_j − x_i) / (|x_j − x_i|² + ε²)^(3/2)
//! p_i = Σ_j m_j / (|x_j − x_i|² + ε²)^(1/2)
//! ```
//!
//! in reduced-precision hardware arithmetic: positions quantized to
//! fixed point over a host-declared window, intermediates in a
//! logarithmic number system (≈ 0.3 % pairwise force error), partial
//! forces accumulated in wide fixed point.
//!
//! This crate reproduces the system at two coupled levels:
//!
//! * **functional** — [`pipeline::G5Pipeline`] computes forces with the
//!   same quantizations the hardware applies, so error statistics match
//!   §2 of the paper; an `Exact` mode keeps only the position
//!   quantization and runs at `f64` speed for long simulations.
//! * **timing** — [`clock::ClockAccounting`] counts pipeline cycles and
//!   interface words exactly as the board schedule implies, and
//!   converts them to modeled wall-clock on the real 90 MHz / 15 MHz
//!   parts, which is how the paper-scale Gflops numbers are
//!   regenerated without owning the hardware.
//!
//! The structure mirrors Figure 1 of the paper: [`board::ProcessorBoard`]
//! (8 chips + j-memory) → [`system::Grape5`] (2 boards + host
//! interface) → host code in the `treegrape` crate.

pub mod board;
pub mod clock;
pub mod cluster;
pub mod config;
pub mod cost;
pub mod cutoff;
pub mod fault;
pub mod lanes;
pub mod pipeline;
pub mod pool;
pub mod session;
pub mod system;

pub use clock::{ClockAccounting, ClockReport};
pub use cluster::{ClusterSession, ProbeOutcome, ShardHealth};
pub use config::{ArithMode, Grape5Config};
pub use cost::{CostModel, PricePerformance};
pub use cutoff::CutoffTable;
pub use fault::{splitmix, BoardDropout, DeviceError, FaultConfig, StuckPipe};
pub use lanes::{detect_lane_path, LanePath};
pub use pipeline::{Force, G5Pipeline};
pub use pool::{DevicePool, PoolError, PoolLease, PoolUsage};
pub use session::{bounding_window, DeviceSession, RecoveryStats, RetryPolicy};
pub use system::{Grape5, SelfTest};
