//! Pooled device capacity for multi-tenant serving.
//!
//! The real GRAPE systems were shared facilities (GRAPE-6 ran as a
//! multi-user resource); keeping the $7.0/Mflops economics honest means
//! keeping the boards busy with *many* concurrent workloads. A
//! [`DevicePool`] is the capacity ledger a job service admits against:
//! it tracks two aggregate budgets —
//!
//! * **j-memory slots** — how many j-particles the pooled boards can
//!   hold resident at once (each board contributes
//!   [`crate::Grape5Config::jmem_capacity`]);
//! * **resident particles** — how many i-particles of host state the
//!   service is willing to keep in flight simultaneously (bounding host
//!   RSS, not device memory).
//!
//! Admission takes a [`PoolLease`]; the lease returns its words to the
//! pool on drop (RAII), so no error path can leak capacity. The pool
//! is a ledger, not an allocator: it never touches a device, it only
//! answers "may one more job enter?" deterministically.

use std::sync::{Arc, Mutex};

/// Why a lease request cannot be granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The request exceeds the pool's *total* capacity: it can never be
    /// granted, no matter what completes. Callers should reject the
    /// job rather than queue it forever.
    NeverFits {
        /// Which budget is impossible ("jmem" or "resident").
        budget: &'static str,
        /// Slots requested.
        asked: usize,
        /// The pool's total for that budget.
        total: usize,
    },
    /// The request fits the pool but not the currently free capacity;
    /// retry after a lease is released.
    Exhausted {
        /// Which budget ran out ("jmem" or "resident").
        budget: &'static str,
        /// Slots requested.
        asked: usize,
        /// Slots currently free in that budget.
        free: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::NeverFits { budget, asked, total } => {
                write!(f, "{budget} request {asked} exceeds pool total {total}")
            }
            PoolError::Exhausted { budget, asked, free } => {
                write!(f, "{budget} request {asked} exceeds free {free}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

#[derive(Debug)]
struct PoolInner {
    jmem_total: usize,
    jmem_used: usize,
    resident_total: usize,
    resident_used: usize,
    leases: usize,
}

/// Aggregate j-memory / resident-particle capacity shared by every
/// admitted job. Clone-cheap: clones share the same ledger.
#[derive(Debug, Clone)]
pub struct DevicePool {
    inner: Arc<Mutex<PoolInner>>,
}

/// A granted slice of pool capacity; returns it on drop.
#[derive(Debug)]
pub struct PoolLease {
    inner: Arc<Mutex<PoolInner>>,
    jmem: usize,
    resident: usize,
}

/// A point-in-time occupancy snapshot, for reports and fairness audits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolUsage {
    /// j-memory slots currently leased.
    pub jmem_used: usize,
    /// Total j-memory slots.
    pub jmem_total: usize,
    /// Resident particles currently leased.
    pub resident_used: usize,
    /// Total resident-particle budget.
    pub resident_total: usize,
    /// Outstanding leases.
    pub leases: usize,
}

impl DevicePool {
    /// A pool with `jmem_total` j-memory slots and `resident_total`
    /// resident-particle budget.
    pub fn new(jmem_total: usize, resident_total: usize) -> DevicePool {
        assert!(jmem_total > 0, "empty j-memory pool");
        assert!(resident_total > 0, "empty resident budget");
        DevicePool {
            inner: Arc::new(Mutex::new(PoolInner {
                jmem_total,
                jmem_used: 0,
                resident_total,
                resident_used: 0,
                leases: 0,
            })),
        }
    }

    /// A pool sized as `boards` paper boards ([`crate::Grape5Config::paper`]
    /// j-memory per board) with a resident budget of `resident_total`.
    pub fn of_boards(boards: usize, resident_total: usize) -> DevicePool {
        let cfg = crate::Grape5Config::paper();
        DevicePool::new(boards * cfg.jmem_capacity, resident_total)
    }

    /// Try to lease `jmem` j-memory slots and `resident` resident
    /// particles. `Err(NeverFits)` means the request exceeds the pool
    /// outright; `Err(Exhausted)` means try again after a release.
    pub fn try_lease(&self, jmem: usize, resident: usize) -> Result<PoolLease, PoolError> {
        let mut g = self.inner.lock().unwrap();
        if jmem > g.jmem_total {
            return Err(PoolError::NeverFits { budget: "jmem", asked: jmem, total: g.jmem_total });
        }
        if resident > g.resident_total {
            return Err(PoolError::NeverFits {
                budget: "resident",
                asked: resident,
                total: g.resident_total,
            });
        }
        let jmem_free = g.jmem_total - g.jmem_used;
        if jmem > jmem_free {
            return Err(PoolError::Exhausted { budget: "jmem", asked: jmem, free: jmem_free });
        }
        let resident_free = g.resident_total - g.resident_used;
        if resident > resident_free {
            return Err(PoolError::Exhausted {
                budget: "resident",
                asked: resident,
                free: resident_free,
            });
        }
        g.jmem_used += jmem;
        g.resident_used += resident;
        g.leases += 1;
        Ok(PoolLease { inner: Arc::clone(&self.inner), jmem, resident })
    }

    /// Current occupancy.
    pub fn usage(&self) -> PoolUsage {
        let g = self.inner.lock().unwrap();
        PoolUsage {
            jmem_used: g.jmem_used,
            jmem_total: g.jmem_total,
            resident_used: g.resident_used,
            resident_total: g.resident_total,
            leases: g.leases,
        }
    }
}

impl PoolLease {
    /// j-memory slots this lease holds.
    pub fn jmem(&self) -> usize {
        self.jmem
    }

    /// Resident particles this lease holds.
    pub fn resident(&self) -> usize {
        self.resident
    }
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        let mut g = self.inner.lock().unwrap();
        g.jmem_used -= self.jmem;
        g.resident_used -= self.resident;
        g.leases -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_and_release_roundtrip() {
        let pool = DevicePool::new(100, 50);
        let a = pool.try_lease(60, 20).unwrap();
        assert_eq!(pool.usage().jmem_used, 60);
        assert_eq!(pool.usage().leases, 1);
        let b = pool.try_lease(40, 30).unwrap();
        assert_eq!(pool.usage().jmem_used, 100);
        assert_eq!(pool.usage().resident_used, 50);
        drop(a);
        assert_eq!(pool.usage().jmem_used, 40);
        assert_eq!(pool.usage().leases, 1);
        drop(b);
        assert_eq!(
            pool.usage(),
            PoolUsage {
                jmem_used: 0,
                jmem_total: 100,
                resident_used: 0,
                resident_total: 50,
                leases: 0,
            }
        );
    }

    #[test]
    fn exhausted_vs_never_fits() {
        let pool = DevicePool::new(100, 50);
        let _hold = pool.try_lease(90, 10).unwrap();
        match pool.try_lease(20, 1) {
            Err(PoolError::Exhausted { budget: "jmem", asked: 20, free: 10 }) => {}
            other => panic!("expected jmem exhaustion, got {other:?}"),
        }
        match pool.try_lease(101, 1) {
            Err(PoolError::NeverFits { budget: "jmem", asked: 101, total: 100 }) => {}
            other => panic!("expected jmem never-fits, got {other:?}"),
        }
        match pool.try_lease(1, 51) {
            Err(PoolError::NeverFits { budget: "resident", .. }) => {}
            other => panic!("expected resident never-fits, got {other:?}"),
        }
    }

    #[test]
    fn error_paths_leak_nothing() {
        let pool = DevicePool::new(10, 10);
        for _ in 0..100 {
            let ok = pool.try_lease(7, 7).unwrap();
            assert!(pool.try_lease(7, 7).is_err());
            drop(ok);
        }
        assert_eq!(pool.usage().leases, 0);
        assert_eq!(pool.usage().jmem_used, 0);
    }

    #[test]
    fn concurrent_leasing_never_oversubscribes() {
        let pool = DevicePool::new(64, 64);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = pool.clone();
            handles.push(std::thread::spawn(move || {
                let mut granted = 0usize;
                for _ in 0..200 {
                    if let Ok(lease) = p.try_lease(16, 16) {
                        let u = p.usage();
                        assert!(u.jmem_used <= u.jmem_total, "oversubscribed: {u:?}");
                        granted += 1;
                        drop(lease);
                    }
                }
                granted
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "no lease ever granted under contention");
        assert_eq!(pool.usage().leases, 0);
    }

    #[test]
    fn of_boards_sizes_by_paper_jmem() {
        let pool = DevicePool::of_boards(3, 10);
        assert_eq!(pool.usage().jmem_total, 3 << 20);
    }
}
