//! Deterministic fault injection and device-error taxonomy.
//!
//! A production-scale GRAPE installation loses pipelines and boards
//! mid-run (Makino et al. describe exactly this for GRAPE-6): DRAM bits
//! flip during j-memory loads, a pipeline's arithmetic unit goes
//! stuck-at, a whole board stops answering DMA. The host library has to
//! *detect* the resulting garbage, *retry* what is transient,
//! *quarantine* what is persistent, and keep the run alive. This module
//! provides the device half of that story for the simulator: a seeded,
//! fully reproducible fault process that [`crate::Grape5`] consults on
//! every j-load and force call.
//!
//! Four fault classes are modeled, matching the failure signatures of
//! the real hardware stack:
//!
//! | class | where it fires | signature on the host |
//! |---|---|---|
//! | [transient readback corruption](FaultConfig::transient_rate) | interface readback of one force word | non-finite component (exponent bits stuck high) |
//! | [j-memory load corruption](FaultConfig::jmem_corrupt_rate) | one word of one `set_j_particles` DMA | forces exceed the host's magnitude bound (saturated accumulators) |
//! | [stuck pipeline](FaultConfig::stuck_pipe) | every lane served by one pipe, persistently | non-finite components on a fixed lane stride |
//! | [board dropout](FaultConfig::board_dropout) | the whole board, persistently | the call errors with [`DeviceError::BoardTimeout`] |
//!
//! Every decision is drawn from a seeded generator whose full state can
//! be serialized ([`FaultState::to_words`]) into a checkpoint manifest
//! and restored, so an interrupted faulty run resumes with exactly the
//! faults the uninterrupted run would have seen.

use std::error::Error;
use std::fmt;

// ----------------------------------------------------------------------
// Device errors
// ----------------------------------------------------------------------

/// A typed failure surfaced by the device layer or its host-side
/// validation.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// An input position was NaN/inf: declaring a range over it would
    /// silently poison the coordinate window for every particle.
    NonFinitePosition {
        /// Index of the offending position in the input slice.
        index: usize,
    },
    /// A board stopped answering within the DMA timeout.
    BoardTimeout {
        /// Index of the unresponsive board.
        board: usize,
    },
    /// A returned force failed host-side validation (non-finite, or
    /// outside the magnitude bound the j-set implies).
    InvalidForce {
        /// i-particle index of the bad force word.
        index: usize,
        /// The offending component value.
        value: f64,
        /// The bound it violated (infinite bound = finiteness check).
        bound: f64,
    },
    /// Recovery gave up: every retry (including post-quarantine ones)
    /// kept failing.
    RetriesExhausted {
        /// Attempts made (first try + retries).
        attempts: u32,
        /// Description of the last failure.
        last: String,
    },
    /// Every board is quarantined — no hardware left to compute on.
    NoBoardsLeft,
    /// A fault-state blob from a checkpoint manifest could not be
    /// restored (wrong version or length).
    BadFaultState,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NonFinitePosition { index } => {
                write!(f, "non-finite position at index {index}")
            }
            DeviceError::BoardTimeout { board } => {
                write!(f, "board {board} timed out")
            }
            DeviceError::InvalidForce { index, value, bound } => {
                write!(f, "invalid force at i-particle {index}: {value} (bound {bound})")
            }
            DeviceError::RetriesExhausted { attempts, last } => {
                write!(f, "recovery failed after {attempts} attempts: {last}")
            }
            DeviceError::NoBoardsLeft => write!(f, "all boards quarantined"),
            DeviceError::BadFaultState => write!(f, "unreadable fault-state blob"),
        }
    }
}

impl Error for DeviceError {}

// ----------------------------------------------------------------------
// Fault configuration
// ----------------------------------------------------------------------

/// A persistently stuck pipeline: from device call `after_call` on,
/// every lane served by pipe `pipe` of board `board` reads back
/// garbage, until the host quarantines the pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckPipe {
    /// Device force-call index at which the pipe fails (0 = from the
    /// first call).
    pub after_call: u64,
    /// Board carrying the stuck pipe.
    pub board: usize,
    /// Pipe index within the board.
    pub pipe: usize,
}

/// A whole-board dropout: from device call `after_call` on, the board
/// stops answering and every force call times out until the host
/// quarantines it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoardDropout {
    /// Device force-call index at which the board dies.
    pub after_call: u64,
    /// The dying board.
    pub board: usize,
}

/// Configuration of the injected fault process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault RNG — same seed, same call sequence ⇒ same
    /// faults, bit for bit.
    pub seed: u64,
    /// Per-force-call probability of corrupting one readback word
    /// (models an interface/DRAM transient; the corrupted component
    /// becomes non-finite).
    pub transient_rate: f64,
    /// Per-j-load probability of corrupting one loaded mass word
    /// (models a DMA bit-flip; forces computed from the corrupted set
    /// blow past the host's magnitude bound).
    pub jmem_corrupt_rate: f64,
    /// Optional persistent stuck pipeline.
    pub stuck_pipe: Option<StuckPipe>,
    /// Optional persistent whole-board dropout.
    pub board_dropout: Option<BoardDropout>,
}

impl FaultConfig {
    /// No faults at all (the implicit default of a device opened
    /// without an injector).
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            transient_rate: 0.0,
            jmem_corrupt_rate: 0.0,
            stuck_pipe: None,
            board_dropout: None,
        }
    }

    /// Transient readback corruption only, at the given per-call rate.
    pub fn transient(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig { transient_rate: rate, ..FaultConfig::none(seed) }
    }

    /// j-memory load corruption only, at the given per-load rate.
    pub fn jmem(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig { jmem_corrupt_rate: rate, ..FaultConfig::none(seed) }
    }

    /// One pipeline goes stuck-at partway into the run.
    pub fn stuck(seed: u64, stuck: StuckPipe) -> FaultConfig {
        FaultConfig { stuck_pipe: Some(stuck), ..FaultConfig::none(seed) }
    }

    /// One board drops out partway into the run.
    pub fn dropout(seed: u64, drop: BoardDropout) -> FaultConfig {
        FaultConfig { board_dropout: Some(drop), ..FaultConfig::none(seed) }
    }

    /// The same fault process re-seeded for shard `k` of a cluster:
    /// rates and persistent faults are kept, the seed is derived with
    /// [`splitmix`] so distinct shards draw independent streams.
    /// Checkpoint round-trips are unaffected — the serialized state
    /// words carry the *evolved* RNG, never the seed.
    pub fn for_shard(&self, k: usize) -> FaultConfig {
        FaultConfig { seed: splitmix(self.seed, k as u64), ..*self }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.transient_rate),
            "transient rate {} outside [0,1]",
            self.transient_rate
        );
        assert!(
            (0.0..=1.0).contains(&self.jmem_corrupt_rate),
            "jmem corruption rate {} outside [0,1]",
            self.jmem_corrupt_rate
        );
    }
}

// ----------------------------------------------------------------------
// Seeded RNG with checkpointable state
// ----------------------------------------------------------------------

/// The `k`-th draw of the SplitMix64 sequence seeded at `base`.
///
/// This is the standard child-seed derivation: `splitmix(base, k)` for
/// distinct `k` yields decorrelated seeds from one base seed, so the K
/// shards of a cluster armed from a single [`FaultConfig`] each see an
/// independent fault stream instead of K replays of the same one
/// ([`FaultConfig::for_shard`]). The same function also seeds
/// [`FaultRng`]'s state words.
pub fn splitmix(base: u64, k: u64) -> u64 {
    let mut z = base.wrapping_add(k.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ with SplitMix64 seeding — tiny, fast, and with a state
/// small enough to live in a checkpoint manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultRng {
    s: [u64; 4],
}

impl FaultRng {
    fn seed_from_u64(seed: u64) -> FaultRng {
        FaultRng { s: [splitmix(seed, 0), splitmix(seed, 1), splitmix(seed, 2), splitmix(seed, 3)] }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..n` (n > 0).
    fn next_index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

// ----------------------------------------------------------------------
// Corruption primitives
// ----------------------------------------------------------------------

/// "Exponent bits stuck high" readback corruption: the classic
/// signature of a failed interface transfer. Always yields inf or NaN,
/// so host-side finiteness validation catches every occurrence.
#[inline]
pub fn corrupt_readback(x: f64) -> f64 {
    f64::from_bits(x.to_bits() | 0x7FF0_0000_0000_0000)
}

/// j-memory corruption: a high exponent bit of the stored mass flips
/// upward (×2^600). Forces computed from the corrupted word saturate
/// the on-board accumulators, which the host's magnitude bound flags as
/// long as `Σm/max(ε,quantum)²` sits below the accumulator ceiling.
#[inline]
pub fn corrupt_mass(m: f64) -> f64 {
    m * f64::exp2(600.0)
}

// ----------------------------------------------------------------------
// Fault process state
// ----------------------------------------------------------------------

/// Serialization version tag of [`FaultState::to_words`].
const FAULT_STATE_VERSION: u64 = 1;

/// The live fault process attached to a device: configuration, RNG and
/// event counters. Owned by [`crate::Grape5`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    cfg: FaultConfig,
    rng: FaultRng,
    /// Force calls the device has served since the injector was armed.
    pub calls: u64,
    /// j-loads the device has served since the injector was armed.
    pub loads: u64,
}

/// What a force call should suffer, as decided by the fault process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CallFault {
    /// No injected fault this call.
    Clean,
    /// Corrupt readback component `word` of i-particle `index`
    /// (word 0..3 = ax, ay, az, pot).
    Transient { index: usize, word: usize },
    /// The (unquarantined) board is dead: fail the call.
    Timeout { board: usize },
}

impl FaultState {
    /// Arm a fault process.
    pub fn new(cfg: FaultConfig) -> FaultState {
        cfg.validate();
        FaultState { cfg, rng: FaultRng::seed_from_u64(cfg.seed), calls: 0, loads: 0 }
    }

    /// The configuration this process was armed with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Clear the persistent fault classes (stuck pipe, board dropout) —
    /// the "card was reseated / replaced" repair event a chaos schedule
    /// fires before a probation re-test. Transient rates, the RNG
    /// position and the call/load counters are untouched, so the
    /// serialized state words keep round-tripping.
    pub fn clear_persistent(&mut self) {
        self.cfg.stuck_pipe = None;
        self.cfg.board_dropout = None;
    }

    /// Decide the fate of the next force call on `ni` i-particles.
    /// `dead_board_active` reports whether a scheduled dropout board is
    /// still in active service (not yet quarantined by the host).
    pub(crate) fn on_force_call(
        &mut self,
        ni: usize,
        board_active: impl Fn(usize) -> bool,
    ) -> CallFault {
        let call = self.calls;
        self.calls += 1;
        if let Some(d) = self.cfg.board_dropout {
            if call >= d.after_call && board_active(d.board) {
                return CallFault::Timeout { board: d.board };
            }
        }
        if ni > 0 && self.cfg.transient_rate > 0.0 && self.rng.next_f64() < self.cfg.transient_rate
        {
            return CallFault::Transient {
                index: self.rng.next_index(ni),
                word: self.rng.next_index(4),
            };
        }
        CallFault::Clean
    }

    /// The stuck pipe currently manifesting, if any — queried *after*
    /// [`on_force_call`](Self::on_force_call) has counted the call, so
    /// the current call index is `calls - 1`. The caller decides
    /// whether it is quarantined.
    pub(crate) fn manifesting_stuck_pipe(&self) -> Option<StuckPipe> {
        self.cfg.stuck_pipe.filter(|s| self.calls > s.after_call)
    }

    /// The board dropout currently manifesting, if any.
    pub(crate) fn manifesting_dropout(&self) -> Option<BoardDropout> {
        self.cfg.board_dropout.filter(|d| self.calls >= d.after_call)
    }

    /// Decide whether the next j-load of `nwords` words is corrupted;
    /// returns the index of the corrupted word.
    pub(crate) fn on_j_load(&mut self, nwords: usize) -> Option<usize> {
        self.loads += 1;
        if nwords > 0
            && self.cfg.jmem_corrupt_rate > 0.0
            && self.rng.next_f64() < self.cfg.jmem_corrupt_rate
        {
            Some(self.rng.next_index(nwords))
        } else {
            None
        }
    }

    /// Serialize RNG + counters for a checkpoint manifest. The
    /// configuration itself is *not* included — the resuming host
    /// re-arms the same [`FaultConfig`] it launched with and restores
    /// the process position on top.
    pub fn to_words(&self) -> Vec<u64> {
        vec![
            FAULT_STATE_VERSION,
            self.rng.s[0],
            self.rng.s[1],
            self.rng.s[2],
            self.rng.s[3],
            self.calls,
            self.loads,
        ]
    }

    /// Restore a process position saved by [`to_words`](Self::to_words).
    pub fn restore(cfg: FaultConfig, words: &[u64]) -> Result<FaultState, DeviceError> {
        if words.len() != 7 || words[0] != FAULT_STATE_VERSION {
            return Err(DeviceError::BadFaultState);
        }
        cfg.validate();
        Ok(FaultState {
            cfg,
            rng: FaultRng { s: [words[1], words[2], words[3], words[4]] },
            calls: words[5],
            loads: words[6],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_streams_reproduce() {
        let mut a = FaultRng::seed_from_u64(7);
        let mut b = FaultRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = a.next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn corrupt_readback_is_never_finite() {
        for x in [0.0, 1.0, -3.5e300, 1e-308, f64::MIN_POSITIVE] {
            assert!(!corrupt_readback(x).is_finite(), "corruption of {x} stayed finite");
        }
    }

    #[test]
    fn transient_decisions_reproduce_and_fire() {
        let cfg = FaultConfig::transient(11, 0.5);
        let mut a = FaultState::new(cfg);
        let mut b = FaultState::new(cfg);
        let mut fired = 0;
        for _ in 0..200 {
            let fa = a.on_force_call(64, |_| true);
            let fb = b.on_force_call(64, |_| true);
            assert_eq!(fa, fb);
            if let CallFault::Transient { index, word } = fa {
                assert!(index < 64 && word < 4);
                fired += 1;
            }
        }
        assert!(fired > 50, "rate 0.5 fired only {fired}/200");
    }

    #[test]
    fn dropout_fires_at_schedule_until_quarantined() {
        let cfg = FaultConfig::dropout(3, BoardDropout { after_call: 2, board: 1 });
        let mut st = FaultState::new(cfg);
        assert_eq!(st.on_force_call(8, |_| true), CallFault::Clean);
        assert_eq!(st.on_force_call(8, |_| true), CallFault::Clean);
        assert_eq!(st.on_force_call(8, |_| true), CallFault::Timeout { board: 1 });
        // once the host quarantines board 1, calls go through again
        assert_eq!(st.on_force_call(8, |b| b != 1), CallFault::Clean);
    }

    #[test]
    fn state_roundtrips_through_words() {
        let cfg = FaultConfig::transient(5, 0.3);
        let mut st = FaultState::new(cfg);
        for _ in 0..17 {
            st.on_force_call(10, |_| true);
        }
        st.on_j_load(100);
        let words = st.to_words();
        let mut back = FaultState::restore(cfg, &words).unwrap();
        // the restored process continues identically
        let mut orig = st.clone();
        for _ in 0..50 {
            assert_eq!(orig.on_force_call(32, |_| true), back.on_force_call(32, |_| true));
            assert_eq!(orig.on_j_load(64), back.on_j_load(64));
        }
    }

    #[test]
    fn bad_state_blob_rejected() {
        let cfg = FaultConfig::none(0);
        assert_eq!(FaultState::restore(cfg, &[9, 9]).unwrap_err(), DeviceError::BadFaultState);
        assert_eq!(
            FaultState::restore(cfg, &[99, 0, 0, 0, 0, 0, 0]).unwrap_err(),
            DeviceError::BadFaultState
        );
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_rate_rejected() {
        FaultState::new(FaultConfig::transient(0, 1.5));
    }

    #[test]
    fn shard_seeds_derive_distinct_streams() {
        let base = FaultConfig::transient(1234, 0.5);
        let seeds: Vec<u64> = (0..8).map(|k| base.for_shard(k).seed).collect();
        for (i, a) in seeds.iter().enumerate() {
            assert_ne!(*a, base.seed, "shard {i} replays the base seed");
            for (j, b) in seeds.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "shards {i} and {j} share a seed");
            }
        }
        // derived processes draw different fault decisions
        let mut a = FaultState::new(base.for_shard(0));
        let mut b = FaultState::new(base.for_shard(1));
        let da: Vec<CallFault> = (0..64).map(|_| a.on_force_call(16, |_| true)).collect();
        let db: Vec<CallFault> = (0..64).map(|_| b.on_force_call(16, |_| true)).collect();
        assert_ne!(da, db, "derived shard streams are identical");
        // and the derivation is itself deterministic
        assert_eq!(base.for_shard(3), base.for_shard(3));
    }

    #[test]
    fn derived_shard_state_roundtrips_through_words() {
        let cfg = FaultConfig::transient(9, 0.4).for_shard(5);
        let mut st = FaultState::new(cfg);
        for _ in 0..11 {
            st.on_force_call(8, |_| true);
        }
        let words = st.to_words();
        let mut back = FaultState::restore(cfg, &words).unwrap();
        for _ in 0..30 {
            assert_eq!(st.on_force_call(8, |_| true), back.on_force_call(8, |_| true));
        }
    }

    #[test]
    fn clear_persistent_keeps_rates_and_counters() {
        let mut cfg = FaultConfig::stuck(3, StuckPipe { after_call: 0, board: 0, pipe: 1 });
        cfg.board_dropout = Some(BoardDropout { after_call: 100, board: 1 });
        cfg.transient_rate = 0.25;
        let mut st = FaultState::new(cfg);
        for _ in 0..5 {
            st.on_force_call(4, |_| true);
        }
        let calls_before = st.calls;
        st.clear_persistent();
        assert_eq!(st.config().stuck_pipe, None);
        assert_eq!(st.config().board_dropout, None);
        assert_eq!(st.config().transient_rate, 0.25);
        assert_eq!(st.calls, calls_before);
        assert_eq!(st.manifesting_stuck_pipe(), None);
        assert_eq!(st.manifesting_dropout(), None);
        // the repaired process still serializes and restores
        let words = st.to_words();
        let back = FaultState::restore(*st.config(), &words).unwrap();
        assert_eq!(back, st);
    }
}
