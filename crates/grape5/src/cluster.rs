//! A pool of GRAPE-5 systems — one per domain shard of a
//! cluster-decomposed treecode run — with a shard lifecycle supervisor.
//!
//! The GRAPE-6A cluster configuration hangs one accelerator card off
//! each PC; in-process we model that as K independent [`Grape5`]
//! instances with independent fault state, clock accounting, and board
//! quarantine. Each shard's force evaluation opens an ordinary
//! [`DeviceSession`](crate::session::DeviceSession) over its device, so
//! the whole per-board retry/quarantine machinery applies unchanged
//! within a shard.
//!
//! What the session layer cannot recover from is *whole-shard loss*:
//! every board of one device quarantined. [`ClusterSession::shard_fatal`]
//! classifies device errors into that bucket; the host backend reacts
//! by marking the shard dead ([`ClusterSession::kill`]) and
//! re-decomposing the particle set over the survivors — the cluster
//! analogue of removing a dead PC from the ring.
//!
//! ## Shard lifecycle
//!
//! Multi-day cluster campaigns lose cards *and get them back* (a
//! reseated cable, a swapped board). Each shard therefore carries a
//! [`ShardHealth`] state:
//!
//! ```text
//! Alive ──straggler / quarantine──▶ Degraded ──clean eval──▶ Alive
//!   │                                  │
//!   └────────── shard-fatal ◀──────────┘
//!                    │
//!                    ▼
//!                  Dead ──probe──▶ Probation ──self-test clean──▶ Readmitted
//!                    ▲                  │                             │
//!                    └──self-test fails─┘              serves an eval │
//!                                                                    ▼
//!                                                                  Alive
//! ```
//!
//! [`ClusterSession::probe`] drives the Dead → Probation → Readmitted
//! arc: quarantines are provisionally lifted, the device self-test
//! re-runs, and hardware it still convicts goes straight back out of
//! service. A dead shard whose persistent fault has been repaired
//! ([`Grape5::clear_persistent_faults`]) passes and is re-admitted; the
//! host backend then re-decomposes to hand it a domain again.

use crate::clock::ClockAccounting;
use crate::config::Grape5Config;
use crate::fault::{DeviceError, FaultConfig};
use crate::system::Grape5;

/// Lifecycle state of one cluster shard.
///
/// `Alive`, `Degraded` and `Readmitted` are all *in service* (the shard
/// owns a domain and serves evaluations); `Dead` and `Probation` are
/// out of service. `Degraded` marks a serving shard the supervisor is
/// watching (it blew a straggler deadline or carries quarantined
/// hardware); `Readmitted` marks a shard back from probation that has
/// not yet served an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// In service, no supervisor concern.
    Alive,
    /// In service, but flagged: straggler deadline hit or hardware
    /// quarantined. Returns to `Alive` after a clean evaluation.
    Degraded,
    /// Out of service (shard-fatal device error or an explicit kill).
    Dead,
    /// Out of service, probe in flight: quarantines lifted, self-test
    /// running. Transient — resolves to `Readmitted` or back to `Dead`
    /// within [`ClusterSession::probe`].
    Probation,
    /// Probe passed; in service again, awaiting its first evaluation.
    Readmitted,
}

impl ShardHealth {
    /// Does this state serve evaluations (own a domain)?
    pub fn in_service(self) -> bool {
        matches!(self, ShardHealth::Alive | ShardHealth::Degraded | ShardHealth::Readmitted)
    }

    /// Stable numeric code for checkpoint manifests.
    pub fn code(self) -> u8 {
        match self {
            ShardHealth::Alive => 0,
            ShardHealth::Degraded => 1,
            ShardHealth::Dead => 2,
            ShardHealth::Probation => 3,
            ShardHealth::Readmitted => 4,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<ShardHealth> {
        Some(match code {
            0 => ShardHealth::Alive,
            1 => ShardHealth::Degraded,
            2 => ShardHealth::Dead,
            3 => ShardHealth::Probation,
            4 => ShardHealth::Readmitted,
            _ => return None,
        })
    }
}

/// What one [`ClusterSession::probe`] call found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// A dead shard passed its self-test and is back in service
    /// (`Dead → Probation → Readmitted`).
    Readmitted {
        /// The re-admitted slot.
        slot: usize,
    },
    /// A dead shard's self-test still convicts hardware; it stays dead.
    StillDead {
        /// The probed slot.
        slot: usize,
    },
    /// A serving shard regained quarantined hardware: `boards` boards
    /// and `pipes` pipes passed re-test and returned to service.
    HardwareRestored {
        /// The probed slot.
        slot: usize,
        /// Boards returned to service.
        boards: usize,
        /// Pipes returned to service.
        pipes: usize,
    },
}

/// One shard: a device plus its lifecycle state.
#[derive(Debug)]
struct Shard {
    g5: Grape5,
    health: ShardHealth,
}

/// K pooled [`Grape5`] devices, one per domain shard.
///
/// Out-of-service shards keep their slot (indices are stable for the
/// lifetime of the session) but are skipped by [`alive_devices_mut`]
/// (`ClusterSession::alive_devices_mut`) and excluded from fault-state
/// capture.
#[derive(Debug)]
pub struct ClusterSession {
    shards: Vec<Shard>,
    cfg: Grape5Config,
}

impl ClusterSession {
    /// Open `shards` identical devices from one configuration.
    ///
    /// # Panics
    /// If `shards == 0`.
    pub fn open(cfg: Grape5Config, shards: usize) -> ClusterSession {
        assert!(shards >= 1, "cluster needs at least one shard");
        let shards = (0..shards)
            .map(|_| Shard { g5: Grape5::open(cfg), health: ShardHealth::Alive })
            .collect();
        ClusterSession { shards, cfg }
    }

    /// The configuration every shard was opened with.
    pub fn config(&self) -> &Grape5Config {
        &self.cfg
    }

    /// Total shard slots (in service + out of service).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of shards in service.
    pub fn alive(&self) -> usize {
        self.shards.iter().filter(|s| s.health.in_service()).count()
    }

    /// Is shard `k` in service? (`false` for out-of-range slots.)
    pub fn is_alive(&self, k: usize) -> bool {
        self.shards.get(k).is_some_and(|s| s.health.in_service())
    }

    /// Lifecycle state of shard `k` (`None` out of range).
    pub fn health(&self, k: usize) -> Option<ShardHealth> {
        self.shards.get(k).map(|s| s.health)
    }

    /// Lifecycle state of every slot.
    pub fn healths(&self) -> Vec<ShardHealth> {
        self.shards.iter().map(|s| s.health).collect()
    }

    /// Force shard `k`'s lifecycle state (checkpoint restore path).
    /// Out-of-range slots are ignored.
    pub fn set_health(&mut self, k: usize, health: ShardHealth) {
        if let Some(s) = self.shards.get_mut(k) {
            s.health = health;
        }
    }

    /// Mark shard `k` dead. Idempotent and range-checked: returns the
    /// state the slot held *before* the kill, or `None` for an
    /// out-of-range slot (killing an already-dead shard returns
    /// `Some(Dead)` and changes nothing).
    pub fn kill(&mut self, k: usize) -> Option<ShardHealth> {
        let s = self.shards.get_mut(k)?;
        let prior = s.health;
        s.health = ShardHealth::Dead;
        Some(prior)
    }

    /// Flag a serving shard as degraded (straggler deadline hit). Dead
    /// and out-of-range slots are left alone.
    pub fn mark_degraded(&mut self, k: usize) {
        if let Some(s) = self.shards.get_mut(k) {
            if s.health.in_service() {
                s.health = ShardHealth::Degraded;
            }
        }
    }

    /// Promote a serving shard back to `Alive` after a clean
    /// evaluation (`Degraded → Alive`, `Readmitted → Alive`).
    pub fn mark_alive(&mut self, k: usize) {
        if let Some(s) = self.shards.get_mut(k) {
            if s.health.in_service() {
                s.health = ShardHealth::Alive;
            }
        }
    }

    /// Probe shard `k`: provisionally lift every quarantine, re-run the
    /// device self-test, and put whatever it still convicts straight
    /// back out of service.
    ///
    /// * A `Dead` shard passes through `Probation`; a clean self-test
    ///   re-admits it (`Readmitted`), otherwise it stays `Dead`.
    /// * A serving shard with quarantined hardware regains any board or
    ///   pipe the self-test no longer convicts.
    ///
    /// Returns `None` when there was nothing to probe (healthy shard
    /// with no quarantines, or out-of-range slot). Re-admitted boards
    /// come back with empty j-memory; the next device session reloads.
    pub fn probe(&mut self, k: usize) -> Option<ProbeOutcome> {
        let s = self.shards.get_mut(k)?;
        match s.health {
            ShardHealth::Dead => {
                s.health = ShardHealth::Probation;
                s.g5.return_to_service();
                let report = s.g5.self_test();
                for &(b, p) in &report.stuck_pipes {
                    s.g5.quarantine_pipe(b, p);
                }
                for &b in &report.dead_boards {
                    s.g5.quarantine_board(b);
                }
                if report.is_clean() && s.g5.active_boards() > 0 {
                    s.health = ShardHealth::Readmitted;
                    Some(ProbeOutcome::Readmitted { slot: k })
                } else {
                    s.health = ShardHealth::Dead;
                    Some(ProbeOutcome::StillDead { slot: k })
                }
            }
            _ if s.health.in_service() => {
                let (qb, qp) = s.g5.quarantined();
                if qb.is_empty() && qp.is_empty() {
                    return None;
                }
                s.g5.return_to_service();
                let report = s.g5.self_test();
                for &(b, p) in &report.stuck_pipes {
                    s.g5.quarantine_pipe(b, p);
                }
                for &b in &report.dead_boards {
                    s.g5.quarantine_board(b);
                }
                let (qb2, qp2) = s.g5.quarantined();
                let boards = qb.len().saturating_sub(qb2.len());
                let pipes = qp.len().saturating_sub(qp2.len());
                if boards > 0 || pipes > 0 {
                    s.health = ShardHealth::Degraded;
                    Some(ProbeOutcome::HardwareRestored { slot: k, boards, pipes })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Probe every slot that has something to re-test (dead shards and
    /// serving shards with quarantined hardware), in slot order.
    pub fn probe_all(&mut self) -> Vec<ProbeOutcome> {
        (0..self.shards.len()).filter_map(|k| self.probe(k)).collect()
    }

    /// Shared access to shard `k`'s device.
    pub fn device(&self, k: usize) -> &Grape5 {
        &self.shards[k].g5
    }

    /// Mutable access to shard `k`'s device (any state — fault
    /// injection setup may address a shard before any evaluation).
    pub fn device_mut(&mut self, k: usize) -> &mut Grape5 {
        &mut self.shards[k].g5
    }

    /// Mutable borrows of every *in-service* device, tagged with shard
    /// index — the fan-out for a per-shard evaluation pass.
    pub fn alive_devices_mut(&mut self) -> Vec<(usize, &mut Grape5)> {
        self.shards
            .iter_mut()
            .enumerate()
            .filter(|(_, s)| s.health.in_service())
            .map(|(k, s)| (k, &mut s.g5))
            .collect()
    }

    /// Is this error unrecoverable at the shard level — i.e. has the
    /// per-board retry/quarantine machinery inside [`DeviceSession`]
    /// already exhausted the device?
    ///
    /// [`DeviceSession`]: crate::session::DeviceSession
    pub fn shard_fatal(err: &DeviceError) -> bool {
        match err {
            DeviceError::NoBoardsLeft => true,
            // The session's retry loop stores the final failure's
            // Display text; an exhausted retry whose last attempt found
            // no boards is just as dead as the direct report.
            DeviceError::RetriesExhausted { last, .. } => last.contains("all boards quarantined"),
            _ => false,
        }
    }

    /// Arm shard `k`'s fault injector.
    pub fn set_fault_injector(&mut self, k: usize, cfg: FaultConfig) {
        self.shards[k].g5.set_fault_injector(cfg);
    }

    /// Arm *every* shard's injector from one base configuration, with
    /// per-shard seeds derived by [`crate::fault::splitmix`]
    /// ([`FaultConfig::for_shard`]) — K shards opened from one
    /// `FaultConfig` must not replay identical fault streams.
    pub fn set_fault_injectors(&mut self, base: FaultConfig) {
        for k in 0..self.shards.len() {
            let cfg = base.for_shard(k);
            self.shards[k].g5.set_fault_injector(cfg);
        }
    }

    /// Serialized fault-injector state of every in-service shard that
    /// has one, as `(shard index, state words)` — the per-shard payload
    /// a cluster checkpoint manifest records.
    pub fn fault_states(&self) -> Vec<(usize, Vec<u64>)> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.health.in_service())
            .filter_map(|(k, s)| s.g5.fault_state_words().map(|w| (k, w)))
            .collect()
    }

    /// Restore shard `k`'s fault-injector state (the injector must
    /// already be armed with its configuration).
    pub fn restore_fault_state(&mut self, k: usize, words: &[u64]) -> Result<(), DeviceError> {
        self.shards[k].g5.restore_fault_state(words)
    }

    /// Clock accounting of shard `k` alone.
    pub fn shard_accounting(&self, k: usize) -> ClockAccounting {
        self.shards[k].g5.accounting()
    }

    /// Clock accounting merged across all shards — aggregate work.
    /// (A real cluster runs shards concurrently; critical-path time is
    /// the *max* of per-shard [`ClockReport`](crate::clock::ClockReport)
    /// totals, which callers derive from [`shard_accounting`]
    /// (`ClusterSession::shard_accounting`).)
    pub fn accounting(&self) -> ClockAccounting {
        self.shards.iter().fold(ClockAccounting::default(), |acc, s| acc.merged(s.g5.accounting()))
    }

    /// Reset clock accounting on every shard.
    pub fn reset_accounting(&mut self) {
        for s in &mut self.shards {
            s.g5.reset_accounting();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{BoardDropout, StuckPipe};

    fn tiny() -> Grape5Config {
        Grape5Config::single_board()
    }

    #[test]
    fn open_kill_track_liveness() {
        let mut c = ClusterSession::open(tiny(), 4);
        assert_eq!(c.shards(), 4);
        assert_eq!(c.alive(), 4);
        assert_eq!(c.kill(2), Some(ShardHealth::Alive));
        assert_eq!(c.alive(), 3);
        assert_eq!(c.kill(2), Some(ShardHealth::Dead), "kill is idempotent");
        assert_eq!(c.alive(), 3);
        assert_eq!(c.kill(99), None, "out-of-range kill is rejected, not a panic");
        assert!(!c.is_alive(2));
        assert!(!c.is_alive(99));
        assert_eq!(c.health(2), Some(ShardHealth::Dead));
        assert_eq!(c.health(99), None);
        let tagged: Vec<usize> = c.alive_devices_mut().into_iter().map(|(k, _)| k).collect();
        assert_eq!(tagged, vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ClusterSession::open(tiny(), 0);
    }

    #[test]
    fn health_state_machine_transitions() {
        let mut c = ClusterSession::open(tiny(), 2);
        c.mark_degraded(0);
        assert_eq!(c.health(0), Some(ShardHealth::Degraded));
        assert!(c.is_alive(0), "degraded shards keep serving");
        c.mark_alive(0);
        assert_eq!(c.health(0), Some(ShardHealth::Alive));
        c.kill(0);
        c.mark_degraded(0);
        c.mark_alive(0);
        assert_eq!(c.health(0), Some(ShardHealth::Dead), "dead shards stay dead");
        for h in
            [ShardHealth::Alive, ShardHealth::Degraded, ShardHealth::Dead, ShardHealth::Probation]
        {
            assert_eq!(ShardHealth::from_code(h.code()), Some(h));
        }
        assert_eq!(
            ShardHealth::from_code(ShardHealth::Readmitted.code()),
            Some(ShardHealth::Readmitted)
        );
        assert_eq!(ShardHealth::from_code(99), None);
    }

    #[test]
    fn probe_readmits_a_healthy_dead_shard() {
        let mut c = ClusterSession::open(tiny(), 3);
        c.kill(1);
        assert_eq!(c.alive(), 2);
        assert_eq!(c.probe(1), Some(ProbeOutcome::Readmitted { slot: 1 }));
        assert_eq!(c.health(1), Some(ShardHealth::Readmitted));
        assert_eq!(c.alive(), 3);
        c.mark_alive(1);
        assert_eq!(c.health(1), Some(ShardHealth::Alive));
        // nothing to probe on a healthy shard
        assert_eq!(c.probe(0), None);
        assert_eq!(c.probe(7), None);
    }

    #[test]
    fn probe_keeps_a_faulty_shard_dead_until_repaired() {
        let mut c = ClusterSession::open(tiny(), 2);
        // single-board shard whose board is persistently dropped out
        // (after_call: 0 manifests immediately); the session layer has
        // quarantined the only board and killed the shard
        c.set_fault_injector(1, FaultConfig::dropout(5, BoardDropout { after_call: 0, board: 0 }));
        c.device_mut(1).quarantine_board(0);
        c.kill(1);

        assert_eq!(c.probe(1), Some(ProbeOutcome::StillDead { slot: 1 }));
        assert_eq!(c.health(1), Some(ShardHealth::Dead));
        assert_eq!(c.device(1).active_boards(), 0, "convicted board re-quarantined");

        // repair, re-probe: the shard comes back
        c.device_mut(1).clear_persistent_faults();
        assert_eq!(c.probe(1), Some(ProbeOutcome::Readmitted { slot: 1 }));
        assert_eq!(c.device(1).active_boards(), 1);
        assert_eq!(c.alive(), 2);
    }

    #[test]
    fn probe_restores_quarantined_hardware_on_a_serving_shard() {
        let cfg = Grape5Config::paper(); // 2 boards
        let mut c = ClusterSession::open(cfg, 1);
        // a stuck pipe was quarantined; the fault has since been repaired
        c.set_fault_injector(
            0,
            FaultConfig::stuck(6, StuckPipe { after_call: 0, board: 0, pipe: 2 }),
        );
        // stuck pipes manifest once calls > after_call: advance the call
        // counter through the fault-state words (index 5 = calls)
        let mut words = c.fault_states()[0].1.clone();
        words[5] = 1;
        c.restore_fault_state(0, &words).unwrap();
        c.device_mut(0).quarantine_pipe(0, 2);
        assert_eq!(c.probe(0), None, "fault still manifests: nothing freed");
        c.device_mut(0).clear_persistent_faults();
        assert_eq!(
            c.probe(0),
            Some(ProbeOutcome::HardwareRestored { slot: 0, boards: 0, pipes: 1 })
        );
        assert_eq!(c.health(0), Some(ShardHealth::Degraded), "restored shard is watched");
        assert!(c.device(0).quarantined().1.is_empty());
        c.mark_alive(0);
        assert_eq!(c.probe_all(), vec![]);
    }

    #[test]
    fn fatal_classifier() {
        assert!(ClusterSession::shard_fatal(&DeviceError::NoBoardsLeft));
        assert!(ClusterSession::shard_fatal(&DeviceError::RetriesExhausted {
            attempts: 7,
            last: DeviceError::NoBoardsLeft.to_string(),
        }));
        assert!(!ClusterSession::shard_fatal(&DeviceError::RetriesExhausted {
            attempts: 7,
            last: "board 0 timed out".into(),
        }));
        assert!(!ClusterSession::shard_fatal(&DeviceError::BoardTimeout { board: 0 }));
    }

    #[test]
    fn fault_states_skip_dead_and_unarmed() {
        let mut c = ClusterSession::open(tiny(), 3);
        c.set_fault_injector(0, FaultConfig::transient(1, 0.0));
        c.set_fault_injector(2, FaultConfig::transient(2, 0.0));
        c.kill(2);
        let states = c.fault_states();
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].0, 0);
        // round-trip through restore
        let words = states[0].1.clone();
        c.restore_fault_state(0, &words).unwrap();
    }

    #[test]
    fn base_seed_arms_distinct_per_shard_streams() {
        let mut c = ClusterSession::open(tiny(), 4);
        c.set_fault_injectors(FaultConfig::transient(42, 0.5));
        let states = c.fault_states();
        assert_eq!(states.len(), 4, "every shard armed");
        // derived seeds put each RNG in a distinct state
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                assert_ne!(states[i].1, states[j].1, "shards {i}/{j} share fault state");
            }
        }
        // round-trip: the derived config is what restore re-arms
        let words = states[2].1.clone();
        c.restore_fault_state(2, &words).unwrap();
        assert_eq!(c.fault_states()[2].1, words);
    }

    #[test]
    fn accounting_merges_across_shards() {
        let c = ClusterSession::open(tiny(), 2);
        let merged = c.accounting();
        assert_eq!(merged.calls, 0);
        assert_eq!(c.shard_accounting(0).calls, 0);
    }
}
