//! A pool of GRAPE-5 systems — one per domain shard of a
//! cluster-decomposed treecode run.
//!
//! The GRAPE-6A cluster configuration hangs one accelerator card off
//! each PC; in-process we model that as K independent [`Grape5`]
//! instances with independent fault state, clock accounting, and board
//! quarantine. Each shard's force evaluation opens an ordinary
//! [`DeviceSession`](crate::session::DeviceSession) over its device, so
//! the whole per-board retry/quarantine machinery applies unchanged
//! within a shard.
//!
//! What the session layer cannot recover from is *whole-shard loss*:
//! every board of one device quarantined. [`ClusterSession::shard_fatal`]
//! classifies device errors into that bucket; the host backend reacts
//! by marking the shard dead ([`ClusterSession::kill`]) and
//! re-decomposing the particle set over the survivors — the cluster
//! analogue of removing a dead PC from the ring.

use crate::clock::ClockAccounting;
use crate::config::Grape5Config;
use crate::fault::{DeviceError, FaultConfig};
use crate::system::Grape5;

/// One shard: a device plus its liveness flag.
#[derive(Debug)]
struct Shard {
    g5: Grape5,
    alive: bool,
}

/// K pooled [`Grape5`] devices, one per domain shard.
///
/// Dead shards keep their slot (indices are stable for the lifetime of
/// the session) but are skipped by [`alive_devices_mut`]
/// (`ClusterSession::alive_devices_mut`) and excluded from fault-state
/// capture.
#[derive(Debug)]
pub struct ClusterSession {
    shards: Vec<Shard>,
    cfg: Grape5Config,
}

impl ClusterSession {
    /// Open `shards` identical devices from one configuration.
    ///
    /// # Panics
    /// If `shards == 0`.
    pub fn open(cfg: Grape5Config, shards: usize) -> ClusterSession {
        assert!(shards >= 1, "cluster needs at least one shard");
        let shards = (0..shards).map(|_| Shard { g5: Grape5::open(cfg), alive: true }).collect();
        ClusterSession { shards, cfg }
    }

    /// The configuration every shard was opened with.
    pub fn config(&self) -> &Grape5Config {
        &self.cfg
    }

    /// Total shard slots (alive + dead).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of shards still alive.
    pub fn alive(&self) -> usize {
        self.shards.iter().filter(|s| s.alive).count()
    }

    /// Is shard `k` alive?
    pub fn is_alive(&self, k: usize) -> bool {
        self.shards[k].alive
    }

    /// Mark shard `k` dead. Idempotent. Returns the number of shards
    /// still alive afterwards.
    pub fn kill(&mut self, k: usize) -> usize {
        self.shards[k].alive = false;
        self.alive()
    }

    /// Mutable access to shard `k`'s device (alive or dead — fault
    /// injection setup may address a shard before any evaluation).
    pub fn device_mut(&mut self, k: usize) -> &mut Grape5 {
        &mut self.shards[k].g5
    }

    /// Mutable borrows of every *alive* device, tagged with shard
    /// index — the fan-out for a per-shard evaluation pass.
    pub fn alive_devices_mut(&mut self) -> Vec<(usize, &mut Grape5)> {
        self.shards
            .iter_mut()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(k, s)| (k, &mut s.g5))
            .collect()
    }

    /// Is this error unrecoverable at the shard level — i.e. has the
    /// per-board retry/quarantine machinery inside [`DeviceSession`]
    /// already exhausted the device?
    ///
    /// [`DeviceSession`]: crate::session::DeviceSession
    pub fn shard_fatal(err: &DeviceError) -> bool {
        match err {
            DeviceError::NoBoardsLeft => true,
            // The session's retry loop stores the final failure's
            // Display text; an exhausted retry whose last attempt found
            // no boards is just as dead as the direct report.
            DeviceError::RetriesExhausted { last, .. } => last.contains("all boards quarantined"),
            _ => false,
        }
    }

    /// Arm shard `k`'s fault injector.
    pub fn set_fault_injector(&mut self, k: usize, cfg: FaultConfig) {
        self.shards[k].g5.set_fault_injector(cfg);
    }

    /// Serialized fault-injector state of every alive shard that has
    /// one, as `(shard index, state words)` — the per-shard payload a
    /// cluster checkpoint manifest records.
    pub fn fault_states(&self) -> Vec<(usize, Vec<u64>)> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .filter_map(|(k, s)| s.g5.fault_state_words().map(|w| (k, w)))
            .collect()
    }

    /// Restore shard `k`'s fault-injector state (the injector must
    /// already be armed with its configuration).
    pub fn restore_fault_state(&mut self, k: usize, words: &[u64]) -> Result<(), DeviceError> {
        self.shards[k].g5.restore_fault_state(words)
    }

    /// Clock accounting of shard `k` alone.
    pub fn shard_accounting(&self, k: usize) -> ClockAccounting {
        self.shards[k].g5.accounting()
    }

    /// Clock accounting merged across all shards — aggregate work.
    /// (A real cluster runs shards concurrently; critical-path time is
    /// the *max* of per-shard [`ClockReport`](crate::clock::ClockReport)
    /// totals, which callers derive from [`shard_accounting`]
    /// (`ClusterSession::shard_accounting`).)
    pub fn accounting(&self) -> ClockAccounting {
        self.shards.iter().fold(ClockAccounting::default(), |acc, s| acc.merged(s.g5.accounting()))
    }

    /// Reset clock accounting on every shard.
    pub fn reset_accounting(&mut self) {
        for s in &mut self.shards {
            s.g5.reset_accounting();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Grape5Config {
        Grape5Config::single_board()
    }

    #[test]
    fn open_kill_track_liveness() {
        let mut c = ClusterSession::open(tiny(), 4);
        assert_eq!(c.shards(), 4);
        assert_eq!(c.alive(), 4);
        assert_eq!(c.kill(2), 3);
        assert_eq!(c.kill(2), 3, "kill is idempotent");
        assert!(!c.is_alive(2));
        let tagged: Vec<usize> = c.alive_devices_mut().into_iter().map(|(k, _)| k).collect();
        assert_eq!(tagged, vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ClusterSession::open(tiny(), 0);
    }

    #[test]
    fn fatal_classifier() {
        assert!(ClusterSession::shard_fatal(&DeviceError::NoBoardsLeft));
        assert!(ClusterSession::shard_fatal(&DeviceError::RetriesExhausted {
            attempts: 7,
            last: DeviceError::NoBoardsLeft.to_string(),
        }));
        assert!(!ClusterSession::shard_fatal(&DeviceError::RetriesExhausted {
            attempts: 7,
            last: "board 0 timed out".into(),
        }));
        assert!(!ClusterSession::shard_fatal(&DeviceError::BoardTimeout { board: 0 }));
    }

    #[test]
    fn fault_states_skip_dead_and_unarmed() {
        let mut c = ClusterSession::open(tiny(), 3);
        c.set_fault_injector(0, FaultConfig::transient(1, 0.0));
        c.set_fault_injector(2, FaultConfig::transient(2, 0.0));
        c.kill(2);
        let states = c.fault_states();
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].0, 0);
        // round-trip through restore
        let words = states[0].1.clone();
        c.restore_fault_state(0, &words).unwrap();
    }

    #[test]
    fn accounting_merges_across_shards() {
        let c = ClusterSession::open(tiny(), 2);
        let merged = c.accounting();
        assert_eq!(merged.calls, 0);
        assert_eq!(c.shard_accounting(0).calls, 0);
    }
}
