//! The price/performance accounting of §4–§5.
//!
//! The Gordon Bell price/performance metric is dollars per sustained
//! Mflops. The paper's bill of materials: two GRAPE-5 boards at
//! 1.65 M JPY each (commercial price), 1.4 M JPY for the COMPAQ
//! AlphaServer DS10 host (512 MB + C++ compiler), total 4.7 M JPY,
//! converted at 115 JPY/$ to ≈ $40,900.

use serde::{Deserialize, Serialize};

/// Bill of materials and exchange rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price of one GRAPE-5 processor board, in JPY (paper: 1.65 M).
    pub board_jpy: f64,
    /// Number of boards purchased (paper: 2).
    pub boards: usize,
    /// Host computer incl. memory and compiler, in JPY (paper: 1.4 M).
    pub host_jpy: f64,
    /// Exchange rate, JPY per USD (paper: 115).
    pub jpy_per_usd: f64,
}

impl CostModel {
    /// The paper's exact bill of materials (§4).
    pub fn paper() -> Self {
        CostModel { board_jpy: 1.65e6, boards: 2, host_jpy: 1.4e6, jpy_per_usd: 115.0 }
    }

    /// Total system cost in JPY.
    #[inline]
    pub fn total_jpy(&self) -> f64 {
        self.board_jpy * self.boards as f64 + self.host_jpy
    }

    /// Total system cost in USD.
    #[inline]
    pub fn total_usd(&self) -> f64 {
        self.total_jpy() / self.jpy_per_usd
    }

    /// Price/performance for a sustained speed.
    pub fn price_performance(&self, sustained_flops: f64) -> PricePerformance {
        assert!(sustained_flops > 0.0, "non-positive sustained speed");
        PricePerformance {
            total_usd: self.total_usd(),
            sustained_flops,
            usd_per_mflops: self.total_usd() / (sustained_flops / 1e6),
        }
    }
}

/// The headline metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricePerformance {
    /// System cost in USD.
    pub total_usd: f64,
    /// Sustained (effective) speed in flops.
    pub sustained_flops: f64,
    /// Dollars per sustained Mflops — the Gordon Bell number.
    pub usd_per_mflops: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_total_cost() {
        let c = CostModel::paper();
        assert!((c.total_jpy() - 4.7e6).abs() < 1.0);
        // "about 40,900 dollars"
        assert!((c.total_usd() - 40_869.6).abs() < 1.0);
    }

    #[test]
    fn headline_seven_dollars_per_mflops() {
        // 5.92 Gflops effective sustained speed => $6.90/Mflops, which
        // the paper rounds to $7.0/Mflops.
        let pp = CostModel::paper().price_performance(5.92e9);
        assert!((pp.usd_per_mflops - 6.904).abs() < 0.01, "got {}", pp.usd_per_mflops);
        assert!((pp.usd_per_mflops - 7.0).abs() < 0.15);
    }

    #[test]
    fn raw_speed_price_performance() {
        // at the uncorrected 36.4 Gflops the figure would be ~$1.1/Mflops
        let pp = CostModel::paper().price_performance(36.4e9);
        assert!((pp.usd_per_mflops - 1.12).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn rejects_zero_speed() {
        CostModel::paper().price_performance(0.0);
    }
}
