//! Simple sphere models: uniform random spheres (with optional rigid
//! Hubble-like expansion) and cold (zero-velocity) spheres for collapse
//! tests.

use crate::Snapshot;
use g5util::vec3::Vec3;
use rand::Rng;

/// `n` equal-mass particles uniformly distributed in a sphere of the
/// given radius, with velocity `v = h_factor * x` (a rigid Hubble
/// flow; pass 0 for a static sphere). Total mass 1.
pub fn uniform_sphere<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    h_factor: f64,
    rng: &mut R,
) -> Snapshot {
    assert!(n > 0, "zero particles requested");
    assert!(radius > 0.0, "non-positive radius");
    let m = 1.0 / n as f64;
    let mut pos = Vec::with_capacity(n);
    for _ in 0..n {
        // rejection-sample the unit ball
        let p = loop {
            let c = Vec3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            );
            if c.norm2() <= 1.0 {
                break c;
            }
        };
        pos.push(p * radius);
    }
    let vel = pos.iter().map(|&p| p * h_factor).collect();
    Snapshot { pos, vel, mass: vec![m; n] }
}

/// A cold (zero-velocity) uniform sphere — the classic collapse test:
/// free-fall time `t_ff = π/2 · √(R³/2GM) = (π/2)·√(R³/2)` in G = M = 1
/// units.
pub fn cold_sphere<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Snapshot {
    uniform_sphere(n, radius, 0.0, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_sphere_statistics() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let s = uniform_sphere(20_000, 2.0, 0.0, &mut rng);
        s.validate();
        assert!((s.total_mass() - 1.0).abs() < 1e-12);
        assert!(s.pos.iter().all(|p| p.norm() <= 2.0));
        // mean radius of a uniform ball of radius R is 3R/4
        let mean_r: f64 = s.pos.iter().map(|p| p.norm()).sum::<f64>() / s.len() as f64;
        assert!((mean_r - 1.5).abs() < 0.02, "mean radius {mean_r}");
        // COM near origin
        assert!(s.center_of_mass().norm() < 0.05);
    }

    #[test]
    fn hubble_flow_velocities() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let s = uniform_sphere(100, 1.0, 2.5, &mut rng);
        for (p, v) in s.pos.iter().zip(&s.vel) {
            assert!((*v - *p * 2.5).norm() < 1e-14);
        }
    }

    #[test]
    fn cold_sphere_is_at_rest() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let s = cold_sphere(50, 1.0, &mut rng);
        assert!(s.vel.iter().all(|v| *v == Vec3::ZERO));
    }

    #[test]
    #[should_panic(expected = "non-positive radius")]
    fn zero_radius_rejected() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        uniform_sphere(10, 0.0, 0.0, &mut rng);
    }
}
