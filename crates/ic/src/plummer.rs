//! Plummer (1911) sphere generator — the standard equilibrium test
//! model for collisionless N-body codes (Aarseth, Hénon & Wielen 1974
//! sampling).
//!
//! Units: G = M = 1, Plummer scale length a = 1; virial equilibrium
//! with total energy E = −3π/64.

use crate::Snapshot;
use g5util::vec3::Vec3;
use rand::Rng;

/// Sample an isotropic Plummer sphere of `n` equal-mass particles.
///
/// Positions are truncated at 10 scale lengths (standard practice: the
/// outermost mass fraction is re-drawn) and the snapshot is shifted to
/// the center-of-mass frame in both position and velocity.
pub fn plummer_sphere<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Snapshot {
    assert!(n > 0, "zero particles requested");
    let m = 1.0 / n as f64;
    let mut pos = Vec::with_capacity(n);
    let mut vel = Vec::with_capacity(n);

    for _ in 0..n {
        // radius from the cumulative mass profile M(r) = r^3 (1+r^2)^{-3/2}
        let r = loop {
            let x: f64 = rng.random_range(0.0..1.0);
            let r = (x.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
            if r < 10.0 {
                break r;
            }
        };
        pos.push(r * random_unit(rng));

        // speed by von Neumann rejection on g(q) = q^2 (1 - q^2)^{7/2}
        let q = loop {
            let q: f64 = rng.random_range(0.0..1.0);
            let g: f64 = rng.random_range(0.0..0.1);
            if g < q * q * (1.0 - q * q).powf(3.5) {
                break q;
            }
        };
        let vesc = std::f64::consts::SQRT_2 * (1.0 + r * r).powf(-0.25);
        vel.push(q * vesc * random_unit(rng));
    }

    let mut snap = Snapshot { pos, vel, mass: vec![m; n] };
    // remove bulk drift
    let com = snap.center_of_mass();
    let vcom = snap.momentum() / snap.total_mass();
    for p in &mut snap.pos {
        *p -= com;
    }
    for v in &mut snap.vel {
        *v -= vcom;
    }
    snap
}

/// A uniformly random direction.
fn random_unit<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    let u: f64 = rng.random_range(-1.0..1.0);
    let phi: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let s = (1.0 - u * u).sqrt();
    Vec3::new(s * phi.cos(), s * phi.sin(), u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model(n: usize, seed: u64) -> Snapshot {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        plummer_sphere(n, &mut rng)
    }

    #[test]
    fn basic_properties() {
        let s = model(5000, 1);
        s.validate();
        assert_eq!(s.len(), 5000);
        assert!((s.total_mass() - 1.0).abs() < 1e-12);
        assert!(s.center_of_mass().norm() < 1e-10);
        assert!(s.momentum().norm() < 1e-10);
    }

    #[test]
    fn half_mass_radius_matches_plummer() {
        // analytic half-mass radius: r_h = (2^(2/3)-1)^(-1/2) a ≈ 1.305
        let s = model(20_000, 2);
        let mut r: Vec<f64> = s.pos.iter().map(|p| p.norm()).collect();
        r.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let rh = r[r.len() / 2];
        assert!((rh - 1.305).abs() < 0.05, "half-mass radius {rh}");
    }

    #[test]
    fn virial_ratio_near_equilibrium() {
        // 2T/|W| ≈ 1 for an equilibrium model; the analytic Plummer
        // potential energy is W = −3π/32 (total energy E = −3π/64);
        // truncation at 10a shifts both slightly.
        let s = model(20_000, 3);
        let t: f64 = 0.5 * s.vel.iter().zip(&s.mass).map(|(v, &m)| m * v.norm2()).sum::<f64>();
        let w_analytic = 3.0 * std::f64::consts::PI / 32.0;
        let ratio = 2.0 * t / w_analytic;
        assert!((0.85..1.15).contains(&ratio), "virial ratio {ratio}");
    }

    #[test]
    fn all_radii_truncated() {
        let s = model(3000, 4);
        // truncation at 10a (plus tiny COM shift slack)
        assert!(s.pos.iter().all(|p| p.norm() < 10.5));
    }

    #[test]
    fn speeds_below_escape_velocity() {
        let s = model(3000, 5);
        for (p, v) in s.pos.iter().zip(&s.vel) {
            let vesc = std::f64::consts::SQRT_2 * (1.0 + p.norm2()).powf(-0.25);
            // COM-frame shift can nudge speeds slightly past the local bound
            assert!(v.norm() <= vesc * 1.2, "unbound particle");
        }
    }

    #[test]
    #[should_panic(expected = "zero particles")]
    fn zero_rejected() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        plummer_sphere(0, &mut rng);
    }
}
