//! Minimal complex FFT — the numerical substrate of the Gaussian
//! random-field realization.
//!
//! Iterative in-place radix-2 Cooley–Tukey for power-of-two lengths,
//! plus a 3-D transform over a cubic grid (transform each axis in
//! turn). No external FFT crate is used; grids of 64³–128³ transform in
//! milliseconds, far from any bottleneck of the IC pipeline.
//!
//! Conventions: forward transform `X_k = Σ_n x_n e^{-2πikn/N}` without
//! scaling; the inverse applies `1/N` per axis, so
//! `ifft(fft(x)) == x`.

use std::ops::{Add, AddAssign, Mul, Sub};

/// A complex number (kept local to avoid an external dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cpx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cpx {
    /// Zero.
    pub const ZERO: Cpx = Cpx { re: 0.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Cpx {
        Cpx { re, im }
    }

    /// A real number.
    #[inline]
    pub const fn real(re: f64) -> Cpx {
        Cpx { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Cpx {
        Cpx { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Cpx {
        Cpx { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Cpx {
        Cpx { re: self.re * s, im: self.im * s }
    }
}

impl Add for Cpx {
    type Output = Cpx;
    #[inline]
    fn add(self, o: Cpx) -> Cpx {
        Cpx { re: self.re + o.re, im: self.im + o.im }
    }
}

impl AddAssign for Cpx {
    #[inline]
    fn add_assign(&mut self, o: Cpx) {
        *self = *self + o;
    }
}

impl Sub for Cpx {
    type Output = Cpx;
    #[inline]
    fn sub(self, o: Cpx) -> Cpx {
        Cpx { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Cpx {
    type Output = Cpx;
    #[inline]
    fn mul(self, o: Cpx) -> Cpx {
        Cpx { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

/// In-place 1-D FFT. `inverse` selects the inverse transform (with the
/// `1/N` scaling applied).
///
/// # Panics
/// If the length is not a power of two.
pub fn fft_inplace(data: &mut [Cpx], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // butterflies
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Cpx::cis(ang);
        let mut start = 0;
        while start < n {
            let mut w = Cpx::real(1.0);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w = w * wlen;
            }
            start += len;
        }
        len <<= 1;
    }
    if inverse {
        let s = 1.0 / n as f64;
        for v in data {
            *v = v.scale(s);
        }
    }
}

/// A cubic complex grid with 3-D FFT support.
#[derive(Debug, Clone)]
pub struct Grid3 {
    n: usize,
    data: Vec<Cpx>,
}

impl Grid3 {
    /// An `n³` grid of zeros; `n` must be a power of two.
    pub fn zeros(n: usize) -> Grid3 {
        assert!(n.is_power_of_two(), "grid side {n} is not a power of two");
        Grid3 { n, data: vec![Cpx::ZERO; n * n * n] }
    }

    /// Grid side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Linear index of `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.n && j < self.n && k < self.n);
        (i * self.n + j) * self.n + k
    }

    /// Immutable cell access.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> Cpx {
        self.data[self.idx(i, j, k)]
    }

    /// Mutable cell access.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize, k: usize) -> &mut Cpx {
        let idx = self.idx(i, j, k);
        &mut self.data[idx]
    }

    /// Raw storage (k fastest).
    pub fn data(&self) -> &[Cpx] {
        &self.data
    }

    /// 3-D FFT along all axes.
    pub fn fft3(&mut self, inverse: bool) {
        let n = self.n;
        let mut line = vec![Cpx::ZERO; n];
        // axis 2 (k) — contiguous
        for i in 0..n {
            for j in 0..n {
                let base = self.idx(i, j, 0);
                fft_inplace(&mut self.data[base..base + n], inverse);
            }
        }
        // axis 1 (j)
        for i in 0..n {
            for k in 0..n {
                for (j, l) in line.iter_mut().enumerate() {
                    *l = self.get(i, j, k);
                }
                fft_inplace(&mut line, inverse);
                for (j, l) in line.iter().enumerate() {
                    *self.get_mut(i, j, k) = *l;
                }
            }
        }
        // axis 0 (i)
        for j in 0..n {
            for k in 0..n {
                for (i, l) in line.iter_mut().enumerate() {
                    *l = self.get(i, j, k);
                }
                fft_inplace(&mut line, inverse);
                for (i, l) in line.iter().enumerate() {
                    *self.get_mut(i, j, k) = *l;
                }
            }
        }
    }

    /// The signed frequency index of grid index `i` (0, 1, …, n/2−1,
    /// −n/2, …, −1) — standard FFT frequency layout.
    #[inline]
    pub fn freq(&self, i: usize) -> i64 {
        if i < self.n / 2 {
            i as i64
        } else {
            i as i64 - self.n as i64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Cpx, b: Cpx, tol: f64) {
        assert!((a - b).abs() < tol, "{a:?} != {b:?}");
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Cpx::ZERO; 8];
        x[0] = Cpx::real(1.0);
        fft_inplace(&mut x, false);
        for v in &x {
            assert_close(*v, Cpx::real(1.0), 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut x = vec![Cpx::real(1.0); 16];
        fft_inplace(&mut x, false);
        assert_close(x[0], Cpx::real(16.0), 1e-12);
        for v in &x[1..] {
            assert_close(*v, Cpx::ZERO, 1e-12);
        }
    }

    #[test]
    fn single_mode_lands_in_single_bin() {
        let n = 32;
        let mode = 5;
        let mut x: Vec<Cpx> = (0..n)
            .map(|t| Cpx::cis(std::f64::consts::TAU * mode as f64 * t as f64 / n as f64))
            .collect();
        fft_inplace(&mut x, false);
        for (k, v) in x.iter().enumerate() {
            if k == mode {
                assert_close(*v, Cpx::real(n as f64), 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leak at bin {k}: {v:?}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Cpx> =
            (0..64).map(|t| Cpx::new((t as f64).sin(), (t as f64 * 0.7).cos())).collect();
        let mut y = x.clone();
        fft_inplace(&mut y, false);
        fft_inplace(&mut y, true);
        for (a, b) in x.iter().zip(&y) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn parseval() {
        let x: Vec<Cpx> = (0..128).map(|t| Cpx::new((t as f64 * 0.3).sin(), 0.0)).collect();
        let time_energy: f64 = x.iter().map(|v| v.norm2()).sum();
        let mut y = x.clone();
        fft_inplace(&mut y, false);
        let freq_energy: f64 = y.iter().map(|v| v.norm2()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_power_of_two_rejected() {
        let mut x = vec![Cpx::ZERO; 12];
        fft_inplace(&mut x, false);
    }

    #[test]
    fn grid3_roundtrip() {
        let mut g = Grid3::zeros(8);
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    *g.get_mut(i, j, k) =
                        Cpx::new((i * 64 + j * 8 + k) as f64 * 0.01, (i + j + k) as f64 * 0.1);
                }
            }
        }
        let orig = g.clone();
        g.fft3(false);
        g.fft3(true);
        for (a, b) in g.data().iter().zip(orig.data()) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn grid3_plane_wave_single_bin() {
        let n = 8;
        let mut g = Grid3::zeros(n);
        let (kx, ky, kz) = (2usize, 3usize, 1usize);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let phase =
                        std::f64::consts::TAU * (kx * i + ky * j + kz * k) as f64 / n as f64;
                    *g.get_mut(i, j, k) = Cpx::cis(phase);
                }
            }
        }
        g.fft3(false);
        let expect = (n * n * n) as f64;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let v = g.get(i, j, k);
                    if (i, j, k) == (kx, ky, kz) {
                        assert_close(v, Cpx::real(expect), 1e-6);
                    } else {
                        assert!(v.abs() < 1e-6);
                    }
                }
            }
        }
    }

    #[test]
    fn freq_layout() {
        let g = Grid3::zeros(8);
        assert_eq!(g.freq(0), 0);
        assert_eq!(g.freq(3), 3);
        assert_eq!(g.freq(4), -4);
        assert_eq!(g.freq(7), -1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn fft_is_linear(a in proptest::collection::vec(-5.0f64..5.0, 16),
                         b in proptest::collection::vec(-5.0f64..5.0, 16)) {
            let xa: Vec<Cpx> = a.iter().map(|&v| Cpx::real(v)).collect();
            let xb: Vec<Cpx> = b.iter().map(|&v| Cpx::real(v)).collect();
            let mut fa = xa.clone();
            let mut fb = xb.clone();
            let mut fsum: Vec<Cpx> = xa.iter().zip(&xb).map(|(&p, &q)| p + q).collect();
            fft_inplace(&mut fa, false);
            fft_inplace(&mut fb, false);
            fft_inplace(&mut fsum, false);
            for ((s, p), q) in fsum.iter().zip(&fa).zip(&fb) {
                prop_assert!((*s - (*p + *q)).abs() < 1e-9);
            }
        }

        #[test]
        fn real_input_has_hermitian_spectrum(a in proptest::collection::vec(-5.0f64..5.0, 32)) {
            let mut x: Vec<Cpx> = a.iter().map(|&v| Cpx::real(v)).collect();
            fft_inplace(&mut x, false);
            for k in 1..32 {
                prop_assert!((x[k] - x[32 - k].conj()).abs() < 1e-9);
            }
        }
    }
}
