#![warn(missing_docs)]
//! # g5ic — initial-condition generators (the COSMICS substitute)
//!
//! The paper assigns initial positions and velocities from "a discrete
//! realization of density contrast field based on a standard cold dark
//! matter scenario using COSMICS package". COSMICS is not available to
//! this reproduction, so this crate implements the equivalent pipeline
//! from scratch:
//!
//! 1. [`cosmology`] — Einstein–de Sitter background (standard CDM is
//!    Ω = 1), BBKS transfer function, top-hat σ₈ normalization, linear
//!    growth factor;
//! 2. [`fft`] — an in-crate radix-2 complex FFT (1-D and 3-D), the only
//!    numerical machinery the realization needs;
//! 3. [`zeldovich`] — a Gaussian random realization of the density
//!    contrast on a grid, Zel'dovich displacements and peculiar
//!    velocities, and the spherical-region cut that produces the
//!    paper's "sphere of radius 50 Mpc" particle load;
//! 4. [`plummer`], [`hernquist`] and [`sphere`] — non-cosmological test
//!    models (Plummer 1911 and Hernquist 1990 spheres, uniform and cold
//!    spheres) used by the accuracy experiments and examples.
//!
//! Simulation units are G = 1, total sphere mass M = 1, comoving sphere
//! radius R = 1 (↔ 50 Mpc); the Einstein–de Sitter Hubble constant then
//! follows from closure density as H₀ = √2 (see [`cosmology::SimUnits`]).

pub mod cosmology;
pub mod fft;
pub mod hernquist;
pub mod plummer;
pub mod sphere;
pub mod zeldovich;

pub use cosmology::{CosmoParams, SimUnits};
pub use hernquist::hernquist_sphere;
pub use plummer::plummer_sphere;
pub use sphere::{cold_sphere, uniform_sphere};
pub use zeldovich::{CosmologicalIc, ZeldovichConfig};

use g5util::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A particle snapshot: positions, velocities and masses in simulation
/// units.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Positions.
    pub pos: Vec<Vec3>,
    /// Velocities.
    pub vel: Vec<Vec3>,
    /// Masses.
    pub mass: Vec<f64>,
}

impl Snapshot {
    /// Number of particles.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` if there are no particles.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Mass-weighted center of mass.
    pub fn center_of_mass(&self) -> Vec3 {
        let m = self.total_mass();
        self.pos.iter().zip(&self.mass).map(|(&p, &mm)| p * mm).sum::<Vec3>() / m
    }

    /// Total momentum.
    pub fn momentum(&self) -> Vec3 {
        self.vel.iter().zip(&self.mass).map(|(&v, &m)| v * m).sum()
    }

    /// Validate internal consistency (lengths, finiteness, positive
    /// masses), panicking with a description on the first defect.
    pub fn validate(&self) {
        assert_eq!(self.pos.len(), self.vel.len(), "pos/vel length mismatch");
        assert_eq!(self.pos.len(), self.mass.len(), "pos/mass length mismatch");
        for (i, p) in self.pos.iter().enumerate() {
            assert!(p.is_finite(), "non-finite position at {i}");
        }
        for (i, v) in self.vel.iter().enumerate() {
            assert!(v.is_finite(), "non-finite velocity at {i}");
        }
        for (i, &m) in self.mass.iter().enumerate() {
            assert!(m.is_finite() && m > 0.0, "non-positive mass at {i}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_summaries() {
        let s = Snapshot {
            pos: vec![Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)],
            vel: vec![Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, -1.0, 0.0)],
            mass: vec![1.0, 3.0],
        };
        s.validate();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_mass(), 4.0);
        assert_eq!(s.center_of_mass(), Vec3::new(-0.5, 0.0, 0.0));
        assert_eq!(s.momentum(), Vec3::new(0.0, -2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "non-positive mass")]
    fn validate_rejects_zero_mass() {
        let s = Snapshot { pos: vec![Vec3::ZERO], vel: vec![Vec3::ZERO], mass: vec![0.0] };
        s.validate();
    }
}
