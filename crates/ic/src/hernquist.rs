//! Hernquist (1990) sphere — the standard one-parameter galaxy/bulge
//! model with an analytic density–potential pair:
//!
//! ```text
//! ρ(r) = M a / (2π r (r+a)³),     M(r) = M r² / (r+a)²
//! ```
//!
//! Positions follow from inverting the cumulative mass exactly.
//! Velocities are drawn isotropically from a Gaussian with the analytic
//! Jeans-equation dispersion σ²(r) (Hernquist 1990, eq. 10) — the
//! standard "Jeans model" approximation, accurate enough that the model
//! stays within a few percent of virial equilibrium, which the tests
//! enforce. Units: G = M = a = 1.

use crate::Snapshot;
use g5util::vec3::Vec3;
use rand::Rng;

/// Analytic cumulative mass fraction at radius `r` (a = M = 1).
pub fn mass_within(r: f64) -> f64 {
    let x = r / (r + 1.0);
    x * x
}

/// Analytic radial velocity dispersion σ²(r) from the isotropic Jeans
/// equation (Hernquist 1990, eq. 10), G = M = a = 1.
pub fn sigma2(r: f64) -> f64 {
    if r <= 0.0 {
        return 0.0;
    }
    let rp = r + 1.0;
    let term = 12.0 * r * rp.powi(3) * ((rp) / r).ln()
        - r / rp * (25.0 + 52.0 * r + 42.0 * r * r + 12.0 * r.powi(3));
    (term / 12.0).max(0.0)
}

/// Sample an `n`-particle Hernquist sphere, truncated at `r_max` scale
/// lengths, shifted to the center-of-mass frame.
pub fn hernquist_sphere<R: Rng + ?Sized>(n: usize, r_max: f64, rng: &mut R) -> Snapshot {
    assert!(n > 0, "zero particles requested");
    assert!(r_max > 1.0, "truncation radius must exceed the scale length");
    let m = 1.0 / n as f64;
    let f_max = mass_within(r_max);
    let mut pos = Vec::with_capacity(n);
    let mut vel = Vec::with_capacity(n);
    for _ in 0..n {
        // invert M(r): r = sqrt(f) / (1 - sqrt(f)), f uniform in (0, f_max)
        let f: f64 = rng.random_range(0.0..f_max);
        let s = f.sqrt();
        let r = (s / (1.0 - s)).min(r_max);
        pos.push(r * random_unit(rng));
        let sigma = sigma2(r).sqrt();
        vel.push(Vec3::new(sigma * gaussian(rng), sigma * gaussian(rng), sigma * gaussian(rng)));
    }
    let mut snap = Snapshot { pos, vel, mass: vec![m; n] };
    let com = snap.center_of_mass();
    let vcom = snap.momentum() / snap.total_mass();
    for p in &mut snap.pos {
        *p -= com;
    }
    for v in &mut snap.vel {
        *v -= vcom;
    }
    snap
}

fn random_unit<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    let u: f64 = rng.random_range(-1.0..1.0);
    let phi: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let s = (1.0 - u * u).sqrt();
    Vec3::new(s * phi.cos(), s * phi.sin(), u)
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model(n: usize, seed: u64) -> Snapshot {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        hernquist_sphere(n, 50.0, &mut rng)
    }

    #[test]
    fn cumulative_mass_analytics() {
        assert_eq!(mass_within(0.0), 0.0);
        assert!((mass_within(1.0) - 0.25).abs() < 1e-15); // M(a) = 1/4
        assert!(mass_within(1e9) > 0.999_999);
    }

    #[test]
    fn half_mass_radius() {
        // M(r) = 1/2 at r = a (1 + sqrt 2) ≈ 2.414
        let s = model(30_000, 1);
        let mut r: Vec<f64> = s.pos.iter().map(|p| p.norm()).collect();
        r.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        // truncation at 50a removes ~4 % of the mass; the half-mass
        // radius of the truncated model is slightly smaller
        let rh = r[r.len() / 2];
        assert!((rh - 2.3).abs() < 0.25, "half-mass radius {rh}");
    }

    #[test]
    fn density_profile_slopes() {
        // rho ~ r^-1 inside a, r^-4 outside: the mass in [0.01, 0.1]a
        // vastly exceeds the r^3-scaling of a uniform core
        let s = model(100_000, 2);
        let count = |lo: f64, hi: f64| {
            s.pos
                .iter()
                .filter(|p| {
                    let r = p.norm();
                    r >= lo && r < hi
                })
                .count() as f64
        };
        // M(0.1)-M(0.01) vs M(1)-M(0.1): analytic ratio
        let expect = (mass_within(0.1) - mass_within(0.01)) / (mass_within(1.0) - mass_within(0.1));
        let got = count(0.01, 0.1) / count(0.1, 1.0);
        assert!((got / expect - 1.0).abs() < 0.15, "shell ratio {got} vs {expect}");
    }

    #[test]
    fn sigma2_peaks_near_scale_radius() {
        // dispersion rises from 0, peaks around ~0.2-0.5a, falls outward
        assert!(sigma2(1e-4) < sigma2(0.3));
        assert!(sigma2(0.3) > sigma2(5.0));
        assert!(sigma2(5.0) > sigma2(50.0));
        // known value: sigma_r(a) = 0.295, sigma^2(a) = 0.0868 for G=M=a=1
        assert!((sigma2(1.0) - 0.0868).abs() < 0.002, "sigma2(1) = {}", sigma2(1.0));
    }

    #[test]
    fn near_virial_equilibrium() {
        let s = model(30_000, 3);
        let t: f64 = 0.5 * s.vel.iter().zip(&s.mass).map(|(v, &m)| m * v.norm2()).sum::<f64>();
        // analytic |W| for the untruncated model: GM^2/(6a)
        let w = 1.0 / 6.0;
        let ratio = 2.0 * t / w;
        assert!((0.8..1.2).contains(&ratio), "virial ratio {ratio}");
    }

    #[test]
    fn com_frame() {
        let s = model(5000, 4);
        assert!(s.center_of_mass().norm() < 1e-10);
        assert!(s.momentum().norm() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "truncation radius")]
    fn bad_truncation_rejected() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        hernquist_sphere(10, 0.5, &mut rng);
    }
}
