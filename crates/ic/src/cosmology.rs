//! Einstein–de Sitter background cosmology, the BBKS CDM transfer
//! function, and the unit system tying the simulation to the paper's
//! physical setup.
//!
//! The paper's "standard cold dark matter scenario" is Ω = 1 CDM
//! (Einstein–de Sitter). In EdS the background is analytic:
//! `a ∝ t^(2/3)`, `H = H₀ (1+z)^(3/2)`, and the linear growth factor is
//! simply `D ∝ a`.
//!
//! **Simulation units** (see [`SimUnits`]): G = 1, total sphere mass
//! M = 1, comoving sphere radius R = 1 (↔ 50 Mpc). The mean density
//! inside the sphere must equal the EdS critical density, which fixes
//! `H₀ = √(2 M / R³) = √2` — no free parameters remain.

use serde::{Deserialize, Serialize};

/// Physical parameters of the standard-CDM power spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CosmoParams {
    /// Dimensionless Hubble parameter h (SCDM convention: 0.5).
    pub h: f64,
    /// BBKS shape parameter Γ = Ω h (SCDM: 0.5).
    pub gamma: f64,
    /// Top-hat density fluctuation amplitude at 8 Mpc/h, at z = 0.
    pub sigma8: f64,
    /// Comoving radius of the simulated sphere in Mpc (paper: 50).
    pub sphere_radius_mpc: f64,
    /// Initial redshift (paper: 24).
    pub z_init: f64,
}

impl Default for CosmoParams {
    fn default() -> Self {
        CosmoParams::paper()
    }
}

impl CosmoParams {
    /// The paper's setup: SCDM (h = 0.5, Γ = 0.5, σ₈ = 1), a 50 Mpc
    /// sphere started at z = 24.
    pub fn paper() -> Self {
        CosmoParams { h: 0.5, gamma: 0.5, sigma8: 1.0, sphere_radius_mpc: 50.0, z_init: 24.0 }
    }

    /// BBKS (Bardeen, Bond, Kaiser & Szalay 1986) CDM transfer function
    /// at comoving wavenumber `k` in h/Mpc.
    pub fn transfer(&self, k: f64) -> f64 {
        if k <= 0.0 {
            return 1.0;
        }
        let q = k / self.gamma;
        let l = (1.0 + 2.34 * q).ln() / (2.34 * q);
        let poly = 1.0 + 3.89 * q + (16.1 * q).powi(2) + (5.46 * q).powi(3) + (6.71 * q).powi(4);
        l * poly.powf(-0.25)
    }

    /// Unnormalized z = 0 power spectrum `P(k) ∝ k T(k)²` (n = 1
    /// Harrison–Zel'dovich primordial slope), `k` in h/Mpc.
    pub fn power_unnormalized(&self, k: f64) -> f64 {
        let t = self.transfer(k);
        k * t * t
    }

    /// σ²(R) for the unnormalized spectrum with a top-hat window of
    /// comoving radius `r` Mpc/h (log-trapezoid quadrature).
    pub fn sigma2_unnormalized(&self, r: f64) -> f64 {
        assert!(r > 0.0, "non-positive window radius");
        let (lnk_min, lnk_max, steps) = ((1e-4f64).ln(), (1e3f64).ln(), 2000);
        let dlnk = (lnk_max - lnk_min) / steps as f64;
        let mut sum = 0.0;
        for s in 0..=steps {
            let lnk = lnk_min + s as f64 * dlnk;
            let k = lnk.exp();
            let x = k * r;
            let w = if x < 1e-4 { 1.0 } else { 3.0 * (x.sin() - x * x.cos()) / (x * x * x) };
            let integrand = k * k * k * self.power_unnormalized(k) * w * w;
            let weight = if s == 0 || s == steps { 0.5 } else { 1.0 };
            sum += weight * integrand * dlnk;
        }
        sum / (2.0 * std::f64::consts::PI * std::f64::consts::PI)
    }

    /// Normalization constant A such that `P(k) = A k T(k)²` gives the
    /// requested σ₈ at z = 0.
    pub fn power_norm(&self) -> f64 {
        let s2 = self.sigma2_unnormalized(8.0);
        self.sigma8 * self.sigma8 / s2
    }

    /// Normalized z = 0 power spectrum, `k` in h/Mpc, P in (Mpc/h)³.
    pub fn power(&self, k: f64) -> f64 {
        self.power_norm() * self.power_unnormalized(k)
    }
}

/// The EdS background in simulation units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimUnits {
    /// Hubble constant at z = 0 in simulation units (√2 by closure).
    pub h0: f64,
    /// Initial redshift.
    pub z_init: f64,
}

impl SimUnits {
    /// Derive the unit system from the sphere setup: G = 1, M = 1,
    /// comoving R = 1 ⇒ `H₀ = √2`.
    pub fn new(z_init: f64) -> SimUnits {
        assert!(z_init > 0.0, "initial redshift must be positive");
        SimUnits { h0: std::f64::consts::SQRT_2, z_init }
    }

    /// Scale factor at redshift z (a = 1 at z = 0).
    #[inline]
    pub fn a(&self, z: f64) -> f64 {
        1.0 / (1.0 + z)
    }

    /// Hubble rate at redshift z: `H = H₀ (1+z)^(3/2)`.
    #[inline]
    pub fn hubble(&self, z: f64) -> f64 {
        self.h0 * (1.0 + z).powf(1.5)
    }

    /// Cosmic time at redshift z: `t = (2/3) / H(z)`.
    #[inline]
    pub fn time(&self, z: f64) -> f64 {
        2.0 / (3.0 * self.hubble(z))
    }

    /// Linear growth factor, normalized to D = 1 at z = 0 (EdS: D = a).
    #[inline]
    pub fn growth(&self, z: f64) -> f64 {
        self.a(z)
    }

    /// Time span of the paper's run: from z_init to z = 0.
    pub fn run_span(&self) -> (f64, f64) {
        (self.time(self.z_init), self.time(0.0))
    }

    /// A shared-timestep schedule of `steps` absolute times from z_init
    /// to z = 0, uniform in the scale factor a — the standard choice
    /// for cosmological treecodes (constant Δt would make the first
    /// step several initial dynamical times long). In EdS,
    /// `t(a) = t₀ a^{3/2}`.
    pub fn a_uniform_schedule(&self, steps: u64) -> Vec<f64> {
        assert!(steps > 0, "zero steps");
        let t0 = self.time(0.0);
        let a_i = self.a(self.z_init);
        (1..=steps)
            .map(|k| {
                let a = a_i + (1.0 - a_i) * k as f64 / steps as f64;
                t0 * a.powf(1.5)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_limits() {
        let c = CosmoParams::paper();
        // k -> 0: T -> 1
        assert!((c.transfer(1e-6) - 1.0).abs() < 1e-3);
        // large k: strongly suppressed, monotone decline
        assert!(c.transfer(10.0) < 1e-3);
        assert!(c.transfer(0.1) > c.transfer(1.0));
    }

    #[test]
    fn power_spectrum_turns_over() {
        let c = CosmoParams::paper();
        // P(k) rises as k at small k, falls at large k: peak in between
        let p_small = c.power_unnormalized(1e-3);
        let p_peak = c.power_unnormalized(0.05);
        let p_large = c.power_unnormalized(5.0);
        assert!(p_peak > p_small);
        assert!(p_peak > p_large);
    }

    #[test]
    fn sigma8_normalization_roundtrip() {
        let c = CosmoParams::paper();
        let a = c.power_norm();
        let s2 = c.sigma2_unnormalized(8.0);
        assert!((a * s2 - 1.0).abs() < 1e-12, "normalized sigma8 must be 1");
    }

    #[test]
    fn sigma_decreases_with_smoothing_scale() {
        let c = CosmoParams::paper();
        assert!(c.sigma2_unnormalized(4.0) > c.sigma2_unnormalized(8.0));
        assert!(c.sigma2_unnormalized(8.0) > c.sigma2_unnormalized(16.0));
    }

    #[test]
    fn eds_background() {
        let u = SimUnits::new(24.0);
        assert!((u.h0 - 2.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(u.a(0.0), 1.0);
        assert!((u.a(24.0) - 0.04).abs() < 1e-15);
        // H(z) = H0 (1+z)^1.5
        assert!((u.hubble(24.0) / u.h0 - 25.0f64.powf(1.5)).abs() < 1e-12);
        // t0/ti = (1+z)^1.5 = 125
        let (ti, t0) = u.run_span();
        assert!((t0 / ti - 125.0).abs() < 1e-9);
        // growth D = a in EdS
        assert_eq!(u.growth(24.0), u.a(24.0));
    }

    #[test]
    fn closure_density_fixes_h0() {
        // rho_mean = 3 H^2 / (8 pi G); with M = R = G = 1:
        // 3/(4 pi) = 3 H0^2/(8 pi)  =>  H0^2 = 2
        let u = SimUnits::new(24.0);
        let rho_mean = 1.0 / (4.0 / 3.0 * std::f64::consts::PI);
        let rho_crit = 3.0 * u.h0 * u.h0 / (8.0 * std::f64::consts::PI);
        assert!((rho_mean - rho_crit).abs() < 1e-12);
    }

    #[test]
    fn a_uniform_schedule_properties() {
        let u = SimUnits::new(24.0);
        let sched = u.a_uniform_schedule(100);
        assert_eq!(sched.len(), 100);
        // strictly increasing, starting after t_init, ending at t_0
        let (t_i, t_0) = u.run_span();
        assert!(sched[0] > t_i);
        assert!((sched[99] - t_0).abs() < 1e-12);
        for w in sched.windows(2) {
            assert!(w[1] > w[0]);
        }
        // early steps are much shorter than late steps
        let first = sched[0] - t_i;
        let last = sched[99] - sched[98];
        assert!(last / first > 3.0, "late/early step ratio {}", last / first);
        // the first step is a modest fraction of the initial dynamical time
        assert!(first < t_i, "first step {first} vs t_i {t_i}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_z_init_rejected() {
        SimUnits::new(0.0);
    }
}
