//! Zel'dovich-approximation realization of a standard-CDM density
//! field in a sphere — the reproduction's substitute for the COSMICS
//! package (§5 of the paper).
//!
//! Pipeline:
//!
//! 1. fill a cubic grid with unit white Gaussian noise and forward-FFT
//!    it (this yields Hermitian mode amplitudes for free);
//! 2. scale each mode by `√(P(k) N³ / V)` so the inverse transform is a
//!    realization of the density contrast δ with the BBKS spectrum,
//!    normalized to σ₈ at z = 0;
//! 3. convert δ to Zel'dovich displacement fields `ψ̃_k = i k δ̃_k / k²`
//!    (so that `δ = −∇·ψ` to linear order);
//! 4. place particles at grid points inside the sphere, displace by
//!    `D(z_i) ψ`, and assign velocities `v = H x + a Ḋ ψ` (EdS: Ḋ = HD)
//!    — unperturbed Hubble flow plus the Zel'dovich peculiar velocity;
//! 5. convert to simulation units (G = 1, sphere mass 1, comoving
//!    radius 1, physical coordinates at `a_i = 1/(1+z_i)`).
//!
//! The simulation then integrates plain Newtonian gravity in physical
//! coordinates — the standard treatment of an isolated cosmological
//! sphere, matching the paper's setup.

use crate::cosmology::{CosmoParams, SimUnits};
use crate::fft::{Cpx, Grid3};
use crate::Snapshot;
use g5util::vec3::Vec3;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the realization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZeldovichConfig {
    /// Grid cells per dimension (power of two). Roughly `π/6 · n³`
    /// particles end up inside the sphere.
    pub grid_n: usize,
    /// Physical spectrum parameters.
    pub cosmo: CosmoParams,
    /// RNG seed (realizations are deterministic given the seed).
    pub seed: u64,
}

impl ZeldovichConfig {
    /// A laptop-scale default: 32³ grid ⇒ ≈ 17 k particles.
    pub fn small(seed: u64) -> Self {
        ZeldovichConfig { grid_n: 32, cosmo: CosmoParams::paper(), seed }
    }

    /// Pick the smallest power-of-two grid whose in-sphere particle
    /// count reaches `n_target`.
    pub fn for_target_particles(n_target: usize, seed: u64) -> Self {
        let mut n = 8usize;
        while (std::f64::consts::PI / 6.0) * ((n * n * n) as f64) < n_target as f64 {
            n *= 2;
            assert!(n <= 1024, "target particle count unreasonably large");
        }
        ZeldovichConfig { grid_n: n, cosmo: CosmoParams::paper(), seed }
    }
}

/// A generated cosmological initial condition plus its diagnostics.
#[derive(Debug, Clone)]
pub struct CosmologicalIc {
    /// The particle load in simulation units (physical coordinates at
    /// `z_init`).
    pub snapshot: Snapshot,
    /// Background in simulation units.
    pub units: SimUnits,
    /// The spectrum parameters used.
    pub cosmo: CosmoParams,
    /// RMS of the linear density contrast on the grid, scaled to z_init.
    pub delta_rms_init: f64,
    /// RMS Zel'dovich displacement at z_init, in units of the grid
    /// spacing (should stay well below 1 for a valid realization).
    pub displacement_rms_cells: f64,
}

impl CosmologicalIc {
    /// Generate a realization.
    pub fn generate(cfg: &ZeldovichConfig) -> CosmologicalIc {
        let n = cfg.grid_n;
        assert!(n.is_power_of_two() && n >= 8, "grid side must be a power of two >= 8");
        let cosmo = cfg.cosmo;
        let units = SimUnits::new(cosmo.z_init);

        // Box geometry in Mpc/h: cube of side 2R around the sphere.
        let r_h = cosmo.sphere_radius_mpc * cosmo.h;
        let box_l = 2.0 * r_h;
        let vol = box_l * box_l * box_l;
        let cell = box_l / n as f64;

        // 1. white noise, forward FFT
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut delta = Grid3::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    *delta.get_mut(i, j, k) = Cpx::real(gaussian(&mut rng));
                }
            }
        }
        delta.fft3(false);

        // 2. imprint the spectrum; 3. build displacement modes
        let norm = cosmo.power_norm();
        let n3 = (n * n * n) as f64;
        let kf = std::f64::consts::TAU / box_l; // fundamental mode, h/Mpc
        let mut psi = [Grid3::zeros(n), Grid3::zeros(n), Grid3::zeros(n)];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let kv = [
                        kf * delta.freq(i) as f64,
                        kf * delta.freq(j) as f64,
                        kf * delta.freq(k) as f64,
                    ];
                    let k2 = kv[0] * kv[0] + kv[1] * kv[1] + kv[2] * kv[2];
                    if k2 == 0.0 {
                        *delta.get_mut(i, j, k) = Cpx::ZERO;
                        continue;
                    }
                    let kmag = k2.sqrt();
                    let p = norm * cosmo.power_unnormalized(kmag);
                    let amp = (p * n3 / vol).sqrt();
                    let d = delta.get(i, j, k).scale(amp);
                    *delta.get_mut(i, j, k) = d;
                    // psi_k = i k / k^2 * delta_k
                    let i_d = Cpx::new(-d.im, d.re);
                    for (c, grid) in psi.iter_mut().enumerate() {
                        *grid.get_mut(i, j, k) = i_d.scale(kv[c] / k2);
                    }
                }
            }
        }

        // back to real space
        delta.fft3(true);
        for grid in &mut psi {
            grid.fft3(true);
        }

        // diagnostics at z_init
        let d_init = units.growth(cosmo.z_init);
        let delta_rms_z0 = {
            let s: f64 = delta.data().iter().map(|c| c.re * c.re).sum();
            (s / n3).sqrt()
        };
        let psi_rms_h = {
            let s: f64 =
                psi.iter().map(|g| g.data().iter().map(|c| c.re * c.re).sum::<f64>()).sum();
            (s / n3).sqrt()
        };

        // 4./5. particles: grid points inside the sphere, sim units
        // (comoving lengths divided by r_h, then scaled to physical by a_i)
        let a_i = units.a(cosmo.z_init);
        let h_i = units.hubble(cosmo.z_init);
        let mut pos = Vec::new();
        let mut vel = Vec::new();
        let half = box_l / 2.0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    // cell-center Lagrangian coordinate, box-centered, Mpc/h
                    let q = Vec3::new(
                        (i as f64 + 0.5) * cell - half,
                        (j as f64 + 0.5) * cell - half,
                        (k as f64 + 0.5) * cell - half,
                    );
                    if q.norm2() > r_h * r_h {
                        continue;
                    }
                    let psi_q = Vec3::new(
                        psi[0].get(i, j, k).re,
                        psi[1].get(i, j, k).re,
                        psi[2].get(i, j, k).re,
                    );
                    // sim units: comoving sphere radius = 1
                    let q_sim = q / r_h;
                    let psi_sim = psi_q / r_h;
                    let x_com = q_sim + psi_sim * d_init;
                    let x_phys = x_com * a_i;
                    // v = H x + a dD/dt psi, EdS dD/dt = H D
                    let v = x_phys * h_i + psi_sim * (a_i * h_i * d_init);
                    pos.push(x_phys);
                    vel.push(v);
                }
            }
        }
        assert!(!pos.is_empty(), "no grid points inside the sphere");
        let m = 1.0 / pos.len() as f64;
        let count = pos.len();
        let snapshot = Snapshot { pos, vel, mass: vec![m; count] };
        snapshot.validate();

        CosmologicalIc {
            snapshot,
            units,
            cosmo,
            delta_rms_init: delta_rms_z0 * d_init,
            displacement_rms_cells: psi_rms_h * d_init / cell * 3f64.sqrt().recip() * 3f64.sqrt(),
        }
    }
}

/// Standard normal deviate (Box–Muller).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ic(seed: u64) -> CosmologicalIc {
        CosmologicalIc::generate(&ZeldovichConfig::small(seed))
    }

    #[test]
    fn particle_count_matches_sphere_fill() {
        let ic = small_ic(1);
        let n3 = 32usize.pow(3) as f64;
        let expect = std::f64::consts::PI / 6.0 * n3;
        let got = ic.snapshot.len() as f64;
        assert!((got - expect).abs() / expect < 0.05, "count {got} vs {expect}");
    }

    #[test]
    fn positions_near_initial_physical_sphere() {
        let ic = small_ic(2);
        let a_i = ic.units.a(ic.cosmo.z_init); // 0.04
        let rmax = ic.snapshot.pos.iter().map(|p| p.norm()).fold(0.0, f64::max);
        // physical radius a_i * (1 + small displacement slack)
        assert!(rmax < a_i * 1.2, "rmax {rmax} vs a_i {a_i}");
        assert!(rmax > a_i * 0.8);
    }

    #[test]
    fn hubble_flow_dominates_velocities() {
        let ic = small_ic(3);
        let h_i = ic.units.hubble(ic.cosmo.z_init);
        let mut aligned = 0usize;
        for (p, v) in ic.snapshot.pos.iter().zip(&ic.snapshot.vel) {
            // compare against pure Hubble flow
            let hubble = *p * h_i;
            if (*v - hubble).norm() < 0.5 * hubble.norm() + 1e-12 {
                aligned += 1;
            }
        }
        let frac = aligned as f64 / ic.snapshot.len() as f64;
        assert!(frac > 0.9, "only {frac} of velocities near Hubble flow");
    }

    #[test]
    fn density_contrast_is_linear_at_z_init() {
        let ic = small_ic(4);
        // at z = 24 the field must still be linear: rms delta well below 1,
        // but nonzero (a realization actually happened)
        assert!(ic.delta_rms_init > 0.005, "rms {}", ic.delta_rms_init);
        assert!(ic.delta_rms_init < 0.5, "rms {}", ic.delta_rms_init);
    }

    #[test]
    fn displacements_stay_sub_cell() {
        let ic = small_ic(5);
        assert!(
            ic.displacement_rms_cells < 1.0,
            "Zel'dovich displacements exceed a grid cell: {}",
            ic.displacement_rms_cells
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_ic(42);
        let b = small_ic(42);
        assert_eq!(a.snapshot.pos, b.snapshot.pos);
        assert_eq!(a.snapshot.vel, b.snapshot.vel);
        let c = small_ic(43);
        assert_ne!(a.snapshot.pos, c.snapshot.pos);
    }

    #[test]
    fn target_particle_sizing() {
        let cfg = ZeldovichConfig::for_target_particles(100_000, 0);
        let n3 = (cfg.grid_n * cfg.grid_n * cfg.grid_n) as f64;
        assert!(std::f64::consts::PI / 6.0 * n3 >= 100_000.0);
        let smaller = cfg.grid_n / 2;
        let s3 = (smaller * smaller * smaller) as f64;
        assert!(std::f64::consts::PI / 6.0 * s3 < 100_000.0);
    }

    #[test]
    fn total_mass_is_unity() {
        let ic = small_ic(6);
        assert!((ic.snapshot.total_mass() - 1.0).abs() < 1e-9);
    }
}
