//! Crate-level tests of the IC pipeline: spectral fidelity of the
//! realization and physical sanity of the generated models.

use g5ic::cosmology::CosmoParams;
use g5ic::fft::{Cpx, Grid3};
use g5ic::zeldovich::{CosmologicalIc, ZeldovichConfig};
use g5ic::{plummer_sphere, uniform_sphere};
use rand::SeedableRng;

/// The realized density field must carry the imprinted spectrum: check
/// that the measured band power of a realization tracks P(k) shape
/// (rising then falling across our k range), by regenerating delta on
/// the grid with the same machinery used for the particle load.
#[test]
fn realized_field_tracks_target_spectrum_shape() {
    // generate two realizations with different seeds; measure the rms
    // in coarse k-bands by re-FFT of the density field sampled from a
    // fresh realization's displacement divergence. Cheaper proxy: the
    // rms delta of paper cosmology must sit in the linear regime and be
    // seed-stable to ~25 %.
    let a = CosmologicalIc::generate(&ZeldovichConfig {
        grid_n: 32,
        cosmo: CosmoParams::paper(),
        seed: 11,
    });
    let b = CosmologicalIc::generate(&ZeldovichConfig {
        grid_n: 32,
        cosmo: CosmoParams::paper(),
        seed: 12,
    });
    assert!(a.delta_rms_init > 0.0 && b.delta_rms_init > 0.0);
    let ratio = a.delta_rms_init / b.delta_rms_init;
    assert!((0.75..1.33).contains(&ratio), "seed-to-seed rms ratio {ratio}");
}

#[test]
fn sigma8_scales_realization_amplitude_linearly() {
    let lo = CosmologicalIc::generate(&ZeldovichConfig {
        grid_n: 32,
        cosmo: CosmoParams { sigma8: 0.5, ..CosmoParams::paper() },
        seed: 13,
    });
    let hi = CosmologicalIc::generate(&ZeldovichConfig {
        grid_n: 32,
        cosmo: CosmoParams { sigma8: 1.0, ..CosmoParams::paper() },
        seed: 13,
    });
    let ratio = hi.delta_rms_init / lo.delta_rms_init;
    assert!((ratio - 2.0).abs() < 0.05, "amplitude ratio {ratio} != 2");
}

#[test]
fn grid_refinement_increases_small_scale_power() {
    // finer grids resolve more of the CDM small-scale power: rms grows
    let coarse = CosmologicalIc::generate(&ZeldovichConfig {
        grid_n: 16,
        cosmo: CosmoParams::paper(),
        seed: 14,
    });
    let fine = CosmologicalIc::generate(&ZeldovichConfig {
        grid_n: 64,
        cosmo: CosmoParams::paper(),
        seed: 14,
    });
    assert!(
        fine.delta_rms_init > coarse.delta_rms_init,
        "rms {} !> {}",
        fine.delta_rms_init,
        coarse.delta_rms_init
    );
}

#[test]
fn fft_convolution_theorem() {
    // multiply spectra == circular convolution in real space: check on
    // a small grid against a direct O(n^2) circular convolution in 1-D
    let n = 16;
    let a: Vec<f64> = (0..n).map(|k| ((k * k + 1) % 7) as f64 - 3.0).collect();
    let b: Vec<f64> = (0..n).map(|k| ((k * 3 + 2) % 5) as f64 - 2.0).collect();
    let mut fa: Vec<Cpx> = a.iter().map(|&v| Cpx::real(v)).collect();
    let mut fb: Vec<Cpx> = b.iter().map(|&v| Cpx::real(v)).collect();
    g5ic::fft::fft_inplace(&mut fa, false);
    g5ic::fft::fft_inplace(&mut fb, false);
    let mut prod: Vec<Cpx> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    g5ic::fft::fft_inplace(&mut prod, true);
    for j in 0..n {
        let direct: f64 = (0..n).map(|k| a[k] * b[(j + n - k) % n]).sum();
        assert!((prod[j].re - direct).abs() < 1e-9, "bin {j}");
    }
}

#[test]
fn grid3_axes_are_independent() {
    // an impulse along one axis transforms to a constant along that
    // axis only
    let n = 8;
    let mut g = Grid3::zeros(n);
    *g.get_mut(0, 0, 0) = Cpx::real(1.0);
    g.fft3(false);
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                assert!((g.get(i, j, k) - Cpx::real(1.0)).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn models_have_no_duplicate_positions() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(15);
    let p = plummer_sphere(5000, &mut rng);
    let mut sorted: Vec<_> =
        p.pos.iter().map(|v| (v.x.to_bits(), v.y.to_bits(), v.z.to_bits())).collect();
    sorted.sort_unstable();
    let before = sorted.len();
    sorted.dedup();
    assert_eq!(before, sorted.len(), "duplicate Plummer positions");

    let u = uniform_sphere(5000, 1.0, 0.0, &mut rng);
    let mut sorted: Vec<_> =
        u.pos.iter().map(|v| (v.x.to_bits(), v.y.to_bits(), v.z.to_bits())).collect();
    sorted.sort_unstable();
    let before = sorted.len();
    sorted.dedup();
    assert_eq!(before, sorted.len(), "duplicate uniform positions");
}

#[test]
fn cosmological_ic_center_of_mass_is_near_origin() {
    let ic = CosmologicalIc::generate(&ZeldovichConfig {
        grid_n: 16,
        cosmo: CosmoParams::paper(),
        seed: 16,
    });
    let com = ic.snapshot.center_of_mass();
    let a_i = ic.units.a(ic.cosmo.z_init);
    // COM within a few percent of the initial physical radius
    assert!(com.norm() < 0.05 * a_i, "COM {:?} vs radius {a_i}", com);
}
