//! Octree construction.
//!
//! Build strategy: quantize positions onto a 2²¹-cell Morton grid over
//! the bounding cube, sort particle indices by Morton code (rayon
//! parallel sort), then split code ranges recursively — each octree
//! cell is a contiguous range of the sorted order, so the build does no
//! per-particle allocation and the traversals get cache-friendly,
//! contiguous leaf particle runs. Monopole moments (mass and center of
//! mass) are accumulated on the way back up; GRAPE-5 consumes only
//! monopoles, so no higher moments are stored.
//!
//! Alongside the [`Node`] array the build fills [`NodeColumns`] — the
//! hot node fields split into structure-of-arrays columns (`geom` for
//! MAC opening tests, `moment` for list resolution, `span`/`children`
//! for walking), which is what the explicit-stack traversal in
//! [`crate::traverse`] actually reads.
//!
//! **Incremental refresh.** Real GRAPE hosts amortized tree work across
//! timesteps (Athanassoula et al. 2008; Makino et al., GRAPE-6):
//! between full rebuilds, [`Tree::refresh`] keeps the topology and
//! Morton order fixed, re-reads the moved positions through the stored
//! permutation, and re-accumulates monopole moments bottom-up. The
//! cell *geometry* then no longer bounds its particles exactly; the
//! tree tracks a cumulative max-displacement bound ([`Tree::drift_bound`])
//! that traversals add to their group spheres to stay conservative,
//! and that callers compare against a threshold to trigger a rebuild.

use g5util::morton;
use g5util::morton_sort;
use g5util::vec3::Vec3;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sentinel child index meaning "no child".
pub const NONE: u32 = u32::MAX;

/// Build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// A cell with at most this many particles becomes a leaf.
    ///
    /// **Coupling with the traversal's `n_crit`:** group finding
    /// ([`crate::traverse::Traversal::find_groups`]) descends until a
    /// cell's population fits `n_crit`, but it can never descend past a
    /// leaf — so with `leaf_capacity > n_crit` the groups silently
    /// degenerate to whole leaves larger than `n_crit` (and, at the
    /// extreme, per-body lists lose their sharing altogether). Keep
    /// `leaf_capacity <= n_crit`; the grouped backends assert it.
    pub leaf_capacity: usize,
    /// Maximum tree depth (bounded by the Morton resolution).
    pub max_depth: u32,
    /// Also compute quadrupole moments. The host treecode can consume
    /// them ([`crate::eval`]); GRAPE-5 cannot — its pipeline evaluates
    /// monopole terms only, which is why the paper's system runs the
    /// tree with monopoles and a smaller θ.
    pub quadrupole: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { leaf_capacity: 8, max_depth: morton::BITS_PER_DIM, quadrupole: false }
    }
}

/// One octree cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Node {
    /// Geometric center of the cell cube.
    pub center: Vec3,
    /// Half side length of the cell cube.
    pub half: f64,
    /// Center of mass of the contained particles.
    pub com: Vec3,
    /// Total contained mass.
    pub mass: f64,
    /// First particle (index into the tree's sorted order).
    pub first: u32,
    /// Number of contained particles.
    pub count: u32,
    /// Child node indices; `NONE` where the octant is empty. All-`NONE`
    /// means the node is a leaf.
    pub children: [u32; 8],
}

impl Node {
    /// `true` if this node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children == [NONE; 8]
    }

    /// Cell side length `s`, the numerator of the opening criterion.
    #[inline]
    pub fn side(&self) -> f64 {
        2.0 * self.half
    }

    /// Particle index range in the tree's sorted order.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.first as usize..(self.first + self.count) as usize
    }
}

/// Hot node fields split into structure-of-arrays columns, parallel to
/// [`Tree::nodes`]. The explicit-stack traversal touches exactly one
/// 32-byte `geom` entry per MAC test and one `moment` entry per
/// accepted cell, instead of dragging whole 136-byte `Node`s through
/// the cache.
#[derive(Debug, Clone, Default)]
pub struct NodeColumns {
    /// `[com.x, com.y, com.z, half]` per node — exactly what the
    /// Barnes–Hut opening test reads, packed so each MAC evaluation is
    /// one 32-byte load (two nodes per cache line; the DFS visits
    /// sibling indices consecutively).
    pub walk: Vec<[f64; 4]>,
    /// `[center.x, center.y, center.z, half]` per node — the cell cube,
    /// for the conservative min-distance opening test.
    pub geom: Vec<[f64; 4]>,
    /// `[com.x, com.y, com.z, mass]` per node — everything list
    /// resolution needs about the monopole.
    pub moment: Vec<[f64; 4]>,
    /// `[first, count]` particle span per node (tree sorted order).
    pub span: Vec<[u32; 2]>,
    /// Child node indices per node; `NONE` where the octant is empty.
    pub children: Vec<[u32; 8]>,
}

impl NodeColumns {
    /// `true` if node `i` has no children.
    #[inline]
    pub fn is_leaf(&self, i: usize) -> bool {
        self.children[i] == [NONE; 8]
    }

    /// Particle span of node `i` in the tree's sorted order.
    #[inline]
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        let [first, count] = self.span[i];
        first as usize..(first + count) as usize
    }
}

/// A built octree over a particle snapshot.
///
/// The tree owns *sorted copies* of positions and masses; `order[k]`
/// maps sorted slot `k` back to the caller's original particle index.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    cols: NodeColumns,
    order: Vec<u32>,
    pos: Vec<Vec3>,
    mass: Vec<f64>,
    cfg: TreeConfig,
    /// Upper bound on how far any particle has moved since the last
    /// full build (sum of per-refresh maxima, so it bounds the total
    /// displacement by the triangle inequality). Zero for a fresh tree.
    drift: f64,
    /// Per-node traceless quadrupole `Q_ij = Σ m (3 dx_i dx_j − δ_ij r²)`
    /// about the node's center of mass, packed `[xx, yy, zz, xy, xz, yz]`.
    quads: Option<Vec<[f64; 6]>>,
}

impl Tree {
    /// Build an octree over `pos`/`mass` with default parameters.
    pub fn build(pos: &[Vec3], mass: &[f64]) -> Tree {
        Tree::build_with(pos, mass, TreeConfig::default())
    }

    /// Build an octree with explicit parameters.
    ///
    /// # Panics
    /// On empty input, length mismatch, or non-finite positions.
    pub fn build_with(pos: &[Vec3], mass: &[f64], cfg: TreeConfig) -> Tree {
        Tree::build_with_hint(pos, mass, cfg, None)
    }

    /// Build an octree, seeding the Morton sort with the sorted order of
    /// a previous build over the same (since drifted) particle set —
    /// typically [`Tree::order`] of the tree being replaced. Between
    /// rebuilds only a small fraction of particles cross Morton-cell
    /// boundaries, so the incremental re-sort
    /// ([`morton_sort::sort_indices_incremental`]) replaces the full
    /// radix sort with one scan plus a small merge. The result is
    /// bit-identical to [`build_with`](Self::build_with): `(code,
    /// index)` keys are unique, so the sorted order is unique whatever
    /// route produced it.
    ///
    /// # Panics
    /// On empty input, length mismatch, or non-finite positions.
    pub fn build_with_hint(
        pos: &[Vec3],
        mass: &[f64],
        cfg: TreeConfig,
        hint: Option<&[u32]>,
    ) -> Tree {
        assert!(!pos.is_empty(), "cannot build a tree over zero particles");
        assert_eq!(pos.len(), mass.len(), "position/mass length mismatch");
        assert!(cfg.leaf_capacity >= 1, "leaf capacity must be positive");
        assert!(
            (1..=morton::BITS_PER_DIM).contains(&cfg.max_depth),
            "max depth outside 1..={}",
            morton::BITS_PER_DIM
        );

        // Shared quantize + radix sort (g5util::morton_sort): bounding
        // cube padded so the max corner quantizes inside the grid, one
        // Morton code per particle, indices radix-sorted by
        // (code, index) — a stable total order, so particles at equal
        // codes keep input order regardless of sort implementation.
        let morton_sort::MortonOrdered { frame, codes, order } = match hint {
            Some(h) => morton_sort::morton_order_incremental(pos, h),
            None => morton_sort::morton_order(pos),
        };
        let (center, half) = (frame.center, frame.half);

        let sorted_codes: Vec<u64> = order.iter().map(|&i| codes[i as usize]).collect();
        let sorted_pos: Vec<Vec3> = order.iter().map(|&i| pos[i as usize]).collect();
        let sorted_mass: Vec<f64> = order.iter().map(|&i| mass[i as usize]).collect();

        let mut tree = Tree {
            nodes: Vec::new(),
            cols: NodeColumns::default(),
            order,
            pos: sorted_pos,
            mass: sorted_mass,
            cfg,
            drift: 0.0,
            quads: None,
        };
        // Root is node 0.
        tree.nodes.push(Node {
            center,
            half,
            com: Vec3::ZERO,
            mass: 0.0,
            first: 0,
            count: pos.len() as u32,
            children: [NONE; 8],
        });
        tree.split(0, 0, &sorted_codes);
        tree.fill_columns();
        if cfg.quadrupole {
            tree.compute_quadrupoles();
        }
        tree
    }

    /// (Re)derive the SoA columns from the `Node` array.
    fn fill_columns(&mut self) {
        let n = self.nodes.len();
        self.cols.walk.clear();
        self.cols.geom.clear();
        self.cols.moment.clear();
        self.cols.span.clear();
        self.cols.children.clear();
        self.cols.walk.reserve(n);
        self.cols.geom.reserve(n);
        self.cols.moment.reserve(n);
        self.cols.span.reserve(n);
        self.cols.children.reserve(n);
        for nd in &self.nodes {
            self.cols.walk.push([nd.com.x, nd.com.y, nd.com.z, nd.half]);
            self.cols.geom.push([nd.center.x, nd.center.y, nd.center.z, nd.half]);
            self.cols.moment.push([nd.com.x, nd.com.y, nd.com.z, nd.mass]);
            self.cols.span.push([nd.first, nd.count]);
            self.cols.children.push(nd.children);
        }
    }

    /// Re-bind the tree to moved particles **without rebuilding**:
    /// topology, Morton order and cell geometry stay fixed; sorted
    /// positions/masses are re-read through the stored permutation and
    /// monopole moments are re-accumulated bottom-up (children in
    /// octant order, leaves over their ranges — the same summation
    /// order as the build, so refreshing with unmoved particles is
    /// bit-identical to the fresh build).
    ///
    /// Returns the updated [`drift_bound`](Self::drift_bound): the
    /// previous bound plus this refresh's largest single-particle
    /// displacement. Traversals add it to their group spheres so the
    /// opening tests stay conservative while cells no longer bound
    /// their (moved) particles; callers compare it against a threshold
    /// to decide when a full rebuild is due.
    ///
    /// # Panics
    /// On length mismatch with the built snapshot or non-finite
    /// positions.
    pub fn refresh(&mut self, pos: &[Vec3], mass: &[f64]) -> f64 {
        assert_eq!(pos.len(), self.pos.len(), "refresh particle count != built particle count");
        assert_eq!(pos.len(), mass.len(), "position/mass length mismatch");
        let mut step_disp2 = 0.0f64;
        for k in 0..self.pos.len() {
            let o = self.order[k] as usize;
            let np = pos[o];
            assert!(np.is_finite(), "non-finite position");
            step_disp2 = step_disp2.max(np.dist2(self.pos[k]));
            self.pos[k] = np;
            self.mass[k] = mass[o];
        }
        self.drift += step_disp2.sqrt();
        self.refresh_moments();
        if self.cfg.quadrupole {
            self.compute_quadrupoles();
        }
        self.drift
    }

    /// Bottom-up monopole re-accumulation over the fixed topology.
    /// Children always carry larger indices than their parent (they are
    /// pushed during the parent's split), so one reverse pass sees
    /// every child before its parent.
    fn refresh_moments(&mut self) {
        for i in (0..self.nodes.len()).rev() {
            let node = self.nodes[i];
            let (m, com) = if node.is_leaf() {
                self.moments_of_range(node.first as usize, node.count as usize)
            } else {
                let mut m = 0.0;
                let mut mx = Vec3::ZERO;
                for &c in &node.children {
                    if c != NONE {
                        let ch = &self.nodes[c as usize];
                        m += ch.mass;
                        mx += ch.com * ch.mass;
                    }
                }
                (m, if m > 0.0 { mx / m } else { node.center })
            };
            let nd = &mut self.nodes[i];
            nd.mass = m;
            nd.com = com;
            self.cols.moment[i] = [com.x, com.y, com.z, m];
            // geometry (walk[3] = half) is frozen on refresh; only the com moves
            self.cols.walk[i][..3].copy_from_slice(&[com.x, com.y, com.z]);
        }
    }

    /// Upper bound on any particle's displacement since the last full
    /// build (zero for a fresh tree). Grows monotonically across
    /// [`refresh`](Self::refresh) calls.
    #[inline]
    pub fn drift_bound(&self) -> f64 {
        self.drift
    }

    /// The hot node fields in structure-of-arrays layout.
    #[inline]
    pub fn columns(&self) -> &NodeColumns {
        &self.cols
    }

    /// Fill `quads` by direct accumulation over each node's particle
    /// range (every particle is visited once per ancestor level, so the
    /// cost is O(N · depth), same order as the build itself).
    fn compute_quadrupoles(&mut self) {
        let quads: Vec<[f64; 6]> = self
            .nodes
            .par_iter()
            .map(|n| {
                let mut q = [0.0f64; 6];
                for k in n.range() {
                    let d = self.pos[k] - n.com;
                    let m = self.mass[k];
                    let r2 = d.norm2();
                    q[0] += m * (3.0 * d.x * d.x - r2);
                    q[1] += m * (3.0 * d.y * d.y - r2);
                    q[2] += m * (3.0 * d.z * d.z - r2);
                    q[3] += m * 3.0 * d.x * d.y;
                    q[4] += m * 3.0 * d.x * d.z;
                    q[5] += m * 3.0 * d.y * d.z;
                }
                q
            })
            .collect();
        self.quads = Some(quads);
    }

    /// Per-node quadrupole moments, if the tree was built with them.
    #[inline]
    pub fn quads(&self) -> Option<&[[f64; 6]]> {
        self.quads.as_deref()
    }

    /// Recursively split node `idx` (whose particles occupy a contiguous
    /// sorted range) at tree `level`, then fill in monopole moments.
    fn split(&mut self, idx: usize, level: u32, codes: &[u64]) {
        let (first, count, center, half) = {
            let n = &self.nodes[idx];
            (n.first as usize, n.count as usize, n.center, n.half)
        };

        if count <= self.cfg.leaf_capacity || level >= self.cfg.max_depth {
            let (m, com) = self.moments_of_range(first, count);
            let n = &mut self.nodes[idx];
            n.mass = m;
            n.com = com;
            return;
        }

        // Partition the range into octants by the 3 Morton bits at this level.
        let mut children = [NONE; 8];
        let mut start = first;
        let end = first + count;
        for oct in 0..8u8 {
            // advance over particles in this octant
            let mut stop = start;
            while stop < end && morton::octant_at_level(codes[stop], level) == oct {
                stop += 1;
            }
            if stop > start {
                let q = half * 0.5;
                let ccenter = Vec3::new(
                    center.x + if oct & 1 != 0 { q } else { -q },
                    center.y + if oct & 2 != 0 { q } else { -q },
                    center.z + if oct & 4 != 0 { q } else { -q },
                );
                let child = self.nodes.len();
                self.nodes.push(Node {
                    center: ccenter,
                    half: q,
                    com: Vec3::ZERO,
                    mass: 0.0,
                    first: start as u32,
                    count: (stop - start) as u32,
                    children: [NONE; 8],
                });
                children[oct as usize] = child as u32;
                self.split(child, level + 1, codes);
            }
            start = stop;
        }
        debug_assert_eq!(start, end, "octant partition must cover the range");

        // Monopole from children.
        let mut m = 0.0;
        let mut mx = Vec3::ZERO;
        for &c in &children {
            if c != NONE {
                let ch = &self.nodes[c as usize];
                m += ch.mass;
                mx += ch.com * ch.mass;
            }
        }
        let n = &mut self.nodes[idx];
        n.children = children;
        n.mass = m;
        n.com = if m > 0.0 { mx / m } else { n.center };
    }

    fn moments_of_range(&self, first: usize, count: usize) -> (f64, Vec3) {
        let mut m = 0.0;
        let mut mx = Vec3::ZERO;
        for k in first..first + count {
            m += self.mass[k];
            mx += self.pos[k] * self.mass[k];
        }
        let com = if m > 0.0 { mx / m } else { self.nodes[0].center };
        (m, com)
    }

    /// All cells, root first.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The root cell.
    #[inline]
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Number of particles.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` if the tree is empty (never: construction requires ≥ 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Positions in sorted (Morton) order.
    #[inline]
    pub fn pos(&self) -> &[Vec3] {
        &self.pos
    }

    /// Masses in sorted (Morton) order.
    #[inline]
    pub fn mass(&self) -> &[f64] {
        &self.mass
    }

    /// Map a sorted slot back to the caller's original particle index.
    #[inline]
    pub fn original_index(&self, sorted: usize) -> usize {
        self.order[sorted] as usize
    }

    /// The sorted→original permutation.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Build parameters used.
    #[inline]
    pub fn config(&self) -> TreeConfig {
        self.cfg
    }

    /// Maximum leaf depth actually present (root = depth 0).
    pub fn depth(&self) -> u32 {
        fn walk(t: &Tree, idx: u32, d: u32) -> u32 {
            let n = &t.nodes[idx as usize];
            let mut best = d;
            for &c in &n.children {
                if c != NONE {
                    best = best.max(walk(t, c, d + 1));
                }
            }
            best
        }
        walk(self, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
            })
            .collect();
        let mass = (0..n).map(|_| rng.random_range(0.5..2.0)).collect();
        (pos, mass)
    }

    #[test]
    fn single_particle_tree() {
        let t = Tree::build(&[Vec3::new(1.0, 2.0, 3.0)], &[5.0]);
        assert_eq!(t.len(), 1);
        assert!(t.root().is_leaf());
        assert_eq!(t.root().mass, 5.0);
        assert_eq!(t.root().com, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn mass_is_conserved_at_every_level() {
        let (pos, mass) = random_cloud(500, 1);
        let t = Tree::build(&pos, &mass);
        let total: f64 = mass.iter().sum();
        assert!((t.root().mass - total).abs() < 1e-9);
        // every internal node's mass equals the sum of its children
        for n in t.nodes() {
            if !n.is_leaf() {
                let csum: f64 = n
                    .children
                    .iter()
                    .filter(|&&c| c != NONE)
                    .map(|&c| t.nodes()[c as usize].mass)
                    .sum();
                assert!((n.mass - csum).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn children_partition_parent_range() {
        let (pos, mass) = random_cloud(300, 2);
        let t = Tree::build(&pos, &mass);
        for n in t.nodes() {
            if n.is_leaf() {
                continue;
            }
            let mut covered = 0;
            let mut next = n.first;
            for &c in &n.children {
                if c != NONE {
                    let ch = &t.nodes()[c as usize];
                    assert_eq!(ch.first, next, "children must tile the parent range in order");
                    next += ch.count;
                    covered += ch.count;
                }
            }
            assert_eq!(covered, n.count);
        }
    }

    #[test]
    fn leaves_respect_capacity() {
        let (pos, mass) = random_cloud(1000, 3);
        let cfg = TreeConfig { leaf_capacity: 16, ..TreeConfig::default() };
        let t = Tree::build_with(&pos, &mass, cfg);
        for n in t.nodes() {
            if n.is_leaf() {
                assert!(n.count as usize <= 16, "leaf of {} exceeds capacity", n.count);
            }
        }
    }

    #[test]
    fn particles_lie_inside_their_cells() {
        let (pos, mass) = random_cloud(400, 4);
        let t = Tree::build(&pos, &mass);
        for n in t.nodes() {
            let pad = n.half * 1e-9 + 1e-12;
            for k in n.range() {
                let d = (t.pos()[k] - n.center).abs();
                assert!(
                    d.max_component() <= n.half + pad,
                    "particle {k} outside its cell: off by {}",
                    d.max_component() - n.half
                );
            }
        }
    }

    #[test]
    fn com_lies_inside_cell() {
        let (pos, mass) = random_cloud(400, 5);
        let t = Tree::build(&pos, &mass);
        for n in t.nodes() {
            let d = (n.com - n.center).abs();
            assert!(d.max_component() <= n.half * (1.0 + 1e-9));
        }
    }

    #[test]
    fn order_is_a_permutation() {
        let (pos, mass) = random_cloud(257, 6);
        let t = Tree::build(&pos, &mass);
        let mut seen = vec![false; pos.len()];
        for k in 0..t.len() {
            let o = t.original_index(k);
            assert!(!seen[o], "index {o} appears twice");
            seen[o] = true;
            assert_eq!(t.pos()[k], pos[o]);
            assert_eq!(t.mass()[k], mass[o]);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn duplicate_positions_terminate_via_max_depth() {
        let pos = vec![Vec3::new(0.5, 0.5, 0.5); 100];
        let mass = vec![1.0; 100];
        let t = Tree::build(&pos, &mass);
        assert!((t.root().mass - 100.0).abs() < 1e-12);
        assert!(t.depth() <= morton::BITS_PER_DIM);
    }

    #[test]
    fn degenerate_planar_cloud() {
        // all z equal: cube still valid, build must succeed
        let pos: Vec<Vec3> =
            (0..64).map(|k| Vec3::new((k % 8) as f64, (k / 8) as f64, 0.0)).collect();
        let mass = vec![1.0; 64];
        let t = Tree::build(&pos, &mass);
        assert_eq!(t.root().count, 64);
        assert!((t.root().mass - 64.0).abs() < 1e-12);
    }

    #[test]
    fn columns_mirror_nodes() {
        let (pos, mass) = random_cloud(600, 21);
        let t = Tree::build(&pos, &mass);
        assert_eq!(t.columns().geom.len(), t.nodes().len());
        for (i, n) in t.nodes().iter().enumerate() {
            let c = t.columns();
            assert_eq!(c.walk[i], [n.com.x, n.com.y, n.com.z, n.half]);
            assert_eq!(c.geom[i], [n.center.x, n.center.y, n.center.z, n.half]);
            assert_eq!(c.moment[i], [n.com.x, n.com.y, n.com.z, n.mass]);
            assert_eq!(c.span[i], [n.first, n.count]);
            assert_eq!(c.children[i], n.children);
            assert_eq!(c.is_leaf(i), n.is_leaf());
            assert_eq!(c.range(i), n.range());
        }
    }

    #[test]
    fn refresh_with_unmoved_particles_is_bit_identical() {
        let (pos, mass) = random_cloud(800, 22);
        let fresh = Tree::build(&pos, &mass);
        let mut refreshed = Tree::build(&pos, &mass);
        let drift = refreshed.refresh(&pos, &mass);
        assert_eq!(drift, 0.0);
        assert_eq!(refreshed.drift_bound(), 0.0);
        for (a, b) in fresh.nodes().iter().zip(refreshed.nodes()) {
            assert_eq!(a.com, b.com);
            assert_eq!(a.mass, b.mass);
        }
        assert_eq!(fresh.columns().moment, refreshed.columns().moment);
        assert_eq!(fresh.columns().walk, refreshed.columns().walk);
        assert_eq!(fresh.pos(), refreshed.pos());
    }

    #[test]
    fn refresh_tracks_displacement_and_updates_moments() {
        let (pos, mass) = random_cloud(500, 23);
        let mut t = Tree::build(&pos, &mass);
        let shift = Vec3::new(0.03, -0.01, 0.02);
        let moved: Vec<Vec3> = pos.iter().map(|&p| p + shift).collect();
        let drift = t.refresh(&moved, &mass);
        assert!((drift - shift.norm()).abs() < 1e-12, "drift {drift} != |shift|");
        // a uniform translation moves every com by exactly the shift
        let fresh = Tree::build(&pos, &mass);
        for (a, b) in fresh.nodes().iter().zip(t.nodes()) {
            assert!((b.com - (a.com + shift)).norm() < 1e-9);
            assert!((a.mass - b.mass).abs() < 1e-12);
        }
        // the packed walk column tracks the refreshed com exactly
        for (i, n) in t.nodes().iter().enumerate() {
            assert_eq!(t.columns().walk[i], [n.com.x, n.com.y, n.com.z, n.half]);
        }
        // drift accumulates across refreshes (triangle inequality bound)
        let back: Vec<Vec3> = pos.clone();
        let drift2 = t.refresh(&back, &mass);
        assert!((drift2 - 2.0 * shift.norm()).abs() < 1e-12);
        // geometry and order never change on refresh
        assert_eq!(fresh.columns().geom, t.columns().geom);
        assert_eq!(fresh.order(), t.order());
    }

    #[test]
    fn refresh_updates_masses_through_permutation() {
        let (pos, mass) = random_cloud(300, 24);
        let mut t = Tree::build(&pos, &mass);
        let doubled: Vec<f64> = mass.iter().map(|m| 2.0 * m).collect();
        t.refresh(&pos, &doubled);
        let total: f64 = doubled.iter().sum();
        assert!((t.root().mass - total).abs() < 1e-9 * total);
        for k in 0..t.len() {
            assert_eq!(t.mass()[k], doubled[t.original_index(k)]);
        }
    }

    #[test]
    fn hinted_rebuild_is_bit_identical_to_fresh_build() {
        let (pos, mass) = random_cloud(900, 26);
        let prev = Tree::build(&pos, &mass);
        // drift everyone a little, then rebuild with and without the hint
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(27);
        let moved: Vec<Vec3> = pos
            .iter()
            .map(|&p| {
                p + Vec3::new(
                    rng.random_range(-0.02..0.02),
                    rng.random_range(-0.02..0.02),
                    rng.random_range(-0.02..0.02),
                )
            })
            .collect();
        let fresh = Tree::build(&moved, &mass);
        let hinted =
            Tree::build_with_hint(&moved, &mass, TreeConfig::default(), Some(prev.order()));
        assert_eq!(fresh.order(), hinted.order());
        assert_eq!(fresh.pos(), hinted.pos());
        assert_eq!(fresh.mass(), hinted.mass());
        assert_eq!(fresh.nodes().len(), hinted.nodes().len());
        for (a, b) in fresh.nodes().iter().zip(hinted.nodes()) {
            assert_eq!(a.com, b.com);
            assert_eq!(a.mass, b.mass);
            assert_eq!(a.first, b.first);
            assert_eq!(a.count, b.count);
            assert_eq!(a.children, b.children);
        }
        assert_eq!(fresh.columns().moment, hinted.columns().moment);
        // a stale hint of the wrong length falls back to from-scratch
        let wrong = Tree::build_with_hint(&moved, &mass, TreeConfig::default(), Some(&[0, 1]));
        assert_eq!(fresh.order(), wrong.order());
    }

    #[test]
    #[should_panic(expected = "refresh particle count")]
    fn refresh_rejects_length_change() {
        let (pos, mass) = random_cloud(100, 25);
        let mut t = Tree::build(&pos, &mass);
        t.refresh(&pos[..99], &mass[..99]);
    }

    #[test]
    #[should_panic(expected = "zero particles")]
    fn empty_input_rejected() {
        let _ = Tree::build(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = Tree::build(&[Vec3::ZERO], &[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_position_rejected() {
        let _ = Tree::build(&[Vec3::new(f64::NAN, 0.0, 0.0)], &[1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn cloud() -> impl Strategy<Value = (Vec<Vec3>, Vec<f64>)> {
        proptest::collection::vec(
            ((-10.0f64..10.0), (-10.0f64..10.0), (-10.0f64..10.0), (0.1f64..5.0)),
            1..150,
        )
        .prop_map(|v| {
            let pos = v.iter().map(|&(x, y, z, _)| Vec3::new(x, y, z)).collect();
            let mass = v.iter().map(|&(_, _, _, m)| m).collect();
            (pos, mass)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn root_mass_equals_total((pos, mass) in cloud()) {
            let t = Tree::build(&pos, &mass);
            let total: f64 = mass.iter().sum();
            prop_assert!((t.root().mass - total).abs() < 1e-9 * total.max(1.0));
        }

        #[test]
        fn root_com_matches_direct((pos, mass) in cloud()) {
            let t = Tree::build(&pos, &mass);
            let total: f64 = mass.iter().sum();
            let com: Vec3 = pos.iter().zip(&mass).map(|(&p, &m)| p * m).sum::<Vec3>() / total;
            prop_assert!((t.root().com - com).norm() < 1e-9 * (1.0 + com.norm()));
        }

        #[test]
        fn node_count_bounded((pos, mass) in cloud()) {
            let t = Tree::build(&pos, &mass);
            // worst case: a chain of max_depth nodes per particle
            prop_assert!(t.nodes().len() as u32 <= 1 + pos.len() as u32 * (morton::BITS_PER_DIM + 1) * 8);
        }
    }
}
