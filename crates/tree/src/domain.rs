//! Morton-curve domain decomposition and local-essential-tree (LET)
//! exchange — the tree side of PC-GRAPE cluster sharding.
//!
//! The GRAPE-6A cluster papers scale the treecode by hanging one GRAPE
//! card off each PC and giving each PC a *domain*: a contiguous slice
//! of the Morton-ordered particle set. Contiguous curve slices are
//! compact in space (the Z-order curve is a space-filling curve), so
//! each domain builds a local octree over its own particles and imports
//! only a *summary* of everybody else's mass distribution — the local
//! essential tree.
//!
//! ## Decomposition
//!
//! [`Decomposition::morton`] quantizes every particle onto the same
//! 2²¹ grid the octree build uses, sorts by `(code, index)` (a total
//! order, so the split is deterministic for a given snapshot), and cuts
//! the sorted sequence into `K` near-equal contiguous slices. Within a
//! shard the owned indices are then re-sorted ascending, so gathering a
//! shard's particles preserves the caller's input order. In particular
//! `K = 1` owns `0..n` *in input order*: the single-shard decomposition
//! is the identity, and the local tree built over the gathered slice is
//! bit-identical to the tree built over the full snapshot.
//!
//! ## LET exchange
//!
//! [`let_terms_into`] walks a remote shard's tree against the
//! *receiving domain's bounding sphere* and emits the accepted cells'
//! monopoles (and opened leaves' bodies) as plain `(position, mass)`
//! terms. Acceptance uses the same [`Mac`] as the force traversal, so
//! the import holds exactly the resolution the MAC demands:
//!
//! * a cell accepted against the whole domain sphere satisfies
//!   `dist(com, p) > s/θ` for **every** particle `p` of the domain
//!   (triangle inequality through the sphere center) — the same
//!   distance bound the per-group opening test enforces, so remote
//!   forces carry treecode accuracy, never worse;
//! * a rejected cell is opened and its children re-tested, down to
//!   bodies, so the emitted terms always partition the remote shard's
//!   mass (the closure property the traversal tests enforce locally).
//!
//! Both spheres are drift-aware: the receiver passes its domain sphere
//! already inflated by its own refresh drift (see
//! [`domain_sphere`]), and the walk additionally inflates by the
//! *source* tree's drift bound so remote cells whose particles moved
//! since the last rebuild stay conservatively represented.

use crate::mac::{GroupSphere, Mac};
use crate::tree::{Tree, NONE};
use g5util::morton_sort;
use g5util::vec3::Vec3;

/// A partition of a particle snapshot into `K` Morton-contiguous
/// domains, by original (input-order) index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// `owned[k]` = original indices owned by shard `k`, ascending.
    owned: Vec<Vec<u32>>,
    /// Total particles across all shards.
    total: usize,
}

impl Decomposition {
    /// Partition `pos` into `shards` near-equal domains along the
    /// Morton curve.
    ///
    /// Slice `k` covers sorted ranks `[k·n/K, (k+1)·n/K)`, so shard
    /// populations differ by at most one. Ties on the quantized code
    /// break by original index, making the split a pure function of the
    /// snapshot.
    ///
    /// # Panics
    /// On empty input, `shards == 0`, `shards > pos.len()`, or
    /// non-finite positions.
    pub fn morton(pos: &[Vec3], shards: usize) -> Decomposition {
        assert!(shards >= 1, "shard count must be positive");
        Decomposition::morton_weighted(pos, &vec![1u64; shards])
    }

    /// Partition `pos` into `weights.len()` Morton-contiguous domains,
    /// with slice populations proportional to `weights` — the
    /// capacity-weighted decomposition a heterogeneous cluster needs
    /// (shards differ in alive-board count and measured throughput
    /// after partial failures).
    ///
    /// Cut `k` lands at `⌊n · Σweights[..k] / Σweights⌋` on the sorted
    /// Morton order, then cuts are nudged apart so every shard owns at
    /// least one particle even under extreme weights. With **equal**
    /// weights every cut reduces exactly to `⌊k·n/K⌋` — the same slices
    /// [`morton`](Self::morton) produces — so a healthy, unmeasured
    /// cluster decomposes bit-identically to the unweighted path.
    ///
    /// # Panics
    /// On empty input, empty or all-zero `weights`,
    /// `weights.len() > pos.len()`, or non-finite positions.
    pub fn morton_weighted(pos: &[Vec3], weights: &[u64]) -> Decomposition {
        Decomposition::morton_weighted_hinted(pos, weights, None).0
    }

    /// [`morton_weighted`](Self::morton_weighted), seeding the Morton
    /// sort with the sorted order of a previous decomposition of the
    /// same (since drifted) snapshot and returning the new sorted order
    /// for the caller to keep as the next step's hint. The resulting
    /// decomposition is bit-identical to the unhinted one (the
    /// `(code, index)` total order is unique); only the sort cost
    /// changes ([`morton_sort::sort_indices_incremental`]).
    ///
    /// # Panics
    /// As [`morton_weighted`](Self::morton_weighted).
    pub fn morton_weighted_hinted(
        pos: &[Vec3],
        weights: &[u64],
        hint: Option<&[u32]>,
    ) -> (Decomposition, Vec<u32>) {
        let shards = weights.len();
        assert!(!pos.is_empty(), "cannot decompose zero particles");
        assert!(shards >= 1, "shard count must be positive");
        assert!(shards <= pos.len(), "more shards ({shards}) than particles ({})", pos.len());
        let total: u128 = weights.iter().map(|&w| w as u128).sum();
        assert!(total > 0, "cut weights must not all be zero");
        let n = pos.len();
        // Same 2²¹ grid as the octree build (shared g5util::morton_sort
        // frame, so a domain boundary is always a Morton-cell boundary
        // of the tree grid), radix-sorted by (code, index) — a total
        // order, so the result is a pure function of the snapshot.
        let order = match hint {
            Some(h) => morton_sort::morton_order_incremental(pos, h).order,
            None => morton_sort::morton_order(pos).order,
        };

        // Proportional cut points on the sorted order: boundary k sits
        // at floor(n · prefix_k / total) (u128: no overflow even at
        // u64::MAX weights). cuts[0] = 0 and cuts[K] = n are pinned.
        let mut cuts = Vec::with_capacity(shards + 1);
        cuts.push(0usize);
        let mut prefix: u128 = 0;
        for &w in &weights[..shards - 1] {
            prefix += w as u128;
            cuts.push((n as u128 * prefix / total) as usize);
        }
        cuts.push(n);
        // Nudge interior cuts strictly increasing (a zero or tiny
        // weight must still own ≥ 1 particle: domain trees cannot be
        // empty). Feasible because shards ≤ n; a no-op for equal
        // weights, whose floors already differ by ≥ ⌊n/K⌋ ≥ 1.
        for i in 1..shards {
            cuts[i] = cuts[i].max(cuts[i - 1] + 1);
        }
        for i in (1..shards).rev() {
            cuts[i] = cuts[i].min(cuts[i + 1] - 1);
        }

        let mut owned = Vec::with_capacity(shards);
        for k in 0..shards {
            let mut slice: Vec<u32> = order[cuts[k]..cuts[k + 1]].to_vec();
            // input order within the shard: K = 1 is then the identity
            // and gathers are cache-friendly forward scans
            slice.sort_unstable();
            owned.push(slice);
        }
        (Decomposition { owned, total: n }, order)
    }

    /// Number of domains.
    pub fn shards(&self) -> usize {
        self.owned.len()
    }

    /// Original indices owned by shard `k`, ascending.
    pub fn owned(&self, k: usize) -> &[u32] {
        &self.owned[k]
    }

    /// Total particles across all shards (the snapshot size this
    /// decomposition was computed for).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Gather shard `k`'s particles out of the full snapshot into
    /// caller-owned buffers (cleared first; capacity is retained across
    /// calls for steady-state reuse).
    pub fn gather(
        &self,
        k: usize,
        pos: &[Vec3],
        mass: &[f64],
        out_pos: &mut Vec<Vec3>,
        out_mass: &mut Vec<f64>,
    ) {
        let own = &self.owned[k];
        out_pos.clear();
        out_mass.clear();
        out_pos.reserve(own.len());
        out_mass.reserve(own.len());
        for &i in own {
            out_pos.push(pos[i as usize]);
            out_mass.push(mass[i as usize]);
        }
    }
}

/// Bounding sphere of a local tree's whole domain: centered on the
/// root cell, radius to the farthest particle, inflated by the tree's
/// refresh drift bound. Every group sphere of the tree lies within it
/// (same center policy, subset of the particles), so one LET computed
/// against this sphere serves every group of the shard.
pub fn domain_sphere(tree: &Tree) -> GroupSphere {
    let root = tree.root();
    let mut sphere = GroupSphere::around(root.center, tree.pos());
    sphere.radius += tree.drift_bound();
    sphere
}

/// Append the local-essential-tree summary of `source` as seen by a
/// domain bounded by `receiver` — accepted cells as monopole terms,
/// opened leaves as bodies. Returns the number of terms appended.
///
/// `receiver` must already include the receiving tree's own drift
/// inflation ([`domain_sphere`] does); this walk additionally inflates
/// by `source.drift_bound()` so both sides' motion since their last
/// rebuilds is covered.
///
/// The appended terms partition `source`'s total mass: every particle
/// of the remote shard is represented exactly once, in an accepted
/// ancestor cell or as itself.
pub fn let_terms_into(
    source: &Tree,
    mac: &Mac,
    receiver: &GroupSphere,
    out_pos: &mut Vec<Vec3>,
    out_mass: &mut Vec<f64>,
) -> usize {
    let before = out_pos.len();
    let mut sphere = *receiver;
    sphere.radius += source.drift_bound();
    let nodes = source.nodes();
    let mut stack: Vec<u32> = vec![0];
    while let Some(i) = stack.pop() {
        let node = &nodes[i as usize];
        if mac.accepts_sphere(node, &sphere) {
            out_pos.push(node.com);
            out_mass.push(node.mass);
        } else if node.is_leaf() {
            for k in node.range() {
                out_pos.push(source.pos()[k]);
                out_mass.push(source.mass()[k]);
            }
        } else {
            for &c in node.children.iter().rev() {
                if c != NONE {
                    stack.push(c);
                }
            }
        }
    }
    out_pos.len() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                let s = if rng.random_bool(0.5) { 0.2 } else { 1.0 };
                Vec3::new(rng.random_range(-s..s), rng.random_range(-s..s), rng.random_range(-s..s))
            })
            .collect();
        let mass = (0..n).map(|_| rng.random_range(0.5..2.0)).collect();
        (pos, mass)
    }

    #[test]
    fn single_shard_is_identity() {
        let (pos, _) = cloud(333, 1);
        let d = Decomposition::morton(&pos, 1);
        assert_eq!(d.shards(), 1);
        let expect: Vec<u32> = (0..333).collect();
        assert_eq!(d.owned(0), &expect[..]);
    }

    #[test]
    fn shards_partition_and_balance() {
        let (pos, _) = cloud(1001, 2);
        for k in [2, 3, 4, 8] {
            let d = Decomposition::morton(&pos, k);
            let mut covered = vec![false; pos.len()];
            let (mut lo, mut hi) = (usize::MAX, 0usize);
            for s in 0..k {
                let own = d.owned(s);
                lo = lo.min(own.len());
                hi = hi.max(own.len());
                for &i in own {
                    assert!(!covered[i as usize], "index {i} owned twice");
                    covered[i as usize] = true;
                }
                assert!(own.windows(2).all(|w| w[0] < w[1]), "owned not ascending");
            }
            assert!(covered.iter().all(|&c| c), "some particle unowned at k={k}");
            assert!(hi - lo <= 1, "imbalance {lo}..{hi} at k={k}");
        }
    }

    #[test]
    fn equal_weights_reduce_to_unweighted_cuts() {
        let (pos, _) = cloud(1001, 2);
        for k in [1, 2, 3, 4, 8] {
            for w in [1u64, 7, u64::MAX / 8] {
                let weighted = Decomposition::morton_weighted(&pos, &vec![w; k]);
                assert_eq!(
                    weighted,
                    Decomposition::morton(&pos, k),
                    "equal weights {w} at K={k} must match the unweighted split exactly"
                );
            }
        }
    }

    #[test]
    fn weighted_cuts_track_capacity() {
        let (pos, _) = cloud(1000, 8);
        let d = Decomposition::morton_weighted(&pos, &[3, 1]);
        assert_eq!(d.owned(0).len(), 750);
        assert_eq!(d.owned(1).len(), 250);
        // partition holds under uneven weights
        let mut covered = vec![false; pos.len()];
        for s in 0..2 {
            for &i in d.owned(s) {
                assert!(!covered[i as usize]);
                covered[i as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // the weighted boundary is still a Morton-order boundary:
        // shard 0 is a contiguous prefix of the same sorted order the
        // 4-way equal split uses (750 = 3 quarters of 1000)
        let quarters = Decomposition::morton(&pos, 4);
        let mut first_three: Vec<u32> =
            (0..3).flat_map(|s| quarters.owned(s).iter().copied()).collect();
        first_three.sort_unstable();
        assert_eq!(d.owned(0), &first_three[..]);
    }

    #[test]
    fn extreme_weights_keep_every_shard_nonempty() {
        let (pos, _) = cloud(100, 9);
        for weights in [vec![0, 1, 0], vec![u64::MAX, 1, 1], vec![1, 0, u64::MAX]] {
            let d = Decomposition::morton_weighted(&pos, &weights);
            let total: usize = (0..3).map(|s| d.owned(s).len()).sum();
            assert_eq!(total, 100);
            for s in 0..3 {
                assert!(!d.owned(s).is_empty(), "shard {s} empty under weights {weights:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn all_zero_weights_rejected() {
        let (pos, _) = cloud(10, 10);
        let _ = Decomposition::morton_weighted(&pos, &[0, 0]);
    }

    #[test]
    fn hinted_decomposition_is_bit_identical() {
        let (pos, _) = cloud(800, 12);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let (_, order) = Decomposition::morton_weighted_hinted(&pos, &[2, 1, 1], None);
        let moved: Vec<Vec3> = pos
            .iter()
            .map(|&p| {
                p + Vec3::new(
                    rng.random_range(-0.01..0.01),
                    rng.random_range(-0.01..0.01),
                    rng.random_range(-0.01..0.01),
                )
            })
            .collect();
        let plain = Decomposition::morton_weighted(&moved, &[2, 1, 1]);
        let (hinted, new_order) =
            Decomposition::morton_weighted_hinted(&moved, &[2, 1, 1], Some(&order));
        assert_eq!(plain, hinted);
        let (_, scratch_order) = Decomposition::morton_weighted_hinted(&moved, &[2, 1, 1], None);
        assert_eq!(new_order, scratch_order);
    }

    #[test]
    fn weighted_decomposition_is_deterministic() {
        let (pos, _) = cloud(500, 11);
        assert_eq!(
            Decomposition::morton_weighted(&pos, &[5, 2, 9]),
            Decomposition::morton_weighted(&pos, &[5, 2, 9])
        );
    }

    #[test]
    fn decomposition_is_deterministic() {
        let (pos, _) = cloud(500, 3);
        assert_eq!(Decomposition::morton(&pos, 4), Decomposition::morton(&pos, 4));
    }

    #[test]
    fn gather_matches_owned_order() {
        let (pos, mass) = cloud(200, 4);
        let d = Decomposition::morton(&pos, 4);
        let (mut gp, mut gm) = (Vec::new(), Vec::new());
        for s in 0..4 {
            d.gather(s, &pos, &mass, &mut gp, &mut gm);
            for (j, &i) in d.owned(s).iter().enumerate() {
                assert_eq!(gp[j], pos[i as usize]);
                assert_eq!(gm[j], mass[i as usize]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn more_shards_than_particles_rejected() {
        let (pos, _) = cloud(3, 5);
        let _ = Decomposition::morton(&pos, 4);
    }

    #[test]
    fn let_mass_closure_and_mac_validity() {
        let (pos, mass) = cloud(900, 6);
        let d = Decomposition::morton(&pos, 3);
        let mac = Mac::new(0.75);
        let (mut sp, mut sm) = (Vec::new(), Vec::new());
        let mut trees = Vec::new();
        for s in 0..3 {
            d.gather(s, &pos, &mass, &mut sp, &mut sm);
            trees.push(Tree::build(&sp, &sm));
        }
        for r in 0..3 {
            let sphere = domain_sphere(&trees[r]);
            for s in 0..3 {
                if s == r {
                    continue;
                }
                let (mut lp, mut lm) = (Vec::new(), Vec::new());
                let appended = let_terms_into(&trees[s], &mac, &sphere, &mut lp, &mut lm);
                assert_eq!(appended, lp.len());
                assert!(appended >= 1, "remote shard must contribute at least its root");
                // closure: the import carries exactly the remote mass
                let total: f64 = trees[s].mass().iter().sum();
                let got: f64 = lm.iter().sum();
                assert!((got - total).abs() < 1e-9 * total, "LET mass {got} != {total}");
                // MAC validity: an imported *cell* must satisfy the
                // opening distance bound from every receiver particle
                for (term_pos, _) in lp.iter().zip(&lm) {
                    // identify cells as terms that are not a remote body
                    let is_body = trees[s].pos().contains(term_pos);
                    if is_body {
                        continue;
                    }
                    let node = trees[s]
                        .nodes()
                        .iter()
                        .find(|n| n.com == *term_pos)
                        .expect("cell term must be a node monopole");
                    for p in trees[r].pos() {
                        let d = p.dist(node.com);
                        assert!(
                            d * mac.theta > node.side() * (1.0 - 1e-12),
                            "cell of side {} at distance {d} violates theta",
                            node.side()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn theta_zero_let_is_all_remote_bodies() {
        let (pos, mass) = cloud(120, 7);
        let d = Decomposition::morton(&pos, 2);
        let (mut sp, mut sm) = (Vec::new(), Vec::new());
        d.gather(0, &pos, &mass, &mut sp, &mut sm);
        let a = Tree::build(&sp, &sm);
        d.gather(1, &pos, &mass, &mut sp, &mut sm);
        let b = Tree::build(&sp, &sm);
        let (mut lp, mut lm) = (Vec::new(), Vec::new());
        let n = let_terms_into(&b, &Mac::new(0.0), &domain_sphere(&a), &mut lp, &mut lm);
        assert_eq!(n, b.len(), "theta 0 must open everything down to bodies");
    }
}
