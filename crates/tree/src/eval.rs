//! Host-side (`f64`) force evaluation.
//!
//! These routines are the reference implementations used by the
//! accuracy experiments (E3/E4) and by the pure-host TreeHost backend:
//! the same interaction lists GRAPE would consume, evaluated in IEEE
//! double precision, plus a brute-force O(N²) direct sum.
//!
//! Sign convention matches the GRAPE pipeline: `acc` is the
//! acceleration (per unit target mass) and `pot` is the **positive**
//! sum `Σ m_j (r² + ε²)^(−1/2)`; physical potential energy carries the
//! minus sign at the call site.

use crate::traverse::{Group, ListTerm, Traversal};
use crate::tree::Tree;
use g5util::vec3::Vec3;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Acceleration and (positive) potential at a point.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PointForce {
    /// Acceleration.
    pub acc: Vec3,
    /// Positive potential `Σ m_j / r`.
    pub pot: f64,
}

impl PointForce {
    /// The zero field.
    pub const ZERO: PointForce = PointForce { acc: Vec3::ZERO, pot: 0.0 };
}

/// Evaluate one pairwise term; zero-distance pairs contribute nothing
/// (the GRAPE guard).
#[inline]
pub fn pair_force(target: Vec3, source: Vec3, m: f64, eps2: f64) -> PointForce {
    let dx = source - target;
    let r2 = dx.norm2();
    if r2 == 0.0 {
        return PointForce::ZERO;
    }
    let r2e = r2 + eps2;
    let rinv = 1.0 / r2e.sqrt();
    let rinv3 = rinv / r2e;
    PointForce { acc: dx * (m * rinv3), pot: m * rinv }
}

/// Evaluate an interaction list at a target point.
///
/// If the tree was built with quadrupole moments
/// ([`crate::tree::TreeConfig::quadrupole`]), accepted cells contribute
/// their quadrupole correction as well — the host-treecode refinement
/// GRAPE-5 cannot perform (its pipeline is monopole-only).
pub fn eval_list(tree: &Tree, list: &[ListTerm], target: Vec3, eps: f64) -> PointForce {
    let eps2 = eps * eps;
    let quads = tree.quads();
    let mut f = PointForce::ZERO;
    for &term in list {
        let (p, m) = term.resolve(tree);
        let t = pair_force(target, p, m, eps2);
        f.acc += t.acc;
        f.pot += t.pot;
        if let (ListTerm::Cell(c), Some(q)) = (term, quads) {
            let t2 = quad_force(target, p, &q[c as usize]);
            f.acc += t2.acc;
            f.pot += t2.pot;
        }
    }
    f
}

/// Quadrupole correction of one accepted cell: with `d = com − target`,
/// `r = |d|` and the traceless `Q` packed `[xx, yy, zz, xy, xz, yz]`,
/// the (positive-convention) potential gains `(d·Q·d)/(2 r⁵)` and the
/// acceleration gains `∇_target` of that, i.e.
/// `−Q·d/r⁵ + (5/2)(d·Q·d)·d/r⁷` in terms of `d = com − target`.
#[inline]
pub fn quad_force(target: Vec3, com: Vec3, q: &[f64; 6]) -> PointForce {
    let d = com - target;
    let r2 = d.norm2();
    if r2 == 0.0 {
        return PointForce::ZERO;
    }
    let r = r2.sqrt();
    let r5 = r2 * r2 * r;
    let qd = Vec3::new(
        q[0] * d.x + q[3] * d.y + q[4] * d.z,
        q[3] * d.x + q[1] * d.y + q[5] * d.z,
        q[4] * d.x + q[5] * d.y + q[2] * d.z,
    );
    let dqd = d.dot(qd);
    PointForce { acc: d * (2.5 * dqd / (r5 * r2)) - qd / r5, pot: 0.5 * dqd / r5 }
}

/// Evaluate a group's shared list at every member, writing results into
/// `out` indexed by the **original** particle indices.
pub fn eval_group(tree: &Tree, group: Group, list: &[ListTerm], eps: f64, out: &mut [PointForce]) {
    let node = &tree.nodes()[group.node as usize];
    for k in node.range() {
        out[tree.original_index(k)] = eval_list(tree, list, tree.pos()[k], eps);
    }
}

/// Forces on every particle by the original per-particle algorithm,
/// in original index order.
pub fn tree_forces_original(tree: &Tree, theta: f64, eps: f64) -> Vec<PointForce> {
    let tr = Traversal::new(theta);
    let mut out = vec![PointForce::ZERO; tree.len()];
    let results: Vec<(usize, PointForce)> = (0..tree.len())
        .into_par_iter()
        .map_init(Vec::new, |list, k| {
            tr.original_list(tree, tree.pos()[k], list);
            (tree.original_index(k), eval_list(tree, list, tree.pos()[k], eps))
        })
        .collect();
    for (i, f) in results {
        out[i] = f;
    }
    out
}

/// Forces on every particle by the modified (grouped) algorithm,
/// in original index order.
pub fn tree_forces_modified(tree: &Tree, theta: f64, n_crit: usize, eps: f64) -> Vec<PointForce> {
    let tr = Traversal::new(theta);
    let groups = tr.find_groups(tree, n_crit);
    let mut out = vec![PointForce::ZERO; tree.len()];
    let chunks: Vec<Vec<(usize, PointForce)>> = groups
        .par_iter()
        .map_init(Vec::new, |list, &g| {
            tr.modified_list(tree, g, list);
            let node = &tree.nodes()[g.node as usize];
            node.range()
                .map(|k| (tree.original_index(k), eval_list(tree, list, tree.pos()[k], eps)))
                .collect()
        })
        .collect();
    for chunk in chunks {
        for (i, f) in chunk {
            out[i] = f;
        }
    }
    out
}

/// Brute-force O(N²) direct summation — the exact reference.
pub fn direct_forces(pos: &[Vec3], mass: &[f64], eps: f64) -> Vec<PointForce> {
    assert_eq!(pos.len(), mass.len(), "position/mass length mismatch");
    let eps2 = eps * eps;
    pos.par_iter()
        .map(|&xi| {
            let mut f = PointForce::ZERO;
            for (&xj, &mj) in pos.iter().zip(mass) {
                let t = pair_force(xi, xj, mj, eps2);
                f.acc += t.acc;
                f.pot += t.pot;
            }
            f
        })
        .collect()
}

/// RMS relative acceleration error of `test` against `reference`.
pub fn rms_relative_error(test: &[PointForce], reference: &[PointForce]) -> f64 {
    assert_eq!(test.len(), reference.len(), "length mismatch");
    assert!(!test.is_empty(), "empty force sets");
    let sum: f64 = test
        .iter()
        .zip(reference)
        .map(|(t, r)| {
            let denom = r.acc.norm2();
            if denom == 0.0 {
                0.0
            } else {
                (t.acc - r.acc).norm2() / denom
            }
        })
        .sum();
    (sum / test.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn plummer_like(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                let r: f64 = rng.random_range(0.05..1.0);
                let u: f64 = rng.random_range(-1.0..1.0);
                let phi: f64 = rng.random_range(0.0..std::f64::consts::TAU);
                let s = (1.0 - u * u).sqrt();
                Vec3::new(r * s * phi.cos(), r * s * phi.sin(), r * u)
            })
            .collect();
        let mass = vec![1.0 / n as f64; n];
        (pos, mass)
    }

    #[test]
    fn pair_force_zero_distance_guard() {
        let f = pair_force(Vec3::ONE, Vec3::ONE, 5.0, 0.0);
        assert_eq!(f, PointForce::ZERO);
    }

    #[test]
    fn pair_force_inverse_square() {
        let f = pair_force(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 4.0, 0.0);
        assert!((f.acc.x - 1.0).abs() < 1e-14); // 4/4
        assert!((f.pot - 2.0).abs() < 1e-14); // 4/2
    }

    #[test]
    fn direct_forces_two_body() {
        let pos = [Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)];
        let mass = [3.0, 5.0];
        let f = direct_forces(&pos, &mass, 0.0);
        assert!((f[0].acc.x - 5.0).abs() < 1e-14);
        assert!((f[1].acc.x + 3.0).abs() < 1e-14);
        // momentum conservation: Σ m a = 0
        let p = f[0].acc * mass[0] + f[1].acc * mass[1];
        assert!(p.norm() < 1e-13);
    }

    #[test]
    fn tree_forces_converge_to_direct_as_theta_shrinks() {
        let (pos, mass) = plummer_like(400, 20);
        let reference = direct_forces(&pos, &mass, 0.01);
        let tree = Tree::build(&pos, &mass);
        let e_loose = rms_relative_error(&tree_forces_original(&tree, 1.0, 0.01), &reference);
        let e_tight = rms_relative_error(&tree_forces_original(&tree, 0.3, 0.01), &reference);
        assert!(e_tight < e_loose, "tighter theta must reduce error");
        assert!(e_tight < 0.01, "theta=0.3 should be well under 1 %: {e_tight}");
    }

    #[test]
    fn theta_zero_equals_direct_exactly_for_original() {
        let (pos, mass) = plummer_like(120, 21);
        let reference = direct_forces(&pos, &mass, 0.05);
        let tree = Tree::build(&pos, &mass);
        let f = tree_forces_original(&tree, 0.0, 0.05);
        for (a, b) in f.iter().zip(&reference) {
            assert!((a.acc - b.acc).norm() < 1e-11, "theta=0 must reproduce direct sums");
            assert!((a.pot - b.pot).abs() < 1e-11);
        }
    }

    #[test]
    fn theta_zero_equals_direct_exactly_for_modified() {
        let (pos, mass) = plummer_like(120, 22);
        let reference = direct_forces(&pos, &mass, 0.05);
        let tree = Tree::build(&pos, &mass);
        let f = tree_forces_modified(&tree, 0.0, 16, 0.05);
        for (a, b) in f.iter().zip(&reference) {
            assert!((a.acc - b.acc).norm() < 1e-11);
        }
    }

    #[test]
    fn modified_is_more_accurate_than_original_at_same_theta() {
        // §3: "our modified tree algorithm is more accurate than the
        // original tree algorithm for the same accuracy parameter"
        let (pos, mass) = plummer_like(2500, 23);
        let reference = direct_forces(&pos, &mass, 0.01);
        let tree = Tree::build(&pos, &mass);
        let theta = 0.9;
        let e_orig = rms_relative_error(&tree_forces_original(&tree, theta, 0.01), &reference);
        let e_modi = rms_relative_error(&tree_forces_modified(&tree, theta, 128, 0.01), &reference);
        assert!(
            e_modi < e_orig,
            "modified ({e_modi}) must beat original ({e_orig}) at theta={theta}"
        );
    }

    #[test]
    fn group_eval_matches_per_particle_eval() {
        let (pos, mass) = plummer_like(300, 24);
        let tree = Tree::build(&pos, &mass);
        let tr = Traversal::new(0.75);
        let ml = tr.modified_lists(&tree, 32);
        let mut out = vec![PointForce::ZERO; pos.len()];
        for (g, list) in ml.groups.iter().zip(&ml.lists) {
            eval_group(&tree, *g, list, 0.02, &mut out);
        }
        // spot-check against eval_list at the original index mapping
        let g0 = ml.groups[0];
        let node = &tree.nodes()[g0.node as usize];
        let k = node.first as usize;
        let expect = eval_list(&tree, &ml.lists[0], tree.pos()[k], 0.02);
        assert_eq!(out[tree.original_index(k)], expect);
    }

    #[test]
    fn rms_error_of_identical_sets_is_zero() {
        let f = vec![PointForce { acc: Vec3::ONE, pot: 1.0 }; 5];
        assert_eq!(rms_relative_error(&f, &f), 0.0);
    }

    #[test]
    fn quad_force_of_dumbbell_matches_expansion() {
        // two unit masses at ±a on the x axis, observed far away on the
        // y axis: Q = diag(2a², −a², −a²)·3/... computed directly
        let a = 0.1;
        let pts = [Vec3::new(a, 0.0, 0.0), Vec3::new(-a, 0.0, 0.0)];
        let mut q = [0.0f64; 6];
        for p in &pts {
            let r2 = p.norm2();
            q[0] += 3.0 * p.x * p.x - r2;
            q[1] += 3.0 * p.y * p.y - r2;
            q[2] += 3.0 * p.z * p.z - r2;
        }
        let target = Vec3::new(0.0, 5.0, 0.0);
        // exact field minus monopole = quadrupole + higher; at r/a = 50
        // the higher terms are negligible at the 1e-6 level
        let exact = pts.iter().fold(PointForce::ZERO, |f, &p| {
            let t = pair_force(target, p, 1.0, 0.0);
            PointForce { acc: f.acc + t.acc, pot: f.pot + t.pot }
        });
        let mono = pair_force(target, Vec3::ZERO, 2.0, 0.0);
        let correction = quad_force(target, Vec3::ZERO, &q);
        let resid_pot = exact.pot - mono.pot - correction.pot;
        assert!(resid_pot.abs() < 1e-6 * exact.pot, "potential residual {resid_pot} too large");
        let resid_acc = (exact.acc - mono.acc - correction.acc).norm();
        assert!(resid_acc < 1e-6 * exact.acc.norm(), "acc residual {resid_acc}");
    }

    #[test]
    fn quadrupole_tree_beats_monopole_tree_at_same_theta() {
        use crate::tree::TreeConfig;
        let (pos, mass) = plummer_like(2500, 30);
        let reference = direct_forces(&pos, &mass, 0.01);
        let theta = 0.9;
        let mono = Tree::build(&pos, &mass);
        let quad =
            Tree::build_with(&pos, &mass, TreeConfig { quadrupole: true, ..TreeConfig::default() });
        assert!(quad.quads().is_some());
        let e_mono = rms_relative_error(&tree_forces_original(&mono, theta, 0.01), &reference);
        let e_quad = rms_relative_error(&tree_forces_original(&quad, theta, 0.01), &reference);
        assert!(
            e_quad < 0.5 * e_mono,
            "quadrupole ({e_quad}) should cut the monopole error ({e_mono}) substantially"
        );
    }

    #[test]
    fn quadrupole_of_single_particle_leaf_is_zero() {
        use crate::tree::TreeConfig;
        let pos = [Vec3::new(1.0, 2.0, 3.0)];
        let t = Tree::build_with(
            &pos,
            &[5.0],
            TreeConfig { quadrupole: true, ..TreeConfig::default() },
        );
        let q = t.quads().unwrap();
        assert!(q[0].iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn quadrupoles_are_traceless() {
        use crate::tree::TreeConfig;
        let (pos, mass) = plummer_like(500, 31);
        let t =
            Tree::build_with(&pos, &mass, TreeConfig { quadrupole: true, ..TreeConfig::default() });
        for q in t.quads().unwrap() {
            let trace = q[0] + q[1] + q[2];
            let scale = q.iter().map(|v| v.abs()).fold(0.0, f64::max).max(1e-30);
            assert!(trace.abs() < 1e-9 * scale.max(1.0), "trace {trace}");
        }
    }

    #[test]
    fn min_distance_mac_is_at_least_as_accurate() {
        use crate::mac::MacKind;
        use crate::traverse::Traversal;
        let (pos, mass) = plummer_like(1500, 32);
        let reference = direct_forces(&pos, &mass, 0.01);
        let tree = Tree::build(&pos, &mass);
        let theta = 0.9;
        let mut tr_bh = Traversal::new(theta);
        let mut tr_md = Traversal::new(theta);
        tr_md.mac.kind = MacKind::MinDistance;
        let _ = &mut tr_bh; // keep symmetric construction explicit
        let eval_with = |tr: &Traversal| {
            let mut out = vec![PointForce::ZERO; pos.len()];
            let mut list = Vec::new();
            for k in 0..tree.len() {
                tr.original_list(&tree, tree.pos()[k], &mut list);
                out[tree.original_index(k)] = eval_list(&tree, &list, tree.pos()[k], 0.01);
            }
            out
        };
        let e_bh = rms_relative_error(&eval_with(&tr_bh), &reference);
        let e_md = rms_relative_error(&eval_with(&tr_md), &reference);
        // min-distance opens more cells, so it cannot be less accurate
        let t_bh = tr_bh.original_tally(&tree);
        let t_md = tr_md.original_tally(&tree);
        assert!(t_md.interactions >= t_bh.interactions);
        assert!(e_md <= e_bh * 1.05, "min-dist {e_md} vs BH {e_bh}");
    }
}
