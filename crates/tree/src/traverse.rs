//! Tree traversals: interaction-list construction.
//!
//! **Original algorithm** (Barnes & Hut 1986): one tree walk per
//! particle produces that particle's interaction list. Host cost is
//! O(N log N) walks — which is exactly what saturates the workstation
//! when GRAPE does the force arithmetic.
//!
//! **Modified algorithm** (Barnes 1990, §3 of the paper): particles are
//! grouped into tree cells holding at most `n_crit` neighbours; one
//! walk per *group* produces a single list shared by every member, with
//! the members themselves appended so intra-group forces are computed
//! directly (GRAPE's zero-distance guard drops the self term). Host
//! cost falls by ≈ n_g; list length — and thus GRAPE work — grows.
//! Trading one against the other gives the optimal n_g of §3.
//!
//! Every list **partitions the full particle set**: each particle of
//! the snapshot appears in exactly one accepted cell or body term, so
//! the summed list mass always equals the total mass. The tests enforce
//! this closure property.

use crate::mac::{GroupSphere, Mac, MacKind};
use crate::tree::{NodeColumns, Tree, NONE};
use g5util::counters::InteractionTally;
use g5util::vec3::Vec3;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Reusable traversal state: the explicit walk stack whose capacity is
/// carried across calls, so steady-state traversals do no heap
/// allocation. One scratch per worker thread; see
/// [`Traversal::modified_list_with`] and
/// [`Traversal::find_groups_into`].
#[derive(Debug, Clone, Default)]
pub struct TraverseScratch {
    stack: Vec<u32>,
    /// Root→group node path, rebuilt per walk (≤ tree depth entries).
    path: Vec<u32>,
}

/// One term of an interaction list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ListTerm {
    /// A tree cell, standing in for its particles via its monopole.
    Cell(u32),
    /// A single particle (index into the tree's sorted order).
    Body(u32),
}

impl ListTerm {
    /// Resolve a term to the (position, mass) pair GRAPE consumes.
    #[inline]
    pub fn resolve(self, tree: &Tree) -> (Vec3, f64) {
        match self {
            ListTerm::Cell(c) => {
                let n = &tree.nodes()[c as usize];
                (n.com, n.mass)
            }
            ListTerm::Body(k) => (tree.pos()[k as usize], tree.mass()[k as usize]),
        }
    }
}

/// A group of the modified algorithm: one tree cell with ≤ n_crit
/// particles whose members share an interaction list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Group {
    /// The group's tree cell.
    pub node: u32,
}

/// All groups plus their shared lists, as produced by
/// [`Traversal::modified_lists`].
#[derive(Debug, Clone)]
pub struct ModifiedLists {
    /// The groups, in tree order.
    pub groups: Vec<Group>,
    /// `lists[g]` is the interaction list shared by group `g`.
    pub lists: Vec<Vec<ListTerm>>,
}

impl ModifiedLists {
    /// Interaction statistics: every member of a group interacts with
    /// every term of the shared list.
    pub fn tally(&self, tree: &Tree) -> InteractionTally {
        let mut t = InteractionTally::default();
        for (g, l) in self.groups.iter().zip(&self.lists) {
            let members = tree.nodes()[g.node as usize].count as u64;
            t.interactions += l.len() as u64 * members;
            t.terms += l.len() as u64;
            t.lists += 1;
        }
        t
    }
}

/// Tree-walk driver holding the opening criterion.
#[derive(Debug, Clone, Copy)]
pub struct Traversal {
    /// The opening criterion.
    pub mac: Mac,
}

impl Traversal {
    /// Construct with accuracy parameter θ.
    pub fn new(theta: f64) -> Traversal {
        Traversal { mac: Mac::new(theta) }
    }

    // ------------------------------------------------------------------
    // Original Barnes–Hut
    // ------------------------------------------------------------------

    /// Build the original-algorithm interaction list for a target point.
    ///
    /// The target particle itself, if it is in the tree, appears as a
    /// body term; force evaluation drops it via the zero-distance guard.
    pub fn original_list(&self, tree: &Tree, target: Vec3, out: &mut Vec<ListTerm>) {
        out.clear();
        self.walk_point(tree, 0, target, out);
    }

    fn walk_point(&self, tree: &Tree, idx: u32, target: Vec3, out: &mut Vec<ListTerm>) {
        let node = &tree.nodes()[idx as usize];
        if self.mac.accepts_point(node, target) {
            out.push(ListTerm::Cell(idx));
        } else if node.is_leaf() {
            out.extend(node.range().map(|k| ListTerm::Body(k as u32)));
        } else {
            for &c in &node.children {
                if c != NONE {
                    self.walk_point(tree, c, target, out);
                }
            }
        }
    }

    /// Interaction-count statistics of the original algorithm over all
    /// particles, without materializing the lists — this is how the
    /// paper estimates the "corrected" operation count (§5) from
    /// snapshots.
    pub fn original_tally(&self, tree: &Tree) -> InteractionTally {
        let n = tree.len();
        let total: u64 = (0..n)
            .into_par_iter()
            .map(|i| {
                let mut count = 0u64;
                self.count_point(tree, 0, tree.pos()[i], &mut count);
                count
            })
            .sum();
        InteractionTally { interactions: total, terms: total, lists: n as u64 }
    }

    fn count_point(&self, tree: &Tree, idx: u32, target: Vec3, count: &mut u64) {
        let node = &tree.nodes()[idx as usize];
        if self.mac.accepts_point(node, target) {
            *count += 1;
        } else if node.is_leaf() {
            *count += node.count as u64;
        } else {
            for &c in &node.children {
                if c != NONE {
                    self.count_point(tree, c, target, count);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Barnes' modified algorithm
    // ------------------------------------------------------------------

    /// Partition the tree into groups of at most `n_crit` particles:
    /// the shallowest cells whose population fits.
    ///
    /// Pair `n_crit` with the tree's `leaf_capacity`: a leaf larger than
    /// `n_crit` cannot be split further, so it becomes an oversized
    /// group and the n_crit knob silently stops binding. Keep
    /// `leaf_capacity <= n_crit` (the grouped backends assert this);
    /// only coincident-particle leaves may then exceed `n_crit`.
    pub fn find_groups(&self, tree: &Tree, n_crit: usize) -> Vec<Group> {
        let mut scratch = TraverseScratch::default();
        let mut groups = Vec::new();
        self.find_groups_into(tree, n_crit, &mut scratch, &mut groups);
        groups
    }

    /// [`find_groups`](Self::find_groups) into caller-owned buffers:
    /// the walk stack and the group vector keep their capacity across
    /// calls, so repeated grouping (one per step, or per refresh
    /// interval) allocates nothing in steady state.
    pub fn find_groups_into(
        &self,
        tree: &Tree,
        n_crit: usize,
        scratch: &mut TraverseScratch,
        out: &mut Vec<Group>,
    ) {
        assert!(n_crit >= 1, "n_crit must be positive");
        out.clear();
        let cols = tree.columns();
        let stack = &mut scratch.stack;
        stack.clear();
        stack.push(0);
        while let Some(idx) = stack.pop() {
            let i = idx as usize;
            if cols.span[i][1] as usize <= n_crit || cols.is_leaf(i) {
                out.push(Group { node: idx });
            } else {
                for &c in cols.children[i].iter().rev() {
                    if c != NONE {
                        stack.push(c);
                    }
                }
            }
        }
    }

    /// Bounding sphere of a group's members (center at the cell center,
    /// radius to the farthest member — tighter than the cell diagonal).
    ///
    /// On a refreshed tree the radius is inflated by
    /// [`Tree::drift_bound`], so MAC decisions stay valid for every
    /// position the members could have reached since the topology was
    /// frozen. Freshly built trees have zero drift, and `r + 0.0 == r`
    /// keeps the fresh path bit-identical.
    pub fn group_sphere(&self, tree: &Tree, group: Group) -> GroupSphere {
        let node = &tree.nodes()[group.node as usize];
        let mut sphere = GroupSphere::around(node.center, &tree.pos()[node.range()]);
        sphere.radius += tree.drift_bound();
        sphere
    }

    /// Build the shared interaction list for one group.
    ///
    /// Convenience wrapper over
    /// [`modified_list_with`](Self::modified_list_with) that allocates a
    /// fresh walk stack; hot paths should hold a [`TraverseScratch`]
    /// per worker instead.
    pub fn modified_list(&self, tree: &Tree, group: Group, out: &mut Vec<ListTerm>) {
        let mut scratch = TraverseScratch::default();
        self.modified_list_with(tree, group, &mut scratch, out);
    }

    /// Build the shared interaction list for one group with an explicit
    /// stack over the tree's SoA columns.
    ///
    /// The hot loop reads one packed 32-byte `walk` entry
    /// (`[com, half]`) per opening test; `span` is touched only when a
    /// cell is accepted (the ancestor guard) or a leaf is expanded, and
    /// `children` only when a cell is opened. Children are pushed in
    /// reverse octant order so pops replay the recursive depth-first
    /// order exactly: the emitted term sequence is bit-identical to
    /// [`modified_list_reference`](Self::modified_list_reference).
    pub fn modified_list_with(
        &self,
        tree: &Tree,
        group: Group,
        scratch: &mut TraverseScratch,
        out: &mut Vec<ListTerm>,
    ) {
        out.clear();
        let cols = tree.columns();
        let sphere = self.group_sphere(tree, group);
        let inv2_theta = 2.0 / self.mac.theta;
        match self.mac.kind {
            // the paper's criterion, inlined against the packed column:
            // same arithmetic in the same order as `Mac::accepts_sphere`
            MacKind::BarnesHut => {
                Self::walk_stack(cols, group, scratch, out, |cols, i| {
                    let [cx, cy, cz, half] = cols.walk[i];
                    let t = sphere.radius + half * inv2_theta;
                    sphere.center.dist2(Vec3::new(cx, cy, cz)) > t * t
                });
            }
            MacKind::MinDistance => {
                Self::walk_stack(cols, group, scratch, out, |cols, i| {
                    self.mac.accepts_sphere_cols(&cols.geom[i], &cols.moment[i], &sphere)
                });
            }
        }
    }

    /// The explicit-stack DFS shared by both opening criteria. `accept`
    /// sees only the node index, so each criterion reads just the
    /// columns it needs.
    ///
    /// Nodes are classified when their parent is opened, not when they
    /// are popped: the up-to-eight independent opening tests run
    /// back-to-back (good instruction-level overlap of the distance
    /// chains), and the verdict rides in the stack entry's top bit —
    /// popping an accepted cell emits its term with no further column
    /// reads.
    ///
    /// The group's ancestors (which may never stand in as cells, since
    /// they overlap the sphere) are exactly the nodes of the root→group
    /// path, and a depth-first walk meets them in path order. So the
    /// path is resolved once up front and the ancestor test is a single
    /// register compare per node — the span column drops out of the hot
    /// loop entirely, leaving one packed `walk` read per opening test.
    /// Evaluation order is the only thing that moves relative to the
    /// recursive reference; the per-node decisions and the emitted DFS
    /// sequence are unchanged.
    fn walk_stack(
        cols: &NodeColumns,
        group: Group,
        scratch: &mut TraverseScratch,
        out: &mut Vec<ListTerm>,
        accept: impl Fn(&NodeColumns, usize) -> bool,
    ) {
        /// Stack-entry flag: this node passed the opening test and is
        /// not an ancestor of the group, so it stands in as a cell.
        const ACC: u32 = 1 << 31;
        debug_assert!(cols.span.len() < ACC as usize, "node index overflows the flag bit");
        let [gfirst, gcount] = cols.span[group.node as usize];
        let gend = gfirst + gcount;
        // Resolve the root→group path by span containment: spans nest,
        // siblings are disjoint, and every group holds ≥ 1 particle, so
        // exactly one child contains the group's span at each level.
        let path = &mut scratch.path;
        path.clear();
        let mut at = 0u32;
        loop {
            path.push(at);
            if at == group.node {
                break;
            }
            let mut next = NONE;
            for &c in &cols.children[at as usize] {
                if c != NONE {
                    let [first, count] = cols.span[c as usize];
                    if first <= gfirst && first + count >= gend {
                        next = c;
                        break;
                    }
                }
            }
            debug_assert!(next != NONE, "group node must be reachable from the root");
            at = next;
        }
        let stack = &mut scratch.stack;
        stack.clear();
        stack.push(0);
        // index into `path` of the next ancestor the DFS will meet
        let mut anc_ptr = 0usize;
        while let Some(entry) = stack.pop() {
            if entry & ACC != 0 {
                out.push(ListTerm::Cell(entry & !ACC));
                continue;
            }
            let i = entry as usize;
            if entry == group.node {
                // the group itself: members interact directly
                out.extend((gfirst..gend).map(ListTerm::Body));
                continue;
            }
            // ancestor's path-child: never a stand-in cell, pushed bare
            let anc_child = if entry == path[anc_ptr] {
                // an ancestor is never a leaf (the group is below it)
                debug_assert!(!cols.is_leaf(i), "ancestor of a group cannot be a leaf");
                anc_ptr += 1;
                path[anc_ptr]
            } else if cols.is_leaf(i) {
                let [first, count] = cols.span[i];
                out.extend((first..first + count).map(ListTerm::Body));
                continue;
            } else {
                NONE
            };
            for &c in cols.children[i].iter().rev() {
                if c != NONE {
                    if c != anc_child && accept(cols, c as usize) {
                        stack.push(c | ACC);
                    } else {
                        stack.push(c);
                    }
                }
            }
        }
    }

    /// The pre-overhaul recursive walk over the `Node` array, kept as
    /// the A/B reference for `exp_host` and the bit-identity tests.
    pub fn modified_list_reference(&self, tree: &Tree, group: Group, out: &mut Vec<ListTerm>) {
        out.clear();
        let sphere = self.group_sphere(tree, group);
        let gnode = &tree.nodes()[group.node as usize];
        let (gfirst, gend) = (gnode.first, gnode.first + gnode.count);
        self.walk_group(tree, 0, group.node, gfirst, gend, &sphere, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_group(
        &self,
        tree: &Tree,
        idx: u32,
        gidx: u32,
        gfirst: u32,
        gend: u32,
        sphere: &GroupSphere,
        out: &mut Vec<ListTerm>,
    ) {
        let node = &tree.nodes()[idx as usize];
        if idx == gidx {
            // the group itself: members interact directly
            out.extend(node.range().map(|k| ListTerm::Body(k as u32)));
            return;
        }
        let is_ancestor = node.first <= gfirst && node.first + node.count >= gend;
        if is_ancestor {
            // a cell containing the group can never be accepted
            debug_assert!(!node.is_leaf(), "group must be a descendant or the node itself");
            for &c in &node.children {
                if c != NONE {
                    self.walk_group(tree, c, gidx, gfirst, gend, sphere, out);
                }
            }
        } else if self.mac.accepts_sphere(node, sphere) {
            out.push(ListTerm::Cell(idx));
        } else if node.is_leaf() {
            out.extend(node.range().map(|k| ListTerm::Body(k as u32)));
        } else {
            for &c in &node.children {
                if c != NONE {
                    self.walk_group(tree, c, gidx, gfirst, gend, sphere, out);
                }
            }
        }
    }

    /// Build every group's shared list (parallel over groups, one
    /// reused walk stack per worker thread).
    pub fn modified_lists(&self, tree: &Tree, n_crit: usize) -> ModifiedLists {
        let groups = self.find_groups(tree, n_crit);
        let lists: Vec<Vec<ListTerm>> = groups
            .par_iter()
            .map_init(TraverseScratch::default, |scratch, &g| {
                let mut out = Vec::new();
                self.modified_list_with(tree, g, scratch, &mut out);
                out
            })
            .collect();
        ModifiedLists { groups, lists }
    }

    /// Interaction-count statistics of the modified algorithm without
    /// keeping the lists.
    pub fn modified_tally(&self, tree: &Tree, n_crit: usize) -> InteractionTally {
        let groups = self.find_groups(tree, n_crit);
        let (interactions, terms, lists) = groups
            .par_iter()
            .map_init(
                || (TraverseScratch::default(), Vec::new()),
                |(scratch, buf), &g| {
                    self.modified_list_with(tree, g, scratch, buf);
                    let members = tree.nodes()[g.node as usize].count as u64;
                    (buf.len() as u64 * members, buf.len() as u64, 1u64)
                },
            )
            .reduce(|| (0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
        InteractionTally { interactions, terms, lists }
    }
}

/// Sum of the masses referenced by a list — must equal the snapshot's
/// total mass for a correct traversal (closure property).
pub fn list_mass(tree: &Tree, list: &[ListTerm]) -> f64 {
    list.iter().map(|&t| t.resolve(tree).1).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                // clustered: half the points in a small ball
                let s = if rng.random_bool(0.5) { 0.15 } else { 1.0 };
                Vec3::new(rng.random_range(-s..s), rng.random_range(-s..s), rng.random_range(-s..s))
            })
            .collect();
        let mass = (0..n).map(|_| rng.random_range(0.5..2.0)).collect();
        (pos, mass)
    }

    #[test]
    fn original_list_mass_closure() {
        let (pos, mass) = cloud(500, 7);
        let tree = Tree::build(&pos, &mass);
        let total: f64 = mass.iter().sum();
        let tr = Traversal::new(0.8);
        let mut list = Vec::new();
        for i in (0..pos.len()).step_by(37) {
            tr.original_list(&tree, pos[i], &mut list);
            let m = list_mass(&tree, &list);
            assert!((m - total).abs() < 1e-9 * total, "list mass {m} != total {total}");
        }
    }

    #[test]
    fn theta_zero_list_is_all_bodies() {
        let (pos, mass) = cloud(100, 8);
        let tree = Tree::build(&pos, &mass);
        let tr = Traversal::new(0.0);
        let mut list = Vec::new();
        tr.original_list(&tree, pos[0], &mut list);
        assert_eq!(list.len(), 100);
        assert!(list.iter().all(|t| matches!(t, ListTerm::Body(_))));
    }

    #[test]
    fn larger_theta_gives_shorter_lists() {
        let (pos, mass) = cloud(2000, 9);
        let tree = Tree::build(&pos, &mass);
        let t_small = Traversal::new(0.3).original_tally(&tree);
        let t_large = Traversal::new(1.0).original_tally(&tree);
        assert!(t_large.interactions < t_small.interactions);
        assert_eq!(t_small.lists, 2000);
    }

    #[test]
    fn groups_partition_particles() {
        let (pos, mass) = cloud(777, 10);
        let tree = Tree::build(&pos, &mass);
        let tr = Traversal::new(0.75);
        for n_crit in [1, 16, 100, 1000] {
            let groups = tr.find_groups(&tree, n_crit);
            let mut covered = vec![false; pos.len()];
            for g in &groups {
                let node = &tree.nodes()[g.node as usize];
                for k in node.range() {
                    assert!(!covered[k], "particle {k} in two groups");
                    covered[k] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "groups must cover all particles");
        }
    }

    #[test]
    fn group_size_bounded_by_ncrit_or_leaf() {
        let (pos, mass) = cloud(1000, 11);
        let cfg = TreeConfig { leaf_capacity: 8, ..TreeConfig::default() };
        let tree = Tree::build_with(&pos, &mass, cfg);
        let tr = Traversal::new(0.75);
        let groups = tr.find_groups(&tree, 50);
        for g in &groups {
            let node = &tree.nodes()[g.node as usize];
            // a group larger than n_crit can only be a leaf (duplicates)
            assert!(node.count as usize <= 50 || node.is_leaf());
        }
    }

    #[test]
    fn modified_list_mass_closure() {
        let (pos, mass) = cloud(800, 12);
        let tree = Tree::build(&pos, &mass);
        let total: f64 = mass.iter().sum();
        let tr = Traversal::new(0.75);
        let ml = tr.modified_lists(&tree, 64);
        for list in &ml.lists {
            let m = list_mass(&tree, list);
            assert!((m - total).abs() < 1e-9 * total);
        }
    }

    #[test]
    fn modified_list_contains_own_members_as_bodies() {
        let (pos, mass) = cloud(300, 13);
        let tree = Tree::build(&pos, &mass);
        let tr = Traversal::new(0.75);
        let ml = tr.modified_lists(&tree, 32);
        for (g, list) in ml.groups.iter().zip(&ml.lists) {
            let node = &tree.nodes()[g.node as usize];
            for k in node.range() {
                assert!(
                    list.contains(&ListTerm::Body(k as u32)),
                    "group member {k} missing from shared list"
                );
            }
        }
    }

    #[test]
    fn tallies_match_materialized_lists() {
        let (pos, mass) = cloud(600, 14);
        let tree = Tree::build(&pos, &mass);
        let tr = Traversal::new(0.9);
        let ml = tr.modified_lists(&tree, 40);
        let from_lists = ml.tally(&tree);
        let direct = tr.modified_tally(&tree, 40);
        assert_eq!(from_lists, direct);
        assert_eq!(from_lists.lists, ml.groups.len() as u64);
    }

    #[test]
    fn modified_interactions_exceed_original() {
        // §3/§5: the modified algorithm evaluates *more* pairwise terms
        // (the paper's ratio is 2.90e13 vs 4.69e12)
        let (pos, mass) = cloud(3000, 15);
        let tree = Tree::build(&pos, &mass);
        let tr = Traversal::new(0.75);
        let orig = tr.original_tally(&tree);
        let modi = tr.modified_tally(&tree, 256);
        assert!(
            modi.interactions > orig.interactions,
            "modified {} must exceed original {}",
            modi.interactions,
            orig.interactions
        );
    }

    #[test]
    fn ncrit_one_reduces_to_per_particle_lists() {
        let (pos, mass) = cloud(200, 16);
        let cfg = TreeConfig { leaf_capacity: 1, ..TreeConfig::default() };
        let tree = Tree::build_with(&pos, &mass, cfg);
        let tr = Traversal::new(0.75);
        let groups = tr.find_groups(&tree, 1);
        assert_eq!(groups.len(), 200);
    }

    #[test]
    fn group_sphere_contains_members() {
        let (pos, mass) = cloud(400, 17);
        let tree = Tree::build(&pos, &mass);
        let tr = Traversal::new(0.75);
        for g in tr.find_groups(&tree, 64) {
            let sphere = tr.group_sphere(&tree, g);
            let node = &tree.nodes()[g.node as usize];
            for k in node.range() {
                assert!(tree.pos()[k].dist(sphere.center) <= sphere.radius * (1.0 + 1e-12) + 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "n_crit must be positive")]
    fn zero_ncrit_rejected() {
        let (pos, mass) = cloud(10, 18);
        let tree = Tree::build(&pos, &mass);
        Traversal::new(0.75).find_groups(&tree, 0);
    }

    #[test]
    fn stack_walk_matches_recursive_reference_exactly() {
        let (pos, mass) = cloud(900, 19);
        let tree = Tree::build(&pos, &mass);
        for theta in [0.0, 0.5, 1.0] {
            let tr = Traversal::new(theta);
            let mut scratch = TraverseScratch::default();
            let (mut stack_out, mut rec_out) = (Vec::new(), Vec::new());
            for g in tr.find_groups(&tree, 48) {
                tr.modified_list_with(&tree, g, &mut scratch, &mut stack_out);
                tr.modified_list_reference(&tree, g, &mut rec_out);
                assert_eq!(stack_out, rec_out, "term sequence diverged at theta {theta}");
            }
        }
    }

    #[test]
    fn find_groups_into_reuses_buffers() {
        let (pos, mass) = cloud(600, 20);
        let tree = Tree::build(&pos, &mass);
        let tr = Traversal::new(0.75);
        let mut scratch = TraverseScratch::default();
        let mut groups = Vec::new();
        tr.find_groups_into(&tree, 32, &mut scratch, &mut groups);
        assert_eq!(groups, tr.find_groups(&tree, 32));
        let cap = groups.capacity();
        tr.find_groups_into(&tree, 32, &mut scratch, &mut groups);
        assert_eq!(groups.capacity(), cap, "second pass must not reallocate");
    }

    #[test]
    fn refreshed_tree_lists_keep_closure_with_inflated_spheres() {
        let (pos, mass) = cloud(500, 21);
        let mut tree = Tree::build(&pos, &mass);
        // nudge every particle and refresh in place
        let moved: Vec<Vec3> = pos.iter().map(|p| *p + Vec3::new(0.01, -0.02, 0.015)).collect();
        let drift = tree.refresh(&moved, &mass);
        assert!(drift > 0.0);
        let total: f64 = mass.iter().sum();
        let tr = Traversal::new(0.75);
        let ml = tr.modified_lists(&tree, 48);
        for list in &ml.lists {
            let m = list_mass(&tree, list);
            assert!((m - total).abs() < 1e-9 * total);
        }
        // inflated spheres still contain every (moved) member
        for g in tr.find_groups(&tree, 48) {
            let sphere = tr.group_sphere(&tree, g);
            let node = &tree.nodes()[g.node as usize];
            for k in node.range() {
                assert!(tree.pos()[k].dist(sphere.center) <= sphere.radius * (1.0 + 1e-12) + 1e-15);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn cloud() -> impl Strategy<Value = (Vec<Vec3>, Vec<f64>)> {
        proptest::collection::vec(
            ((-5.0f64..5.0), (-5.0f64..5.0), (-5.0f64..5.0), (0.1f64..3.0)),
            1..120,
        )
        .prop_map(|v| {
            let pos = v.iter().map(|&(x, y, z, _)| Vec3::new(x, y, z)).collect();
            let mass = v.iter().map(|&(_, _, _, m)| m).collect();
            (pos, mass)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn original_closure((pos, mass) in cloud(), theta in 0.0f64..1.5) {
            let tree = Tree::build(&pos, &mass);
            let total: f64 = mass.iter().sum();
            let tr = Traversal::new(theta);
            let mut list = Vec::new();
            tr.original_list(&tree, pos[0], &mut list);
            prop_assert!((list_mass(&tree, &list) - total).abs() < 1e-9 * total.max(1.0));
        }

        #[test]
        fn modified_closure((pos, mass) in cloud(), theta in 0.0f64..1.5, n_crit in 1usize..64) {
            let tree = Tree::build(&pos, &mass);
            let total: f64 = mass.iter().sum();
            let tr = Traversal::new(theta);
            let ml = tr.modified_lists(&tree, n_crit);
            for list in &ml.lists {
                prop_assert!((list_mass(&tree, list) - total).abs() < 1e-9 * total.max(1.0));
            }
        }

        #[test]
        fn list_no_duplicate_bodies((pos, mass) in cloud(), n_crit in 1usize..64) {
            let tree = Tree::build(&pos, &mass);
            let tr = Traversal::new(0.75);
            let ml = tr.modified_lists(&tree, n_crit);
            for list in &ml.lists {
                let mut bodies: Vec<u32> = list.iter().filter_map(|t| match t {
                    ListTerm::Body(k) => Some(*k),
                    _ => None,
                }).collect();
                let before = bodies.len();
                bodies.sort_unstable();
                bodies.dedup();
                prop_assert_eq!(before, bodies.len());
            }
        }
    }
}
