#![warn(missing_docs)]
//! # g5tree — Barnes–Hut octree with original and Barnes-modified traversals
//!
//! The tree algorithm (Barnes & Hut 1986) reduces the cost of the
//! gravitational force calculation from O(N²) to O(N log N) by
//! replacing the force from a distant *cell* of particles with the
//! force from its center of mass. This crate provides:
//!
//! * [`tree::Tree`] — a Morton-sorted octree with monopole (center of
//!   mass) moments, the only moments GRAPE-5 can consume;
//! * [`mac`] — multipole acceptance criteria: the classic per-particle
//!   opening test and the per-group test of Barnes' modified algorithm;
//! * [`traverse`] — the **original** algorithm (one interaction list
//!   per particle) and the **modified** algorithm (Barnes 1990: one
//!   list shared by all particles of a *group* of ≤ n_crit neighbours,
//!   with intra-group forces evaluated directly as part of the list).
//!   The modified algorithm is the paper's §3: it divides host work by
//!   ≈ n_g and produces the long, GRAPE-friendly lists;
//! * [`eval`] — reference `f64` evaluation of interaction lists on the
//!   host, used by the accuracy experiments and the TreeHost backend;
//! * [`plan`] — the streaming force plan: group lists resolved by
//!   worker threads and handed through a bounded channel, so a device
//!   consumer overlaps traversal with force evaluation;
//! * [`domain`] — Morton-curve domain decomposition and
//!   local-essential-tree exchange for cluster-sharded force
//!   evaluation: K contiguous curve slices, one local tree each, with
//!   remote mass imported at MAC accuracy.

pub mod domain;
pub mod eval;
pub mod mac;
pub mod plan;
pub mod traverse;
pub mod tree;

pub use domain::{domain_sphere, let_terms_into, Decomposition};
pub use mac::{GroupSphere, Mac};
pub use plan::{GroupWork, PlanConfig, PlanPool, PlanStats, ResolveScratch};
pub use traverse::{Group, ListTerm, ModifiedLists, Traversal, TraverseScratch};
pub use tree::{Node, NodeColumns, Tree, TreeConfig, NONE};
