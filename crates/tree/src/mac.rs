//! Multipole acceptance criteria (MAC) — the "opening tests".
//!
//! A cell of side `s` may stand in for its particles, as seen from a
//! target at distance `d`, when `s/d < θ`. The accuracy parameter θ is
//! the paper's "accuracy parameter": smaller θ opens more cells,
//! producing longer lists and smaller force errors.
//!
//! Two variants:
//!
//! * [`Mac::accepts_point`] — the original Barnes–Hut test, measured
//!   from a single target particle to the cell's center of mass;
//! * [`Mac::accepts_sphere`] — Barnes' modified-algorithm test,
//!   measured from the *surface of a group's bounding sphere*, so one
//!   decision is valid for every particle in the group. Measuring to
//!   the sphere surface makes the shared list at least as conservative
//!   as any member's own test, which is why the modified algorithm is
//!   *more* accurate than the original at equal θ (Barnes 1990;
//!   Kawai & Makino 1999).

use crate::tree::Node;
use g5util::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Bounding sphere of a particle group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupSphere {
    /// Sphere center.
    pub center: Vec3,
    /// Sphere radius (≥ 0).
    pub radius: f64,
}

impl GroupSphere {
    /// Tight bounding sphere of a point set around a given center.
    ///
    /// The scan keeps four running maxima so the distance computations
    /// overlap instead of serializing on one accumulator; max is a
    /// selection (associative, no rounding), so the result is
    /// bit-identical to a single-accumulator fold.
    pub fn around(center: Vec3, points: &[Vec3]) -> GroupSphere {
        let mut m = [0.0f64; 4];
        let mut chunks = points.chunks_exact(4);
        for c in &mut chunks {
            for (acc, p) in m.iter_mut().zip(c) {
                *acc = acc.max(p.dist2(center));
            }
        }
        let mut r2max = m[0].max(m[1]).max(m[2].max(m[3]));
        for p in chunks.remainder() {
            r2max = r2max.max(p.dist2(center));
        }
        GroupSphere { center, radius: r2max.sqrt() }
    }
}

/// Which distance the opening test measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MacKind {
    /// Classic Barnes & Hut 1986: distance to the cell's center of
    /// mass. Fast, but a target sitting just outside a large cell whose
    /// COM is far away can be under-opened (the known worst case of the
    /// plain criterion).
    #[default]
    BarnesHut,
    /// Distance to the *nearest point of the cell cube* — the
    /// conservative variant ("bmax"-style) that removes the
    /// detonating-worst-case at the price of longer lists.
    MinDistance,
}

/// The opening criterion with accuracy parameter θ.
///
/// θ = 0 never accepts (every cell is opened: exact summation);
/// large θ accepts aggressively (short lists, large errors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mac {
    /// The accuracy parameter.
    pub theta: f64,
    /// Distance definition.
    pub kind: MacKind,
}

impl Mac {
    /// The paper's criterion (Barnes–Hut distance), rejecting negative θ.
    pub fn new(theta: f64) -> Mac {
        Mac::with_kind(theta, MacKind::BarnesHut)
    }

    /// Construct with an explicit distance definition.
    pub fn with_kind(theta: f64, kind: MacKind) -> Mac {
        assert!(theta >= 0.0, "negative accuracy parameter");
        Mac { theta, kind }
    }

    /// Distance from a point to the nearest point of the cell cube.
    #[inline]
    fn cube_distance(node: &Node, p: Vec3) -> f64 {
        let d = (p - node.center).abs() - Vec3::splat(node.half);
        Vec3::new(d.x.max(0.0), d.y.max(0.0), d.z.max(0.0)).norm()
    }

    /// Original Barnes–Hut test: may `node` stand in for its particles
    /// as seen from the point `p`?
    #[inline]
    pub fn accepts_point(&self, node: &Node, p: Vec3) -> bool {
        match self.kind {
            MacKind::BarnesHut => {
                let d2 = p.dist2(node.com);
                node.side() * node.side() < self.theta * self.theta * d2
            }
            MacKind::MinDistance => {
                let d = Self::cube_distance(node, p);
                node.side() < self.theta * d
            }
        }
    }

    /// Modified-algorithm test: may `node` stand in for its particles
    /// as seen from *anywhere inside* the group sphere? The distance is
    /// measured to the nearest point of the sphere.
    ///
    /// The Barnes–Hut case evaluates `s/(dist − r) < θ` in the
    /// square-root-free form `dist² > (r + s/θ)²` — both sides of the
    /// threshold are nonnegative, so the squared comparison selects the
    /// same cells (up to the last-ulp rounding of either form) without
    /// a `sqrt` on the traversal's critical path.
    #[inline]
    pub fn accepts_sphere(&self, node: &Node, sphere: &GroupSphere) -> bool {
        match self.kind {
            MacKind::BarnesHut => {
                let t = sphere.radius + node.half * (2.0 / self.theta);
                sphere.center.dist2(node.com) > t * t
            }
            MacKind::MinDistance => {
                let d = Self::cube_distance(node, sphere.center) - sphere.radius;
                d > 0.0 && node.side() < self.theta * d
            }
        }
    }

    /// [`accepts_sphere`](Self::accepts_sphere) against the SoA node
    /// columns (`geom = [cx, cy, cz, half]`, `moment = [mx, my, mz, mass]`)
    /// — same arithmetic in the same order, so the answer is
    /// bit-identical to the `Node` form. This is the form the
    /// explicit-stack traversal calls: one 32-byte column read per
    /// test instead of a whole `Node`.
    #[inline]
    pub fn accepts_sphere_cols(
        &self,
        geom: &[f64; 4],
        moment: &[f64; 4],
        sphere: &GroupSphere,
    ) -> bool {
        let half = geom[3];
        match self.kind {
            MacKind::BarnesHut => {
                let com = Vec3::new(moment[0], moment[1], moment[2]);
                let t = sphere.radius + half * (2.0 / self.theta);
                sphere.center.dist2(com) > t * t
            }
            MacKind::MinDistance => {
                let center = Vec3::new(geom[0], geom[1], geom[2]);
                let d = (sphere.center - center).abs() - Vec3::splat(half);
                let d = Vec3::new(d.x.max(0.0), d.y.max(0.0), d.z.max(0.0)).norm() - sphere.radius;
                d > 0.0 && 2.0 * half < self.theta * d
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NONE;

    fn node_at(com: Vec3, half: f64) -> Node {
        Node { center: com, half, com, mass: 1.0, first: 0, count: 1, children: [NONE; 8] }
    }

    #[test]
    fn far_cells_accepted_near_cells_opened() {
        let mac = Mac::new(0.75);
        let n = node_at(Vec3::new(10.0, 0.0, 0.0), 0.5); // side 1.0
                                                         // d = 10, s/d = 0.1 < 0.75: accept
        assert!(mac.accepts_point(&n, Vec3::ZERO));
        // d = 1, s/d = 1.0 > 0.75: open
        assert!(!mac.accepts_point(&n, Vec3::new(9.0, 0.0, 0.0)));
    }

    #[test]
    fn theta_zero_never_accepts() {
        let mac = Mac::new(0.0);
        let n = node_at(Vec3::new(1e9, 0.0, 0.0), 1e-6);
        assert!(!mac.accepts_point(&n, Vec3::ZERO));
        let s = GroupSphere { center: Vec3::ZERO, radius: 0.1 };
        assert!(!mac.accepts_sphere(&n, &s));
    }

    #[test]
    fn sphere_test_is_more_conservative_than_any_interior_point() {
        let mac = Mac::new(0.8);
        let n = node_at(Vec3::new(5.0, 0.0, 0.0), 0.5);
        let sphere = GroupSphere { center: Vec3::ZERO, radius: 2.0 };
        if mac.accepts_sphere(&n, &sphere) {
            // every point inside the sphere must also accept
            for &p in &[
                Vec3::ZERO,
                Vec3::new(2.0, 0.0, 0.0),
                Vec3::new(-2.0, 0.0, 0.0),
                Vec3::new(0.0, 1.9, 0.0),
            ] {
                assert!(mac.accepts_point(&n, p));
            }
        }
    }

    #[test]
    fn com_inside_sphere_forces_open() {
        let mac = Mac::new(10.0);
        let n = node_at(Vec3::new(0.5, 0.0, 0.0), 0.01);
        let sphere = GroupSphere { center: Vec3::ZERO, radius: 1.0 };
        assert!(!mac.accepts_sphere(&n, &sphere));
    }

    #[test]
    fn group_sphere_around_points() {
        let pts = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(-2.0, 0.0, 0.0), Vec3::ZERO];
        let s = GroupSphere::around(Vec3::ZERO, &pts);
        assert_eq!(s.radius, 2.0);
        let empty = GroupSphere::around(Vec3::ONE, &[]);
        assert_eq!(empty.radius, 0.0);
    }

    #[test]
    #[should_panic(expected = "negative accuracy")]
    fn negative_theta_rejected() {
        let _ = Mac::new(-0.1);
    }
}
