//! Streaming force plan: resolved group work produced through a
//! bounded channel.
//!
//! The modified algorithm's host work is "walk the tree once per group
//! and emit the shared interaction list" (§3 of the paper). The
//! original backend implementation materialised *every* resolved list
//! at once (`par_iter().collect()`), costing O(total terms) peak memory
//! and serialising the device behind the full traversal. This module
//! instead streams [`GroupWork`] items — one group's targets plus its
//! resolved j-set — through a bounded channel, so the consumer (the
//! GRAPE driver) evaluates group *k* while worker threads are still
//! walking the tree for groups *k+1, k+2, …*. Peak memory falls to
//! O(channel depth × list length), and traversal overlaps device time
//! the way the real host code overlaps `g5_calculate_force_on_x` DMA.
//!
//! ## Determinism
//!
//! Worker scheduling makes the *arrival order* of groups at the
//! consumer nondeterministic, but the *result* is not: each group
//! carries its own target indices (disjoint across groups, covering
//! every particle exactly once), each resolved list is a pure function
//! of the tree, and tallies are sums of `u64`s. Any consumer that
//! writes per-target outputs and accumulates tallies therefore produces
//! bit-identical results in any arrival order. [`PlanConfig::serial`]
//! gives the in-order single-thread reference path used by the property
//! tests to check exactly that.
//!
//! ## Buffer recycling
//!
//! Steady-state streaming does **zero heap allocation per group**. A
//! [`PlanPool`] owns drained [`GroupWork`] husks and per-worker
//! [`ResolveScratch`] arenas; producers take a husk, resolve into its
//! retained buffers, and send it, and after the consumer callback
//! returns (it sees `&GroupWork`, never ownership) the husk goes back
//! to the pool. After the first step every vector has reached its
//! high-water capacity and the pool's [`minted`](PlanPool::minted)
//! counter stops moving — which `tests/plan_alloc.rs` verifies with a
//! counting allocator.

use crate::traverse::{Group, ListTerm, Traversal, TraverseScratch};
use crate::tree::Tree;
use g5util::counters::InteractionTally;
use g5util::vec3::Vec3;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Mutex;
use std::time::Instant;

/// A group resolution failed: the panic payload of the producer,
/// surfaced as a value so one bad group fails one force evaluation —
/// the caller can checkpoint and abort, or retry — instead of taking
/// the whole process down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// Tree cell of the group whose resolution failed, when known.
    pub group: Option<u32>,
    /// Panic payload or failure description.
    pub message: String,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.group {
            Some(g) => write!(f, "plan producer failed on group (node {g}): {}", self.message),
            None => write!(f, "plan producer failed: {}", self.message),
        }
    }
}

impl std::error::Error for PlanError {}

/// Best-effort string form of a caught panic payload.
fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One group's fully resolved share of a force evaluation: everything
/// the device driver needs, with no further tree access.
#[derive(Debug, Clone)]
pub struct GroupWork {
    /// The group this work came from.
    pub group: Group,
    /// Original (input-order) indices of the group members, disjoint
    /// across groups.
    pub targets: Vec<usize>,
    /// Member positions, parallel to `targets`.
    pub xi: Vec<Vec3>,
    /// Resolved interaction-list positions (cell centers of mass and
    /// body positions).
    pub jpos: Vec<Vec3>,
    /// Resolved interaction-list masses, parallel to `jpos`.
    pub jmass: Vec<f64>,
    /// This group's contribution to the step tally.
    pub tally: InteractionTally,
}

impl GroupWork {
    /// An empty husk whose buffers will be grown on first use and then
    /// retained across recycles.
    fn husk() -> GroupWork {
        GroupWork {
            group: Group { node: 0 },
            targets: Vec::new(),
            xi: Vec::new(),
            jpos: Vec::new(),
            jmass: Vec::new(),
            tally: InteractionTally::default(),
        }
    }
}

/// Per-worker resolution arena: the interaction-list term buffer and
/// the traversal walk stack, both of which keep their high-water
/// capacity across groups and across steps.
#[derive(Debug, Default)]
pub struct ResolveScratch {
    terms: Vec<ListTerm>,
    walk: TraverseScratch,
}

/// Recycler for streaming buffers, owned by the caller and handed to
/// [`stream_with`] every step so capacities persist across force
/// evaluations.
///
/// Two free lists live behind mutexes: drained [`GroupWork`] husks and
/// per-worker [`ResolveScratch`] arenas. Contention is negligible —
/// each producer touches the husk lock once per group (a pop and, on
/// the consumer side, a push), orders of magnitude less often than the
/// work it brackets. The pool never shrinks; its footprint is bounded
/// by `channel_depth + workers + 1` husks, each at the longest list it
/// ever carried.
#[derive(Debug, Default)]
pub struct PlanPool {
    husks: Mutex<Vec<GroupWork>>,
    scratches: Mutex<Vec<ResolveScratch>>,
    minted: AtomicU64,
}

impl PlanPool {
    /// An empty pool. Buffers are minted on demand during the first
    /// stream and recycled thereafter.
    pub fn new() -> PlanPool {
        PlanPool::default()
    }

    /// Total `GroupWork` husks ever allocated. Flat across steady-state
    /// steps: the zero-allocation invariant in counter form.
    pub fn minted(&self) -> u64 {
        self.minted.load(Ordering::Relaxed)
    }

    fn take_husk(&self) -> GroupWork {
        if let Some(h) = self.husks.lock().unwrap().pop() {
            return h;
        }
        self.minted.fetch_add(1, Ordering::Relaxed);
        GroupWork::husk()
    }

    fn put_husk(&self, h: GroupWork) {
        self.husks.lock().unwrap().push(h);
    }

    fn take_scratch(&self) -> ResolveScratch {
        self.scratches.lock().unwrap().pop().unwrap_or_default()
    }

    fn put_scratch(&self, s: ResolveScratch) {
        self.scratches.lock().unwrap().push(s);
    }
}

/// How a [`stream`] call schedules its producers.
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Producer threads. `None` chooses `available_parallelism - 1`
    /// (leaving one core for the consumer); `Some(0)` is the serial
    /// in-order reference path with no channel at all.
    pub workers: Option<usize>,
    /// Bound of the work channel — the number of resolved groups that
    /// may exist ahead of the consumer, and therefore the peak-memory
    /// knob.
    pub channel_depth: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig { workers: None, channel_depth: 4 }
    }
}

impl PlanConfig {
    /// The single-thread, in-group-order reference path.
    pub fn serial() -> Self {
        PlanConfig { workers: Some(0), channel_depth: 1 }
    }

    /// Overlapped mode with an explicit worker count (≥ 1).
    pub fn overlapped(workers: usize, channel_depth: usize) -> Self {
        PlanConfig { workers: Some(workers.max(1)), channel_depth }
    }

    fn resolved_workers(&self) -> usize {
        match self.workers {
            Some(w) => w,
            None => std::thread::available_parallelism()
                .map(|c| c.get().saturating_sub(1))
                .unwrap_or(1)
                .max(1),
        }
    }
}

/// What a [`stream`] call did, beyond the consumer's own outputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanStats {
    /// Summed tally over all streamed groups.
    pub tally: InteractionTally,
    /// CPU seconds spent resolving lists, summed over producers — the
    /// "tree traverse" phase cost regardless of overlap.
    pub produce_s: f64,
    /// Seconds the consumer spent blocked waiting for work — how
    /// traversal-starved the device was.
    pub consumer_blocked_s: f64,
    /// Fresh `GroupWork` allocations this call; 0 once the pool has
    /// warmed up.
    pub husks_minted: u64,
}

/// Resolve one group against the tree into a recycled husk: shared
/// list, member targets and positions, tally contribution. Only grows
/// buffers past their retained capacity; steady state allocates
/// nothing.
fn resolve_group_into(
    tree: &Tree,
    tr: &Traversal,
    g: Group,
    scratch: &mut ResolveScratch,
    work: &mut GroupWork,
) {
    tr.modified_list_with(tree, g, &mut scratch.walk, &mut scratch.terms);
    work.group = g;
    work.jpos.clear();
    work.jmass.clear();
    work.jpos.reserve(scratch.terms.len());
    work.jmass.reserve(scratch.terms.len());
    for &term in scratch.terms.iter() {
        let (p, m) = term.resolve(tree);
        work.jpos.push(p);
        work.jmass.push(m);
    }
    let node = &tree.nodes()[g.node as usize];
    work.targets.clear();
    work.targets.extend(node.range().map(|k| tree.original_index(k)));
    work.xi.clear();
    work.xi.extend(node.range().map(|k| tree.pos()[k]));
    work.tally = InteractionTally {
        interactions: work.jpos.len() as u64 * work.targets.len() as u64,
        terms: work.jpos.len() as u64,
        lists: 1,
    };
}

/// Stream every group's resolved work into `consume` through a
/// throwaway [`PlanPool`] — buffers are still shared within the call,
/// but capacities are not retained across calls. Long-lived drivers
/// should own a pool and call [`stream_with`].
pub fn stream<F: FnMut(&GroupWork)>(
    tree: &Tree,
    tr: &Traversal,
    groups: &[Group],
    cfg: &PlanConfig,
    consume: F,
) -> Result<PlanStats, PlanError> {
    let pool = PlanPool::new();
    stream_with(tree, tr, groups, cfg, &pool, consume)
}

/// Stream every group's resolved work into `consume`, overlapping
/// production with consumption according to `cfg` and recycling every
/// buffer through `pool`.
///
/// The consumer runs on the calling thread and sees each [`GroupWork`]
/// by reference; when the callback returns, the husk goes back to the
/// pool for the next group. Producers (if any) run in a scope that ends
/// before `stream_with` returns, so borrows of `tree` never escape. A
/// panic while resolving a group travels through the channel as a
/// [`PlanError`] value: the stream shuts down cleanly (producers notice
/// the closed channel and stop) and the error comes back to the caller
/// instead of aborting the process.
pub fn stream_with<F: FnMut(&GroupWork)>(
    tree: &Tree,
    tr: &Traversal,
    groups: &[Group],
    cfg: &PlanConfig,
    pool: &PlanPool,
    consume: F,
) -> Result<PlanStats, PlanError> {
    stream_with_augment(tree, tr, groups, cfg, pool, &|_| {}, consume)
}

/// [`stream_with`], with a producer-side *augment hook*: after a group
/// is resolved against the local tree, `augment` runs on the producer
/// thread (or inline on the serial path) and may extend the husk's
/// `jpos`/`jmass` with additional interaction terms before the item is
/// sent. This is how the cluster backend folds local-essential-tree
/// resolution into the stream — remote terms are appended while the
/// consumer is already driving the device for earlier groups, instead
/// of behind a pre-evaluation barrier.
///
/// The hook runs inside the same catch-unwind bracket as the
/// traversal, so a panic while augmenting surfaces as a [`PlanError`]
/// exactly like a resolution panic. `work.tally` is computed *before*
/// the hook and deliberately left alone: tallies keep counting the
/// local treecode terms, bit-identical to the unaugmented path.
pub fn stream_with_augment<A, F>(
    tree: &Tree,
    tr: &Traversal,
    groups: &[Group],
    cfg: &PlanConfig,
    pool: &PlanPool,
    augment: &A,
    mut consume: F,
) -> Result<PlanStats, PlanError>
where
    A: Fn(&mut GroupWork) + Sync,
    F: FnMut(&GroupWork),
{
    let mut stats = PlanStats::default();
    let minted_before = pool.minted();
    let workers = cfg.resolved_workers();

    if workers == 0 {
        // serial reference: produce and consume one group at a time, in
        // find_groups order, through a single recycled husk + scratch
        let mut scratch = pool.take_scratch();
        let mut work = pool.take_husk();
        let mut failure = None;
        for &g in groups {
            let t = Instant::now();
            let ok = catch_unwind(AssertUnwindSafe(|| {
                resolve_group_into(tree, tr, g, &mut scratch, &mut work);
                augment(&mut work);
            }));
            stats.produce_s += t.elapsed().as_secs_f64();
            if let Err(p) = ok {
                failure = Some(PlanError { group: Some(g.node), message: payload_msg(&*p) });
                break;
            }
            stats.tally = stats.tally.merged(work.tally);
            consume(&work);
        }
        pool.put_husk(work);
        pool.put_scratch(scratch);
        stats.husks_minted = pool.minted() - minted_before;
        return match failure {
            Some(e) => Err(e),
            None => Ok(stats),
        };
    }

    let (tx, rx) = sync_channel::<Result<GroupWork, PlanError>>(cfg.channel_depth.max(1));
    let next = AtomicUsize::new(0);
    let failure = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            handles.push(s.spawn(move || {
                let mut scratch = pool.take_scratch();
                let mut cpu_s = 0.0;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= groups.len() {
                        break;
                    }
                    let mut work = pool.take_husk();
                    let t = Instant::now();
                    let item = catch_unwind(AssertUnwindSafe(|| {
                        resolve_group_into(tree, tr, groups[i], &mut scratch, &mut work);
                        augment(&mut work);
                        work
                    }))
                    .map_err(|p| PlanError {
                        group: Some(groups[i].node),
                        message: payload_msg(&*p),
                    });
                    cpu_s += t.elapsed().as_secs_f64();
                    let failed = item.is_err();
                    if tx.send(item).is_err() || failed {
                        break; // consumer gone, or nothing sane left to produce
                    }
                }
                pool.put_scratch(scratch);
                cpu_s
            }));
        }
        drop(tx); // channel closes when the last producer finishes

        let mut failure: Option<PlanError> = None;
        loop {
            let t = Instant::now();
            let Ok(item) = rx.recv() else { break };
            stats.consumer_blocked_s += t.elapsed().as_secs_f64();
            match item {
                Ok(work) => {
                    stats.tally = stats.tally.merged(work.tally);
                    consume(&work);
                    pool.put_husk(work);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // unblock any producer parked on a full channel before joining
        drop(rx);
        for h in handles {
            match h.join() {
                Ok(cpu_s) => stats.produce_s += cpu_s,
                Err(p) => {
                    if failure.is_none() {
                        failure = Some(PlanError { group: None, message: payload_msg(&*p) });
                    }
                }
            }
        }
        failure
    });
    stats.husks_minted = pool.minted() - minted_before;
    match failure {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
            })
            .collect();
        let mass = vec![1.0 / n as f64; n];
        (pos, mass)
    }

    /// Consume a full stream into per-target list lengths + tally.
    fn drain(cfg: &PlanConfig, n: usize, seed: u64) -> (Vec<u64>, InteractionTally) {
        let (pos, mass) = cloud(n, seed);
        let tree = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.7);
        let groups = tr.find_groups(&tree, 32);
        let mut per_target = vec![0u64; n];
        let stats = stream(&tree, &tr, &groups, cfg, |w| {
            assert_eq!(w.targets.len(), w.xi.len());
            assert_eq!(w.jpos.len(), w.jmass.len());
            assert_eq!(w.tally.terms, w.jpos.len() as u64);
            for &t in &w.targets {
                per_target[t] += w.jpos.len() as u64;
            }
        })
        .unwrap();
        (per_target, stats.tally)
    }

    #[test]
    fn serial_covers_every_target_once() {
        let (per_target, tally) = drain(&PlanConfig::serial(), 700, 9);
        assert!(per_target.iter().all(|&c| c > 0), "some particle left unassigned");
        assert_eq!(tally.interactions, per_target.iter().sum::<u64>());
    }

    #[test]
    fn overlapped_matches_serial_coverage() {
        for depth in [1, 2, 8] {
            let serial = drain(&PlanConfig::serial(), 700, 9);
            let overlapped = drain(&PlanConfig::overlapped(3, depth), 700, 9);
            assert_eq!(serial.0, overlapped.0, "depth {depth}");
            assert_eq!(serial.1, overlapped.1, "depth {depth}");
        }
    }

    #[test]
    fn stats_tally_matches_traversal_tally() {
        let (pos, mass) = cloud(900, 4);
        let tree = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.8);
        let groups = tr.find_groups(&tree, 48);
        let stats = stream(&tree, &tr, &groups, &PlanConfig::default(), |_| {}).unwrap();
        assert_eq!(stats.tally, tr.modified_tally(&tree, 48));
        assert_eq!(stats.tally.lists, groups.len() as u64);
        assert!(stats.produce_s >= 0.0);
    }

    #[test]
    fn pool_mints_once_then_recycles() {
        let (pos, mass) = cloud(800, 6);
        let tree = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.7);
        let groups = tr.find_groups(&tree, 32);
        let pool = PlanPool::new();
        // serial scheduling is deterministic: one husk, then pure reuse
        let warm = stream_with(&tree, &tr, &groups, &PlanConfig::serial(), &pool, |_| {}).unwrap();
        let steady =
            stream_with(&tree, &tr, &groups, &PlanConfig::serial(), &pool, |_| {}).unwrap();
        assert_eq!(warm.husks_minted, 1, "first serial pass mints exactly one husk");
        assert_eq!(steady.husks_minted, 0, "steady state must recycle");
        assert_eq!(warm.tally, steady.tally);
        // overlapped minting depends on producer/consumer interleaving,
        // but in-flight demand — and so total mints across any number of
        // passes — is bounded by workers + depth + 1
        let cfg = PlanConfig::overlapped(2, 4);
        for _ in 0..3 {
            let s = stream_with(&tree, &tr, &groups, &cfg, &pool, |_| {}).unwrap();
            assert_eq!(s.tally, warm.tally);
        }
        assert!(pool.minted() <= 1 + 2 + 4 + 1, "minted {}", pool.minted());
    }

    #[test]
    fn consumer_drop_does_not_hang() {
        // consume only the first item, then let `stream` unwind: the
        // producers must notice the closed channel and stop
        let (pos, mass) = cloud(600, 12);
        let tree = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.7);
        let groups = tr.find_groups(&tree, 16);
        let mut seen = 0usize;
        stream(&tree, &tr, &groups, &PlanConfig::overlapped(2, 1), |_| seen += 1).unwrap();
        assert_eq!(seen, groups.len());
    }

    #[test]
    fn augment_extends_lists_without_touching_tally() {
        let (pos, mass) = cloud(700, 9);
        let tree = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.7);
        let groups = tr.find_groups(&tree, 32);
        let pool = PlanPool::new();
        let extra = Vec3::new(5.0, 5.0, 5.0);
        let augment = |w: &mut GroupWork| {
            w.jpos.push(extra);
            w.jmass.push(2.5);
        };
        // per-group j-list contents must be identical across schedules:
        // (group node → appended list length and last term)
        let collect = |cfg: &PlanConfig| {
            let mut seen: Vec<(u32, usize, Vec3, f64)> = Vec::new();
            let stats = stream_with_augment(&tree, &tr, &groups, cfg, &pool, &augment, |w| {
                seen.push((
                    w.group.node,
                    w.jpos.len(),
                    *w.jpos.last().unwrap(),
                    w.tally.terms as f64,
                ));
            })
            .unwrap();
            seen.sort_by_key(|&(node, ..)| node);
            (seen, stats.tally)
        };
        let (serial, serial_tally) = collect(&PlanConfig::serial());
        let (overlapped, overlapped_tally) = collect(&PlanConfig::overlapped(3, 2));
        assert_eq!(serial, overlapped);
        assert_eq!(serial_tally, overlapped_tally);
        for &(_, len, last, terms) in &serial {
            assert_eq!(last, extra, "augmented term must arrive last");
            assert_eq!(len as f64, terms + 1.0, "tally counts only local terms");
        }
        // tallies are bit-identical to the unaugmented stream
        let plain = stream_with(&tree, &tr, &groups, &PlanConfig::serial(), &pool, |_| {}).unwrap();
        assert_eq!(plain.tally, serial_tally);
    }

    #[test]
    fn augment_panic_surfaces_as_error() {
        let (pos, mass) = cloud(300, 10);
        let tree = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.7);
        let groups = tr.find_groups(&tree, 16);
        let pool = PlanPool::new();
        let augment = |_: &mut GroupWork| panic!("LET resolution failed");
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let serial = stream_with_augment(
            &tree,
            &tr,
            &groups,
            &PlanConfig::serial(),
            &pool,
            &augment,
            |_| {},
        );
        let overlapped = stream_with_augment(
            &tree,
            &tr,
            &groups,
            &PlanConfig::overlapped(2, 2),
            &pool,
            &augment,
            |_| {},
        );
        std::panic::set_hook(prev_hook);
        assert!(serial.unwrap_err().message.contains("LET resolution"));
        assert!(overlapped.unwrap_err().message.contains("LET resolution"));
    }

    #[test]
    fn producer_panic_surfaces_as_error() {
        // groups found on a large tree but resolved against a small one:
        // node indices run off the end, which panics inside
        // resolve_group — the stream must return that as a PlanError
        // and shut down without hanging or aborting
        let (pos, mass) = cloud(600, 3);
        let big = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.7);
        let groups = tr.find_groups(&big, 8);
        let (pos2, mass2) = cloud(24, 5);
        let small = Tree::build_with(&pos2, &mass2, TreeConfig::default());
        assert!(big.nodes().len() > small.nodes().len());

        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep expected panics quiet
        let serial = stream(&small, &tr, &groups, &PlanConfig::serial(), |_| {});
        let overlapped = stream(&small, &tr, &groups, &PlanConfig::overlapped(2, 2), |_| {});
        std::panic::set_hook(prev_hook);

        let serial = serial.unwrap_err();
        assert!(serial.group.is_some());
        assert!(!serial.message.is_empty());
        assert!(serial.to_string().contains("plan producer failed"));
        overlapped.unwrap_err();
    }
}
