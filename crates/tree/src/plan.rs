//! Streaming force plan: resolved group work produced through a
//! bounded channel.
//!
//! The modified algorithm's host work is "walk the tree once per group
//! and emit the shared interaction list" (§3 of the paper). The
//! original backend implementation materialised *every* resolved list
//! at once (`par_iter().collect()`), costing O(total terms) peak memory
//! and serialising the device behind the full traversal. This module
//! instead streams [`GroupWork`] items — one group's targets plus its
//! resolved j-set — through a bounded channel, so the consumer (the
//! GRAPE driver) evaluates group *k* while worker threads are still
//! walking the tree for groups *k+1, k+2, …*. Peak memory falls to
//! O(channel depth × list length), and traversal overlaps device time
//! the way the real host code overlaps `g5_calculate_force_on_x` DMA.
//!
//! ## Determinism
//!
//! Worker scheduling makes the *arrival order* of groups at the
//! consumer nondeterministic, but the *result* is not: each group
//! carries its own target indices (disjoint across groups, covering
//! every particle exactly once), each resolved list is a pure function
//! of the tree, and tallies are sums of `u64`s. Any consumer that
//! writes per-target outputs and accumulates tallies therefore produces
//! bit-identical results in any arrival order. [`PlanConfig::serial`]
//! gives the in-order single-thread reference path used by the property
//! tests to check exactly that.

use crate::traverse::{Group, ListTerm, Traversal};
use crate::tree::Tree;
use g5util::counters::InteractionTally;
use g5util::vec3::Vec3;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::time::Instant;

/// A group resolution failed: the panic payload of the producer,
/// surfaced as a value so one bad group fails one force evaluation —
/// the caller can checkpoint and abort, or retry — instead of taking
/// the whole process down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// Tree cell of the group whose resolution failed, when known.
    pub group: Option<u32>,
    /// Panic payload or failure description.
    pub message: String,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.group {
            Some(g) => write!(f, "plan producer failed on group (node {g}): {}", self.message),
            None => write!(f, "plan producer failed: {}", self.message),
        }
    }
}

impl std::error::Error for PlanError {}

/// Best-effort string form of a caught panic payload.
fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One group's fully resolved share of a force evaluation: everything
/// the device driver needs, with no further tree access.
#[derive(Debug, Clone)]
pub struct GroupWork {
    /// The group this work came from.
    pub group: Group,
    /// Original (input-order) indices of the group members, disjoint
    /// across groups.
    pub targets: Vec<usize>,
    /// Member positions, parallel to `targets`.
    pub xi: Vec<Vec3>,
    /// Resolved interaction-list positions (cell centers of mass and
    /// body positions).
    pub jpos: Vec<Vec3>,
    /// Resolved interaction-list masses, parallel to `jpos`.
    pub jmass: Vec<f64>,
    /// This group's contribution to the step tally.
    pub tally: InteractionTally,
}

/// How a [`stream`] call schedules its producers.
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Producer threads. `None` chooses `available_parallelism - 1`
    /// (leaving one core for the consumer); `Some(0)` is the serial
    /// in-order reference path with no channel at all.
    pub workers: Option<usize>,
    /// Bound of the work channel — the number of resolved groups that
    /// may exist ahead of the consumer, and therefore the peak-memory
    /// knob.
    pub channel_depth: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig { workers: None, channel_depth: 4 }
    }
}

impl PlanConfig {
    /// The single-thread, in-group-order reference path.
    pub fn serial() -> Self {
        PlanConfig { workers: Some(0), channel_depth: 1 }
    }

    /// Overlapped mode with an explicit worker count (≥ 1).
    pub fn overlapped(workers: usize, channel_depth: usize) -> Self {
        PlanConfig { workers: Some(workers.max(1)), channel_depth }
    }

    fn resolved_workers(&self) -> usize {
        match self.workers {
            Some(w) => w,
            None => std::thread::available_parallelism()
                .map(|c| c.get().saturating_sub(1))
                .unwrap_or(1)
                .max(1),
        }
    }
}

/// What a [`stream`] call did, beyond the consumer's own outputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanStats {
    /// Summed tally over all streamed groups.
    pub tally: InteractionTally,
    /// CPU seconds spent resolving lists, summed over producers — the
    /// "tree traverse" phase cost regardless of overlap.
    pub produce_s: f64,
    /// Seconds the consumer spent blocked waiting for work — how
    /// traversal-starved the device was.
    pub consume_wait_s: f64,
}

/// Resolve one group against the tree: shared list, member targets and
/// positions, tally contribution.
fn resolve_group(tree: &Tree, tr: &Traversal, g: Group, scratch: &mut Vec<ListTerm>) -> GroupWork {
    tr.modified_list(tree, g, scratch);
    let mut jpos = Vec::with_capacity(scratch.len());
    let mut jmass = Vec::with_capacity(scratch.len());
    for &term in scratch.iter() {
        let (p, m) = term.resolve(tree);
        jpos.push(p);
        jmass.push(m);
    }
    let node = &tree.nodes()[g.node as usize];
    let targets: Vec<usize> = node.range().map(|k| tree.original_index(k)).collect();
    let xi: Vec<Vec3> = node.range().map(|k| tree.pos()[k]).collect();
    let tally = InteractionTally {
        interactions: jpos.len() as u64 * targets.len() as u64,
        terms: jpos.len() as u64,
        lists: 1,
    };
    GroupWork { group: g, targets, xi, jpos, jmass, tally }
}

/// Stream every group's resolved work into `consume`, overlapping
/// production with consumption according to `cfg`.
///
/// The consumer runs on the calling thread; producers (if any) run in a
/// scope that ends before `stream` returns, so borrows of `tree` never
/// escape. A panic while resolving a group travels through the channel
/// as a [`PlanError`] value: the stream shuts down cleanly (producers
/// notice the closed channel and stop) and the error comes back to the
/// caller instead of aborting the process.
pub fn stream<F: FnMut(GroupWork)>(
    tree: &Tree,
    tr: &Traversal,
    groups: &[Group],
    cfg: &PlanConfig,
    mut consume: F,
) -> Result<PlanStats, PlanError> {
    let mut stats = PlanStats::default();
    let workers = cfg.resolved_workers();

    if workers == 0 {
        // serial reference: produce and consume one group at a time,
        // in find_groups order
        let mut scratch = Vec::new();
        for &g in groups {
            let t = Instant::now();
            let work = catch_unwind(AssertUnwindSafe(|| resolve_group(tree, tr, g, &mut scratch)))
                .map_err(|p| PlanError { group: Some(g.node), message: payload_msg(&*p) });
            stats.produce_s += t.elapsed().as_secs_f64();
            let work = work?;
            stats.tally = stats.tally.merged(work.tally);
            consume(work);
        }
        return Ok(stats);
    }

    let (tx, rx) = sync_channel::<Result<GroupWork, PlanError>>(cfg.channel_depth.max(1));
    let next = AtomicUsize::new(0);
    let failure = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            handles.push(s.spawn(move || {
                let mut scratch = Vec::new();
                let mut cpu_s = 0.0;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= groups.len() {
                        break;
                    }
                    let t = Instant::now();
                    let item = catch_unwind(AssertUnwindSafe(|| {
                        resolve_group(tree, tr, groups[i], &mut scratch)
                    }))
                    .map_err(|p| PlanError {
                        group: Some(groups[i].node),
                        message: payload_msg(&*p),
                    });
                    cpu_s += t.elapsed().as_secs_f64();
                    let failed = item.is_err();
                    if tx.send(item).is_err() || failed {
                        break; // consumer gone, or nothing sane left to produce
                    }
                }
                cpu_s
            }));
        }
        drop(tx); // channel closes when the last producer finishes

        let mut failure: Option<PlanError> = None;
        loop {
            let t = Instant::now();
            let Ok(item) = rx.recv() else { break };
            stats.consume_wait_s += t.elapsed().as_secs_f64();
            match item {
                Ok(work) => {
                    stats.tally = stats.tally.merged(work.tally);
                    consume(work);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // unblock any producer parked on a full channel before joining
        drop(rx);
        for h in handles {
            match h.join() {
                Ok(cpu_s) => stats.produce_s += cpu_s,
                Err(p) => {
                    if failure.is_none() {
                        failure = Some(PlanError { group: None, message: payload_msg(&*p) });
                    }
                }
            }
        }
        failure
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
            })
            .collect();
        let mass = vec![1.0 / n as f64; n];
        (pos, mass)
    }

    /// Consume a full stream into per-target list lengths + tally.
    fn drain(cfg: &PlanConfig, n: usize, seed: u64) -> (Vec<u64>, InteractionTally) {
        let (pos, mass) = cloud(n, seed);
        let tree = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.7);
        let groups = tr.find_groups(&tree, 32);
        let mut per_target = vec![0u64; n];
        let stats = stream(&tree, &tr, &groups, cfg, |w| {
            assert_eq!(w.targets.len(), w.xi.len());
            assert_eq!(w.jpos.len(), w.jmass.len());
            assert_eq!(w.tally.terms, w.jpos.len() as u64);
            for &t in &w.targets {
                per_target[t] += w.jpos.len() as u64;
            }
        })
        .unwrap();
        (per_target, stats.tally)
    }

    #[test]
    fn serial_covers_every_target_once() {
        let (per_target, tally) = drain(&PlanConfig::serial(), 700, 9);
        assert!(per_target.iter().all(|&c| c > 0), "some particle left unassigned");
        assert_eq!(tally.interactions, per_target.iter().sum::<u64>());
    }

    #[test]
    fn overlapped_matches_serial_coverage() {
        for depth in [1, 2, 8] {
            let serial = drain(&PlanConfig::serial(), 700, 9);
            let overlapped = drain(&PlanConfig::overlapped(3, depth), 700, 9);
            assert_eq!(serial.0, overlapped.0, "depth {depth}");
            assert_eq!(serial.1, overlapped.1, "depth {depth}");
        }
    }

    #[test]
    fn stats_tally_matches_traversal_tally() {
        let (pos, mass) = cloud(900, 4);
        let tree = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.8);
        let groups = tr.find_groups(&tree, 48);
        let stats = stream(&tree, &tr, &groups, &PlanConfig::default(), |_| {}).unwrap();
        assert_eq!(stats.tally, tr.modified_tally(&tree, 48));
        assert_eq!(stats.tally.lists, groups.len() as u64);
        assert!(stats.produce_s >= 0.0);
    }

    #[test]
    fn consumer_drop_does_not_hang() {
        // consume only the first item, then let `stream` unwind: the
        // producers must notice the closed channel and stop
        let (pos, mass) = cloud(600, 12);
        let tree = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.7);
        let groups = tr.find_groups(&tree, 16);
        let mut seen = 0usize;
        stream(&tree, &tr, &groups, &PlanConfig::overlapped(2, 1), |_| seen += 1).unwrap();
        assert_eq!(seen, groups.len());
    }

    #[test]
    fn producer_panic_surfaces_as_error() {
        // groups found on a large tree but resolved against a small one:
        // node indices run off the end, which panics inside
        // resolve_group — the stream must return that as a PlanError
        // and shut down without hanging or aborting
        let (pos, mass) = cloud(600, 3);
        let big = Tree::build_with(&pos, &mass, TreeConfig::default());
        let tr = Traversal::new(0.7);
        let groups = tr.find_groups(&big, 8);
        let (pos2, mass2) = cloud(24, 5);
        let small = Tree::build_with(&pos2, &mass2, TreeConfig::default());
        assert!(big.nodes().len() > small.nodes().len());

        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep expected panics quiet
        let serial = stream(&small, &tr, &groups, &PlanConfig::serial(), |_| {});
        let overlapped = stream(&small, &tr, &groups, &PlanConfig::overlapped(2, 2), |_| {});
        std::panic::set_hook(prev_hook);

        let serial = serial.unwrap_err();
        assert!(serial.group.is_some());
        assert!(!serial.message.is_empty());
        assert!(serial.to_string().contains("plan producer failed"));
        overlapped.unwrap_err();
    }
}
