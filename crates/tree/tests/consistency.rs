//! Crate-level consistency tests of the treecode: traversal closure
//! under every MAC variant, analytic-field validation against a uniform
//! sphere, and error-scaling behaviour.

use g5tree::eval::{direct_forces, rms_relative_error, tree_forces_modified, tree_forces_original};
use g5tree::mac::MacKind;
use g5tree::traverse::{list_mass, Traversal};
use g5tree::tree::{Tree, TreeConfig};
use g5util::vec3::Vec3;
use rand::{Rng, SeedableRng};

fn uniform_ball(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut pos = Vec::with_capacity(n);
    while pos.len() < n {
        let p = Vec3::new(
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
        );
        if p.norm2() <= 1.0 {
            pos.push(p);
        }
    }
    let mass = vec![1.0 / n as f64; n];
    (pos, mass)
}

#[test]
fn closure_holds_for_every_mac_kind_and_theta() {
    let (pos, mass) = uniform_ball(600, 1);
    let tree = Tree::build(&pos, &mass);
    let total: f64 = mass.iter().sum();
    for kind in [MacKind::BarnesHut, MacKind::MinDistance] {
        for theta in [0.0, 0.5, 1.0, 2.0] {
            let mut tr = Traversal::new(theta);
            tr.mac.kind = kind;
            let mut list = Vec::new();
            tr.original_list(&tree, pos[17], &mut list);
            assert!((list_mass(&tree, &list) - total).abs() < 1e-9);
            for g in tr.find_groups(&tree, 50) {
                tr.modified_list(&tree, g, &mut list);
                assert!((list_mass(&tree, &list) - total).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn interior_field_of_uniform_sphere_is_linear() {
    // inside a uniform sphere, the *mean* radial field is a(r) = -M r / R^3
    // (Newton's shell theorem). A single sample point carries heavy-tailed
    // nearest-neighbour shot noise, so average the radial component over
    // many directions at each radius.
    let (pos, mass) = uniform_ball(40_000, 2);
    let tree = Tree::build(&pos, &mass);
    let tr = Traversal::new(0.6);
    let mut list = Vec::new();
    let dirs = 48;
    for r in [0.3f64, 0.5, 0.7] {
        let mut mean_radial = 0.0;
        for k in 0..dirs {
            // spiral point set on the sphere of radius r
            let u = -1.0 + 2.0 * (k as f64 + 0.5) / dirs as f64;
            let phi = std::f64::consts::PI * (1.0 + 5.0f64.sqrt()) * k as f64;
            let s = (1.0 - u * u).sqrt();
            let dir = Vec3::new(s * phi.cos(), s * phi.sin(), u);
            let target = dir * r;
            tr.original_list(&tree, target, &mut list);
            let f = g5tree::eval::eval_list(&tree, &list, target, 0.02);
            mean_radial += f.acc.dot(dir);
        }
        mean_radial /= dirs as f64;
        let expect = -r; // M = R = 1, inward
        let rel = (mean_radial - expect).abs() / r;
        assert!(rel < 0.06, "r={r}: mean radial a = {mean_radial} vs {expect} (rel {rel})");
    }
}

#[test]
fn error_scales_roughly_as_theta_squared_for_monopole() {
    // monopole BH error ~ theta^2 (dipole vanishes about the COM);
    // check the error ratio between theta and theta/2 is > 2
    let (pos, mass) = uniform_ball(3000, 3);
    let reference = direct_forces(&pos, &mass, 0.01);
    let tree = Tree::build(&pos, &mass);
    let e1 = rms_relative_error(&tree_forces_original(&tree, 1.0, 0.01), &reference);
    let e2 = rms_relative_error(&tree_forces_original(&tree, 0.5, 0.01), &reference);
    assert!(e1 / e2 > 2.0, "theta halving only cut error by {}", e1 / e2);
}

#[test]
fn modified_algorithm_error_does_not_degrade_with_large_ncrit() {
    // as n_crit grows, more force is computed exactly (direct terms):
    // the error must not grow
    let (pos, mass) = uniform_ball(4000, 4);
    let reference = direct_forces(&pos, &mass, 0.01);
    let tree = Tree::build(&pos, &mass);
    let e_small = rms_relative_error(&tree_forces_modified(&tree, 0.9, 32, 0.01), &reference);
    let e_large = rms_relative_error(&tree_forces_modified(&tree, 0.9, 1024, 0.01), &reference);
    assert!(e_large <= e_small * 1.1, "error grew with n_crit: {e_small} -> {e_large}");
}

#[test]
fn quadrupole_tree_exact_for_theta_zero_too() {
    let (pos, mass) = uniform_ball(400, 5);
    let reference = direct_forces(&pos, &mass, 0.02);
    let tree =
        Tree::build_with(&pos, &mass, TreeConfig { quadrupole: true, ..TreeConfig::default() });
    let f = tree_forces_original(&tree, 0.0, 0.02);
    for (a, b) in f.iter().zip(&reference) {
        assert!((a.acc - b.acc).norm() < 1e-11);
    }
}

#[test]
fn rebuilding_the_same_snapshot_is_deterministic() {
    let (pos, mass) = uniform_ball(1000, 6);
    let t1 = Tree::build(&pos, &mass);
    let t2 = Tree::build(&pos, &mass);
    assert_eq!(t1.nodes().len(), t2.nodes().len());
    assert_eq!(t1.order(), t2.order());
    let tr = Traversal::new(0.75);
    assert_eq!(tr.modified_tally(&t1, 100), tr.modified_tally(&t2, 100));
}
