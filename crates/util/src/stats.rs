//! Small statistics helpers for the accuracy and timing experiments:
//! running summaries (mean / RMS / min / max), percentiles, and
//! fixed-bin histograms for error distributions.

use serde::{Deserialize, Serialize};

/// Incremental summary statistics over a stream of `f64` samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary { n: 0, sum: 0.0, sum_sq: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every sample in a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Build a summary from a slice.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        s.extend(xs);
        s
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, o: &Summary) {
        self.n += o.n;
        self.sum += o.sum;
        self.sum_sq += o.sum_sq;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.sum / self.n as f64
        }
    }

    /// Root mean square (NaN when empty).
    pub fn rms(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            (self.sum_sq / self.n as f64).sqrt()
        }
    }

    /// Population standard deviation (NaN when empty).
    pub fn std_dev(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        let m = self.mean();
        (self.sum_sq / self.n as f64 - m * m).max(0.0).sqrt()
    }

    /// Minimum sample (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample set by linear interpolation
/// on the sorted order statistics. Sorts a copy; fine at analysis scale.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    assert!(!xs.is_empty(), "percentile of empty slice");
    let mut v = xs.to_vec();
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Median — the 50th percentile.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// A fixed-bin histogram over `[lo, hi)`, with under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// `nbins` equal-width bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "degenerate histogram range");
        assert!(nbins > 0, "zero bins");
        Histogram { lo, hi, bins: vec![0; nbins], underflow: 0, overflow: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let i = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[i.min(n - 1)] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count below range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Render a terminal bar chart, one line per bin — used by the
    /// experiment binaries for error distributions.
    pub fn ascii(&self, width: usize) -> String {
        let maxc = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar = "#".repeat((c as usize * width).div_ceil(maxc as usize).min(width));
            out.push_str(&format!("{:>12.4e} | {:<width$} {}\n", self.bin_center(i), bar, c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.rms() - (30.0f64 / 4.0).sqrt()).abs() < 1e-12);
        assert!((s.std_dev() - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_nan() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.rms().is_nan());
        assert!(s.std_dev().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn summary_merge_equals_concat() {
        let mut a = Summary::of(&[1.0, 5.0]);
        let b = Summary::of(&[2.0, 8.0, -1.0]);
        a.merge(&b);
        let c = Summary::of(&[1.0, 5.0, 2.0, 8.0, -1.0]);
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert!((a.rms() - c.rms()).abs() < 1e-12);
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn percentiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 0.25), 2.0);
        // interpolation between order statistics
        let ys = [0.0, 1.0];
        assert_eq!(percentile(&ys, 0.5), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(10.0); // hi edge counts as overflow
        assert_eq!(h.bins(), &[1u64; 10][..]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 12);
        assert_eq!(h.bin_center(0), 0.5);
        let art = h.ascii(20);
        assert_eq!(art.lines().count(), 10);
    }

    #[test]
    fn histogram_lo_edge_inclusive() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(0.0);
        assert_eq!(h.bins()[0], 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn rms_at_least_abs_mean(xs in proptest::collection::vec(-100.0f64..100.0, 1..200)) {
            let s = Summary::of(&xs);
            prop_assert!(s.rms() + 1e-9 >= s.mean().abs());
        }

        #[test]
        fn percentile_is_monotone(xs in proptest::collection::vec(-100.0f64..100.0, 2..100),
                                  a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-12);
        }

        #[test]
        fn histogram_conserves_count(xs in proptest::collection::vec(-10.0f64..10.0, 0..300)) {
            let mut h = Histogram::new(-5.0, 5.0, 7);
            for &x in &xs { h.push(x); }
            prop_assert_eq!(h.total() as usize, xs.len());
        }
    }
}
