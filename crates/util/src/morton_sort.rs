//! Shared Morton quantization + radix sort for the host tree pipeline.
//!
//! Both host-side consumers of Morton codes — the octree build and the
//! cluster domain decomposition — quantize a point set onto the same
//! padded bounding cube and sort particle indices by `(code, index)`.
//! This module is the single implementation of that step:
//!
//! * [`MortonFrame`] — the padded bounding cube, identical to what the
//!   octree build derives (so a domain boundary is always a Morton-cell
//!   boundary of the tree grid).
//! * [`sort_indices`] — a radix sort over the 63-bit codes. The serial
//!   path is an MSD hybrid: one streaming scatter on the top 11
//!   *varying* key bits fans the `(code, index)` tuples into 2048
//!   buckets, oversized buckets (central concentration makes the top
//!   Morton digits heavily skewed) get one more 11-bit scatter, and
//!   each small bucket is finished with a comparison sort whose working
//!   set is cache-hot and whose `log₂` is that of the bucket, not of
//!   `n`. The multi-thread path is a classic LSD pipeline: 11-bit
//!   digits least-significant first, per-chunk histograms merged by a
//!   (digit-major, chunk-minor) prefix sum into disjoint scatter
//!   ranges, ping-pong buffers, constant digits skipped outright.
//! * [`sort_indices_comparison`] — the comparison-sort reference the
//!   radix path is verified against (and A/B-benched against in
//!   `exp_host`).
//!
//! A flat comparison sort pays `O(n log n)` key loads through an
//! unpredictable-branch partitioner. The MSD hybrid replaces the first
//! `~22` resolved key bits with two branch-free streaming scatters and
//! leaves the partitioner only `log₂(bucket)` levels over L1-resident
//! slices — measured ≈ 1.5× over `sort_unstable` at the headline
//! N = 262,144 on Plummer-clustered codes. Leading bits every code
//! agrees on are normalized away first (the digits are taken from
//! `code << lead`), so a cold start with few occupied octants still
//! fans out over the full radix.

use crate::morton;
use crate::vec3::Vec3;

/// The padded bounding cube a point set is quantized onto.
///
/// Padding the half-side by one part in 10¹² keeps the maximum corner
/// strictly inside the `2²¹`-cell grid so it cannot quantize onto a
/// phantom 22nd cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MortonFrame {
    /// Cube center.
    pub center: Vec3,
    /// Cube half-side (padded).
    pub half: f64,
}

impl MortonFrame {
    /// Frame for a point set (empty input yields a degenerate frame
    /// that no point will ever be encoded on).
    pub fn for_points(pos: &[Vec3]) -> MortonFrame {
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for p in pos {
            lo = lo.min(*p);
            hi = hi.max(*p);
        }
        let center = (lo + hi) * 0.5;
        let half = ((hi - lo).max_component() * 0.5).max(f64::MIN_POSITIVE) * (1.0 + 1e-12);
        MortonFrame { center, half }
    }

    /// Morton code per position on this frame's grid, in input order.
    ///
    /// # Panics
    /// On non-finite positions.
    pub fn codes(&self, pos: &[Vec3]) -> Vec<u64> {
        let inv_side = 1.0 / (2.0 * self.half);
        let min = Vec3::new(
            self.center.x - self.half,
            self.center.y - self.half,
            self.center.z - self.half,
        );
        let encode = move |p: &Vec3| {
            let u = (p.x - min.x) * inv_side;
            let v = (p.y - min.y) * inv_side;
            let w = (p.z - min.z) * inv_side;
            assert!(u.is_finite() && v.is_finite() && w.is_finite(), "non-finite position");
            morton::encode_unit(u, v, w)
        };
        let mut out = vec![0u64; pos.len()];
        let threads = worker_count(pos.len());
        if threads <= 1 {
            for (o, p) in out.iter_mut().zip(pos) {
                *o = encode(p);
            }
        } else {
            let chunk = pos.len().div_ceil(threads);
            std::thread::scope(|s| {
                for (oc, pc) in out.chunks_mut(chunk).zip(pos.chunks(chunk)) {
                    s.spawn(move || {
                        for (o, p) in oc.iter_mut().zip(pc) {
                            *o = encode(p);
                        }
                    });
                }
            });
        }
        out
    }
}

/// A Morton-quantized point set with its sorted order.
#[derive(Debug, Clone)]
pub struct MortonOrdered {
    /// The frame the codes were quantized on.
    pub frame: MortonFrame,
    /// Morton code per input particle (input order).
    pub codes: Vec<u64>,
    /// Particle indices sorted ascending by `(code, index)`.
    pub order: Vec<u32>,
}

/// Quantize and sort a point set in one call — the step both the octree
/// build and the domain decomposition start from.
///
/// # Panics
/// On non-finite positions.
pub fn morton_order(pos: &[Vec3]) -> MortonOrdered {
    let frame = MortonFrame::for_points(pos);
    let codes = frame.codes(pos);
    let order = sort_indices(&codes);
    MortonOrdered { frame, codes, order }
}

/// Quantize and sort a point set, seeding the sort with the order from
/// a previous step of the same particles ([`sort_indices_incremental`]).
/// Falls back to a from-scratch sort when the hint does not match the
/// point count; the result is always identical to [`morton_order`].
///
/// # Panics
/// On non-finite positions.
pub fn morton_order_incremental(pos: &[Vec3], prev_order: &[u32]) -> MortonOrdered {
    let frame = MortonFrame::for_points(pos);
    let codes = frame.codes(pos);
    let order = sort_indices_incremental(&codes, prev_order);
    MortonOrdered { frame, codes, order }
}

/// Fraction of displaced elements above which the incremental merge
/// abandons the hint and re-sorts from scratch: past ~25% displaced the
/// spill sort plus full merge costs more than one radix pass.
const INCREMENTAL_MAX_SPILL_NUM: usize = 1;
const INCREMENTAL_MAX_SPILL_DEN: usize = 4;

/// Indices `0..codes.len()` sorted ascending by `(code, index)`,
/// reusing a previous sorted order of the *same index set* as a hint.
///
/// Between tree rebuilds only a small fraction of particles drift
/// across a Morton-cell boundary, so the previous order is almost
/// sorted under the new codes. One scan peels it into a non-decreasing
/// backbone (kept in place) and a spill of displaced indices; the spill
/// is sorted on its own and linearly merged back. Because `(code,
/// index)` keys are unique, the sorted total order is unique — any
/// correct merge is bitwise identical to a from-scratch
/// [`sort_indices`], which is what the referee proptests pin.
///
/// A hint whose length does not match, or a spill larger than ~n/4
/// (heavy drift), falls back to the full radix sort. The hint must be a
/// permutation of `0..codes.len()` (any previous sort of the same
/// particle set is); a malformed hint is rejected by length where
/// cheap, and debug-asserted otherwise.
pub fn sort_indices_incremental(codes: &[u64], prev_order: &[u32]) -> Vec<u32> {
    let n = codes.len();
    if prev_order.len() != n || n <= 1 {
        return sort_indices(codes);
    }
    debug_assert!(
        {
            let mut seen = vec![false; n];
            prev_order
                .iter()
                .all(|&i| (i as usize) < n && !std::mem::replace(&mut seen[i as usize], true))
        },
        "incremental sort hint is not a permutation"
    );
    let mut backbone: Vec<u32> = Vec::with_capacity(n);
    let mut spill: Vec<u32> = Vec::new();
    let mut last: (u64, u32) = (0, 0);
    let mut have_last = false;
    for &i in prev_order {
        let key = (codes[i as usize], i);
        if !have_last || last <= key {
            backbone.push(i);
            last = key;
            have_last = true;
        } else {
            spill.push(i);
        }
    }
    if spill.is_empty() {
        return backbone;
    }
    if spill.len() * INCREMENTAL_MAX_SPILL_DEN > n * INCREMENTAL_MAX_SPILL_NUM {
        return sort_indices(codes);
    }
    spill.sort_unstable_by_key(|&i| (codes[i as usize], i));
    // Linear merge of two sorted runs over disjoint unique keys.
    let mut out: Vec<u32> = Vec::with_capacity(n);
    let (mut a, mut b) = (0usize, 0usize);
    while a < backbone.len() && b < spill.len() {
        let ka = (codes[backbone[a] as usize], backbone[a]);
        let kb = (codes[spill[b] as usize], spill[b]);
        if ka <= kb {
            out.push(backbone[a]);
            a += 1;
        } else {
            out.push(spill[b]);
            b += 1;
        }
    }
    out.extend_from_slice(&backbone[a..]);
    out.extend_from_slice(&spill[b..]);
    out
}

/// Indices `0..codes.len()` sorted ascending by `(code, index)` via the
/// radix pipeline (serial MSD hybrid or threaded LSD).
pub fn sort_indices(codes: &[u64]) -> Vec<u32> {
    sort_indices_with_threads(codes, worker_count(codes.len()))
}

/// Comparison-sort reference for [`sort_indices`]: same `(code, index)`
/// total order through `sort_unstable_by_key`. Kept callable so the
/// radix referees and the `exp_host` A/B column can measure against it
/// in the same build.
pub fn sort_indices_comparison(codes: &[u64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..codes.len() as u32).collect();
    order.sort_unstable_by_key(|&i| (codes[i as usize], i));
    order
}

/// How many worker threads an `n`-element pass is worth.
fn worker_count(n: usize) -> usize {
    const MIN_PER_THREAD: usize = 1 << 14;
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    hw.min(n.div_ceil(MIN_PER_THREAD)).max(1)
}

/// A raw pointer the scatter phase may send across scoped threads.
/// Safety argument at the single use site.
#[derive(Clone, Copy)]
struct SendPtr(*mut (u64, u32));
unsafe impl Send for SendPtr {}

/// Digit width. 11 bits is the measured sweet spot at the headline
/// N = 262144: the 2048 scatter destinations keep only 128 KiB of
/// output lines hot (L2-resident), the LSD path covers all 64 key bits
/// in 6 passes, and the MSD path's buckets average `n / 2048` elements
/// — small enough that the finishing comparison sorts run in L1.
const DIGIT_BITS: u32 = 11;
const RADIX: usize = 1 << DIGIT_BITS;
const DIGIT_MASK: u64 = RADIX as u64 - 1;
const PASSES: u32 = u64::BITS.div_ceil(DIGIT_BITS);

fn digit_histogram(part: &[(u64, u32)], shift: u32) -> Box<[u32; RADIX]> {
    let mut h = vec![0u32; RADIX].into_boxed_slice();
    for &(c, _) in part {
        h[((c >> shift) & DIGIT_MASK) as usize] += 1;
    }
    h.try_into().expect("histogram length is RADIX")
}

/// Below this the MSD bucket machinery (two 8 KiB histograms to zero,
/// a 2048-way fan-out over a handful of elements) costs more than it
/// saves; `sort_unstable` on the whole input is already cache-resident.
const MSD_MIN_N: usize = 512;

/// Buckets larger than this get a second 11-bit scatter before the
/// comparison finish. Plummer-clustered codes concentrate ~12% of the
/// particles in one top-digit cell; one extra level caps the
/// partitioner depth at `log₂(BIG)` instead of `log₂(n)`.
const MSD_BIG_BUCKET: usize = 8192;

/// A grow-only tuple buffer on its own 2 MiB-aligned allocation.
///
/// The scatter writes this buffer through 2048 bucket cursors at once,
/// and that access pattern turned out to be acutely sensitive to where
/// the block lands: the same sort measured ~65% slower when the
/// scratch was first allocated late in a long-running harness (malloc
/// arena placement) than when it came from a fresh heap (dedicated
/// mapping). Requesting 2 MiB alignment forces the allocator to carve
/// a dedicated mapping regardless of the arena's history, which makes
/// the sort's speed independent of what the surrounding process did
/// first. Freshly grown memory is zeroed once so the handed-out slice
/// is always initialized; every sort overwrites it anyway (the scatter
/// ranges tile `[0, n)`).
struct TupleBuf {
    ptr: std::ptr::NonNull<(u64, u32)>,
    cap: usize,
}

impl TupleBuf {
    const ALIGN: usize = 2 << 20;

    const fn new() -> TupleBuf {
        TupleBuf { ptr: std::ptr::NonNull::dangling(), cap: 0 }
    }

    fn layout(cap: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(cap * size_of::<(u64, u32)>(), TupleBuf::ALIGN)
            .expect("tuple buffer layout")
    }

    /// A `&mut [(u64, u32)]` of length `n`, reusing the allocation when
    /// it is already big enough.
    fn ensure(&mut self, n: usize) -> &mut [(u64, u32)] {
        if n > self.cap {
            if self.cap > 0 {
                // SAFETY: allocated below with the same layout recipe.
                unsafe { std::alloc::dealloc(self.ptr.as_ptr().cast(), TupleBuf::layout(self.cap)) }
            }
            let cap = n.next_power_of_two();
            // SAFETY: layout has non-zero size (n > cap >= 0 here).
            let raw = unsafe { std::alloc::alloc_zeroed(TupleBuf::layout(cap)) };
            self.ptr = std::ptr::NonNull::new(raw.cast())
                .unwrap_or_else(|| std::alloc::handle_alloc_error(TupleBuf::layout(cap)));
            self.cap = cap;
        }
        // SAFETY: ptr covers cap >= n zero-initialized tuples, and the
        // borrow of self guards aliasing.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), n) }
    }
}

impl Drop for TupleBuf {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: allocated in ensure() with the same layout.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr().cast(), TupleBuf::layout(self.cap)) }
        }
    }
}

/// Reusable tuple buffers for the serial MSD path.
///
/// A sort at the headline N touches ~4 MB of scratch; allocating it
/// fresh every call means a page-fault storm whenever the surrounding
/// process has fragmented the heap (measured: +40% sort time inside
/// the host harness vs a standalone probe). The tree build runs this
/// sort every step, so the scratch is kept thread-local and reused —
/// same recycling discipline as the traversal plan buffers.
struct SerialScratch {
    /// The bucketed `(code, index)` tuples.
    buf: TupleBuf,
    /// Staging copy for second-level scatters of oversized buckets.
    sub: TupleBuf,
}

thread_local! {
    static SERIAL_SCRATCH: std::cell::RefCell<SerialScratch> =
        const { std::cell::RefCell::new(SerialScratch { buf: TupleBuf::new(), sub: TupleBuf::new() }) };
}

/// Serial MSD hybrid: scatter on the top 11 varying key bits, re-split
/// oversized buckets once, comparison-sort the rest.
///
/// Digits are taken from `code << lead` (the leading bits every code
/// agrees on are shifted away), so the top digit always spans actually
/// varying bits. Bucket membership is monotone in the code, each bucket
/// is a contiguous range of the final order, and within a bucket the
/// `(code, index)` tuples are unique — `sort_unstable` on them yields
/// exactly the stable `(code, index)` total order the LSD path and the
/// comparison referee produce. A bucket that still exceeds
/// [`MSD_BIG_BUCKET`] after the second scatter just falls back to the
/// `O(len log len)` finish — correct, merely slower, and unreachable
/// from 63-bit Morton codes at the problem sizes the tree feeds.
fn sort_serial_msd(codes: &[u64], diff: u64) -> Vec<u32> {
    SERIAL_SCRATCH.with(|cell| sort_serial_msd_with(codes, diff, &mut cell.borrow_mut()))
}

fn sort_serial_msd_with(codes: &[u64], diff: u64, scratch: &mut SerialScratch) -> Vec<u32> {
    let n = codes.len();
    if diff == 0 {
        // Every code equal: the (code, index) order is the identity.
        return (0..n as u32).collect();
    }
    if n < MSD_MIN_N {
        return sort_indices_comparison(codes);
    }
    let lead = diff.leading_zeros();
    let top = u64::BITS - DIGIT_BITS; // digit 0: bits 53..64 of code << lead
    let sub_shift = u64::BITS - 2 * DIGIT_BITS; // digit 1: bits 42..53
    let mut hist = [0u32; RADIX];
    for &c in codes {
        hist[((c << lead) >> top) as usize] += 1;
    }
    // Exclusive prefix: offs[d]..offs[d + 1] is bucket d's slot range.
    let mut offs = [0u32; RADIX + 1];
    let mut sum = 0u32;
    for (o, &h) in offs.iter_mut().zip(hist.iter()) {
        *o = sum;
        sum += h;
    }
    offs[RADIX] = sum;
    let SerialScratch { buf, sub } = scratch;
    let buf = buf.ensure(n);
    {
        let mut cur = offs;
        let bufp = buf.as_mut_ptr();
        for (i, &c) in codes.iter().enumerate() {
            let d = ((c << lead) >> top) as usize;
            // SAFETY: cur[d] walks the half-open slot range the prefix
            // sum assigned to digit d; the ranges tile exactly [0, n),
            // so every write is in bounds.
            unsafe { bufp.add(cur[d] as usize).write((c, i as u32)) };
            cur[d] += 1;
        }
    }
    for d in 0..RADIX {
        let bucket = &mut buf[offs[d] as usize..offs[d + 1] as usize];
        if bucket.len() <= 1 {
            continue;
        }
        if bucket.len() <= MSD_BIG_BUCKET {
            bucket.sort_unstable();
            continue;
        }
        // Second level: stable 11-bit scatter within the bucket (the
        // staging copy preserves input order), then finish each
        // sub-bucket.
        let mut h2 = [0u32; RADIX];
        for &(c, _) in bucket.iter() {
            h2[(((c << lead) >> sub_shift) & DIGIT_MASK) as usize] += 1;
        }
        let mut o2 = [0u32; RADIX];
        let mut s2 = 0u32;
        for (o, &h) in o2.iter_mut().zip(h2.iter()) {
            *o = s2;
            s2 += h;
        }
        let sub = sub.ensure(bucket.len());
        sub.copy_from_slice(bucket);
        for &(c, i) in sub.iter() {
            let d2 = (((c << lead) >> sub_shift) & DIGIT_MASK) as usize;
            bucket[o2[d2] as usize] = (c, i);
            o2[d2] += 1;
        }
        let mut start = 0usize;
        for &len2 in h2.iter() {
            let len2 = len2 as usize;
            if len2 > 1 {
                bucket[start..start + len2].sort_unstable();
            }
            start += len2;
        }
    }
    buf.iter().map(|&(_, i)| i).collect()
}

/// Exclusive prefix sum in (digit-major, chunk-minor) order:
/// `hists[t][d]` becomes the first output slot for chunk t's digit-d
/// elements, which makes the scatter stable.
fn prefix_sum(hists: &mut [Box<[u32; RADIX]>]) {
    let mut sum = 0u32;
    for d in 0..RADIX {
        for h in hists.iter_mut() {
            let c = h[d];
            h[d] = sum;
            sum += c;
        }
    }
}

pub(crate) fn sort_indices_with_threads(codes: &[u64], threads: usize) -> Vec<u32> {
    let n = codes.len();
    assert!(n <= u32::MAX as usize, "point count exceeds u32 index space");
    if n <= 1 {
        return (0..n as u32).collect();
    }
    // Digits where every code agrees would be stable identity passes —
    // find them once and skip them.
    let first = codes[0];
    let mut diff = 0u64;
    for &c in codes {
        diff |= c ^ first;
    }
    let threads = threads.clamp(1, 64).min(n);
    if threads == 1 {
        return sort_serial_msd(codes, diff);
    }
    let chunk = n.div_ceil(threads);
    let mut src: Vec<(u64, u32)> = codes.iter().enumerate().map(|(i, &c)| (c, i as u32)).collect();
    let mut dst: Vec<(u64, u32)> = vec![(0, 0); n];
    for pass in 0..PASSES {
        let shift = pass * DIGIT_BITS;
        if (diff >> shift) & DIGIT_MASK == 0 {
            continue;
        }
        // Phase 1: one histogram per thread chunk (chunk contents
        // change every pass, so these cannot be hoisted like the
        // serial path's).
        let mut hists: Vec<Box<[u32; RADIX]>> = std::thread::scope(|s| {
            let handles: Vec<_> =
                src.chunks(chunk).map(|ch| s.spawn(move || digit_histogram(ch, shift))).collect();
            handles.into_iter().map(|h| h.join().expect("histogram worker panicked")).collect()
        });
        prefix_sum(&mut hists);
        // Phase 2: scatter. Each (chunk, digit) pair owns the disjoint
        // slot range [offset, offset + count), so concurrent writes
        // never alias.
        let dstp = SendPtr(dst.as_mut_ptr());
        std::thread::scope(|s| {
            for (ch, offs) in src.chunks(chunk).zip(hists) {
                let mut offs = offs;
                s.spawn(move || {
                    let dstp = dstp;
                    for &(c, i) in ch {
                        let d = ((c >> shift) & DIGIT_MASK) as usize;
                        // SAFETY: slot ranges are disjoint across
                        // (chunk, digit) pairs by the prefix-sum
                        // construction above, and `dst` outlives
                        // the scope.
                        unsafe { *dstp.0.add(offs[d] as usize) = (c, i) };
                        offs[d] += 1;
                    }
                });
            }
        });
        std::mem::swap(&mut src, &mut dst);
    }
    src.iter().map(|&(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn check(codes: &[u64]) {
        let want = sort_indices_comparison(codes);
        assert_eq!(sort_indices(codes), want, "radix != comparison on n={}", codes.len());
        for t in 1..=4 {
            assert_eq!(sort_indices_with_threads(codes, t), want, "threads={t}");
        }
    }

    #[test]
    fn radix_matches_comparison_on_edge_sizes() {
        for n in [0usize, 1, 2, 3, 255, 256, 257, 1000] {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(n as u64);
            let codes: Vec<u64> = (0..n).map(|_| rng.random::<u64>() >> 1).collect();
            check(&codes);
        }
    }

    #[test]
    fn radix_matches_comparison_on_degenerate_keys() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        // heavy duplicates: 4 distinct codes over 10k elements
        let dup: Vec<u64> = (0..10_000).map(|_| rng.random_range(0u64..4) << 40).collect();
        check(&dup);
        // all equal → every pass skipped, order must be identity
        let same = vec![0xABCDu64; 513];
        assert_eq!(sort_indices(&same), (0..513u32).collect::<Vec<_>>());
        // pre-sorted and reverse-sorted
        let sorted: Vec<u64> = (0..2000u64).collect();
        check(&sorted);
        let rev: Vec<u64> = (0..2000u64).rev().collect();
        check(&rev);
        // only high bytes vary (low passes all skipped)
        let high: Vec<u64> =
            (0..3000).map(|_| (rng.random::<u64>() >> 1) & !0xFFFF_FFFFu64).collect();
        check(&high);
    }

    #[test]
    fn stability_breaks_ties_by_index() {
        let codes = [5u64, 1, 5, 1, 5, 1];
        assert_eq!(sort_indices(&codes), vec![1, 3, 5, 0, 2, 4]);
    }

    #[test]
    fn frame_codes_round_trip_through_order() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let pos: Vec<Vec3> = (0..4096)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-3.0..3.0),
                    rng.random_range(-3.0..3.0),
                    rng.random_range(-3.0..3.0),
                )
            })
            .collect();
        let m = morton_order(&pos);
        assert_eq!(m.codes.len(), pos.len());
        assert_eq!(m.order.len(), pos.len());
        // order is a permutation sorted by (code, index)
        let mut seen = vec![false; pos.len()];
        for w in m.order.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (ca, cb) = (m.codes[a as usize], m.codes[b as usize]);
            assert!(ca < cb || (ca == cb && a < b));
        }
        for &i in &m.order {
            assert!(!std::mem::replace(&mut seen[i as usize], true));
        }
    }

    /// Quick A/B probe at the headline size (the real gate lives in
    /// `exp_host`): `cargo test -p g5util --release -- --ignored
    /// radix_probe --nocapture`.
    #[test]
    #[ignore = "perf probe, run manually in release"]
    fn radix_probe_beats_comparison_at_headline_n() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(262_144);
        let codes: Vec<u64> = (0..262_144).map(|_| rng.random::<u64>() >> 1).collect();
        let time = |f: &dyn Fn() -> Vec<u32>| {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t0 = std::time::Instant::now();
                let got = f();
                best = best.min(t0.elapsed().as_secs_f64());
                assert_eq!(got.len(), codes.len());
            }
            best
        };
        let radix = time(&|| sort_indices(&codes));
        let comparison = time(&|| sort_indices_comparison(&codes));
        println!(
            "radix {:.2} ms vs comparison {:.2} ms ({:.2}x)",
            radix * 1e3,
            comparison * 1e3,
            comparison / radix
        );
        assert_eq!(sort_indices(&codes), sort_indices_comparison(&codes));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_positions_are_rejected() {
        let pos = vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(f64::NAN, 0.0, 0.0)];
        let frame = MortonFrame::for_points(&[Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0)]);
        let _ = frame.codes(&pos);
    }

    #[test]
    fn incremental_identity_when_nothing_drifts() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let codes: Vec<u64> = (0..5000).map(|_| rng.random::<u64>() >> 1).collect();
        let prev = sort_indices(&codes);
        // unchanged codes: the backbone is the whole hint, no merge
        assert_eq!(sort_indices_incremental(&codes, &prev), prev);
    }

    #[test]
    fn incremental_matches_scratch_under_light_drift() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let mut codes: Vec<u64> = (0..20_000).map(|_| rng.random::<u64>() >> 1).collect();
        let prev = sort_indices(&codes);
        // drift 2% of the particles to arbitrary new cells
        for _ in 0..400 {
            let k = rng.random_range(0..codes.len());
            codes[k] = rng.random::<u64>() >> 1;
        }
        assert_eq!(sort_indices_incremental(&codes, &prev), sort_indices_comparison(&codes));
    }

    #[test]
    fn incremental_falls_back_on_heavy_drift_and_bad_hints() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let codes: Vec<u64> = (0..4000).map(|_| rng.random::<u64>() >> 1).collect();
        let want = sort_indices_comparison(&codes);
        // reversed hint: nearly everything spills → from-scratch fallback
        let mut rev = sort_indices(&codes);
        rev.reverse();
        assert_eq!(sort_indices_incremental(&codes, &rev), want);
        // length-mismatched hint is rejected up front
        assert_eq!(sort_indices_incremental(&codes, &[0, 1, 2]), want);
        assert_eq!(sort_indices_incremental(&codes, &[]), want);
    }

    #[test]
    fn incremental_handles_radix_bucket_boundaries() {
        // codes sitting exactly on top-digit bucket edges (d << 53 and
        // its predecessor) for every 11-bit digit, shuffled, with a hint
        // from a drifted predecessor — exercises bucket 0, bucket 2047,
        // and every boundary in between through both code paths.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(14);
        let mut codes: Vec<u64> = Vec::new();
        for d in 0..RADIX as u64 {
            let edge = d << (u64::BITS - DIGIT_BITS);
            codes.push(edge);
            codes.push(edge.saturating_sub(1));
            codes.push(edge | rng.random_range(0..1u64 << 40));
        }
        let prev = sort_indices(&codes);
        for _ in 0..100 {
            let k = rng.random_range(0..codes.len());
            codes[k] = rng.random::<u64>() >> 1;
        }
        assert_eq!(sort_indices_incremental(&codes, &prev), sort_indices_comparison(&codes));
    }

    #[test]
    fn incremental_through_oversized_bucket_second_level() {
        // all codes share the top digit, so the serial MSD path (used
        // both for the hintless reference and the heavy-drift fallback)
        // funnels > MSD_BIG_BUCKET elements into one bucket and takes
        // the second-level scatter.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(15);
        let top = 7u64 << (u64::BITS - DIGIT_BITS - 3);
        let mut codes: Vec<u64> =
            (0..MSD_BIG_BUCKET + 4096).map(|_| top | rng.random_range(0..1u64 << 42)).collect();
        let prev = sort_indices(&codes);
        assert_eq!(prev, sort_indices_comparison(&codes), "oversized-bucket scratch sort");
        for _ in 0..256 {
            let k = rng.random_range(0..codes.len());
            codes[k] = top | rng.random_range(0..1u64 << 42);
        }
        assert_eq!(sort_indices_incremental(&codes, &prev), sort_indices_comparison(&codes));
    }

    #[test]
    fn morton_order_incremental_matches_from_scratch() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(16);
        let mut pos: Vec<Vec3> = (0..3000)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-2.0..2.0),
                    rng.random_range(-2.0..2.0),
                    rng.random_range(-2.0..2.0),
                )
            })
            .collect();
        let prev = morton_order(&pos);
        for p in &mut pos {
            *p += Vec3::new(
                rng.random_range(-0.01..0.01),
                rng.random_range(-0.01..0.01),
                rng.random_range(-0.01..0.01),
            );
        }
        let inc = morton_order_incremental(&pos, &prev.order);
        let scratch = morton_order(&pos);
        assert_eq!(inc.order, scratch.order);
        assert_eq!(inc.codes, scratch.codes);
        assert_eq!(inc.frame, scratch.frame);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn radix_is_comparison_sort(codes in proptest::collection::vec(any::<u64>(), 0..2000)) {
            prop_assert_eq!(sort_indices(&codes), sort_indices_comparison(&codes));
        }

        #[test]
        fn forced_thread_counts_agree(codes in proptest::collection::vec(any::<u64>(), 0..800), t in 1usize..6) {
            prop_assert_eq!(sort_indices_with_threads(&codes, t), sort_indices_comparison(&codes));
        }

        /// Partially-drifted inputs: mutate a random subset of the codes
        /// after taking the hint. Whatever the drift pattern (including
        /// none, and including enough to trip the fallback), the
        /// incremental order must equal the from-scratch stable
        /// (code, index) order.
        #[test]
        fn incremental_is_from_scratch_sort(
            codes in proptest::collection::vec(any::<u64>(), 1..1500),
            drifts in proptest::collection::vec((any::<usize>(), any::<u64>()), 0..400),
        ) {
            let prev = sort_indices(&codes);
            let mut drifted = codes;
            for (at, val) in drifts {
                let k = at % drifted.len();
                drifted[k] = val;
            }
            prop_assert_eq!(
                sort_indices_incremental(&drifted, &prev),
                sort_indices_comparison(&drifted)
            );
        }

        /// Drift restricted to top-digit bucket edges, so displaced
        /// elements land exactly on 2048-bucket boundaries of the MSD
        /// path and merge adjacent to backbone runs.
        #[test]
        fn incremental_on_bucket_boundary_drift(
            codes in proptest::collection::vec(any::<u64>(), 2..1000),
            drifts in proptest::collection::vec(
                (any::<usize>(), 0u64..(RADIX as u64), any::<bool>()),
                1..120,
            ),
        ) {
            let prev = sort_indices(&codes);
            let mut drifted = codes;
            for (at, digit, minus_one) in drifts {
                let k = at % drifted.len();
                let edge = digit << (u64::BITS - DIGIT_BITS);
                drifted[k] = if minus_one { edge.saturating_sub(1) } else { edge };
            }
            prop_assert_eq!(
                sort_indices_incremental(&drifted, &prev),
                sort_indices_comparison(&drifted)
            );
        }
    }
}
