//! Two's-complement fixed-point formats.
//!
//! GRAPE-5 stores particle **positions** as fixed-point words scaled
//! over a host-declared coordinate window (the real library's
//! `g5_set_range`), and **accumulates forces** in wide (64-bit)
//! fixed-point registers so that summing tens of thousands of
//! interaction-list terms loses no precision relative to the ≈0.3 %
//! pipeline terms. This module provides both pieces:
//!
//! * [`FixedFormat`] / [`Fixed`] — a value with an explicit number of
//!   total and fractional bits, saturating arithmetic.
//! * [`RangeScaler`] — the `set_range` window: maps a real-valued
//!   coordinate interval onto the full signed range of an *n*-bit word.

use serde::{Deserialize, Serialize};

/// Description of a two's-complement fixed-point format.
///
/// A value with `frac_bits = f` represents `raw * 2^-f`. `bits` is the
/// total word width (including sign); representable raw values are
/// `[-2^(bits-1), 2^(bits-1) - 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedFormat {
    /// Total word width in bits (2..=64).
    pub bits: u32,
    /// Number of fractional bits; may be negative (coarse quanta) or
    /// exceed `bits` (sub-unity range).
    pub frac_bits: i32,
}

impl FixedFormat {
    /// Create a format, panicking on an unusable word width.
    pub fn new(bits: u32, frac_bits: i32) -> Self {
        assert!((2..=64).contains(&bits), "fixed-point width {bits} out of range 2..=64");
        FixedFormat { bits, frac_bits }
    }

    /// The smallest representable increment (one unit in the last place).
    #[inline]
    pub fn quantum(self) -> f64 {
        (-self.frac_bits as f64).exp2()
    }

    /// Largest representable raw value.
    #[inline]
    pub fn raw_max(self) -> i64 {
        if self.bits == 64 {
            i64::MAX
        } else {
            (1i64 << (self.bits - 1)) - 1
        }
    }

    /// Smallest (most negative) representable raw value.
    #[inline]
    pub fn raw_min(self) -> i64 {
        if self.bits == 64 {
            i64::MIN
        } else {
            -(1i64 << (self.bits - 1))
        }
    }

    /// Largest representable real value.
    #[inline]
    pub fn max_value(self) -> f64 {
        self.raw_max() as f64 * self.quantum()
    }

    /// Smallest representable real value.
    #[inline]
    pub fn min_value(self) -> f64 {
        self.raw_min() as f64 * self.quantum()
    }

    /// The multiplier `encode` applies before rounding (`2^frac_bits`).
    ///
    /// Batch kernels hoist this out of their pair loops and feed it to
    /// [`encode_with_scale`](Self::encode_with_scale); `exp2` is
    /// deterministic, so the hoisted value is the same one `encode`
    /// would recompute per call.
    #[inline]
    pub fn encode_scale(self) -> f64 {
        (self.frac_bits as f64).exp2()
    }

    /// Encode a real value: round to nearest representable, saturate at
    /// the ends of the range. NaN encodes to zero.
    #[inline]
    pub fn encode(self, x: f64) -> Fixed {
        self.encode_with_scale(self.encode_scale(), x)
    }

    /// [`encode`](Self::encode) with the `2^frac_bits` multiplier
    /// hoisted by the caller. Bit-identical to `encode` whenever
    /// `scale == self.encode_scale()`.
    #[inline]
    pub fn encode_with_scale(self, scale: f64, x: f64) -> Fixed {
        let scaled = x * scale;
        let raw = if scaled.is_nan() {
            0
        } else if scaled >= self.raw_max() as f64 {
            self.raw_max()
        } else if scaled <= self.raw_min() as f64 {
            self.raw_min()
        } else {
            // round half away from zero, like the hardware's rounder
            scaled.round() as i64
        };
        Fixed { raw, fmt: self }
    }

    /// Decode a raw word in this format.
    #[inline]
    pub fn decode_raw(self, raw: i64) -> f64 {
        raw as f64 * self.quantum()
    }
}

/// A fixed-point value: raw integer plus its format.
///
/// Arithmetic saturates rather than wraps — the hardware's accumulators
/// clamp on overflow, and saturation keeps errors bounded and visible
/// instead of catastrophic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fixed {
    /// Raw two's-complement word.
    pub raw: i64,
    /// The format the word is interpreted in.
    pub fmt: FixedFormat,
}

impl Fixed {
    /// The zero value in the given format.
    #[inline]
    pub fn zero(fmt: FixedFormat) -> Self {
        Fixed { raw: 0, fmt }
    }

    /// Decode back to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.fmt.decode_raw(self.raw)
    }

    /// Saturating addition; both operands must share a format.
    #[inline]
    pub fn sat_add(self, o: Fixed) -> Fixed {
        debug_assert_eq!(self.fmt, o.fmt, "fixed-point format mismatch");
        let raw = self.raw.saturating_add(o.raw).clamp(self.fmt.raw_min(), self.fmt.raw_max());
        Fixed { raw, fmt: self.fmt }
    }

    /// Saturating subtraction; both operands must share a format.
    #[inline]
    pub fn sat_sub(self, o: Fixed) -> Fixed {
        debug_assert_eq!(self.fmt, o.fmt, "fixed-point format mismatch");
        let raw = self.raw.saturating_sub(o.raw).clamp(self.fmt.raw_min(), self.fmt.raw_max());
        Fixed { raw, fmt: self.fmt }
    }

    /// Negation (saturating at the asymmetric minimum).
    #[inline]
    pub fn sat_neg(self) -> Fixed {
        let raw = self
            .raw
            .checked_neg()
            .unwrap_or(i64::MAX)
            .clamp(self.fmt.raw_min(), self.fmt.raw_max());
        Fixed { raw, fmt: self.fmt }
    }

    /// Accumulate a real-valued term into this accumulator: encode, add.
    ///
    /// This is how the force accumulator ingests per-interaction terms
    /// coming out of the LNS pipeline.
    #[inline]
    pub fn accumulate(self, term: f64) -> Fixed {
        self.sat_add(self.fmt.encode(term))
    }

    /// [`accumulate`](Self::accumulate) with the encode multiplier
    /// hoisted by the caller (see [`FixedFormat::encode_scale`]).
    #[inline]
    pub fn accumulate_with_scale(self, scale: f64, term: f64) -> Fixed {
        self.sat_add(self.fmt.encode_with_scale(scale, term))
    }
}

/// The `g5_set_range` coordinate window: maps the real interval
/// `[center - half, center + half)` onto the full signed range of an
/// `bits`-wide fixed-point word.
///
/// Coordinates outside the window saturate — exactly what the real
/// hardware does when a particle leaves the declared range, and why the
/// host library re-declares the range as the system expands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeScaler {
    center: f64,
    half: f64,
    bits: u32,
}

impl RangeScaler {
    /// Window covering `[min, max)` with an `bits`-bit signed word.
    pub fn new(min: f64, max: f64, bits: u32) -> Self {
        assert!(max > min, "degenerate range [{min}, {max})");
        assert!((2..=62).contains(&bits), "range-scaler width {bits} out of 2..=62");
        RangeScaler { center: 0.5 * (min + max), half: 0.5 * (max - min), bits }
    }

    /// Window min.
    #[inline]
    pub fn min(&self) -> f64 {
        self.center - self.half
    }

    /// Window max.
    #[inline]
    pub fn max(&self) -> f64 {
        self.center + self.half
    }

    /// Word width in bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Size of one quantization step in real units.
    #[inline]
    pub fn quantum(&self) -> f64 {
        self.half / (1i64 << (self.bits - 1)) as f64
    }

    /// Quantize a coordinate to its raw fixed-point word (saturating).
    #[inline]
    pub fn quantize(&self, x: f64) -> i64 {
        let max_raw = (1i64 << (self.bits - 1)) - 1;
        let min_raw = -(1i64 << (self.bits - 1));
        let scaled = (x - self.center) / self.quantum();
        if scaled.is_nan() {
            0
        } else if scaled >= max_raw as f64 {
            max_raw
        } else if scaled <= min_raw as f64 {
            min_raw
        } else {
            scaled.round() as i64
        }
    }

    /// Dequantize a raw word back to a real coordinate.
    #[inline]
    pub fn dequantize(&self, raw: i64) -> f64 {
        self.center + raw as f64 * self.quantum()
    }

    /// Quantize-then-dequantize: the value the hardware actually sees.
    #[inline]
    pub fn roundtrip(&self, x: f64) -> f64 {
        self.dequantize(self.quantize(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_and_ranges() {
        let f = FixedFormat::new(16, 8);
        assert_eq!(f.quantum(), 1.0 / 256.0);
        assert_eq!(f.raw_max(), 32767);
        assert_eq!(f.raw_min(), -32768);
        assert!((f.max_value() - 32767.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn encode_rounds_to_nearest() {
        let f = FixedFormat::new(16, 8);
        assert_eq!(f.encode(1.0).raw, 256);
        assert_eq!(f.encode(1.0 + 0.4 / 256.0).raw, 256);
        assert_eq!(f.encode(1.0 + 0.6 / 256.0).raw, 257);
        assert_eq!(f.encode(-1.0).raw, -256);
    }

    #[test]
    fn encode_saturates() {
        let f = FixedFormat::new(8, 0);
        assert_eq!(f.encode(1e9).raw, 127);
        assert_eq!(f.encode(-1e9).raw, -128);
        assert_eq!(f.encode(f64::INFINITY).raw, 127);
        assert_eq!(f.encode(f64::NEG_INFINITY).raw, -128);
        assert_eq!(f.encode(f64::NAN).raw, 0);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_quantum() {
        let f = FixedFormat::new(32, 20);
        for &x in &[0.0, 0.1, -3.7, 123.456, -2047.9] {
            let err = (f.encode(x).to_f64() - x).abs();
            assert!(err <= 0.5 * f.quantum() + 1e-15, "x={x} err={err}");
        }
    }

    #[test]
    fn sixty_four_bit_format() {
        let f = FixedFormat::new(64, 40);
        assert_eq!(f.raw_max(), i64::MAX);
        assert_eq!(f.raw_min(), i64::MIN);
        let v = f.encode(1234.5);
        assert!((v.to_f64() - 1234.5).abs() < f.quantum());
    }

    #[test]
    fn saturating_arithmetic() {
        let f = FixedFormat::new(8, 0);
        let a = f.encode(100.0);
        let b = f.encode(100.0);
        assert_eq!(a.sat_add(b).raw, 127);
        assert_eq!(a.sat_sub(f.encode(-100.0)).raw, 127);
        assert_eq!(f.encode(-100.0).sat_sub(b).raw, -128);
        assert_eq!(f.encode(-128.0).sat_neg().raw, 127);
        assert_eq!(f.encode(5.0).sat_neg().raw, -5);
    }

    #[test]
    fn hoisted_scale_matches_encode_on_specials() {
        for f in [FixedFormat::new(64, 32), FixedFormat::new(16, 8), FixedFormat::new(8, 0)] {
            let s = f.encode_scale();
            for x in [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0,
                -0.0,
                1e300,
                -1e300,
                0.5,
                -1.5,
                f.max_value(),
                f.min_value(),
            ] {
                assert_eq!(f.encode_with_scale(s, x).raw, f.encode(x).raw, "fmt={f:?} x={x}");
            }
        }
    }

    #[test]
    fn accumulate_many_small_terms() {
        // 64-bit accumulator with 2^-40 quantum: adding one million
        // terms of ~1e-3 must retain ~1e-12 absolute accuracy.
        let f = FixedFormat::new(64, 40);
        let mut acc = Fixed::zero(f);
        let term = 1.0e-3;
        for _ in 0..1_000_000 {
            acc = acc.accumulate(term);
        }
        let expect = 1.0e3;
        assert!((acc.to_f64() - expect).abs() < 1e-6, "got {}", acc.to_f64());
    }

    #[test]
    fn range_scaler_basics() {
        let r = RangeScaler::new(-10.0, 10.0, 16);
        assert_eq!(r.min(), -10.0);
        assert_eq!(r.max(), 10.0);
        assert!((r.quantum() - 20.0 / 65536.0).abs() < 1e-15);
        assert_eq!(r.quantize(0.0), 0);
        // saturation outside window
        assert_eq!(r.quantize(1e6), 32767);
        assert_eq!(r.quantize(-1e6), -32768);
        assert_eq!(r.quantize(f64::NAN), 0);
    }

    #[test]
    fn range_scaler_roundtrip_error() {
        let r = RangeScaler::new(-50.0, 50.0, 32);
        for &x in &[0.0, 1.234, -49.99, 49.0, 3.1e-7] {
            assert!((r.roundtrip(x) - x).abs() <= 0.5 * r.quantum() + 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn range_scaler_rejects_empty_window() {
        let _ = RangeScaler::new(1.0, 1.0, 16);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn encode_always_within_format_range(x in -1e12f64..1e12, bits in 4u32..=63, frac in -8i32..=30) {
            let f = FixedFormat::new(bits, frac);
            let v = f.encode(x);
            prop_assert!(v.raw >= f.raw_min());
            prop_assert!(v.raw <= f.raw_max());
        }

        #[test]
        fn roundtrip_within_half_quantum_when_in_range(x in -1000.0f64..1000.0) {
            let f = FixedFormat::new(48, 24);
            let v = f.encode(x);
            prop_assert!((v.to_f64() - x).abs() <= 0.5 * f.quantum() + 1e-12);
        }

        #[test]
        fn encode_with_hoisted_scale_is_bitwise_encode(
            x in any::<f64>(),
            bits in 4u32..=64,
            frac in -8i32..=48,
        ) {
            let f = FixedFormat::new(bits, frac);
            let hoisted = f.encode_scale();
            prop_assert_eq!(f.encode_with_scale(hoisted, x).raw, f.encode(x).raw);
            let acc = Fixed { raw: 123_456_789, fmt: f };
            prop_assert_eq!(
                acc.accumulate_with_scale(hoisted, x).raw,
                acc.accumulate(x).raw
            );
        }

        #[test]
        fn sat_add_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let f = FixedFormat::new(32, 8);
            let (x, y) = (f.encode(a), f.encode(b));
            prop_assert_eq!(x.sat_add(y), y.sat_add(x));
        }

        #[test]
        fn range_scaler_monotone(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let r = RangeScaler::new(-100.0, 100.0, 24);
            if a <= b {
                prop_assert!(r.quantize(a) <= r.quantize(b));
            } else {
                prop_assert!(r.quantize(a) >= r.quantize(b));
            }
        }
    }
}
