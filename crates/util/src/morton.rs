//! 3-D Morton (Z-order) codes.
//!
//! The octree build sorts particles by the Morton code of their
//! quantized coordinates; consecutive code ranges are then exactly the
//! octree cells, which makes a bottom-up parallel build possible.
//! 21 bits per dimension fill a 63-bit code — enough to resolve 2²¹
//! cells per axis, far below gravitational softening at any N we run.

/// Bits used per dimension.
pub const BITS_PER_DIM: u32 = 21;
/// Maximum coordinate value (exclusive) accepted by [`encode`].
pub const COORD_LIMIT: u32 = 1 << BITS_PER_DIM;

/// Spread the low 21 bits of `x` so consecutive bits land 3 apart.
#[inline]
pub fn spread(x: u32) -> u64 {
    debug_assert!(x < COORD_LIMIT);
    let mut v = x as u64 & 0x1f_ffff;
    v = (v | (v << 32)) & 0x1f00000000ffff;
    v = (v | (v << 16)) & 0x1f0000ff0000ff;
    v = (v | (v << 8)) & 0x100f00f00f00f00f;
    v = (v | (v << 4)) & 0x10c30c30c30c30c3;
    v = (v | (v << 2)) & 0x1249249249249249;
    v
}

/// Inverse of [`spread`].
#[inline]
pub fn compact(v: u64) -> u32 {
    let mut v = v & 0x1249249249249249;
    v = (v | (v >> 2)) & 0x10c30c30c30c30c3;
    v = (v | (v >> 4)) & 0x100f00f00f00f00f;
    v = (v | (v >> 8)) & 0x1f0000ff0000ff;
    v = (v | (v >> 16)) & 0x1f00000000ffff;
    v = (v | (v >> 32)) & 0x1f_ffff;
    v as u32
}

/// Interleave three 21-bit coordinates into a 63-bit Morton code,
/// x in the least significant position.
#[inline]
pub fn encode(x: u32, y: u32, z: u32) -> u64 {
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

/// Recover `(x, y, z)` from a Morton code.
#[inline]
pub fn decode(code: u64) -> (u32, u32, u32) {
    (compact(code), compact(code >> 1), compact(code >> 2))
}

/// Quantize a unit-cube coordinate (clamped to `[0, 1)`) to the Morton
/// grid and encode. Coordinates are expressed relative to the tree's
/// bounding cube by the caller.
#[inline]
pub fn encode_unit(u: f64, v: f64, w: f64) -> u64 {
    let q = |t: f64| -> u32 {
        let s = (t * COORD_LIMIT as f64) as i64;
        s.clamp(0, COORD_LIMIT as i64 - 1) as u32
    };
    encode(q(u), q(v), q(w))
}

/// The octant (0..8) of a code at tree `level`, where level 0 is the
/// root's children and levels count downward. `level` must be below
/// [`BITS_PER_DIM`].
#[inline]
pub fn octant_at_level(code: u64, level: u32) -> u8 {
    debug_assert!(level < BITS_PER_DIM);
    let shift = 3 * (BITS_PER_DIM - 1 - level);
    ((code >> shift) & 0b111) as u8
}

/// Longest common prefix length, in *levels* (groups of 3 bits), of two
/// codes — the depth of their deepest common octree cell.
#[inline]
pub fn common_prefix_levels(a: u64, b: u64) -> u32 {
    if a == b {
        return BITS_PER_DIM;
    }
    let diff = a ^ b;
    let highest = 63 - diff.leading_zeros(); // bit index of highest differing bit (codes are 63-bit)
    (62 - highest) / 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_compact_roundtrip() {
        for &x in &[0u32, 1, 2, 0x15_5555, 0x1f_ffff, 12345, 0x10_0000] {
            assert_eq!(compact(spread(x)), x);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases = [(0, 0, 0), (1, 2, 3), (0x1f_ffff, 0, 0x10_0000), (999, 88888, 7)];
        for &(x, y, z) in &cases {
            assert_eq!(decode(encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn x_is_least_significant() {
        assert_eq!(encode(1, 0, 0), 0b001);
        assert_eq!(encode(0, 1, 0), 0b010);
        assert_eq!(encode(0, 0, 1), 0b100);
    }

    #[test]
    fn encode_unit_clamps() {
        assert_eq!(encode_unit(-0.5, 0.0, 0.0), 0);
        let max = encode_unit(2.0, 2.0, 2.0);
        let (x, y, z) = decode(max);
        assert_eq!((x, y, z), (COORD_LIMIT - 1, COORD_LIMIT - 1, COORD_LIMIT - 1));
    }

    #[test]
    fn octant_extraction() {
        // top-level octant is the highest 3 bits
        let code = encode(COORD_LIMIT - 1, 0, 0); // x at max => top x-bit set at each level
        assert_eq!(octant_at_level(code, 0), 0b001);
        let code = encode(0, COORD_LIMIT / 2, 0); // y's top bit only
        assert_eq!(octant_at_level(code, 0), 0b010);
        assert_eq!(octant_at_level(code, 1), 0);
    }

    #[test]
    fn common_prefix() {
        let a = encode(0, 0, 0);
        let b = encode(COORD_LIMIT - 1, COORD_LIMIT - 1, COORD_LIMIT - 1);
        assert_eq!(common_prefix_levels(a, b), 0);
        assert_eq!(common_prefix_levels(a, a), BITS_PER_DIM);
        // two points in the same first octant but different second octant
        let c = encode(0, 0, 0);
        let d = encode(COORD_LIMIT / 4, 0, 0);
        assert_eq!(common_prefix_levels(c, d), 1);
    }

    #[test]
    fn morton_order_matches_octree_recursion() {
        // sorting codes must group points by octant first
        let pts = [(3u32, 3, 3), (COORD_LIMIT - 1, 1, 1), (1, COORD_LIMIT - 1, 1), (2, 2, 2)];
        let mut codes: Vec<u64> = pts.iter().map(|&(x, y, z)| encode(x, y, z)).collect();
        codes.sort_unstable();
        let octs: Vec<u8> = codes.iter().map(|&c| octant_at_level(c, 0)).collect();
        let mut sorted_octs = octs.clone();
        sorted_octs.sort_unstable();
        assert_eq!(octs, sorted_octs, "octants must be contiguous after sort");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip(x in 0u32..COORD_LIMIT, y in 0u32..COORD_LIMIT, z in 0u32..COORD_LIMIT) {
            prop_assert_eq!(decode(encode(x, y, z)), (x, y, z));
        }

        #[test]
        fn codes_fit_63_bits(x in 0u32..COORD_LIMIT, y in 0u32..COORD_LIMIT, z in 0u32..COORD_LIMIT) {
            prop_assert!(encode(x, y, z) < (1u64 << 63));
        }

        #[test]
        fn prefix_levels_symmetric(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (a & ((1 << 63) - 1), b & ((1 << 63) - 1));
            prop_assert_eq!(common_prefix_levels(a, b), common_prefix_levels(b, a));
        }
    }
}
