//! Hardware-faithful lookup tables for the LNS adder.
//!
//! The real G5 chip evaluates the Gaussian-logarithm functions
//! `sb(z) = log₂(1 + 2^z)` and `db(z) = log₂(1 − 2^z)` with ROM
//! tables: the (negative) argument `z` is truncated to a limited number
//! of address bits and the stored value has the word's fraction width.
//! [`crate::lns`] models the *ideal* table (full address resolution);
//! this module models the *finite* table, so the reproduction can
//! sweep table size against pairwise force error — the trade the
//! GRAPE-3 → GRAPE-5 redesign actually made.
//!
//! Address layout: arguments in `(-range, 0]` are quantized to
//! `2^addr_bits` equal steps (nearest-step rounding); arguments at or
//! below `-range` return the asymptote (0 for `sb`, handled sign-side
//! for `db`). Stored values are rounded to `frac_bits` fractional bits.

use crate::lns::{Lns, LnsConfig};
use serde::{Deserialize, Serialize};
use std::sync::{OnceLock, RwLock};

/// A quantized Gaussian-logarithm table pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussLogTable {
    /// Number of address bits (table has `2^addr_bits` entries).
    pub addr_bits: u32,
    /// Fraction bits of the stored values.
    pub frac_bits: u32,
    /// Argument range covered: `z ∈ (-range, 0]`.
    pub range: f64,
    sb: Vec<f64>,
    db: Vec<f64>,
}

impl GaussLogTable {
    /// Build the ROM contents.
    ///
    /// # Panics
    /// On zero sizes or a non-positive range.
    pub fn new(addr_bits: u32, frac_bits: u32, range: f64) -> GaussLogTable {
        assert!((1..=24).contains(&addr_bits), "address bits {addr_bits} out of 1..=24");
        assert!(frac_bits <= 32, "fraction bits too large");
        assert!(range > 0.0, "non-positive table range");
        let n = 1usize << addr_bits;
        let step = range / n as f64;
        let quant = (frac_bits as f64).exp2();
        let round = |x: f64| (x * quant).round() / quant;
        let mut sb = Vec::with_capacity(n);
        let mut db = Vec::with_capacity(n);
        for i in 0..n {
            // table entry i covers z = -(i + 0.5) * step (cell center)
            let z = -((i as f64 + 0.5) * step);
            sb.push(round((1.0 + z.exp2()).log2()));
            // db is singular at z = 0; the first cell's center is already
            // away from the pole, matching the hardware's special-casing
            // of exact cancellation upstream of the table.
            db.push(round((1.0 - z.exp2()).log2()));
        }
        GaussLogTable { addr_bits, frac_bits, range, sb, db }
    }

    /// Table size in entries.
    pub fn len(&self) -> usize {
        self.sb.len()
    }

    /// `true` if the table has no entries (never: construction demands ≥ 2).
    pub fn is_empty(&self) -> bool {
        self.sb.is_empty()
    }

    #[inline]
    fn index(&self, z: f64) -> Option<usize> {
        debug_assert!(z <= 0.0, "table argument must be non-positive");
        if z <= -self.range {
            return None; // asymptotic region
        }
        let n = self.sb.len();
        let i = ((-z) / self.range * n as f64) as usize;
        Some(i.min(n - 1))
    }

    /// Table lookup of `sb(z) = log₂(1 + 2^z)` for `z ≤ 0`.
    /// Beyond the covered range the asymptote 0 is returned.
    #[inline]
    pub fn sb(&self, z: f64) -> f64 {
        match self.index(z) {
            Some(i) => self.sb[i],
            None => 0.0,
        }
    }

    /// Table lookup of `db(z) = log₂(1 − 2^z)` for `z < 0`.
    /// Beyond the covered range the asymptote 0 is returned.
    #[inline]
    pub fn db(&self, z: f64) -> f64 {
        match self.index(z) {
            Some(i) => self.db[i],
            None => 0.0,
        }
    }

    /// Worst-case absolute error of the `sb` lookup against the exact
    /// function, probed at `samples` points — used by the table-size
    /// ablation.
    pub fn sb_max_error(&self, samples: usize) -> f64 {
        assert!(samples > 1, "need at least two samples");
        let mut worst = 0.0f64;
        for s in 0..samples {
            let z = -(s as f64 + 0.5) / samples as f64 * self.range;
            let exact = (1.0 + z.exp2()).log2();
            worst = worst.max((self.sb(z) - exact).abs());
        }
        worst
    }
}

// ---------------------------------------------------------------------
// Table-driven format converters and integer adder tables
// ---------------------------------------------------------------------

/// Sentinel marking an adder-table entry whose rounding sits too close
/// to a half-integer to be hoisted out of the per-operand `f64` sum;
/// lookups hitting it fall back to the formula path.
const FALLBACK: i64 = i64::MIN;

/// Sentinel mantissa for "no breakpoint": far outside the 52-bit
/// mantissa range, so neither the `>=` classification nor the guard
/// distance can ever trigger on it.
const NO_BP: i64 = i64::MAX / 4;

/// Half-width (in mantissa ulps) of the guard band around each encoder
/// breakpoint. Within the band the encoder defers to `f64::log2`; the
/// band is ~180× wider than the worst-case zone where a ≤few-ulp `log2`
/// error could flip the rounded log word, so outside it the table and
/// the libm reference provably agree.
const ENC_GUARD: u64 = 1 << 16;

/// One mantissa cell of the encoder table.
#[derive(Clone, Copy)]
struct EncCell {
    /// Log-word fraction at the cell's left edge.
    k_lo: i64,
    /// Mantissa threshold where the fraction steps to `k_lo + 1`
    /// (`NO_BP` when the cell contains no breakpoint).
    bp: i64,
    /// Nearest breakpoint for the guard-band test (`NO_BP` when none is
    /// within reach of this cell).
    near_bp: i64,
}

/// Table-driven LNS format converters plus integer Gaussian-log adder
/// tables for one [`LnsConfig`] — the ROM set a real G5 input/output
/// stage carries, built once per format and shared process-wide.
///
/// Every lookup is constructed to reproduce the `f64`-formula reference
/// ([`LnsConfig::encode_libm`], [`Lns::to_f64`], [`Lns::add`]) bit for
/// bit: the decoder and adder tables memoize the reference computation
/// per word / per operand distance, and the encoder's breakpoints are
/// binary-searched against the reference with a guard-band fallback
/// where rounding ties could otherwise flip a word.
pub struct LnsConvTables {
    cfg: LnsConfig,
    raw_min: i64,
    raw_max: i64,
    cell_shift: u32,
    cells: Vec<EncCell>,
    /// Decoded magnitude per raw word, indexed by `raw - raw_min`.
    dec: Vec<f64>,
    /// `round(sb(-d·q)·2^f)` per raw operand distance `d`.
    sb: Vec<i64>,
    /// `round(db(-d·q)·2^f)` per raw operand distance `d` (entry 0 unused).
    db: Vec<i64>,
}

impl std::fmt::Debug for LnsConvTables {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LnsConvTables")
            .field("cfg", &self.cfg)
            .field("cells", &self.cells.len())
            .field("dec", &self.dec.len())
            .field("sb", &self.sb.len())
            .field("db", &self.db.len())
            .finish()
    }
}

/// `true` if `cfg` is small enough to tabulate (the hardware formats
/// are; pathological wide formats fall back to the formula converters).
fn tables_supported(cfg: LnsConfig) -> bool {
    let span = (cfg.exp_max as i64 - cfg.exp_min as i64 + 1) << cfg.frac_bits;
    cfg.frac_bits <= 12 && span <= (1 << 22)
}

static CONV_CACHE: OnceLock<RwLock<Vec<&'static LnsConvTables>>> = OnceLock::new();

/// The process-wide conversion-table set for `cfg`, built on first use;
/// `None` when the format is too wide to tabulate.
pub fn conv_tables(cfg: LnsConfig) -> Option<&'static LnsConvTables> {
    if !tables_supported(cfg) {
        return None;
    }
    let cache = CONV_CACHE.get_or_init(|| RwLock::new(Vec::new()));
    if let Some(t) = cache.read().unwrap().iter().find(|t| t.cfg == cfg) {
        return Some(t);
    }
    let built: &'static LnsConvTables = Box::leak(Box::new(LnsConvTables::build(cfg)));
    let mut w = cache.write().unwrap();
    if let Some(t) = w.iter().find(|t| t.cfg == cfg) {
        return Some(t); // lost a build race; the duplicate leaks once
    }
    w.push(built);
    Some(built)
}

impl LnsConvTables {
    /// The format these tables serve.
    #[inline]
    pub fn config(&self) -> LnsConfig {
        self.cfg
    }

    fn build(cfg: LnsConfig) -> LnsConvTables {
        let f = cfg.frac_bits;
        let scale = (f as f64).exp2();
        let q = cfg.quantum();
        let raw_min = cfg.raw_word_min();
        let raw_max = cfg.raw_word_max();

        // --- encoder: breakpoint mantissas against the libm reference ---
        // reference fraction word for mantissa bits at exponent 0
        let k_ref = |mant: i64| -> i64 {
            let x = f64::from_bits((1023u64 << 52) | mant as u64);
            (x.log2() * scale).round() as i64
        };
        let nk = 1i64 << f;
        let mut bps: Vec<i64> = Vec::with_capacity(nk as usize);
        for k in 1..=nk {
            let (mut lo, mut hi) = (0i64, (1i64 << 52) - 1);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if k_ref(mid) >= k {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            // libm noise can make the predicate locally non-monotone;
            // nudge to the true first crossing (any residue stays well
            // inside the guard band)
            let mut bp = lo;
            let mut fuel = 128;
            while fuel > 0 && bp > 0 && k_ref(bp - 1) >= k {
                bp -= 1;
                fuel -= 1;
            }
            fuel = 128;
            while fuel > 0 && k_ref(bp) < k {
                bp += 1;
                fuel -= 1;
            }
            bps.push(bp);
        }
        assert!(bps.windows(2).all(|w| w[0] < w[1]), "encoder breakpoints not increasing");

        let cells_bits = f + 1; // ≤ 0.73 breakpoints per cell
        let cell_shift = 52 - cells_bits;
        let width = 1i64 << cell_shift;
        let guard = ENC_GUARD as i64;
        let mut cells = Vec::with_capacity(1usize << cells_bits);
        for c in 0..(1i64 << cells_bits) {
            let s = c << cell_shift;
            let e = s + width;
            let k_lo = bps.partition_point(|&b| b <= s) as i64;
            let idx = k_lo as usize;
            let bp = match bps.get(idx) {
                Some(&b) if b < e => b,
                _ => NO_BP,
            };
            assert!(
                bps.get(idx + 1).is_none_or(|&b| b >= e),
                "two encoder breakpoints in one cell"
            );
            let ni = bps.partition_point(|&b| b < s - guard);
            let near_bp = match bps.get(ni) {
                Some(&b) if b < e + guard => b,
                _ => NO_BP,
            };
            cells.push(EncCell { k_lo, bp, near_bp });
        }

        // --- decoder: memoized reference decode per raw word ---
        let n_dec = (raw_max - raw_min + 1) as usize;
        let mut dec = Vec::with_capacity(n_dec);
        for raw in raw_min..=raw_max {
            dec.push((raw as f64 * q).exp2());
        }

        // --- adders: integer Gaussian-log increments per distance ---
        let round_step = |s: f64| -> i64 {
            let scaled = s * scale;
            let k = scaled.round();
            // the increment is safe to hoist only when no representable
            // operand sum can push `scaled` across a rounding boundary
            if 0.5 - (scaled - k).abs() > 1e-9 {
                k as i64
            } else {
                FALLBACK
            }
        };
        let mut sb = Vec::new();
        for d in 0..(1i64 << 21) {
            let z = (-d) as f64 * q;
            let k = round_step(z.exp2().ln_1p() / std::f64::consts::LN_2);
            sb.push(k);
            if k == 0 {
                break;
            }
        }
        assert_eq!(*sb.last().unwrap(), 0, "sb table did not reach its asymptote");
        let mut db = vec![FALLBACK];
        for d in 1..(1i64 << 21) {
            let z = (-d) as f64 * q;
            let k = round_step((-z.exp2()).ln_1p() / std::f64::consts::LN_2);
            db.push(k);
            if k == 0 {
                break;
            }
        }
        assert_eq!(*db.last().unwrap(), 0, "db table did not reach its asymptote");

        LnsConvTables { cfg, raw_min, raw_max, cell_shift, cells, dec, sb, db }
    }

    /// Table-driven encode; bit-identical to
    /// [`LnsConfig::encode_libm`] (guard-band inputs are delegated).
    #[inline]
    pub fn encode(&self, x: f64) -> Lns {
        if x == 0.0 || x.is_nan() {
            return Lns::zero(self.cfg);
        }
        let bits = x.to_bits();
        let eb = ((bits >> 52) & 0x7ff) as i64;
        if eb == 0 || eb == 0x7ff {
            return self.cfg.encode_libm(x); // subnormal / infinite
        }
        let mant = (bits & ((1u64 << 52) - 1)) as i64;
        let cell = &self.cells[(mant >> self.cell_shift) as usize];
        if mant.abs_diff(cell.near_bp) < ENC_GUARD {
            return self.cfg.encode_libm(x);
        }
        let k = cell.k_lo + i64::from(mant >= cell.bp);
        let raw = ((eb - 1023) << self.cfg.frac_bits) + k;
        if raw < self.raw_min {
            return Lns::zero(self.cfg);
        }
        let sign: i8 = if bits >> 63 == 0 { 1 } else { -1 };
        Lns::from_raw(sign, raw.min(self.raw_max), self.cfg)
    }

    /// Table-driven decode; bit-identical to [`Lns::to_f64`] by
    /// construction (full-word memoization of the reference decode).
    #[inline]
    pub fn decode(&self, v: Lns) -> f64 {
        let s = v.signum();
        if s == 0 {
            return 0.0;
        }
        let m = self.dec[(v.raw() - self.raw_min) as usize];
        if s < 0 {
            -m
        } else {
            m
        }
    }

    /// Table-driven addition; bit-identical to [`Lns::add`] (entries
    /// whose rounding cannot be hoisted fall back to the formula).
    #[inline]
    pub fn add(&self, a: Lns, b: Lns) -> Lns {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let (hi, lo) = if a.raw() >= b.raw() { (a, b) } else { (b, a) };
        let d = (hi.raw() - lo.raw()) as usize;
        if hi.signum() == lo.signum() {
            let k = if d < self.sb.len() { self.sb[d] } else { 0 };
            if k == FALLBACK {
                return a.add(b);
            }
            let raw = hi.raw() + k;
            Lns::from_raw(hi.signum(), raw.min(self.raw_max), self.cfg)
        } else {
            if d == 0 {
                return Lns::zero(self.cfg);
            }
            let k = if d < self.db.len() { self.db[d] } else { 0 };
            if k == FALLBACK {
                return a.add(b);
            }
            let raw = hi.raw() + k;
            if raw < self.raw_min {
                return Lns::zero(self.cfg);
            }
            Lns::from_raw(hi.signum(), raw, self.cfg)
        }
    }

    #[cfg(test)]
    fn breakpoints(&self) -> Vec<i64> {
        self.cells.iter().map(|c| c.bp).filter(|&b| b != NO_BP).collect()
    }

    #[cfg(test)]
    fn adder_lens(&self) -> (usize, usize) {
        (self.sb.len(), self.db.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sb_matches_exact_function_at_high_resolution() {
        let t = GaussLogTable::new(16, 24, 16.0);
        for &z in &[-0.001f64, -0.5, -1.0, -3.7, -10.0] {
            let exact = (1.0 + z.exp2()).log2();
            assert!((t.sb(z) - exact).abs() < 1e-3, "z={z}: {} vs {exact}", t.sb(z));
        }
    }

    #[test]
    fn db_matches_exact_function_away_from_pole() {
        let t = GaussLogTable::new(16, 24, 16.0);
        for &z in &[-0.5f64, -1.0, -4.0, -12.0] {
            let exact = (1.0 - z.exp2()).log2();
            assert!((t.db(z) - exact).abs() < 1e-3, "z={z}");
        }
    }

    #[test]
    fn asymptote_beyond_range() {
        let t = GaussLogTable::new(8, 12, 8.0);
        assert_eq!(t.sb(-100.0), 0.0);
        assert_eq!(t.db(-100.0), 0.0);
        assert_eq!(t.sb(-8.0), 0.0);
    }

    #[test]
    fn error_shrinks_with_address_bits() {
        let coarse = GaussLogTable::new(6, 20, 16.0).sb_max_error(4096);
        let fine = GaussLogTable::new(12, 20, 16.0).sb_max_error(4096);
        assert!(fine < coarse / 8.0, "doubling address bits x6 must cut error: {coarse} -> {fine}");
    }

    #[test]
    fn stored_values_are_on_the_fraction_grid() {
        let t = GaussLogTable::new(6, 8, 8.0);
        let q = 256.0;
        for i in 0..t.len() {
            let v = t.sb[i] * q;
            assert!((v - v.round()).abs() < 1e-9, "entry {i} not on the grid");
        }
    }

    #[test]
    fn table_sizes() {
        assert_eq!(GaussLogTable::new(10, 8, 16.0).len(), 1024);
        assert!(!GaussLogTable::new(1, 8, 16.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of 1..=24")]
    fn zero_address_bits_rejected() {
        GaussLogTable::new(0, 8, 8.0);
    }

    #[test]
    #[should_panic(expected = "non-positive table range")]
    fn bad_range_rejected() {
        GaussLogTable::new(8, 8, 0.0);
    }
}

#[cfg(test)]
mod conv_tests {
    use super::*;

    const CFGS: [LnsConfig; 3] = [
        LnsConfig::GRAPE5,
        LnsConfig::GRAPE3,
        LnsConfig { frac_bits: 11, exp_min: -64, exp_max: 63 },
    ];

    // deterministic pseudo-random f64 bit patterns (splitmix64)
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn sweeps() -> usize {
        if cfg!(debug_assertions) {
            20_000
        } else {
            400_000
        }
    }

    fn assert_same(t: &LnsConvTables, cfg: LnsConfig, x: f64) {
        let tab = t.encode(x);
        let refv = cfg.encode_libm(x);
        assert_eq!(
            (tab.signum(), if tab.is_zero() { 0 } else { tab.raw() }),
            (refv.signum(), if refv.is_zero() { 0 } else { refv.raw() }),
            "encode divergence at x = {x:e} ({:016x}) cfg {cfg:?}",
            x.to_bits()
        );
    }

    #[test]
    fn decode_table_exhaustive_vs_reference() {
        for cfg in CFGS {
            let t = conv_tables(cfg).expect("test formats are tabulable");
            for raw in cfg.raw_word_min()..=cfg.raw_word_max() {
                for sign in [-1i8, 1] {
                    let v = Lns::from_raw(sign, raw, cfg);
                    assert_eq!(
                        t.decode(v).to_bits(),
                        v.to_f64().to_bits(),
                        "decode divergence at sign {sign} raw {raw} cfg {cfg:?}"
                    );
                }
            }
            assert_eq!(t.decode(Lns::zero(cfg)).to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn encode_specials_match_reference() {
        for cfg in CFGS {
            let t = conv_tables(cfg).unwrap();
            for x in [
                0.0,
                -0.0,
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN_POSITIVE,
                f64::MIN_POSITIVE / 2.0, // subnormal
                f64::MAX,
                -f64::MAX,
                1.0,
                -1.0,
                1.0 + f64::EPSILON,
                1.0 - f64::EPSILON / 2.0,
            ] {
                assert_same(t, cfg, x);
            }
            for e in -700..700 {
                let x = f64::exp2(e as f64);
                assert_same(t, cfg, x);
                assert_same(t, cfg, -x);
                assert_same(t, cfg, x * 1.5);
            }
        }
    }

    #[test]
    fn encode_random_bit_patterns_match_reference() {
        let mut state = 0x5eed_u64;
        for cfg in CFGS {
            let t = conv_tables(cfg).unwrap();
            for _ in 0..sweeps() {
                // random finite f64: random sign/mantissa, exponent biased
                // toward the representable band
                let bits = splitmix(&mut state);
                let eb = 1023i64 + ((bits >> 52) as i64 % 1400) - 700;
                let eb = eb.clamp(1, 0x7fe) as u64;
                let x = f64::from_bits((bits & !(0x7ffu64 << 52)) | (eb << 52));
                assert_same(t, cfg, x);
            }
        }
    }

    #[test]
    fn encode_breakpoint_edges_match_reference() {
        // scan every mantissa in a window around each breakpoint, just
        // inside and just outside the guard band, at several exponents
        for cfg in [LnsConfig::GRAPE5, LnsConfig::GRAPE3] {
            let t = conv_tables(cfg).unwrap();
            let bps = t.breakpoints();
            assert!(bps.len() > (1 << (cfg.frac_bits - 1)) as usize);
            let window: Vec<i64> = [
                -(ENC_GUARD as i64) - 2,
                -(ENC_GUARD as i64),
                -(ENC_GUARD as i64) + 1,
                -3,
                -1,
                0,
                1,
                3,
                ENC_GUARD as i64 - 1,
                ENC_GUARD as i64,
                ENC_GUARD as i64 + 2,
            ]
            .to_vec();
            for &bp in &bps {
                for &off in &window {
                    let mant = bp + off;
                    if !(0..(1i64 << 52)).contains(&mant) {
                        continue;
                    }
                    for eb in [1i64, 512, 1023, 1024, 1534, 2046] {
                        let x = f64::from_bits(((eb as u64) << 52) | mant as u64);
                        assert_same(t, cfg, x);
                        assert_same(t, cfg, -x);
                    }
                }
            }
        }
    }

    #[test]
    fn adder_tables_exhaustive_vs_reference() {
        for cfg in [LnsConfig::GRAPE5, LnsConfig::GRAPE3] {
            let t = conv_tables(cfg).unwrap();
            let (sb_len, db_len) = t.adder_lens();
            let max_d = sb_len.max(db_len) as i64 + 64;
            let raws = [
                cfg.raw_word_min(),
                cfg.raw_word_min() + 1,
                -1,
                0,
                1,
                cfg.raw_word_max() / 2,
                cfg.raw_word_max() - 1,
                cfg.raw_word_max(),
            ];
            for d in 0..max_d {
                for hi_raw in raws {
                    let lo_raw = hi_raw - d;
                    if lo_raw < cfg.raw_word_min() {
                        continue;
                    }
                    for (sa, sb_sign) in [(1i8, 1i8), (1, -1), (-1, 1), (-1, -1)] {
                        let a = Lns::from_raw(sa, hi_raw, cfg);
                        let b = Lns::from_raw(sb_sign, lo_raw, cfg);
                        for (x, y) in [(a, b), (b, a)] {
                            let got = t.add(x, y);
                            let want = x.add(y);
                            assert_eq!(
                                (got.signum(), if got.is_zero() { 0 } else { got.raw() }),
                                (want.signum(), if want.is_zero() { 0 } else { want.raw() }),
                                "add divergence d={d} hi={hi_raw} signs=({sa},{sb_sign}) cfg {cfg:?}"
                            );
                        }
                    }
                }
            }
            // zero identities
            let a = Lns::from_raw(1, 0, cfg);
            let z = Lns::zero(cfg);
            assert_eq!(t.add(a, z), a);
            assert_eq!(t.add(z, a), a);
            assert!(t.add(z, z).is_zero());
        }
    }

    #[test]
    fn routed_encode_uses_tables_and_cache_is_shared() {
        let a = conv_tables(LnsConfig::GRAPE5).unwrap();
        let b = conv_tables(LnsConfig::GRAPE5).unwrap();
        assert!(std::ptr::eq(a, b), "cache must hand out one table set per format");
        assert_eq!(a.config(), LnsConfig::GRAPE5);
        // LnsConfig::encode routes through the same tables
        let x = 0.12345;
        assert_eq!(LnsConfig::GRAPE5.encode(x), a.encode(x));
    }

    #[test]
    fn oversized_format_falls_back_to_libm() {
        let wide = LnsConfig { frac_bits: 20, exp_min: -512, exp_max: 511 };
        assert!(conv_tables(wide).is_none());
        let x = 2.5;
        assert_eq!(wide.encode(x), wide.encode_libm(x));
    }
}
