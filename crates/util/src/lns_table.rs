//! Hardware-faithful lookup tables for the LNS adder.
//!
//! The real G5 chip evaluates the Gaussian-logarithm functions
//! `sb(z) = log₂(1 + 2^z)` and `db(z) = log₂(1 − 2^z)` with ROM
//! tables: the (negative) argument `z` is truncated to a limited number
//! of address bits and the stored value has the word's fraction width.
//! [`crate::lns`] models the *ideal* table (full address resolution);
//! this module models the *finite* table, so the reproduction can
//! sweep table size against pairwise force error — the trade the
//! GRAPE-3 → GRAPE-5 redesign actually made.
//!
//! Address layout: arguments in `(-range, 0]` are quantized to
//! `2^addr_bits` equal steps (nearest-step rounding); arguments at or
//! below `-range` return the asymptote (0 for `sb`, handled sign-side
//! for `db`). Stored values are rounded to `frac_bits` fractional bits.

use serde::{Deserialize, Serialize};

/// A quantized Gaussian-logarithm table pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussLogTable {
    /// Number of address bits (table has `2^addr_bits` entries).
    pub addr_bits: u32,
    /// Fraction bits of the stored values.
    pub frac_bits: u32,
    /// Argument range covered: `z ∈ (-range, 0]`.
    pub range: f64,
    sb: Vec<f64>,
    db: Vec<f64>,
}

impl GaussLogTable {
    /// Build the ROM contents.
    ///
    /// # Panics
    /// On zero sizes or a non-positive range.
    pub fn new(addr_bits: u32, frac_bits: u32, range: f64) -> GaussLogTable {
        assert!((1..=24).contains(&addr_bits), "address bits {addr_bits} out of 1..=24");
        assert!(frac_bits <= 32, "fraction bits too large");
        assert!(range > 0.0, "non-positive table range");
        let n = 1usize << addr_bits;
        let step = range / n as f64;
        let quant = (frac_bits as f64).exp2();
        let round = |x: f64| (x * quant).round() / quant;
        let mut sb = Vec::with_capacity(n);
        let mut db = Vec::with_capacity(n);
        for i in 0..n {
            // table entry i covers z = -(i + 0.5) * step (cell center)
            let z = -((i as f64 + 0.5) * step);
            sb.push(round((1.0 + z.exp2()).log2()));
            // db is singular at z = 0; the first cell's center is already
            // away from the pole, matching the hardware's special-casing
            // of exact cancellation upstream of the table.
            db.push(round((1.0 - z.exp2()).log2()));
        }
        GaussLogTable { addr_bits, frac_bits, range, sb, db }
    }

    /// Table size in entries.
    pub fn len(&self) -> usize {
        self.sb.len()
    }

    /// `true` if the table has no entries (never: construction demands ≥ 2).
    pub fn is_empty(&self) -> bool {
        self.sb.is_empty()
    }

    #[inline]
    fn index(&self, z: f64) -> Option<usize> {
        debug_assert!(z <= 0.0, "table argument must be non-positive");
        if z <= -self.range {
            return None; // asymptotic region
        }
        let n = self.sb.len();
        let i = ((-z) / self.range * n as f64) as usize;
        Some(i.min(n - 1))
    }

    /// Table lookup of `sb(z) = log₂(1 + 2^z)` for `z ≤ 0`.
    /// Beyond the covered range the asymptote 0 is returned.
    #[inline]
    pub fn sb(&self, z: f64) -> f64 {
        match self.index(z) {
            Some(i) => self.sb[i],
            None => 0.0,
        }
    }

    /// Table lookup of `db(z) = log₂(1 − 2^z)` for `z < 0`.
    /// Beyond the covered range the asymptote 0 is returned.
    #[inline]
    pub fn db(&self, z: f64) -> f64 {
        match self.index(z) {
            Some(i) => self.db[i],
            None => 0.0,
        }
    }

    /// Worst-case absolute error of the `sb` lookup against the exact
    /// function, probed at `samples` points — used by the table-size
    /// ablation.
    pub fn sb_max_error(&self, samples: usize) -> f64 {
        assert!(samples > 1, "need at least two samples");
        let mut worst = 0.0f64;
        for s in 0..samples {
            let z = -(s as f64 + 0.5) / samples as f64 * self.range;
            let exact = (1.0 + z.exp2()).log2();
            worst = worst.max((self.sb(z) - exact).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sb_matches_exact_function_at_high_resolution() {
        let t = GaussLogTable::new(16, 24, 16.0);
        for &z in &[-0.001f64, -0.5, -1.0, -3.7, -10.0] {
            let exact = (1.0 + z.exp2()).log2();
            assert!((t.sb(z) - exact).abs() < 1e-3, "z={z}: {} vs {exact}", t.sb(z));
        }
    }

    #[test]
    fn db_matches_exact_function_away_from_pole() {
        let t = GaussLogTable::new(16, 24, 16.0);
        for &z in &[-0.5f64, -1.0, -4.0, -12.0] {
            let exact = (1.0 - z.exp2()).log2();
            assert!((t.db(z) - exact).abs() < 1e-3, "z={z}");
        }
    }

    #[test]
    fn asymptote_beyond_range() {
        let t = GaussLogTable::new(8, 12, 8.0);
        assert_eq!(t.sb(-100.0), 0.0);
        assert_eq!(t.db(-100.0), 0.0);
        assert_eq!(t.sb(-8.0), 0.0);
    }

    #[test]
    fn error_shrinks_with_address_bits() {
        let coarse = GaussLogTable::new(6, 20, 16.0).sb_max_error(4096);
        let fine = GaussLogTable::new(12, 20, 16.0).sb_max_error(4096);
        assert!(fine < coarse / 8.0, "doubling address bits x6 must cut error: {coarse} -> {fine}");
    }

    #[test]
    fn stored_values_are_on_the_fraction_grid() {
        let t = GaussLogTable::new(6, 8, 8.0);
        let q = 256.0;
        for i in 0..t.len() {
            let v = t.sb[i] * q;
            assert!((v - v.round()).abs() < 1e-9, "entry {i} not on the grid");
        }
    }

    #[test]
    fn table_sizes() {
        assert_eq!(GaussLogTable::new(10, 8, 16.0).len(), 1024);
        assert!(!GaussLogTable::new(1, 8, 16.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of 1..=24")]
    fn zero_address_bits_rejected() {
        GaussLogTable::new(0, 8, 8.0);
    }

    #[test]
    #[should_panic(expected = "non-positive table range")]
    fn bad_range_rejected() {
        GaussLogTable::new(8, 8, 0.0);
    }
}
