//! Logarithmic number system (LNS) arithmetic.
//!
//! The G5 pipeline performs its intermediate arithmetic in a
//! *logarithmic* format: a value is stored as a sign plus a fixed-point
//! `log₂|x|`. Multiplication, division, powers and roots are then exact
//! integer operations on the log word; **addition** goes through the
//! Gaussian-logarithm function `sb(z) = log₂(1 + 2^z)` (and
//! `db(z) = log₂(1 - 2^z)` for subtraction), which the hardware
//! evaluates with a lookup table. The only rounding in the whole
//! pipeline is the quantization of each result's log to `frac_bits`
//! fractional bits — and that single parameter sets the characteristic
//! pairwise force error the paper quotes as ≈ 0.3 %.
//!
//! We evaluate `sb`/`db` in `f64` and round the result to `frac_bits`,
//! which is exactly equivalent to a full-resolution hardware table.
//! The per-operation relative error of an LNS with quantum
//! `q = 2^-frac_bits` is at most `2^(q/2) − 1 ≈ q·ln2/2`.

use serde::{Deserialize, Serialize};

/// Word-format of the logarithmic pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LnsConfig {
    /// Fractional bits of the fixed-point log₂ word. GRAPE-5's
    /// effective resolution corresponds to 8 fractional bits (≈ 0.3 %
    /// pairwise force error); GRAPE-3's shorter word to ≈ 5–6 bits
    /// (≈ 2 % error).
    pub frac_bits: u32,
    /// Smallest representable exponent (log₂ value). Anything smaller
    /// underflows to zero, like the hardware.
    pub exp_min: i32,
    /// Largest representable exponent; results saturate here.
    pub exp_max: i32,
}

impl LnsConfig {
    /// Construct a config; panics on an inverted exponent range.
    pub fn new(frac_bits: u32, exp_min: i32, exp_max: i32) -> Self {
        assert!(exp_min < exp_max, "inverted exponent range {exp_min}..{exp_max}");
        assert!(frac_bits <= 32, "frac_bits {frac_bits} too large");
        LnsConfig { frac_bits, exp_min, exp_max }
    }

    /// GRAPE-5-like format: 8 fractional bits, wide exponent range.
    pub const GRAPE5: LnsConfig = LnsConfig { frac_bits: 8, exp_min: -512, exp_max: 511 };

    /// GRAPE-3-like format: 6 fractional bits (≈ 2 % pairwise error).
    pub const GRAPE3: LnsConfig = LnsConfig { frac_bits: 6, exp_min: -128, exp_max: 127 };

    /// Quantization step of the log word.
    #[inline]
    pub fn quantum(self) -> f64 {
        (-(self.frac_bits as f64)).exp2()
    }

    /// Upper bound on the relative error introduced by one rounding.
    #[inline]
    pub fn unit_relative_error(self) -> f64 {
        (0.5 * self.quantum()).exp2() - 1.0
    }

    #[inline]
    fn raw_min(self) -> i64 {
        (self.exp_min as i64) << self.frac_bits
    }

    #[inline]
    fn raw_max(self) -> i64 {
        (self.exp_max as i64) << self.frac_bits
    }

    /// Round a real-valued log₂ to the word grid, handling under/overflow.
    /// Returns `None` on underflow (value becomes zero).
    #[inline]
    fn round_log(self, log2x: f64) -> Option<i64> {
        if log2x.is_nan() {
            return None;
        }
        let raw = (log2x * (self.frac_bits as f64).exp2()).round();
        if raw < self.raw_min() as f64 {
            None
        } else if raw > self.raw_max() as f64 {
            Some(self.raw_max())
        } else {
            Some(raw as i64)
        }
    }

    /// Encode an `f64` into this LNS format.
    ///
    /// Formats small enough to tabulate go through the table-driven
    /// converter (the real chip's input stage is a ROM, not a `log`
    /// unit); other formats use [`encode_libm`](Self::encode_libm).
    /// The two agree bit-for-bit on every tabulated format — see the
    /// conversion-table tests in [`crate::lns_table`].
    #[inline]
    pub fn encode(self, x: f64) -> Lns {
        match crate::lns_table::conv_tables(self) {
            Some(t) => t.encode(x),
            None => self.encode_libm(x),
        }
    }

    /// Encode via `f64::log2`, the pre-table reference converter. Kept
    /// callable so the conversion tables can be validated against it
    /// and so perf harnesses can measure the untabled path.
    #[inline]
    pub fn encode_libm(self, x: f64) -> Lns {
        if x == 0.0 || x.is_nan() {
            return Lns { sign: 0, raw: 0, cfg: self };
        }
        match self.round_log(x.abs().log2()) {
            None => Lns { sign: 0, raw: 0, cfg: self },
            Some(raw) => Lns { sign: if x > 0.0 { 1 } else { -1 }, raw, cfg: self },
        }
    }

    /// Smallest representable raw log word (`exp_min` scaled to the grid).
    #[inline]
    pub fn raw_word_min(self) -> i64 {
        self.raw_min()
    }

    /// Largest representable raw log word (`exp_max` scaled to the grid).
    #[inline]
    pub fn raw_word_max(self) -> i64 {
        self.raw_max()
    }
}

/// A sign–log value in a given [`LnsConfig`] format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lns {
    /// −1, 0, or +1. Zero is a distinguished value (log is meaningless).
    sign: i8,
    /// Fixed-point log₂|x| with `cfg.frac_bits` fractional bits.
    raw: i64,
    cfg: LnsConfig,
}

// value-semantics arithmetic methods deliberately named after the
// hardware operations (mul/add/...), not the std operator traits: every
// call site carries an explicit LNS format check
#[allow(clippy::should_implement_trait)]
impl Lns {
    /// The zero value.
    #[inline]
    pub fn zero(cfg: LnsConfig) -> Self {
        Lns { sign: 0, raw: 0, cfg }
    }

    /// Assemble a value from its hardware words: a sign and a raw
    /// fixed-point log₂ word already on the format's grid. `sign == 0`
    /// yields the distinguished zero regardless of `raw`.
    ///
    /// This is the interface the table-driven converters and the batch
    /// device kernel use; `raw` must lie within the format's word range.
    #[inline]
    pub fn from_raw(sign: i8, raw: i64, cfg: LnsConfig) -> Lns {
        debug_assert!((-1..=1).contains(&sign), "bad LNS sign {sign}");
        if sign == 0 {
            return Lns::zero(cfg);
        }
        debug_assert!(
            (cfg.raw_min()..=cfg.raw_max()).contains(&raw),
            "raw log word {raw} outside format range"
        );
        Lns { sign, raw, cfg }
    }

    /// The raw fixed-point log₂ word (meaningless for zero values).
    #[inline]
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// Sign of the value: −1, 0 or +1.
    #[inline]
    pub fn signum(self) -> i8 {
        self.sign
    }

    /// `true` if the value is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.sign == 0
    }

    /// The format this value is stored in.
    #[inline]
    pub fn config(self) -> LnsConfig {
        self.cfg
    }

    /// The stored log₂|x| as a real number (∞ for zero is avoided by
    /// returning `f64::NEG_INFINITY`).
    #[inline]
    pub fn log2_abs(self) -> f64 {
        if self.sign == 0 {
            f64::NEG_INFINITY
        } else {
            self.raw as f64 * self.cfg.quantum()
        }
    }

    /// Decode to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        if self.sign == 0 {
            0.0
        } else {
            self.sign as f64 * self.log2_abs().exp2()
        }
    }

    #[inline]
    fn with_log(self, sign: i8, log2x: f64) -> Lns {
        match self.cfg.round_log(log2x) {
            None => Lns::zero(self.cfg),
            Some(raw) => Lns { sign, raw, cfg: self.cfg },
        }
    }

    /// Multiplication: exact add of log words (one possible saturation).
    #[inline]
    pub fn mul(self, o: Lns) -> Lns {
        debug_assert_eq!(self.cfg, o.cfg, "LNS format mismatch");
        if self.sign == 0 || o.sign == 0 {
            return Lns::zero(self.cfg);
        }
        let raw = self.raw + o.raw;
        if raw < self.cfg.raw_min() {
            return Lns::zero(self.cfg);
        }
        Lns { sign: self.sign * o.sign, raw: raw.min(self.cfg.raw_max()), cfg: self.cfg }
    }

    /// Division: exact subtract of log words. Division by zero saturates
    /// to the largest representable magnitude (hardware clamps).
    #[inline]
    pub fn div(self, o: Lns) -> Lns {
        debug_assert_eq!(self.cfg, o.cfg, "LNS format mismatch");
        if self.sign == 0 {
            return Lns::zero(self.cfg);
        }
        if o.sign == 0 {
            return Lns { sign: self.sign, raw: self.cfg.raw_max(), cfg: self.cfg };
        }
        let raw = self.raw - o.raw;
        if raw < self.cfg.raw_min() {
            return Lns::zero(self.cfg);
        }
        Lns { sign: self.sign * o.sign, raw: raw.min(self.cfg.raw_max()), cfg: self.cfg }
    }

    /// Square: exact doubling of the log word.
    #[inline]
    pub fn square(self) -> Lns {
        self.mul(self)
    }

    /// Raise |x| to the power `num/den` by exact rational scaling of the
    /// log word (rounded to the grid). Sign handling: for the pipeline's
    /// `(r² + ε²)^(−3/2)` the argument is always positive; a negative
    /// base with an even-root power saturates to zero.
    #[inline]
    pub fn powi_rational(self, num: i64, den: i64) -> Lns {
        assert!(den != 0, "zero denominator");
        if self.sign == 0 {
            return if num > 0 {
                Lns::zero(self.cfg)
            } else {
                // 0^negative: saturate to max magnitude
                Lns { sign: 1, raw: self.cfg.raw_max(), cfg: self.cfg }
            };
        }
        if self.sign < 0 && den % 2 == 0 {
            return Lns::zero(self.cfg);
        }
        let sign = if self.sign < 0 && num % 2 != 0 { -1 } else { 1 };
        let t = self.raw as i128 * num as i128;
        // Half-denominators (the pipeline's roots) stay in integer
        // arithmetic: for |t| < 2^53 both the i128→f64 cast and the
        // division by ±2 are exact, so round-half-away-from-zero on
        // integers reproduces the f64 rounding bit for bit.
        if den.abs() == 2 && t.abs() < (1i128 << 53) {
            let t = if den < 0 { -t } else { t } as i64;
            let raw = if t % 2 == 0 { t / 2 } else { t / 2 + t.signum() };
            if raw < self.cfg.raw_min() {
                return Lns::zero(self.cfg);
            }
            return Lns { sign, raw: raw.min(self.cfg.raw_max()), cfg: self.cfg };
        }
        // round-to-nearest rational scaling of the raw log word
        let scaled = t as f64 / den as f64;
        let raw = scaled.round();
        if raw < self.cfg.raw_min() as f64 {
            return Lns::zero(self.cfg);
        }
        let raw = (raw as i64).min(self.cfg.raw_max());
        Lns { sign, raw, cfg: self.cfg }
    }

    /// `x^(−3/2)` — the pipeline's combined square-root + reciprocal-cube
    /// unit applied to `r² + ε²`.
    #[inline]
    pub fn pow_neg_3_2(self) -> Lns {
        self.powi_rational(-3, 2)
    }

    /// Addition through the Gaussian-logarithm table.
    pub fn add(self, o: Lns) -> Lns {
        debug_assert_eq!(self.cfg, o.cfg, "LNS format mismatch");
        if self.sign == 0 {
            return o;
        }
        if o.sign == 0 {
            return self;
        }
        // Order so |a| >= |b|.
        let (a, b) = if self.raw >= o.raw { (self, o) } else { (o, self) };
        let q = self.cfg.quantum();
        let z = (b.raw - a.raw) as f64 * q; // z = log2(|b|/|a|) <= 0
        if a.sign == b.sign {
            // sb(z) = log2(1 + 2^z)
            let sb = z.exp2().ln_2p1();
            a.with_log(a.sign, a.raw as f64 * q + sb)
        } else {
            // db(z) = log2(1 - 2^z); exact cancellation when z == 0
            if a.raw == b.raw {
                return Lns::zero(self.cfg);
            }
            let db = (-z.exp2()).ln_2p1();
            a.with_log(a.sign, a.raw as f64 * q + db)
        }
    }

    /// Addition through a *finite* hardware ROM table instead of the
    /// ideal (full-resolution) table of [`Lns::add`] — used by the
    /// table-size ablation to reproduce the GRAPE-3 → GRAPE-5 accuracy
    /// trade.
    pub fn add_via_table(self, o: Lns, table: &crate::lns_table::GaussLogTable) -> Lns {
        debug_assert_eq!(self.cfg, o.cfg, "LNS format mismatch");
        if self.sign == 0 {
            return o;
        }
        if o.sign == 0 {
            return self;
        }
        let (a, b) = if self.raw >= o.raw { (self, o) } else { (o, self) };
        let q = self.cfg.quantum();
        let z = (b.raw - a.raw) as f64 * q;
        if a.sign == b.sign {
            a.with_log(a.sign, a.raw as f64 * q + table.sb(z))
        } else {
            if a.raw == b.raw {
                return Lns::zero(self.cfg);
            }
            a.with_log(a.sign, a.raw as f64 * q + table.db(z))
        }
    }

    /// Subtraction via negation + addition.
    #[inline]
    pub fn sub(self, o: Lns) -> Lns {
        self.add(o.neg())
    }

    /// Negation (exact).
    #[inline]
    pub fn neg(self) -> Lns {
        Lns { sign: -self.sign, raw: self.raw, cfg: self.cfg }
    }

    /// Absolute value (exact).
    #[inline]
    pub fn abs(self) -> Lns {
        Lns { sign: self.sign.abs(), raw: self.raw, cfg: self.cfg }
    }
}

/// `log2(1 + x)` helper with a name that keeps the call sites readable.
trait Ln2p1 {
    fn ln_2p1(self) -> f64;
}

impl Ln2p1 for f64 {
    #[inline]
    fn ln_2p1(self) -> f64 {
        self.ln_1p() / std::f64::consts::LN_2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: LnsConfig = LnsConfig::GRAPE5;

    fn rel_err(approx: f64, exact: f64) -> f64 {
        if exact == 0.0 {
            approx.abs()
        } else {
            ((approx - exact) / exact).abs()
        }
    }

    #[test]
    fn encode_decode_roundtrip_error() {
        let tol = CFG.unit_relative_error();
        for &x in &[1.0, -1.0, std::f64::consts::PI, 1e-6, -273.15, 8.0, 1.0 / 1024.0] {
            let v = CFG.encode(x);
            assert!(rel_err(v.to_f64(), x) <= tol, "x={x} got {}", v.to_f64());
            assert_eq!(v.signum() as f64, x.signum());
        }
    }

    #[test]
    fn zero_is_distinguished() {
        let z = CFG.encode(0.0);
        assert!(z.is_zero());
        assert_eq!(z.to_f64(), 0.0);
        assert!(CFG.encode(f64::NAN).is_zero());
    }

    #[test]
    fn powers_of_two_are_exact() {
        for e in -100..100 {
            let x = (e as f64).exp2();
            assert_eq!(CFG.encode(x).to_f64(), x);
        }
    }

    #[test]
    fn mul_is_near_exact() {
        let a = CFG.encode(3.0);
        let b = CFG.encode(7.0);
        // product of two already-quantized values: no additional rounding
        let exact = a.to_f64() * b.to_f64();
        assert!(rel_err(a.mul(b).to_f64(), exact) < 1e-12);
        assert_eq!(a.mul(CFG.encode(0.0)).to_f64(), 0.0);
        assert_eq!(a.mul(b).signum(), 1);
        assert_eq!(a.neg().mul(b).signum(), -1);
    }

    #[test]
    fn div_behaviour() {
        let a = CFG.encode(10.0);
        let b = CFG.encode(4.0);
        assert!(rel_err(a.div(b).to_f64(), a.to_f64() / b.to_f64()) < 1e-12);
        // division by zero saturates
        let sat = a.div(Lns::zero(CFG));
        assert!(sat.to_f64() > 1e100);
        assert_eq!(Lns::zero(CFG).div(b).to_f64(), 0.0);
    }

    #[test]
    fn add_same_sign() {
        let tol = 3.0 * CFG.unit_relative_error();
        for &(x, y) in &[(1.0, 1.0), (3.0, 5.0), (1e-3, 1.0), (100.0, 0.01)] {
            let a = CFG.encode(x);
            let b = CFG.encode(y);
            let exact = a.to_f64() + b.to_f64();
            assert!(rel_err(a.add(b).to_f64(), exact) <= tol, "x={x} y={y}");
        }
    }

    #[test]
    fn add_opposite_sign_cancellation() {
        let a = CFG.encode(5.0);
        assert_eq!(a.add(a.neg()).to_f64(), 0.0);
        // near-cancellation amplifies relative error but keeps sign right
        let b = CFG.encode(-4.9);
        let r = a.add(b);
        assert!(r.to_f64() > 0.0);
        assert!((r.to_f64() - 0.1).abs() < 0.02);
    }

    #[test]
    fn sub_matches_add_neg() {
        let a = CFG.encode(9.5);
        let b = CFG.encode(2.5);
        assert_eq!(a.sub(b), a.add(b.neg()));
    }

    #[test]
    fn table_add_converges_to_ideal_add() {
        use crate::lns_table::GaussLogTable;
        let fine = GaussLogTable::new(16, 24, 32.0);
        let coarse = GaussLogTable::new(3, 4, 32.0);
        let a = CFG.encode(3.0);
        let b = CFG.encode(5.0);
        let ideal = a.add(b).to_f64();
        let v_fine = a.add_via_table(b, &fine).to_f64();
        let v_coarse = a.add_via_table(b, &coarse).to_f64();
        assert!((v_fine - ideal).abs() / ideal < 5e-3, "fine table off: {v_fine} vs {ideal}");
        assert!(
            (v_coarse - ideal).abs() >= (v_fine - ideal).abs(),
            "coarse table cannot beat the fine table"
        );
        // identity cases still hold
        assert_eq!(Lns::zero(CFG).add_via_table(a, &fine), a);
        assert_eq!(a.add_via_table(a.neg(), &fine).to_f64(), 0.0);
    }

    #[test]
    fn pow_neg_3_2_accuracy() {
        let tol = 2.0 * CFG.unit_relative_error();
        for &x in &[1.0, 2.0, 0.25, 1e4, 3.7] {
            let v = CFG.encode(x);
            let exact = v.to_f64().powf(-1.5);
            assert!(rel_err(v.pow_neg_3_2().to_f64(), exact) <= tol, "x={x}");
        }
    }

    #[test]
    fn powi_rational_edge_cases() {
        let z = Lns::zero(CFG);
        assert!(z.powi_rational(3, 2).is_zero());
        assert!(z.powi_rational(-3, 2).to_f64() > 1e100); // 0^-1.5 saturates
                                                          // negative base, even root -> zero (hardware never sees this path)
        assert!(CFG.encode(-2.0).powi_rational(1, 2).is_zero());
        // negative base, odd power keeps sign
        assert_eq!(CFG.encode(-2.0).powi_rational(3, 1).signum(), -1);
    }

    #[test]
    fn underflow_to_zero_and_overflow_saturation() {
        let cfg = LnsConfig::new(8, -16, 15);
        assert!(cfg.encode(1e-10).is_zero()); // below 2^-16
                                              // above 2^15: saturates at raw_max = exp_max << frac_bits, i.e. exactly 2^15
        let big = cfg.encode(1e10);
        assert_eq!(big.to_f64(), 32768.0);
    }

    #[test]
    fn grape3_config_is_coarser() {
        assert!(LnsConfig::GRAPE3.unit_relative_error() > LnsConfig::GRAPE5.unit_relative_error());
    }

    #[test]
    fn unit_relative_error_magnitude() {
        // 8 fractional bits: q = 2^-8, per-op error ~ q*ln2/2 ~ 1.4e-3
        let e = LnsConfig::GRAPE5.unit_relative_error();
        assert!(e > 1.0e-3 && e < 1.7e-3, "e={e}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const CFG: LnsConfig = LnsConfig::GRAPE5;

    fn nonzero() -> impl Strategy<Value = f64> {
        prop_oneof![0.001f64..1e6, -1e6f64..-0.001]
    }

    proptest! {
        #[test]
        fn roundtrip_relative_error_bounded(x in nonzero()) {
            let v = CFG.encode(x);
            let rel = ((v.to_f64() - x) / x).abs();
            prop_assert!(rel <= CFG.unit_relative_error() + 1e-12);
        }

        #[test]
        fn mul_commutes(x in nonzero(), y in nonzero()) {
            let (a, b) = (CFG.encode(x), CFG.encode(y));
            prop_assert_eq!(a.mul(b), b.mul(a));
        }

        #[test]
        fn add_commutes(x in nonzero(), y in nonzero()) {
            let (a, b) = (CFG.encode(x), CFG.encode(y));
            prop_assert_eq!(a.add(b), b.add(a));
        }

        #[test]
        fn add_same_sign_relative_error(x in 0.001f64..1e6, y in 0.001f64..1e6) {
            let (a, b) = (CFG.encode(x), CFG.encode(y));
            let exact = a.to_f64() + b.to_f64();
            let rel = ((a.add(b).to_f64() - exact) / exact).abs();
            prop_assert!(rel <= 2.0 * CFG.unit_relative_error() + 1e-12);
        }

        #[test]
        fn neg_is_involution(x in nonzero()) {
            let a = CFG.encode(x);
            prop_assert_eq!(a.neg().neg(), a);
        }

        #[test]
        fn square_is_nonnegative(x in nonzero()) {
            prop_assert!(CFG.encode(x).square().to_f64() >= 0.0);
        }
    }
}
