//! Disjoint-set union (union–find) with path halving and union by
//! size — the substrate of the friends-of-friends halo finder.

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Dsu {
        assert!(n <= u32::MAX as usize, "too many elements");
        Dsu { parent: (0..n as u32).collect(), size: vec![1; n], sets: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` for an empty forest.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p];
            self.parent[x] = gp;
            x = gp as usize;
        }
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were
    /// separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Size of `x`'s set.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Group the elements by set, returning each set's member list
    /// (sets of size ≥ `min_size` only, largest first).
    pub fn groups(&mut self, min_size: usize) -> Vec<Vec<u32>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<u32>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x as u32);
        }
        let mut out: Vec<Vec<u32>> =
            by_root.into_values().filter(|g| g.len() >= min_size).collect();
        out.sort_by_key(|g| std::cmp::Reverse(g.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut d = Dsu::new(5);
        assert_eq!(d.set_count(), 5);
        assert_eq!(d.len(), 5);
        for i in 0..5 {
            assert_eq!(d.find(i), i);
            assert_eq!(d.size_of(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut d = Dsu::new(6);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 3), "already merged");
        assert_eq!(d.set_count(), 3);
        assert_eq!(d.size_of(3), 4);
        assert_eq!(d.find(0), d.find(3));
        assert_ne!(d.find(0), d.find(4));
    }

    #[test]
    fn groups_filter_and_order() {
        let mut d = Dsu::new(7);
        d.union(0, 1);
        d.union(1, 2);
        d.union(3, 4);
        let gs = d.groups(2);
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].len(), 3);
        assert_eq!(gs[1].len(), 2);
        let all = d.groups(1);
        assert_eq!(all.iter().map(|g| g.len()).sum::<usize>(), 7);
    }

    #[test]
    fn long_chain_path_compression() {
        let n = 10_000;
        let mut d = Dsu::new(n);
        for i in 1..n {
            d.union(i - 1, i);
        }
        assert_eq!(d.set_count(), 1);
        assert_eq!(d.size_of(0), n);
        assert_eq!(d.find(n - 1), d.find(0));
    }
}
