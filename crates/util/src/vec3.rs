//! A plain-old-data 3-vector of `f64`.
//!
//! Deliberately minimal: the hot loops in this workspace operate on
//! structure-of-arrays slices, and `Vec3` is the convenient interchange
//! type at API boundaries (positions, velocities, accelerations).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-vector of `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// A vector with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn dist2(self, o: Vec3) -> f64 {
        (self - o).norm2()
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        self.dist2(o).sqrt()
    }

    /// Unit vector in the direction of `self`; `None` for the zero vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        (n > 0.0).then(|| self / n)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// `true` if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as an array `[x, y, z]`.
    #[inline]
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Construct from an array `[x, y, z]`.
    #[inline]
    pub const fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.x, 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::from_array([1.0, 2.0, 3.0]), v);
        assert_eq!(Vec3::splat(4.0), Vec3::new(4.0, 4.0, 4.0));
        assert_eq!(Vec3::ZERO + v, v);
    }

    #[test]
    fn index_mut_roundtrip() {
        let mut v = Vec3::ZERO;
        for i in 0..3 {
            v[i] = (i + 1) as f64;
        }
        assert_eq!(v, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));

        let mut c = a;
        c += b;
        c -= b;
        c *= 3.0;
        c /= 3.0;
        assert_eq!(c, a);
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), Vec3::new(0.0, 0.0, -1.0));
        // cross product is perpendicular to both inputs
        let u = Vec3::new(1.3, -2.2, 0.7);
        let v = Vec3::new(0.4, 5.0, -1.1);
        let w = u.cross(v);
        assert!(w.dot(u).abs() < 1e-12);
        assert!(w.dot(v).abs() < 1e-12);
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm2(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dist(Vec3::ZERO), 5.0);
        assert_eq!(v.dist2(Vec3::new(3.0, 0.0, 0.0)), 16.0);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn component_ops() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, 4.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, -3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -1.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), -3.0);
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn sum_iterator() {
        let vs = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.0, 0.0, 3.0)];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(1.0, 2.0, 3.0));
    }
}
