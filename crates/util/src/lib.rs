#![warn(missing_docs)]
//! # g5util — shared substrate for the GRAPE-5 treecode reproduction
//!
//! Small, dependency-light building blocks used by every other crate in
//! the workspace:
//!
//! * [`vec3`] — a plain-old-data 3-vector of `f64` with the arithmetic
//!   an N-body code needs (no SIMD intrinsics; the compiler
//!   autovectorizes the structure-of-arrays loops that matter).
//! * [`fixed`] — parameterized two's-complement fixed-point values, the
//!   format GRAPE-5 uses for particle positions and force accumulation.
//! * [`lns`] — a logarithmic number system (sign + fixed-point log₂),
//!   the format the G5 pipeline uses internally; this is what gives the
//!   hardware its characteristic ≈0.3 % pairwise force error.
//! * [`morton`] — 3-D Morton (Z-order) codes used by the octree build.
//! * [`morton_sort`] — the shared quantize + LSD-radix-sort step the
//!   octree build and the cluster domain decomposition both start from.
//! * [`counters`] — interaction/flop accounting with the 38-operation
//!   convention the paper (and Warren & Salmon) use.
//! * [`stats`] — mean / RMS / percentile / histogram helpers used by the
//!   accuracy experiments.

pub mod counters;
pub mod dsu;
pub mod fixed;
pub mod lns;
pub mod lns_table;
pub mod morton;
pub mod morton_sort;
pub mod stats;
pub mod vec3;

pub use counters::{FlopConvention, InteractionCounter};
pub use fixed::Fixed;
pub use lns::{Lns, LnsConfig};
pub use vec3::Vec3;
