//! Logarithmic-number-system primitive throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use g5util::lns::LnsConfig;
use std::hint::black_box;

fn bench_lns(c: &mut Criterion) {
    let cfg = LnsConfig::GRAPE5;
    let xs: Vec<f64> = (1..=1024).map(|k| k as f64 * 0.37 + 0.01).collect();
    let encoded: Vec<_> = xs.iter().map(|&x| cfg.encode(x)).collect();

    let mut g = c.benchmark_group("lns_ops");
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            for &x in &xs {
                black_box(cfg.encode(black_box(x)));
            }
        })
    });
    g.bench_function("mul", |b| {
        b.iter(|| {
            for w in encoded.windows(2) {
                black_box(w[0].mul(w[1]));
            }
        })
    });
    g.bench_function("add", |b| {
        b.iter(|| {
            for w in encoded.windows(2) {
                black_box(w[0].add(w[1]));
            }
        })
    });
    g.bench_function("pow_neg_3_2", |b| {
        b.iter(|| {
            for &e in &encoded {
                black_box(e.pow_neg_3_2());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lns);
criterion_main!(benches);
