//! Functional-simulation throughput of the G5 pipeline: bit-faithful
//! LNS arithmetic vs the fast f64 path (both with identical timing
//! accounting).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use g5util::fixed::RangeScaler;
use grape5::pipeline::{G5Pipeline, JWord};
use grape5::{ArithMode, Grape5Config};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let scaler = RangeScaler::new(-1.0, 1.0, 32);
    let q = scaler.quantum();
    let words: Vec<JWord> = (1..=4096i64)
        .map(|k| {
            let raw = [k * 1_000_003 % (1 << 30), (k * 37) % (1 << 29), k * k % (1 << 28)];
            (raw, 1.0 + (k % 7) as f64)
        })
        .map(|(raw, m)| {
            let cfg = Grape5Config::paper();
            let p = G5Pipeline::new(&cfg, q, 0.0);
            JWord { raw, m_lns: p.encode_mass(m), m }
        })
        .collect();

    let mut g = c.benchmark_group("grape_pipeline");
    g.throughput(Throughput::Elements(words.len() as u64));
    for (name, mode) in [("lns", ArithMode::Lns), ("exact", ArithMode::Exact)] {
        let cfg = Grape5Config { mode, ..Grape5Config::paper() };
        let pipe = G5Pipeline::new(&cfg, q, 0.0);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for w in &words {
                    acc += pipe.interact(black_box([123, -456, 789]), w).acc.x;
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
