//! Interaction-list construction throughput (host-side phase 2):
//! modified (grouped) vs original traversal at the paper's theta.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use g5_bench::plummer;
use g5tree::traverse::Traversal;
use g5tree::tree::Tree;
use std::hint::black_box;

fn bench_traverse(c: &mut Criterion) {
    let snap = plummer(100_000, 2);
    let tree = Tree::build(&snap.pos, &snap.mass);
    let tr = Traversal::new(0.75);

    let mut g = c.benchmark_group("tree_traverse");
    g.sample_size(10);
    for ng in [500usize, 2000, 8000] {
        g.bench_with_input(BenchmarkId::new("modified", ng), &ng, |b, &ng| {
            b.iter(|| black_box(tr.modified_tally(&tree, ng)));
        });
    }
    g.bench_function("original", |b| b.iter(|| black_box(tr.original_tally(&tree))));
    g.finish();
}

criterion_group!(benches, bench_traverse);
criterion_main!(benches);
