//! Interaction-list construction throughput (host-side phase 2):
//! modified (grouped) vs original traversal at the paper's theta.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use g5_bench::plummer;
use g5tree::traverse::{Traversal, TraverseScratch};
use g5tree::tree::Tree;
use std::hint::black_box;

fn bench_traverse(c: &mut Criterion) {
    let snap = plummer(100_000, 2);
    let tree = Tree::build(&snap.pos, &snap.mass);
    let tr = Traversal::new(0.75);

    let mut g = c.benchmark_group("tree_traverse");
    g.sample_size(10);
    for ng in [500usize, 2000, 8000] {
        g.bench_with_input(BenchmarkId::new("modified", ng), &ng, |b, &ng| {
            b.iter(|| black_box(tr.modified_tally(&tree, ng)));
        });
    }
    g.bench_function("original", |b| b.iter(|| black_box(tr.original_tally(&tree))));
    g.finish();
}

/// SoA explicit-stack walk vs the kept recursive reference, serial over
/// all groups with retained buffers — the per-group cost the host
/// overhaul targets.
fn bench_walk_paths(c: &mut Criterion) {
    let snap = plummer(100_000, 2);
    let tree = Tree::build(&snap.pos, &snap.mass);
    let tr = Traversal::new(0.75);
    let groups = tr.find_groups(&tree, 2000);
    let mut scratch = TraverseScratch::default();
    let mut out = Vec::new();

    let mut g = c.benchmark_group("walk_paths");
    g.sample_size(20);
    g.bench_function("soa_stack", |b| {
        b.iter(|| {
            let mut terms = 0usize;
            for &gr in &groups {
                tr.modified_list_with(&tree, gr, &mut scratch, &mut out);
                terms += out.len();
            }
            black_box(terms)
        });
    });
    g.bench_function("recursive_reference", |b| {
        b.iter(|| {
            let mut terms = 0usize;
            for &gr in &groups {
                tr.modified_list_reference(&tree, gr, &mut out);
                terms += out.len();
            }
            black_box(terms)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_traverse, bench_walk_paths);
criterion_main!(benches);
