//! In-crate FFT throughput (the IC-generation substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use g5ic::fft::{fft_inplace, Cpx, Grid3};
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [1024usize, 16384] {
        let data: Vec<Cpx> = (0..n).map(|k| Cpx::new((k as f64).sin(), 0.0)).collect();
        g.bench_with_input(BenchmarkId::new("fft1d", n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                fft_inplace(black_box(&mut d), false);
                black_box(d)
            });
        });
    }
    g.sample_size(10);
    g.bench_function("fft3d_64", |b| {
        let mut grid = Grid3::zeros(64);
        for i in 0..64 {
            *grid.get_mut(i, i, i) = Cpx::real(1.0);
        }
        b.iter(|| {
            let mut g2 = grid.clone();
            g2.fft3(false);
            black_box(g2)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
