//! Serial vs. overlapped force-plan pipeline, one full TreeGrape force
//! evaluation per iteration (the per-step cost that dominates a run).
//!
//! ```text
//! cargo bench -p g5-bench --bench step_pipeline
//! ```
//!
//! The evaluation drives the *simulated* GRAPE in exact mode, so
//! "device" time here is host CPU emulating the pipelines; on a
//! single-core machine the overlapped mode then cannot beat serial by
//! much — the interesting outputs are that streaming adds no overhead
//! and (see `exp_pipeline`) collapses peak memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use g5_bench::plummer;
use g5tree::plan::PlanConfig;
use treegrape::backends::ForceBackend;
use treegrape::{TreeGrape, TreeGrapeConfig};

fn bench_step_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_pipeline");
    group.sample_size(2);
    for &n in &[16_384usize, 65_536] {
        let snap = plummer(n, 77);
        let base = TreeGrapeConfig::paper(0.01);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("serial", n), &snap, |b, s| {
            let mut backend =
                TreeGrape::new(TreeGrapeConfig { plan: PlanConfig::serial(), ..base });
            b.iter(|| backend.compute(&s.pos, &s.mass));
        });
        group.bench_with_input(BenchmarkId::new("overlapped", n), &snap, |b, s| {
            let mut backend =
                TreeGrape::new(TreeGrapeConfig { plan: PlanConfig::overlapped(2, 4), ..base });
            b.iter(|| backend.compute(&s.pos, &s.mass));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step_pipeline);
criterion_main!(benches);
