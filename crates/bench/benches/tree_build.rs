//! Octree construction throughput (host-side phase 1 of every step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use g5_bench::plummer;
use g5tree::tree::Tree;
use std::hint::black_box;

fn bench_tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    for n in [10_000usize, 50_000, 200_000] {
        let snap = plummer(n, 1);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| Tree::build(black_box(&snap.pos), black_box(&snap.mass)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tree_build);
criterion_main!(benches);
