//! Octree construction throughput (host-side phase 1 of every step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use g5_bench::plummer;
use g5tree::tree::Tree;
use std::hint::black_box;

fn bench_tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    for n in [10_000usize, 50_000, 200_000] {
        let snap = plummer(n, 1);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| Tree::build(black_box(&snap.pos), black_box(&snap.mass)));
        });
    }
    g.finish();
}

/// Incremental refresh on a frozen topology (the K-amortized step of
/// the host overhaul) vs the full rebuild it replaces.
fn bench_tree_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_refresh");
    for n in [50_000usize, 200_000] {
        let snap = plummer(n, 1);
        let moved: Vec<_> = snap.pos.iter().zip(&snap.vel).map(|(p, v)| *p + *v * 1e-3).collect();
        let mut tree = Tree::build(&snap.pos, &snap.mass);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| tree.refresh(black_box(&moved), black_box(&snap.mass)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tree_build, bench_tree_refresh);
criterion_main!(benches);
