//! Whole-force-computation comparison: direct O(N^2) vs the modified
//! treecode, on the host (the E8 scaling experiment's micro version).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use g5_bench::plummer;
use std::hint::black_box;
use treegrape::{DirectHost, ForceBackend, TreeHost};

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_vs_direct");
    g.sample_size(10);
    for n in [4096usize, 16384] {
        let snap = plummer(n, 3);
        g.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            let mut backend = DirectHost::new(0.01);
            b.iter(|| black_box(backend.compute(&snap.pos, &snap.mass)));
        });
        g.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            let mut backend = TreeHost::modified(0.75, 512, 0.01);
            b.iter(|| black_box(backend.compute(&snap.pos, &snap.mass)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
