//! **E4 — modified vs original tree algorithm (§3, §5).**
//!
//! Two claims of the paper:
//!
//! * the modified algorithm evaluates *more* pairwise interactions
//!   (§5: 2.90 × 10¹³ modified vs 4.69 × 10¹² original, ratio ≈ 6.2×),
//!   which is why the Gflops correction exists;
//! * "our modified tree algorithm is more accurate than the original
//!   tree algorithm for the same accuracy parameter" (§3, citing
//!   Barnes 1990 and Kawai & Makino 1999).
//!
//! This binary sweeps θ and prints, for each: interaction counts of
//! both algorithms, their ratio, and the RMS force error of both
//! against the exact direct sum.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_modified_vs_original -- \
//!     [--n 20000] [--ncrit 2000]
//! ```

use g5_bench::{plummer, rule, Args};
use g5tree::traverse::Traversal;
use g5tree::tree::Tree;
use treegrape::accuracy::compare;
use treegrape::{DirectHost, ForceBackend, TreeHost};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 20_000);
    let ncrit: usize = args.get("ncrit", 2000);
    let eps = 0.01;

    println!("E4: modified vs original tree algorithm, Plummer N = {n}, n_crit = {ncrit}");
    let snap = plummer(n, 17);
    let exact = DirectHost::new(eps).compute(&snap.pos, &snap.mass);
    let tree = Tree::build(&snap.pos, &snap.mass);

    println!();
    rule(100);
    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>14} {:>14} {:>12}",
        "theta",
        "int modified",
        "int original",
        "ratio",
        "rms mod %",
        "rms orig %",
        "more accurate"
    );
    rule(100);
    for &theta in &[0.4, 0.6, 0.75, 0.9, 1.0, 1.2] {
        let tr = Traversal::new(theta);
        let t_mod = tr.modified_tally(&tree, ncrit);
        let t_orig = tr.original_tally(&tree);
        let f_mod = TreeHost::modified(theta, ncrit, eps).compute(&snap.pos, &snap.mass);
        let f_orig = TreeHost::original(theta, eps).compute(&snap.pos, &snap.mass);
        let e_mod = compare(&f_mod, &exact);
        let e_orig = compare(&f_orig, &exact);
        println!(
            "{theta:>6.2} {:>14.3e} {:>14.3e} {:>8.2} {:>14.4} {:>14.4} {:>12}",
            t_mod.interactions as f64,
            t_orig.interactions as f64,
            t_mod.interactions as f64 / t_orig.interactions as f64,
            e_mod.rms * 100.0,
            e_orig.rms * 100.0,
            e_mod.rms < e_orig.rms,
        );
    }
    rule(100);
    println!(
        "paper (N = 2.159e6, theta as run, n_g = 2000): modified 2.90e13, original 4.69e12, ratio 6.18"
    );
    println!(
        "at small N the n_g = 2000 direct part dominates the shared lists, inflating the ratio;"
    );
    println!("it falls toward the paper's 6.2x as N grows and the cell terms take over.");
    println!(
        "at every theta the modified algorithm is at least as accurate (sphere-surface MAC + exact"
    );
    println!("intra-group forces), reproducing the Barnes 1990 / Kawai & Makino 1999 result the paper cites.");
}
