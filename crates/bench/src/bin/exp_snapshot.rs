//! **E7 — the Figure 4 snapshot.**
//!
//! Runs the cosmological sphere from z = 24 to z = 0 at laptop scale
//! with the paper's system, then renders the Figure 4 analog: particles
//! in a 45 × 45 × 2.5 Mpc slab of the final snapshot, written as a PGM
//! image and printed as terminal ASCII art. Also tracks Lagrangian
//! radii so the collapse/clustering is visible in numbers.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_snapshot -- \
//!     [--n 17000] [--steps 200] [--out artifacts/figure4.pgm] [--ascii 64] \
//!     [--checkpoint-every 20] [--checkpoint-dir figure4_ckpt] [--resume]
//! ```
//!
//! With `--checkpoint-every` set, the run writes periodic checkpoints
//! (checksummed snapshot + manifest); a killed run restarted with
//! `--resume` continues from the newest valid checkpoint and lands on
//! the same final state bit-for-bit.

use g5_bench::{cdm, fmt_secs, Args};
use g5tree::traverse::Traversal;
use g5tree::tree::Tree;
use treegrape::checkpoint::{latest, Checkpointer};
use treegrape::clustering::{two_point_correlation, CorrelationConfig};
use treegrape::diagnostics::lagrangian_radii;
use treegrape::halos::{friends_of_friends, FofConfig};
use treegrape::render::{project_slab, SlabSpec};
use treegrape::{Simulation, TreeGrape, TreeGrapeConfig};

fn main() {
    let args = Args::parse();
    let n_target: usize = args.get("n", 17_000);
    let steps: u64 = args.get("steps", 200);
    let out: String = args.get("out", "artifacts/figure4.pgm".to_string());
    let ascii_px: usize = args.get("ascii", 64);
    let ckpt_every: u64 = args.get("checkpoint-every", 0);
    let ckpt_dir: String = args.get("checkpoint-dir", "figure4_ckpt".to_string());
    let resume = args.flag("resume");

    println!("E7: cosmological run to z = 0 (target {n_target} particles, {steps} steps)");
    let ic = cdm(n_target, 4);
    let initial_state = ic.snapshot.clone();
    let n = ic.snapshot.len();
    let (t_init, _) = ic.units.run_span();
    // shared timesteps uniform in the scale factor (constant dt would
    // make the first step several initial dynamical times long)
    let schedule = ic.units.a_uniform_schedule(steps);
    let eps = 0.005;

    let cfg = TreeGrapeConfig { n_crit: 500, ..TreeGrapeConfig::paper(eps) };
    let wall = std::time::Instant::now();
    let ckpt = (ckpt_every > 0).then(|| {
        Checkpointer::new(std::path::Path::new(&ckpt_dir), ckpt_every)
            .expect("create checkpoint dir")
    });
    // a checkpoint's step index counts completed schedule entries, so
    // resuming means skipping that prefix of the (deterministic)
    // schedule — the restart lands on the same final state bit-for-bit
    let mut sim = match resume
        .then_some(())
        .and(ckpt.as_ref())
        .and_then(|c| latest(c.dir()).expect("scan checkpoint dir"))
    {
        Some(ck) => {
            let (state, time) = ck.load_snapshot().expect("checkpoint snapshot");
            println!("resuming from checkpoint at step {} (t = {:.6})", ck.step, time);
            Simulation::resume(state, TreeGrape::new(cfg), time, ck.step)
                .expect("resume simulation")
        }
        None => Simulation::new(ic.snapshot, TreeGrape::new(cfg), t_init),
    };
    let fractions = [0.1, 0.5, 0.9];
    let report_every = (steps / 10).max(1);
    println!();
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "step", "z(t)", "r10%", "r50%", "r90%", "energy"
    );
    for &t in &schedule[sim.steps as usize..] {
        if sim.steps % report_every == 0 {
            let r = lagrangian_radii(&sim.state, &fractions);
            let z = redshift_of(sim.time, &ic.units);
            println!(
                "{:>8} {:>10.2} {:>10.4} {:>10.4} {:>10.4} {:>12.5}",
                sim.steps,
                z,
                r[0],
                r[1],
                r[2],
                sim.total_energy()
            );
        }
        sim.step_to(t);
        if let Some(c) = &ckpt {
            c.maybe_write(&sim, None).expect("write checkpoint");
        }
    }
    let r = lagrangian_radii(&sim.state, &fractions);
    println!(
        "{:>8} {:>10.2} {:>10.4} {:>10.4} {:>10.4} {:>12.5}",
        steps,
        redshift_of(sim.time, &ic.units),
        r[0],
        r[1],
        r[2],
        sim.total_energy()
    );
    println!("run took {} on this machine, N = {n}", fmt_secs(wall.elapsed().as_secs_f64()));

    // Figure 4: slab projection of the final state. The paper plots a
    // 45x45x2.5 Mpc comoving box; our positions are physical at a = 1,
    // where physical == comoving.
    let com = sim.state.center_of_mass();
    let spec = SlabSpec { center: com, ..SlabSpec::figure4(512) };
    let map = project_slab(&sim.state.pos, &spec);
    let out_path = std::path::Path::new(&out);
    if let Some(dir) = out_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    map.write_pgm(out_path).expect("write PGM");
    println!();
    println!(
        "Figure 4 analog: {} particles in the 45x45x2.5 Mpc slab -> {out} ({}x{} PGM)",
        map.selected, map.pixels, map.pixels
    );

    // for the terminal view use a thicker slab: at laptop-scale N the
    // paper's 2.5 Mpc depth selects too few particles to see structure
    let small =
        SlabSpec { center: com, pixels: ascii_px, half_depth: 0.15, ..SlabSpec::figure4(ascii_px) };
    let art = project_slab(&sim.state.pos, &small);
    println!(
        "terminal rendering ({}x{} bins, 15 Mpc-deep slab, log surface density):",
        ascii_px, ascii_px
    );
    print!("{}", art.ascii());

    // clustering lengthens the interaction lists over the run — the
    // factor E1's paper-scale projection needs (the paper's 13,431 is a
    // run average over increasingly clustered states)
    let tr = Traversal::new(0.6);
    let t_init = Tree::build(&initial_state.pos, &initial_state.mass);
    let t_final = Tree::build(&sim.state.pos, &sim.state.mass);
    let (nc, nn) = (2000, n as u64);
    let len_i = tr.modified_tally(&t_init, nc).mean_len_per_target(nn);
    let len_f = tr.modified_tally(&t_final, nc).mean_len_per_target(nn);
    println!();
    println!(
        "clustering factor for E1: mean list length (theta=0.6, n_crit={nc}) grew {:.0} -> {:.0} ({:.2}x) over the run",
        len_i, len_f, len_f / len_i
    );

    // quantify the clustering: two-point correlation function at z = 0
    let xi = two_point_correlation(
        &sim.state.pos,
        &CorrelationConfig { r_min: 0.02, r_max: 1.0, bins: 8, ..Default::default() },
    );
    println!();
    println!("two-point correlation function (r in units of 50 Mpc):");
    println!("{:>10} {:>12} {:>12}", "r", "xi(r)", "DD pairs");
    for b in &xi {
        println!("{:>10.3} {:>12.2} {:>12}", b.r, b.xi, b.dd);
    }
    println!("(xi >> 1 at small r = nonlinear clustering; ~0 at the sphere scale)");

    // friends-of-friends halo catalog: the science product of the run
    let halos = friends_of_friends(
        &sim.state.pos,
        &sim.state.mass,
        &FofConfig { linking_b: 0.2, min_members: 32 },
    );
    println!();
    println!("friends-of-friends halos (b = 0.2, >= 32 members): {}", halos.len());
    println!("{:>6} {:>10} {:>12} {:>12}", "rank", "members", "mass frac", "rms radius");
    for (k, h) in halos.iter().take(8).enumerate() {
        println!("{:>6} {:>10} {:>12.4} {:>12.4}", k + 1, h.members.len(), h.mass, h.rms_radius);
    }
    let in_halos: usize = halos.iter().map(|h| h.members.len()).sum();
    println!(
        "fraction of particles in halos: {:.1} %",
        in_halos as f64 / sim.state.len() as f64 * 100.0
    );
}

/// Invert EdS t(z) for display: `1+z = (t0/t)^(2/3)`.
fn redshift_of(t: f64, units: &g5ic::SimUnits) -> f64 {
    let t0 = units.time(0.0);
    (t0 / t).powf(2.0 / 3.0) - 1.0
}
