//! **E1 + E6 — the §5 headline table and §4 cost accounting.**
//!
//! Runs the paper's system (modified treecode on GRAPE-5) on a
//! standard-CDM sphere at laptop scale, measures interaction counts and
//! hardware work, projects them onto the DS10 + GRAPE-5 clocks, and
//! prints the §5 quantities next to the published values:
//! total interactions, average list length, wall-clock, raw Gflops,
//! original-algorithm-corrected effective Gflops, and $/Mflops.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_performance -- \
//!     [--n 200000] [--steps 4] [--theta 0.75] [--ncrit 2000] [--paper-scale] \
//!     [--plan-workers W] [--channel-depth D]
//! ```
//!
//! `--plan-workers 0` selects the serial in-order plan; omitting the
//! flag keeps the default (cores − 1 producers).
//!
//! `--paper-scale` additionally rescales the measured per-step counts
//! to N = 2,159,038 / 999 steps using the N log N interaction-count law
//! before projecting, reproducing the full-run numbers.

use g5_bench::{cdm, fmt_count, fmt_secs, plan_from_args, rule, Args};
use g5tree::traverse::Traversal;
use g5tree::tree::Tree;
use g5util::counters::{FlopConvention, InteractionTally};
use grape5::{ClockAccounting, CostModel, Grape5Config};
use treegrape::perf::{HostModel, PaperProjection, PhaseTimers, RunMeasurement};
use treegrape::{Simulation, TreeGrape, TreeGrapeConfig};

fn main() {
    let args = Args::parse();
    let n_target: usize = args.get("n", 120_000);
    let steps: u64 = args.get("steps", 4);
    // theta = 0.6 inferred from the paper: it reproduces both the
    // ~0.1 % force error of section 2 and the original-algorithm
    // per-target list length (4.69e12 / (N*999) = 2173) far better than
    // the conventional 0.75
    let theta: f64 = args.get("theta", 0.6);
    let n_crit: usize = args.get("ncrit", 2000);
    let paper_scale = args.flag("paper-scale");
    let plan = plan_from_args(&args);

    println!("E1: generating standard-CDM sphere (target {n_target} particles)...");
    let ic = cdm(n_target, 1999);
    let n = ic.snapshot.len();
    let (t_init, _) = ic.units.run_span();
    // shared timesteps uniform in scale factor, 999-step convention:
    // we run only the first `steps` of the 999-entry schedule
    let schedule = ic.units.a_uniform_schedule(999);
    let eps = 0.005; // ~0.25 Mpc softening in sphere-radius units

    println!("  N = {n}, z_init = {}, eps = {eps}", ic.cosmo.z_init);

    let cfg = TreeGrapeConfig { theta, n_crit, eps, plan, ..TreeGrapeConfig::paper(eps) };
    let backend = TreeGrape::new(cfg);
    let wall = std::time::Instant::now();
    let mut sim = Simulation::new(ic.snapshot, backend, t_init);
    sim.run_schedule(&schedule[..steps as usize]);
    let measured_wall_s = wall.elapsed().as_secs_f64();
    let evals = steps + 1; // init + one per step

    let modified = sim.tally();
    let grape = sim.backend().accounting();

    // measured machine throughput — the quantity the paper's sustained
    // speed column is derived from (38 ops/interaction convention)
    let rate = modified.rate(measured_wall_s);
    println!(
        "  measured on this machine: {:.3e} interactions/s ({:.1} ns/interaction, {:.3} Gflops at 38 ops/interaction)",
        rate.per_second(),
        rate.ns_per_interaction(),
        rate.gflops(FlopConvention::WarrenSalmon38)
    );

    // §5's correction: estimate the original-algorithm interaction count
    // on snapshots with the same accuracy parameter.
    println!("  estimating original-algorithm interaction count on the final snapshot...");
    let tree = Tree::build(&sim.state.pos, &sim.state.mass);
    let orig_one = Traversal::new(theta).original_tally(&tree);
    let original_interactions = orig_one.interactions * evals;

    let mut m = RunMeasurement {
        n,
        steps: evals,
        theta,
        n_crit,
        modified,
        original_interactions,
        grape,
        measured_wall_s,
    };

    if !paper_scale {
        // default: print BOTH the as-measured projection and the
        // paper-scale projection; --paper-scale prints only the latter
        print_table(&m, "as measured");
    }
    print_phase_table(&sim.phase_timers().per_step(evals), &m);
    m = rescale_to_paper(&m);
    println!();
    println!("  rescaled to N = {} / {} steps via the N-list-length law", m.n, m.steps);
    print_table(&m, "paper scale");
    println!(
        "(actual wall-clock of this simulated run on this machine: {})",
        fmt_secs(measured_wall_s)
    );
}

fn print_table(m: &RunMeasurement, label: &str) {
    let projection = PaperProjection::project(
        m,
        &HostModel::ds10(),
        &Grape5Config::paper(),
        &CostModel::paper(),
    );
    let paper = PaperProjection::paper_reference();

    println!();
    println!("E1 — performance accounting, {label} ({} evaluations of N = {})", m.steps, m.n);
    rule(78);
    println!("{:<38} {:>18} {:>18}", "quantity", "measured/projected", "paper (SC'99)");
    rule(78);
    row("particles N", &fmt_count(projection.n as u64), &fmt_count(paper.n as u64));
    row("force evaluations", &fmt_count(projection.steps), &fmt_count(paper.steps));
    row(
        "interactions (modified tree)",
        &format!("{:.3e}", projection.interactions as f64),
        &format!("{:.3e}", paper.interactions as f64),
    );
    row(
        "avg interaction-list length",
        &format!("{:.0}", projection.avg_list_len),
        &format!("{:.0}", paper.avg_list_len),
    );
    row(
        "interactions (original tree)",
        &format!("{:.3e}", projection.original_interactions as f64),
        &format!("{:.3e}", paper.original_interactions as f64),
    );
    row(
        "orig/modified interaction ratio",
        &format!("{:.3}", projection.original_interactions as f64 / projection.interactions as f64),
        &format!("{:.3}", paper.original_interactions as f64 / paper.interactions as f64),
    );
    row("modeled wall-clock", &fmt_secs(projection.wall_s), &fmt_secs(paper.wall_s));
    row(
        "  host / step",
        &fmt_secs(projection.step.host_s),
        &format!("~{}", fmt_secs(paper.step.host_s)),
    );
    row(
        "  GRAPE pipeline / step",
        &fmt_secs(projection.step.pipeline_s),
        &format!("~{}", fmt_secs(paper.step.pipeline_s)),
    );
    row(
        "  GRAPE transfer / step",
        &fmt_secs(projection.step.transfer_s),
        &format!("~{}", fmt_secs(paper.step.transfer_s)),
    );
    row(
        "raw sustained speed",
        &format!("{:.1} Gflops", projection.raw_gflops),
        &format!("{:.1} Gflops", paper.raw_gflops),
    );
    row(
        "effective sustained speed",
        &format!("{:.2} Gflops", projection.effective_gflops),
        &format!("{:.2} Gflops", paper.effective_gflops),
    );
    row(
        "system cost",
        &format!("${:.0}", projection.price.total_usd),
        &format!("${:.0}", paper.price.total_usd),
    );
    row(
        "price/performance",
        &format!("${:.1}/Mflops", projection.price.usd_per_mflops),
        &format!("${:.1}/Mflops", paper.price.usd_per_mflops),
    );
    rule(78);
}

fn row(label: &str, a: &str, b: &str) {
    println!("{label:<38} {a:>18} {b:>18}");
}

/// The measured per-phase split of this machine's run next to the
/// modeled DS10 split of the same evaluation — absolute times differ
/// (different hardware, simulated GRAPE), but the host-vs-device
/// *proportions* validate the model's phase accounting.
fn print_phase_table(t: &PhaseTimers, m: &RunMeasurement) {
    let projection = PaperProjection::project(
        m,
        &HostModel::ds10(),
        &Grape5Config::paper(),
        &CostModel::paper(),
    );
    let grape_s =
        projection.step.pipeline_s + projection.step.transfer_s + projection.step.latency_s;
    let measured_total = t.build_s + t.traverse_s + t.device_s + t.host_misc_s();
    let modeled_total = projection.step.total_s();

    println!();
    println!("E1 — measured per-phase wall-clock on this machine (per force evaluation)");
    rule(78);
    println!(
        "{:<38} {:>10} {:>6}   {:<10} {:>6}",
        "phase", "measured", "share", "modeled", "share"
    );
    rule(78);
    let pct = |x: f64, tot: f64| format!("{:.0}%", 100.0 * x / tot.max(1e-30));
    println!(
        "{:<38} {:>10} {:>6}   {:<10} {:>6}",
        "tree build + group finding",
        fmt_secs(t.build_s),
        pct(t.build_s, measured_total),
        "-",
        "-"
    );
    println!(
        "{:<38} {:>10} {:>6}   {:<10} {:>6}",
        "list production (CPU, all workers)",
        fmt_secs(t.traverse_s),
        pct(t.traverse_s, measured_total),
        fmt_secs(projection.step.host_s),
        pct(projection.step.host_s, modeled_total)
    );
    println!(
        "{:<38} {:>10} {:>6}   {:<10} {:>6}",
        "device calls (simulated GRAPE)",
        fmt_secs(t.device_s),
        pct(t.device_s, measured_total),
        fmt_secs(grape_s),
        pct(grape_s, modeled_total)
    );
    println!(
        "{:<38} {:>10} {:>6}   {:<10} {:>6}",
        "host misc (integration, bookkeeping)",
        fmt_secs(t.host_misc_s()),
        pct(t.host_misc_s(), measured_total),
        "-",
        "-"
    );
    rule(78);
    println!(
        "{:<38} {:>10}          {:<10}",
        "force wall-clock",
        fmt_secs(t.force_wall_s),
        fmt_secs(modeled_total)
    );
    println!(
        "{:<38} {:>10}",
        "wall saved by traversal/device overlap",
        fmt_secs(t.overlap_saved_s())
    );
    println!("{:<38} {:>10}", "device blocked on empty channel", fmt_secs(t.consumer_blocked_s));
    rule(78);
    println!("(modeled column: DS10 host model + GRAPE-5 clocks; the modeled host walk");
    println!(" corresponds to the measured list-production phase)");
}

/// Scale a measured run to the paper's N and step count. Interactions
/// per particle-step grow ≈ like the list length, which grows
/// logarithmically in N at fixed n_crit and θ; we scale per-particle
/// list length by the measured-list-to-paper-list model
/// `len(N) ≈ a + b·log2(N)` fitted through the measured point with the
/// paper's slope, and scale host terms proportionally.
fn rescale_to_paper(m: &RunMeasurement) -> RunMeasurement {
    const PAPER_N: usize = 2_159_038;
    const PAPER_STEPS: u64 = 999;
    let evals = m.steps;
    let len_now = m.modified.mean_len_per_target(m.n as u64 * evals);
    // log-growth of the cell part of the list; the direct part (n_crit)
    // does not grow. Empirical slope from tree-theory: ~len ∝ log N for
    // the cell terms.
    let cell_part = (len_now - m.n_crit as f64).max(0.0);
    // cell terms per target scale as log2(N / n_crit): the walk depth
    // between the group level and the root
    let growth = ((PAPER_N as f64 / m.n_crit as f64).log2()
        / (m.n as f64 / m.n_crit as f64).log2())
    .max(1.0);
    let len_paper = m.n_crit as f64 + cell_part * growth;
    let int_per_step = len_paper * PAPER_N as f64;
    let scale_int = int_per_step * PAPER_STEPS as f64 / m.modified.interactions as f64;
    let scale_lists = (PAPER_N as f64 / m.n as f64) * (PAPER_STEPS as f64 / evals as f64);

    let modified = InteractionTally {
        interactions: (m.modified.interactions as f64 * scale_int) as u64,
        terms: (m.modified.terms as f64 * scale_int) as u64,
        lists: (m.modified.lists as f64 * scale_lists) as u64,
    };
    let grape = ClockAccounting {
        pipeline_cycles: (m.grape.pipeline_cycles as f64 * scale_int) as u64,
        iface_words: (m.grape.iface_words as f64 * scale_int) as u64,
        calls: (m.grape.calls as f64 * scale_lists) as u64,
        interactions: modified.interactions,
        j_words: (m.grape.j_words as f64 * scale_int) as u64,
    };
    let orig_per_target = m.original_interactions as f64 / (m.n as u64 * evals) as f64;
    // original lists are almost all cell terms; their depth factor is
    // log2 N (walks go leaf-to-root)
    let growth_orig = ((PAPER_N as f64).log2() / (m.n as f64).log2()).max(1.0);
    let original_interactions =
        (orig_per_target * growth_orig * PAPER_N as f64 * PAPER_STEPS as f64) as u64;
    RunMeasurement { n: PAPER_N, steps: PAPER_STEPS, modified, original_interactions, grape, ..*m }
}
