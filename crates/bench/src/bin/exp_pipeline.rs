//! **Pipeline experiment — streaming force plan vs. materialize-all.**
//!
//! Runs one TreeGrape force evaluation of a Plummer model in one of
//! three modes and reports the measured per-phase wall-clock plus the
//! process peak RSS (`VmHWM` from `/proc/self/status`):
//!
//! * `materialized` — resolve *every* group list before touching the
//!   device (the pre-pipeline implementation): peak memory
//!   O(total terms);
//! * `serial` — the in-order streaming reference ([`PlanConfig::serial`]):
//!   one resolved list alive at a time;
//! * `overlapped` — worker-produced lists through a bounded channel
//!   ([`PlanConfig::overlapped`]): peak memory O(depth × list length),
//!   traversal overlapping device execution.
//!
//! Peak RSS is a process-wide high-water mark, so compare *separate
//! invocations*, one mode each:
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_pipeline -- \
//!     [--n 65536] [--mode overlapped] [--workers 2] [--depth 4] \
//!     [--ncrit 2000] [--theta 0.75]
//! ```

use g5_bench::{fmt_count, fmt_secs, plummer, rule, Args};
use g5tree::plan::{self, GroupWork, PlanConfig};
use g5tree::traverse::Traversal;
use g5tree::tree::Tree;
use grape5::DeviceSession;
use treegrape::backends::{ForceBackend, ForceSet};
use treegrape::perf::PhaseTimers;
use treegrape::{TreeGrape, TreeGrapeConfig};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 65_536);
    let mode: String = args.get("mode", "overlapped".to_string());
    let workers: usize = args.get("workers", 2);
    let depth: usize = args.get("depth", 4);
    let n_crit: usize = args.get("ncrit", 2000);
    let theta: f64 = args.get("theta", 0.75);
    let eps = 0.01;

    println!("pipeline experiment: N = {n}, mode = {mode}, theta = {theta}, n_crit = {n_crit}");
    let snap = plummer(n, 77);

    let cfg = TreeGrapeConfig { theta, n_crit, ..TreeGrapeConfig::paper(eps) };
    let fs = match mode.as_str() {
        "materialized" => materialized_eval(&snap.pos, &snap.mass, &cfg),
        "serial" => {
            let mut b = TreeGrape::new(TreeGrapeConfig { plan: PlanConfig::serial(), ..cfg });
            b.compute(&snap.pos, &snap.mass)
        }
        "overlapped" => {
            let mut b = TreeGrape::new(TreeGrapeConfig {
                plan: PlanConfig::overlapped(workers, depth),
                ..cfg
            });
            b.compute(&snap.pos, &snap.mass)
        }
        other => panic!("unknown --mode {other:?} (materialized|serial|overlapped)"),
    };

    let t = fs.timers;
    println!();
    rule(60);
    println!("{:<40} {:>16}", "tree build + group finding", fmt_secs(t.build_s));
    println!("{:<40} {:>16}", "list production (CPU)", fmt_secs(t.traverse_s));
    println!("{:<40} {:>16}", "device calls", fmt_secs(t.device_s));
    println!("{:<40} {:>16}", "force wall-clock", fmt_secs(t.force_wall_s));
    println!("{:<40} {:>16}", "wall saved by overlap", fmt_secs(t.overlap_saved_s()));
    rule(60);
    println!("{:<40} {:>16}", "interactions", fmt_count(fs.tally.interactions));
    println!("{:<40} {:>16}", "list terms (host)", fmt_count(fs.tally.terms));
    println!("{:<40} {:>16}", "lists", fmt_count(fs.tally.lists));
    if let Some(kib) = peak_rss_kib() {
        println!("{:<40} {:>13} kB", "peak RSS (VmHWM)", fmt_count(kib));
    }
    rule(60);
}

/// The pre-pipeline evaluation strategy: resolve all group lists first,
/// then drive the device — reproduced here only to measure what the
/// streaming pipeline saves.
fn materialized_eval(pos: &[g5util::vec3::Vec3], mass: &[f64], cfg: &TreeGrapeConfig) -> ForceSet {
    let t_all = std::time::Instant::now();
    let tree = Tree::build_with(pos, mass, cfg.tree_config);
    let tr = Traversal::new(cfg.theta);
    let groups = tr.find_groups(&tree, cfg.n_crit);
    let build_s = t_all.elapsed().as_secs_f64();

    // resolve everything up front (serial scheduling, but *retained*)
    let mut all: Vec<GroupWork> = Vec::with_capacity(groups.len());
    let stats = plan::stream(&tree, &tr, &groups, &PlanConfig::serial(), |w| all.push(w.clone()))
        .expect("materialized plan failed");

    let mut g5 = grape5::Grape5::open(cfg.grape);
    let mut session = DeviceSession::open(&mut g5, pos, cfg.eps);
    let mut acc = vec![g5util::vec3::Vec3::ZERO; pos.len()];
    let mut pot = vec![0.0; pos.len()];
    let mut device_s = 0.0;
    for w in &all {
        let t = std::time::Instant::now();
        let forces = session.force_for(&w.jpos, &w.jmass, &w.xi);
        device_s += t.elapsed().as_secs_f64();
        for (i, f) in w.targets.iter().zip(forces) {
            acc[*i] = f.acc;
            pot[*i] = f.pot;
        }
    }
    ForceSet {
        acc,
        pot,
        tally: stats.tally,
        timers: PhaseTimers {
            build_s,
            traverse_s: stats.produce_s,
            device_s,
            force_wall_s: t_all.elapsed().as_secs_f64(),
            ..PhaseTimers::default()
        },
    }
}

/// Peak resident set size of this process in kB, from
/// `/proc/self/status` (Linux only).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
