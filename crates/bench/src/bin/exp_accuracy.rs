//! **E3 — the §2 accuracy claims.**
//!
//! Three measurements:
//!
//! 1. the **pairwise** relative force error of the LNS pipeline over a
//!    random pair ensemble (paper: "about 0.3%");
//! 2. the **whole-force** error of a direct GRAPE sum against the `f64`
//!    direct sum (hardware error averages down over a long sum);
//! 3. the error budget of the full system: tree-only, hardware-only,
//!    and tree+hardware forces against the exact direct sum (paper:
//!    "average error of the force in our simulation is around 0.1%,
//!    dominated by the approximation made in the tree algorithm and not
//!    by the accuracy of the hardware"; "practically the same when we
//!    performed the same force calculation using standard 64-bit
//!    floating point arithmetic").
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_accuracy -- \
//!     [--n 4000] [--pairs 20000] [--theta 0.75] [--ncrit 256]
//! ```

use g5_bench::{plummer, rule, Args};
use g5util::fixed::RangeScaler;
use g5util::stats::{Histogram, Summary};
use g5util::vec3::Vec3;
use grape5::pipeline::{G5Pipeline, JWord};
use grape5::{ArithMode, Grape5Config};
use rand::{Rng, SeedableRng};
use treegrape::accuracy::compare;
use treegrape::{DirectGrape, DirectHost, ForceBackend, TreeGrape, TreeGrapeConfig, TreeHost};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 4000);
    let pairs: usize = args.get("pairs", 20_000);
    let theta: f64 = args.get("theta", 0.75);
    let ncrit: usize = args.get("ncrit", 256);
    let eps = 0.01;

    // ------------------------------------------------------------------
    // 1. pairwise pipeline error
    // ------------------------------------------------------------------
    println!("E3.1: pairwise force error of the G5 pipeline ({pairs} random pairs)");
    let cfg = Grape5Config::paper();
    let scaler = RangeScaler::new(-1.0, 1.0, cfg.coord_bits);
    let pipe = G5Pipeline::new(&cfg, scaler.quantum(), 0.0);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
    let mut errs = Vec::with_capacity(pairs);
    let mut hist = Histogram::new(0.0, 0.01, 20);
    while errs.len() < pairs {
        let raw = [
            scaler.quantize(rng.random_range(-0.9..0.9)),
            scaler.quantize(rng.random_range(-0.9..0.9)),
            scaler.quantize(rng.random_range(-0.9..0.9)),
        ];
        if raw == [0, 0, 0] {
            continue;
        }
        let m = rng.random_range(0.1..10.0);
        let j = JWord { raw, m_lns: pipe.encode_mass(m), m };
        let f = pipe.interact([0, 0, 0], &j);
        let q = scaler.quantum();
        let dx = Vec3::new(raw[0] as f64 * q, raw[1] as f64 * q, raw[2] as f64 * q);
        let r2 = dx.norm2();
        let fe = dx * (m / (r2 * r2.sqrt()));
        let rel = (f.acc - fe).norm() / fe.norm();
        hist.push(rel);
        errs.push(rel);
    }
    let s = Summary::of(&errs);
    println!(
        "  rms = {:.4}%  mean = {:.4}%  max = {:.4}%   (paper: \"about 0.3%\")",
        s.rms() * 100.0,
        s.mean() * 100.0,
        s.max() * 100.0
    );
    println!("  distribution of pairwise relative errors:");
    print!("{}", hist.ascii(48));

    // ------------------------------------------------------------------
    // 2./3. whole-force error budget
    // ------------------------------------------------------------------
    println!();
    println!("E3.2: whole-force error budget on a Plummer model, N = {n}, theta = {theta}, n_crit = {ncrit}");
    let snap = plummer(n, 31);
    let exact = DirectHost::new(eps).compute(&snap.pos, &snap.mass);

    let hw_only = DirectGrape::new(Grape5Config::paper(), eps).compute(&snap.pos, &snap.mass);
    let tree_only = TreeHost::modified(theta, ncrit, eps).compute(&snap.pos, &snap.mass);
    let combined = TreeGrape::new(TreeGrapeConfig {
        theta,
        n_crit: ncrit,
        eps,
        grape: Grape5Config { mode: ArithMode::Lns, ..Grape5Config::paper() },
        ..TreeGrapeConfig::paper(eps)
    })
    .compute(&snap.pos, &snap.mass);
    let combined_f64 = TreeGrape::new(TreeGrapeConfig {
        theta,
        n_crit: ncrit,
        eps,
        grape: Grape5Config::paper_exact(),
        ..TreeGrapeConfig::paper(eps)
    })
    .compute(&snap.pos, &snap.mass);

    rule(76);
    println!("{:<44} {:>9} {:>9} {:>9}", "force vs exact direct f64", "rms %", "median %", "p99 %");
    rule(76);
    for (label, fs) in [
        ("hardware only (direct sum on LNS GRAPE)", &hw_only),
        ("tree only (modified treecode, f64)", &tree_only),
        ("tree + hardware (the paper's system)", &combined),
        ("tree + GRAPE with 64-bit arithmetic", &combined_f64),
    ] {
        let r = compare(fs, &exact);
        println!(
            "{label:<44} {:>9.4} {:>9.4} {:>9.4}",
            r.rms * 100.0,
            r.median * 100.0,
            r.p99 * 100.0
        );
    }
    rule(76);
    let r_tree = compare(&tree_only, &exact);
    let r_hw = compare(&hw_only, &exact);
    let r_comb = compare(&combined, &exact);
    let r_c64 = compare(&combined_f64, &exact);
    println!(
        "tree error dominates hardware error: {} ({:.4}% vs {:.4}%)",
        r_tree.rms > r_hw.rms,
        r_tree.rms * 100.0,
        r_hw.rms * 100.0
    );
    println!(
        "LNS vs 64-bit system forces 'practically the same': rms {:.4}% vs {:.4}%",
        r_comb.rms * 100.0,
        r_c64.rms * 100.0
    );
}
