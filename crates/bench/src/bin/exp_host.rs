//! **E11 — host-phase throughput: SoA traversal, scratch reuse, and
//! tree refresh vs the pre-overhaul path.**
//!
//! PR 3 made the device kernel 3.3× faster, so by Amdahl the host tree
//! phase — full rebuild every step, an allocation per walk, a fresh
//! `Vec` per list — became the wall-clock ceiling, exactly the regime
//! §3 of the paper describes where the workstation saturates before
//! GRAPE does. This harness measures what the overhaul bought, A/B in
//! the same process on the same drifting snapshot:
//!
//! * **reference** — the pre-PR host phase: `Tree::build_with` every
//!   step, allocating `find_groups`, and the kept recursive
//!   `modified_list_reference` walk with a fresh output `Vec` per
//!   group;
//! * **new** — full build every K-th step and `Tree::refresh` (moment
//!   re-accumulation on the frozen topology, drift-inflated group
//!   spheres) in between, groups found into retained buffers, and the
//!   explicit-stack `modified_list_with` walk over the SoA node
//!   columns with one `TraverseScratch` + list buffer per worker.
//!
//! Both traversals must produce the same number of terms on rebuild
//! steps (the walks are bit-identical there — enforced); refresh steps
//! may produce slightly longer lists because the inflated spheres are
//! conservative. Results go to a table, per-phase rates, and a JSON
//! report (default `BENCH_pr4.json`); when a baseline file exists its
//! numbers are read first and a delta is printed, so CI can diff a
//! fresh `--quick` run against the committed report.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_host -- \
//!     [--quick] [--out BENCH_pr4.json] [--baseline BENCH_pr4.json]
//! ```

use g5_bench::{fmt_count, plummer, rule, Args};
use g5tree::traverse::{Traversal, TraverseScratch};
use g5tree::tree::{Tree, TreeConfig};
use g5util::morton_sort::{self, MortonFrame};
use rayon::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 42;
const THETA: f64 = 0.6;
/// Per-step displacement scale, in units of the Plummer core radius —
/// small enough that a 4-step refresh interval stays inside the default
/// drift valve, large enough that moments genuinely change.
const DT: f64 = 1e-3;

/// Per-phase medians of one (N, n_crit, K) cell. Medians, not means:
/// the harness shares the machine with whatever else runs, and a single
/// preempted step would otherwise smear into every reported rate. The
/// per-step host times are reconstructed from the phase medians.
struct HostCell {
    n: usize,
    n_crit: usize,
    /// Refresh interval K of the new path (1 = rebuild every step).
    k: u32,
    steps: u64,
    /// Full build + group finding, median seconds. Both legs run the
    /// identical build, so their samples are pooled into one median:
    /// at K = 8 the new leg builds only once per window, and a single
    /// preempted sample would otherwise dominate its amortized term.
    build_s: f64,
    builds: u64,
    /// Median seconds per refresh (new path only).
    refresh_s: f64,
    refreshes: u64,
    groups: u64,
    /// Reference traversal, median seconds per step.
    trav_ref_s: f64,
    /// SoA-stack traversal, median seconds per step.
    trav_new_s: f64,
    terms: u64,
}

impl HostCell {
    /// Reference host phase: full build + recursive walk, every step.
    fn host_ref_s(&self) -> f64 {
        self.build_s + self.trav_ref_s
    }
    /// New host phase per step: builds amortized over the interval,
    /// refreshes in between, stack walk every step.
    fn host_new_s(&self) -> f64 {
        let update = (self.builds as f64 * self.build_s + self.refreshes as f64 * self.refresh_s)
            / self.steps as f64;
        update + self.trav_new_s
    }
    fn speedup(&self) -> f64 {
        self.host_ref_s() / self.host_new_s()
    }
    fn build_ns_per_particle(&self) -> f64 {
        self.build_s * 1e9 / self.n as f64
    }
    fn refresh_ns_per_particle(&self) -> f64 {
        self.refresh_s * 1e9 / self.n as f64
    }
    fn trav_ns_per_group(&self, per_step_s: f64) -> f64 {
        per_step_s * 1e9 / self.groups as f64
    }
}

/// Median of timing samples (n ≥ 1).
fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        0.5 * (s[mid - 1] + s[mid])
    }
}

/// The pre-overhaul traversal: recursive walk over `Node`s, fresh
/// output `Vec` per group (what `modified_lists` compiled to before
/// this PR). Returns total term count.
fn reference_lists(tree: &Tree, tr: &Traversal, groups: &[g5tree::traverse::Group]) -> u64 {
    groups
        .par_iter()
        .map(|&g| {
            let mut out = Vec::new();
            tr.modified_list_reference(tree, g, &mut out);
            out.len() as u64
        })
        .sum()
}

/// The overhauled traversal: explicit-stack walk over the SoA columns,
/// one retained scratch + list buffer per worker.
fn soa_lists(tree: &Tree, tr: &Traversal, groups: &[g5tree::traverse::Group]) -> u64 {
    groups
        .par_iter()
        .map_init(
            || (TraverseScratch::default(), Vec::new()),
            |(scratch, buf), &g| {
                tr.modified_list_with(tree, g, scratch, buf);
                buf.len() as u64
            },
        )
        .sum()
}

/// Run one (N, n_crit, K) cell: `steps` host phases over a snapshot
/// drifting along its Plummer velocities, reference and new path back
/// to back on identical positions each step.
fn measure(n: usize, n_crit: usize, k: u32, steps: u64) -> HostCell {
    let snap = plummer(n, SEED);
    let tr = Traversal::new(THETA);
    let cfg = TreeConfig::default();
    assert!(cfg.leaf_capacity <= n_crit, "cell violates the leaf_capacity <= n_crit invariant");

    let mut pos = snap.pos.clone();
    let mut build_ref = Vec::new();
    let mut build_new = Vec::new();
    let mut refresh = Vec::new();
    let mut trav_ref = Vec::new();
    let mut trav_new = Vec::new();
    let mut total_terms = 0u64;
    let mut n_groups = 0u64;

    // the new path's cached state, living across steps like TreeGrape's
    let mut cached: Option<Tree> = None;
    let mut groups_new = Vec::new();
    let mut gscratch = TraverseScratch::default();

    // untimed warmup: one full pass of each path so the timed loop sees
    // warm caches and faulted-in pages rather than cold-start costs
    {
        let tree = Tree::build_with(&pos, &snap.mass, cfg);
        let groups = tr.find_groups(&tree, n_crit);
        reference_lists(&tree, &tr, &groups);
        soa_lists(&tree, &tr, &groups);
    }

    for step in 0..steps {
        // ---- reference host phase: full build + recursive walk ----
        let t0 = Instant::now();
        let tree_ref = Tree::build_with(&pos, &snap.mass, cfg);
        let groups_ref = tr.find_groups(&tree_ref, n_crit);
        build_ref.push(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        let terms_ref = reference_lists(&tree_ref, &tr, &groups_ref);
        trav_ref.push(t1.elapsed().as_secs_f64());

        // ---- new host phase: K-amortized build + SoA stack walk ----
        let rebuild = step % k as u64 == 0 || cached.as_ref().is_none();
        if rebuild {
            // retire the expired tree outside the timed window, like the
            // reference leg drops its tree outside its timed build
            cached = None;
        }
        let t2 = Instant::now();
        if rebuild {
            let tree = Tree::build_with(&pos, &snap.mass, cfg);
            tr.find_groups_into(&tree, n_crit, &mut gscratch, &mut groups_new);
            cached = Some(tree);
            build_new.push(t2.elapsed().as_secs_f64());
        } else {
            let tree = cached.as_mut().unwrap();
            tree.refresh(&pos, &snap.mass);
            refresh.push(t2.elapsed().as_secs_f64());
        }
        let tree_new = cached.as_ref().unwrap();
        let t3 = Instant::now();
        let terms_new = soa_lists(tree_new, &tr, &groups_new);
        trav_new.push(t3.elapsed().as_secs_f64());

        if rebuild {
            // on rebuild steps both paths walk identical trees with
            // zero drift: the stack walk must emit identical lists
            assert_eq!(
                terms_ref, terms_new,
                "SoA walk diverged from recursive reference on a fresh tree"
            );
        }
        total_terms += terms_new;
        n_groups = groups_new.len() as u64;

        // drift the snapshot along its own velocities for the next step
        for (p, v) in pos.iter_mut().zip(&snap.vel) {
            *p += *v * DT;
        }
    }
    let builds = build_new.len() as u64;
    // one pooled median for the identical build operation of both legs
    let mut build_all = build_ref;
    build_all.extend_from_slice(&build_new);
    HostCell {
        n,
        n_crit,
        k,
        steps,
        build_s: median(&build_all),
        builds,
        refresh_s: if refresh.is_empty() { 0.0 } else { median(&refresh) },
        refreshes: refresh.len() as u64,
        groups: n_groups,
        trav_ref_s: median(&trav_ref),
        trav_new_s: median(&trav_new),
        terms: total_terms,
    }
}

fn result_row(c: &HostCell) {
    println!(
        "{:>8} {:>6} {:>3} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>10.2} {:>10.2} {:>8.2}x",
        c.n,
        c.n_crit,
        c.k,
        c.build_ns_per_particle(),
        c.refresh_ns_per_particle(),
        c.trav_ns_per_group(c.trav_ref_s),
        c.trav_ns_per_group(c.trav_new_s),
        c.host_ref_s() * 1e3,
        c.host_new_s() * 1e3,
        c.speedup(),
    );
}

fn json_line(c: &HostCell) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"n\": {}, \"n_crit\": {}, \"k\": {}, \"steps\": {}, \
         \"build_ns_per_particle\": {}, \"refresh_ns_per_particle\": {}, \
         \"groups\": {}, \"terms\": {}, \
         \"trav_ref_ns_per_group\": {}, \"trav_new_ns_per_group\": {}, \
         \"host_ref_s_per_step\": {}, \"host_new_s_per_step\": {}, \"speedup\": {}}}",
        c.n,
        c.n_crit,
        c.k,
        c.steps,
        c.build_ns_per_particle(),
        c.refresh_ns_per_particle(),
        c.groups,
        c.terms,
        c.trav_ns_per_group(c.trav_ref_s),
        c.trav_ns_per_group(c.trav_new_s),
        c.host_ref_s(),
        c.host_new_s(),
        c.speedup(),
    )
    .unwrap();
    s
}

/// Morton-sort A/B at the headline size: the radix sort the tree
/// build and domain decomposition now run, against the comparison sort
/// (`sort_unstable_by_key` on `(code, index)`) it replaced. Same codes,
/// same process, alternating samples; both must return the identical
/// permutation (they sort the same total order).
struct SortAb {
    n: usize,
    radix_s: f64,
    comparison_s: f64,
}

impl SortAb {
    fn speedup(&self) -> f64 {
        self.comparison_s / self.radix_s
    }
}

fn measure_sort(n: usize, repeats: usize) -> SortAb {
    let snap = plummer(n, SEED);
    let frame = MortonFrame::for_points(&snap.pos);
    let codes = frame.codes(&snap.pos);
    // warm both paths (page in the ping-pong buffers)
    assert_eq!(morton_sort::sort_indices(&codes), morton_sort::sort_indices_comparison(&codes));
    let (mut radix, mut comparison) = (Vec::new(), Vec::new());
    for _ in 0..repeats {
        let t = Instant::now();
        let a = morton_sort::sort_indices(&codes);
        radix.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let b = morton_sort::sort_indices_comparison(&codes);
        comparison.push(t.elapsed().as_secs_f64());
        assert_eq!(a, b, "radix order diverged from the comparison referee");
    }
    SortAb { n, radix_s: median(&radix), comparison_s: median(&comparison) }
}

/// Pull a numeric field out of one hand-rolled JSON result line.
fn json_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Compare fresh results against a previously written report (the
/// committed baseline in CI) and print per-cell host-phase deltas.
fn print_baseline_delta(results: &[HostCell], old: &str) {
    println!();
    println!("delta vs committed baseline (new-path host seconds per step):");
    for c in results {
        let tag = format!("\"n\": {}, \"n_crit\": {}, \"k\": {}", c.n, c.n_crit, c.k);
        let prior =
            old.lines().find(|l| l.contains(&tag)).and_then(|l| json_f64(l, "host_new_s_per_step"));
        match prior {
            Some(p) if p > 0.0 => {
                println!(
                    "  N = {:>7} n_crit = {:>5} K = {}  {:.3e} -> {:.3e} s/step  ({:+.1}%)",
                    c.n,
                    c.n_crit,
                    c.k,
                    p,
                    c.host_new_s(),
                    100.0 * (c.host_new_s() - p) / p
                );
            }
            _ => println!(
                "  N = {:>7} n_crit = {:>5} K = {}  (no baseline entry)",
                c.n, c.n_crit, c.k
            ),
        }
    }
    println!("(wall-clock rates are machine-dependent; the delta is informational, not a gate)");
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let out_path: String = args.get("out", "BENCH_pr4.json".to_string());
    let base_path: String = args.get("baseline", out_path.clone());
    let baseline = std::fs::read_to_string(&base_path).ok();

    // headline size, the paper-optimum group size, and the sweeps
    let (n_head, steps) = if quick { (32_768, 4u64) } else { (262_144, 8u64) };
    let ncrit_sweep: &[usize] = if quick { &[500, 2000] } else { &[250, 500, 1000, 2000, 4000] };
    let k_sweep: &[u32] = &[1, 2, 4, 8];

    println!(
        "E11: host-phase overhaul — SoA stack traversal + K-step tree refresh vs \
         rebuild-every-step recursive path{}",
        if quick { " (--quick)" } else { "" }
    );
    println!(
        "     workload: Plummer sphere, seed {SEED}, theta {THETA}, drifting at dt = {DT}/step"
    );
    println!();
    rule(100);
    println!(
        "{:>8} {:>6} {:>3} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "N",
        "ncrit",
        "K",
        "build",
        "refresh",
        "walk-ref",
        "walk-new",
        "host-ref",
        "host-new",
        "speedup"
    );
    println!(
        "{:>8} {:>6} {:>3} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "", "", "", "ns/part", "ns/part", "ns/grp", "ns/grp", "ms/step", "ms/step", ""
    );
    rule(100);

    let mut results = Vec::new();
    // n_crit sweep at K = 4: the paper's §3 trade-off measured on the
    // new host phase (n_g ≈ 2000 is the paper's optimum)
    for &n_crit in ncrit_sweep {
        let c = measure(n_head, n_crit, 4, steps);
        result_row(&c);
        results.push(c);
    }
    rule(100);
    // K sweep at the paper's n_crit: what refresh amortization buys
    for &k in k_sweep {
        let c = measure(n_head, 2000, k, steps);
        result_row(&c);
        results.push(c);
    }
    rule(100);
    // the combined best operating point: large groups + full amortization
    if !quick {
        let c = measure(n_head, 4000, 8, steps);
        result_row(&c);
        results.push(c);
        rule(100);
    }

    // ---- Morton sort A/B: the radix sort inside every build above ----
    let sort = measure_sort(n_head, steps as usize);
    // the sort is the only component the radix change touched, so the
    // comparison-sort build is the measured radix build plus the sort
    // delta (both sorts timed on the identical code set in this run)
    let build_radix_s = results[0].build_s;
    let build_comparison_s = build_radix_s + (sort.comparison_s - sort.radix_s);
    println!();
    println!(
        "Morton sort A/B at N = {} (inside every tree build and decomposition):",
        fmt_count(sort.n as u64)
    );
    println!(
        "  MSD radix {:.3} ms vs comparison sort {:.3} ms per sort  ({:.2}x)",
        sort.radix_s * 1e3,
        sort.comparison_s * 1e3,
        sort.speedup()
    );
    println!(
        "  full tree build: {:.2} ms radix vs {:.2} ms with the comparison sort ({:.2}x; gate: radix build faster)",
        build_radix_s * 1e3,
        build_comparison_s * 1e3,
        build_comparison_s / build_radix_s
    );

    // headline: the best amortized operating point at the headline size —
    // the pre-PR path rebuilt and re-walked from scratch every step, so
    // each cell's ref leg is the old path at that cell's own n_crit
    let headline = results
        .iter()
        .filter(|c| c.n == n_head)
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("headline cell");
    println!();
    println!(
        "headline: N = {} host phase is {:.2}x the pre-PR path at n_crit = {} K = {} \
         (gate: >= 1.5x at N = 262144)",
        fmt_count(headline.n as u64),
        headline.speedup(),
        headline.n_crit,
        headline.k
    );

    if let Some(old) = &baseline {
        print_baseline_delta(&results, old);
    }

    let mut text = String::new();
    writeln!(text, "{{").unwrap();
    writeln!(text, "  \"experiment\": \"exp_host\",").unwrap();
    writeln!(text, "  \"quick\": {quick},").unwrap();
    writeln!(text, "  \"seed\": {SEED},").unwrap();
    writeln!(text, "  \"theta\": {THETA},").unwrap();
    writeln!(text, "  \"dt\": {DT},").unwrap();
    writeln!(text, "  \"sort_n\": {},", sort.n).unwrap();
    writeln!(text, "  \"sort_radix_s\": {},", sort.radix_s).unwrap();
    writeln!(text, "  \"sort_comparison_s\": {},", sort.comparison_s).unwrap();
    writeln!(text, "  \"sort_speedup\": {},", sort.speedup()).unwrap();
    writeln!(text, "  \"build_radix_s\": {build_radix_s},").unwrap();
    writeln!(text, "  \"build_comparison_s\": {build_comparison_s},").unwrap();
    writeln!(text, "  \"build_sort_speedup\": {},", build_comparison_s / build_radix_s).unwrap();
    writeln!(text, "  \"results\": [").unwrap();
    for (i, c) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        writeln!(text, "{}{comma}", json_line(c)).unwrap();
    }
    writeln!(text, "  ]").unwrap();
    writeln!(text, "}}").unwrap();
    std::fs::write(&out_path, &text).unwrap();
    println!();
    println!("wrote {} results to {out_path}", results.len());
}
