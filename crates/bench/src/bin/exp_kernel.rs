//! **E10 — batched SoA device kernel vs the pre-batch scalar path.**
//!
//! Drives the simulated GRAPE-5 directly (no tree) on a pinned-seed
//! Plummer workload and measures host-side kernel throughput two ways
//! *in the same run, against the same resident j-set*:
//!
//! * **batch** — the production `force_on` path: table-driven LNS
//!   converters, SoA j-memory, blocked i×j kernel, LNS-indexed cutoff,
//!   board-parallel dispatch;
//! * **reference** — the kept pre-batch scalar path
//!   (`force_on_reference`): per-pair `JWord` assembly, `libm`
//!   encode/decode per operand, cutoff LNS→f64→re-encode round trip.
//!
//! Both paths are proven bit-identical by `tests/golden_kernel.rs`;
//! this binary quantifies what the refactor bought. Results go to a
//! table, a `PhaseTimers` phase split for the headline run, and a
//! JSON report (default `BENCH_pr3.json`); when the output file already
//! exists its numbers are read first and a delta is printed, so CI can
//! diff a fresh `--quick` run against the committed baseline.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_kernel -- \
//!     [--quick] [--out BENCH_pr3.json]
//! ```

use g5_bench::{fmt_count, fmt_secs, plummer, rule, Args};
use g5util::counters::{FlopConvention, InteractionRate};
use grape5::{bounding_window, ArithMode, Grape5, Grape5Config, LanePath};
use std::fmt::Write as _;
use std::time::Instant;
use treegrape::perf::PhaseTimers;

const SEED: u64 = 42;
const EPS: f64 = 0.01;

struct KernelResult {
    n: usize,
    mode: ArithMode,
    nj: u64,
    /// j-quantization + transfer time (the `set_j_particles` call).
    load_s: f64,
    batch: InteractionRate,
    reference: InteractionRate,
    /// Lane path the batch phase ran on (detected, or env-forced).
    lane: LanePath,
    /// Exact mode only: the same batch kernel forced onto the scalar
    /// skeleton — the A/B partner of the lane path, bit-identical to it.
    scalar: Option<InteractionRate>,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.batch.per_second() / self.reference.per_second()
    }

    /// Lane kernel vs the scalar batch skeleton (exact mode only).
    fn lane_speedup(&self) -> Option<f64> {
        self.scalar.as_ref().map(|s| self.batch.per_second() / s.per_second())
    }
}

fn mode_str(mode: ArithMode) -> &'static str {
    match mode {
        ArithMode::Exact => "exact",
        ArithMode::Lns => "lns",
    }
}

fn lane_str(path: LanePath) -> &'static str {
    match path {
        LanePath::Avx2 => "avx2",
        LanePath::Portable => "portable",
        LanePath::Scalar => "scalar",
    }
}

/// Time one (N, mode) cell: open a device, make the j-set resident,
/// then run the batch and reference paths back to back on rotating
/// i-windows until each phase has both a minimum wall-clock and a
/// minimum interaction count behind it.
fn measure(n: usize, mode: ArithMode, quick: bool) -> KernelResult {
    let snap = plummer(n, SEED);
    let cfg = Grape5Config { mode, ..Grape5Config::paper() };
    let mut g5 = Grape5::open(cfg);
    let (lo, hi) = bounding_window(&snap.pos).expect("finite workload");
    g5.set_range(lo, hi);
    g5.set_eps(EPS);

    let t_load = Instant::now();
    g5.set_j_particles(&snap.pos, &snap.mass);
    let load_s = t_load.elapsed().as_secs_f64();
    let nj = g5.nj() as u64;

    // per-phase budgets: enough interactions to amortize call overheads
    // and a minimum wall-clock so fast cells are not quantization noise;
    // the slow reference path gets a smaller interaction budget. The two
    // phases are measured in alternating rounds so slow drift of the
    // machine (thermal, competing load) biases neither side of the ratio.
    let (batch_target, ref_target, min_s, rounds) = if quick {
        (4_000_000u64, 1_000_000u64, 0.02, 2u64)
    } else {
        (36_000_000u64, 9_000_000u64, 0.12, 3u64)
    };
    let ni_for = |target: u64| (target.div_ceil(nj).clamp(16, n as u64)) as usize;

    // warm the device, the converter tables, and the branch predictors
    let lane = g5.lane_path();
    let _ = g5.force_on(&snap.pos[..16.min(n)]);
    let _ = g5.force_on_reference(&snap.pos[..16.min(n)]);
    // exact mode additionally A/Bs the lane kernel against the scalar
    // batch skeleton it replaced (both bit-identical by the golden suite)
    let measure_scalar = mode == ArithMode::Exact && lane != LanePath::Scalar;
    if measure_scalar {
        g5.set_lane_path(LanePath::Scalar);
        let _ = g5.force_on(&snap.pos[..16.min(n)]);
        g5.set_lane_path(lane);
    }

    let run = |g5: &mut Grape5, target: u64, reference: bool, off: &mut usize| {
        let ni = ni_for(target);
        let mut interactions = 0u64;
        let t = Instant::now();
        while interactions < target || t.elapsed().as_secs_f64() < min_s {
            let end = (*off + ni).min(n);
            let xi = &snap.pos[*off..end];
            let f = if reference { g5.force_on_reference(xi) } else { g5.force_on(xi) };
            assert_eq!(f.len(), xi.len());
            interactions += xi.len() as u64 * nj;
            *off = if end == n { 0 } else { end };
        }
        (interactions, t.elapsed().as_secs_f64())
    };

    let (mut bi, mut bs, mut ri, mut rs) = (0u64, 0.0f64, 0u64, 0.0f64);
    let (mut si, mut ss) = (0u64, 0.0f64);
    let (mut off_b, mut off_r, mut off_s) = (0usize, 0usize, 0usize);
    for _ in 0..rounds {
        let (i, s) = run(&mut g5, batch_target / rounds, false, &mut off_b);
        bi += i;
        bs += s;
        if measure_scalar {
            g5.set_lane_path(LanePath::Scalar);
            let (i, s) = run(&mut g5, ref_target / rounds, false, &mut off_s);
            si += i;
            ss += s;
            g5.set_lane_path(lane);
        }
        let (i, s) = run(&mut g5, ref_target / rounds, true, &mut off_r);
        ri += i;
        rs += s;
    }
    let batch = InteractionRate::new(bi, bs);
    let reference = InteractionRate::new(ri, rs);
    let scalar = measure_scalar.then(|| InteractionRate::new(si, ss));
    KernelResult { n, mode, nj, load_s, batch, reference, lane, scalar }
}

fn result_row(r: &KernelResult) {
    let (scalar_col, lane_col) = match &r.scalar {
        Some(s) => {
            (format!("{:.3e}", s.per_second()), format!("{:.2}x", r.lane_speedup().unwrap()))
        }
        None => ("-".to_string(), "-".to_string()),
    };
    println!(
        "{:>8} {:>6} {:>12.3e} {:>10.1} {:>12} {:>8} {:>12.3e} {:>9.2}x {:>9.2}",
        r.n,
        mode_str(r.mode),
        r.batch.per_second(),
        r.batch.ns_per_interaction(),
        scalar_col,
        lane_col,
        r.reference.per_second(),
        r.speedup(),
        r.batch.gflops(FlopConvention::WarrenSalmon38),
    );
}

/// The headline run's wall-clock split in `PhaseTimers` form: j-load as
/// the build phase, the batch kernel as the device phase.
fn phase_split(r: &KernelResult) {
    let t = PhaseTimers {
        build_s: r.load_s,
        device_s: r.batch.seconds,
        force_wall_s: r.load_s + r.batch.seconds,
        ..PhaseTimers::default()
    };
    println!();
    println!(
        "E10 — phase split of the headline cell (N = {}, {} mode)",
        fmt_count(r.n as u64),
        mode_str(r.mode)
    );
    rule(78);
    println!("{:<34} {:>10} {:>14} {:>14}", "phase", "wall", "work", "ns/item");
    rule(78);
    println!(
        "{:<34} {:>10} {:>14} {:>14.1}",
        "j quantize + load (build_s)",
        fmt_secs(t.build_s),
        format!("{} words", fmt_count(r.nj)),
        t.build_s * 1e9 / r.nj as f64
    );
    println!(
        "{:<34} {:>10} {:>14} {:>14.1}",
        "batch force calls (device_s)",
        fmt_secs(t.device_s),
        format!("{:.2e} ints", r.batch.interactions as f64),
        r.batch.ns_per_interaction()
    );
    println!("{:<34} {:>10}", "force wall-clock (force_wall_s)", fmt_secs(t.force_wall_s));
    rule(78);
}

fn json_line(r: &KernelResult) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"n\": {}, \"mode\": \"{}\", \"nj\": {}, \"load_s\": {}, \
         \"batch_interactions\": {}, \"batch_seconds\": {}, \"batch_per_second\": {}, \
         \"batch_ns_per_interaction\": {}, \"batch_gflops38\": {}, \
         \"ref_interactions\": {}, \"ref_seconds\": {}, \"ref_per_second\": {}, \
         \"ref_ns_per_interaction\": {}, \"speedup\": {}}}",
        r.n,
        mode_str(r.mode),
        r.nj,
        r.load_s,
        r.batch.interactions,
        r.batch.seconds,
        r.batch.per_second(),
        r.batch.ns_per_interaction(),
        r.batch.gflops(FlopConvention::WarrenSalmon38),
        r.reference.interactions,
        r.reference.seconds,
        r.reference.per_second(),
        r.reference.ns_per_interaction(),
        r.speedup(),
    )
    .unwrap();
    // lane A/B columns (exact mode; null in LNS rows, which have no
    // lane kernel yet)
    s.pop(); // reopen the object
    match &r.scalar {
        Some(sc) => write!(
            s,
            ", \"lane_path\": \"{}\", \"scalar_per_second\": {}, \
             \"scalar_ns_per_interaction\": {}, \"lane_speedup\": {}}}",
            lane_str(r.lane),
            sc.per_second(),
            sc.ns_per_interaction(),
            r.lane_speedup().unwrap(),
        )
        .unwrap(),
        None => write!(
            s,
            ", \"lane_path\": \"{}\", \"scalar_per_second\": null, \
             \"scalar_ns_per_interaction\": null, \"lane_speedup\": null}}",
            lane_str(r.lane),
        )
        .unwrap(),
    }
    s
}

/// Pull a numeric field out of one hand-rolled JSON result line.
fn json_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Compare fresh results against a previously written report (the
/// committed baseline in CI) and print per-cell batch-rate deltas.
fn print_baseline_delta(results: &[KernelResult], old: &str) {
    println!();
    println!("delta vs committed baseline (batch interactions/s):");
    for r in results {
        let tag = format!("\"n\": {}, \"mode\": \"{}\"", r.n, mode_str(r.mode));
        let prior =
            old.lines().find(|l| l.contains(&tag)).and_then(|l| json_f64(l, "batch_per_second"));
        match prior {
            Some(p) if p > 0.0 => {
                let now = r.batch.per_second();
                println!(
                    "  N = {:>7} {:<5}  {:.3e} -> {:.3e}  ({:+.1}%)",
                    r.n,
                    mode_str(r.mode),
                    p,
                    now,
                    100.0 * (now - p) / p
                );
            }
            _ => println!("  N = {:>7} {:<5}  (no baseline entry)", r.n, mode_str(r.mode)),
        }
    }
    println!("(wall-clock rates are machine-dependent; the delta is informational, not a gate)");
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let out_path: String = args.get("out", "BENCH_pr3.json".to_string());
    let base_path: String = args.get("baseline", out_path.clone());
    let sizes: &[usize] = if quick { &[4_096, 16_384] } else { &[16_384, 65_536, 262_144] };

    // read the comparison report (by default the file about to be
    // overwritten; CI points --baseline at the committed BENCH_pr3.json)
    let baseline = std::fs::read_to_string(&base_path).ok();

    println!(
        "E10: batched SoA kernel vs pre-batch scalar reference (same run, same resident j-set{})",
        if quick { ", --quick" } else { "" }
    );
    println!("     workload: Plummer sphere, seed {SEED}, eps {EPS}; both paths bit-identical");
    println!();
    rule(96);
    println!(
        "{:>8} {:>6} {:>12} {:>10} {:>12} {:>8} {:>12} {:>10} {:>9}",
        "N",
        "mode",
        "batch i/s",
        "ns/int",
        "scalar i/s",
        "lane x",
        "ref i/s",
        "speedup",
        "Gflops38"
    );
    rule(96);
    let mut results = Vec::new();
    for &n in sizes {
        for mode in [ArithMode::Exact, ArithMode::Lns] {
            let r = measure(n, mode, quick);
            result_row(&r);
            results.push(r);
        }
    }
    rule(96);
    println!("(Gflops38: batch rate priced at the paper's 38 ops/interaction convention)");
    println!("(scalar i/s / lane x: exact-mode batch kernel forced onto the scalar skeleton)");

    // phase split for the largest LNS cell — the acceptance workload
    let headline = results
        .iter()
        .filter(|r| r.mode == ArithMode::Lns)
        .max_by_key(|r| r.n)
        .expect("at least one LNS cell");
    phase_split(headline);
    println!();
    println!(
        "headline: N = {} LNS batch is {:.2}x the scalar reference (gate: >= 3x at N = 65536)",
        fmt_count(headline.n as u64),
        headline.speedup()
    );

    // exact-mode lane headline — the PR 8 acceptance gate
    if let Some(exact) = results
        .iter()
        .filter(|r| r.mode == ArithMode::Exact && r.scalar.is_some())
        .max_by_key(|r| r.n)
    {
        println!(
            "headline: N = {} exact-mode {} lanes are {:.2}x the scalar batch skeleton \
             (gate: >= 3x at N = 65536..262144)",
            fmt_count(exact.n as u64),
            lane_str(exact.lane),
            exact.lane_speedup().unwrap()
        );
    }

    if let Some(old) = &baseline {
        print_baseline_delta(&results, old);
    }

    let mut text = String::new();
    writeln!(text, "{{").unwrap();
    writeln!(text, "  \"experiment\": \"exp_kernel\",").unwrap();
    writeln!(text, "  \"quick\": {quick},").unwrap();
    writeln!(text, "  \"seed\": {SEED},").unwrap();
    writeln!(text, "  \"eps\": {EPS},").unwrap();
    writeln!(text, "  \"ops_per_interaction\": 38,").unwrap();
    writeln!(text, "  \"results\": [").unwrap();
    for (k, r) in results.iter().enumerate() {
        let comma = if k + 1 < results.len() { "," } else { "" };
        writeln!(text, "{}{comma}", json_line(r)).unwrap();
    }
    writeln!(text, "  ]").unwrap();
    writeln!(text, "}}").unwrap();
    std::fs::write(&out_path, &text).unwrap();
    println!();
    println!("wrote {} results to {out_path}", results.len());
}
