//! **E13 — chaos endurance: the self-healing cluster under a seeded
//! fault storm.**
//!
//! Drives a long [`ClusterTreeGrape`] run through every fault class of
//! the GRAPE fault model at once, plus operator-grade disasters the
//! per-call recovery stack cannot absorb, and verifies the shard
//! lifecycle supervisor keeps the simulation alive, accurate, and
//! reproducible:
//!
//! * **background noise** — transient readback and j-memory corruption
//!   on *every* shard, with per-shard fault streams derived by
//!   `splitmix` from one chaos seed;
//! * **j-memory burst** — a window mid-run where the corruption rate
//!   jumps 5x on all shards;
//! * **stuck pipe** — one shard's pipeline fails early, is convicted by
//!   self-test and quarantined;
//! * **board dropout** — one shard loses a board mid-run, halving its
//!   capacity; the weighted re-decomposition shifts particles away
//!   from it, and a later "repair" (persistent faults cleared, probe
//!   passes) restores the board and shifts them back;
//! * **whole-shard kills** — two shards are killed outright at
//!   scheduled steps; the supervisor probes them on its deadline
//!   clock and re-admits each once its hardware passes self-test.
//!
//! Three runs gate the result:
//!
//! * **A (endurance)** — full chaos schedule with rolling retained
//!   checkpoints, scrubbed at the end; completion, max energy drift,
//!   re-admission count and MTTR (kill → re-admission, in evals) are
//!   read off the recovery ledger.
//! * **B (determinism)** — exact rerun of A; the recovery ledgers and
//!   final states must be identical, bit for bit.
//! * **C (resume)** — a fresh process restores the mid-chaos
//!   checkpoint written at the cut step (fault-injector words and
//!   lifecycle payload included) and finishes the run; its final
//!   snapshot must serialize to the same bytes as A's.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_endurance -- \
//!     [--quick] [--n 65536] [--k 4] [--steps 200] [--dt 0.005] \
//!     [--out BENCH_pr7.json] [--ledger-out BENCH_pr7_ledger.txt] \
//!     [--ckpt-dir endurance_ckpt] [--skip-rerun] [--skip-resume]
//! ```
//!
//! `--quick` (CI smoke): N = 8,192, K = 3, 40 steps — the same storm,
//! compressed.

use g5_bench::{fmt_secs, plummer, rule, Args};
use grape5::fault::{BoardDropout, FaultConfig, StuckPipe};
use grape5::{splitmix, RetryPolicy};
use std::fmt::Write as _;
use treegrape::checkpoint::{latest, scrub, Checkpointer};
use treegrape::cluster::{ClusterTreeGrape, ClusterTreeGrapeConfig};
use treegrape::Simulation;

const CHAOS_SEED: u64 = 7001;
const EPS: f64 = 0.01;
/// Committed energy-drift envelope for the full storm: board loss
/// re-groups the j-set in fixed point, so the faulty run may differ
/// from a clean one at rounding level, but never beyond this.
const DRIFT_ENVELOPE: f64 = 0.05;

/// The full deterministic chaos schedule, in step numbers (an action
/// listed at step `s` is applied immediately before integrating step
/// `s`). Derived from the run length so `--quick` compresses the same
/// storm instead of dropping acts from it.
struct Chaos {
    transient_rate: f64,
    jmem_rate: f64,
    /// Stuck pipe armed on shard 1 from the start.
    stuck: StuckPipe,
    /// Board dropout armed on shard 2, firing ~25% into the run.
    dropout: BoardDropout,
    /// Operator kill of shard 1 (already degraded by the stuck pipe).
    kill1: u64,
    /// Technician clears shard 1's persistent fault; the next probe
    /// re-admits it.
    heal1: u64,
    /// Operator kill of the last shard.
    kill2: u64,
    /// j-memory burst window: corruption rate x5 on all shards.
    burst_on: u64,
    burst_off: u64,
    /// Technician repairs shard 2's dead board; the next probe
    /// restores it and the weighted cuts shift back.
    heal2: u64,
    /// Step whose checkpoint run C resumes from.
    cut: u64,
}

impl Chaos {
    fn plan(n: usize, k: usize, n_crit: usize, steps: u64) -> Chaos {
        // Conservative estimate of device calls per shard per eval
        // (the real count is higher once LET imports split groups), so
        // the dropout trigger fires *earlier* than the nominal 25%
        // mark, never after the cut.
        let calls_per_eval = ((n / n_crit / k) as u64).max(1);
        Chaos {
            transient_rate: 0.02,
            jmem_rate: 0.02,
            stuck: StuckPipe { after_call: 3, board: 0, pipe: 5 },
            dropout: BoardDropout { after_call: calls_per_eval * steps / 4, board: 1 },
            kill1: (steps * 15 / 100).max(2),
            heal1: (steps * 25 / 100).max(3),
            kill2: steps * 55 / 100,
            burst_on: steps * 45 / 100,
            burst_off: steps * 50 / 100,
            heal2: steps * 85 / 100,
            cut: steps * 70 / 100,
        }
    }

    /// Arm every shard's injector for one storm phase. `tag` makes
    /// each re-arm draw a fresh, independent stream family; per-shard
    /// streams are split off it inside `set_fault_injectors`.
    fn arm(&self, cl: &mut ClusterTreeGrape, jmem_rate: f64, tag: u64, stuck_armed: bool) {
        let base = FaultConfig {
            transient_rate: self.transient_rate,
            jmem_corrupt_rate: jmem_rate,
            ..FaultConfig::none(splitmix(CHAOS_SEED, tag))
        };
        cl.set_fault_injectors(base);
        if stuck_armed {
            let mut f1 = base.for_shard(1);
            f1.stuck_pipe = Some(self.stuck);
            cl.set_fault_injector(1, f1);
        }
        let mut f2 = base.for_shard(2);
        f2.board_dropout = Some(self.dropout);
        cl.set_fault_injector(2, f2);
    }

    /// Apply the operator/technician actions scheduled for `step`.
    /// `with_kills: false` replays only the hardware-state actions (a
    /// resumed run takes shard health from the lifecycle payload, not
    /// from re-killing).
    fn apply(&self, cl: &mut ClusterTreeGrape, step: u64, k: usize, with_kills: bool) {
        if with_kills && step == self.kill1 {
            cl.kill_shard(1);
        }
        if step == self.heal1 {
            cl.clear_persistent_faults(1);
        }
        if with_kills && step == self.kill2 {
            cl.kill_shard(k - 1);
        }
        if step == self.burst_on {
            self.arm(cl, self.jmem_rate * 5.0, 1, false);
        }
        if step == self.burst_off {
            self.arm(cl, self.jmem_rate, 2, false);
        }
        if step == self.heal2 {
            cl.clear_persistent_faults(2);
        }
    }
}

struct RunResult {
    completed: u64,
    wall_s: f64,
    drift_max: f64,
    ledger: Vec<String>,
    evals: u64,
    final_state: g5ic::Snapshot,
    final_time: f64,
    recovery: grape5::RecoveryStats,
    shard_recovery: Vec<(usize, grape5::RecoveryStats)>,
}

fn endurance_cfg(k: usize, n_crit: usize, probe_interval: u64) -> ClusterTreeGrapeConfig {
    let mut cfg = ClusterTreeGrapeConfig::paper(EPS, k);
    cfg.base.n_crit = n_crit;
    cfg.base.retry = RetryPolicy { max_retries: 20, ..RetryPolicy::no_wait() };
    cfg.lifecycle.probe_interval = probe_interval;
    cfg.lifecycle.straggler_factor = Some(3.0);
    cfg
}

/// One full endurance pass (runs A and B). When `ckpt` is set, rolling
/// retained checkpoints go to `ckpt.0` every `ckpt.1` steps keeping
/// `ckpt.2`, and the mid-chaos cut checkpoint goes to `cut_dir`.
#[allow(clippy::too_many_arguments)]
fn run_storm(
    label: &str,
    snap0: &g5ic::Snapshot,
    cfg: ClusterTreeGrapeConfig,
    chaos: &Chaos,
    steps: u64,
    dt: f64,
    ckpt: Option<(&std::path::Path, u64, usize)>,
    cut_dir: Option<&std::path::Path>,
) -> RunResult {
    let wall = std::time::Instant::now();
    let k = cfg.shards;
    let mut backend = ClusterTreeGrape::new(cfg);
    chaos.arm(&mut backend, chaos.jmem_rate, 0, true);

    let rolling = ckpt.map(|(dir, every, keep)| {
        Checkpointer::new(dir, every).expect("create checkpoint dir").with_retention(keep)
    });
    let cut_ck =
        cut_dir.map(|dir| Checkpointer::new(dir, chaos.cut.max(1)).expect("create cut dir"));

    let mut sim = Simulation::try_new(snap0.clone(), backend, 0.0).expect("initial forces");
    let e0 = sim.total_energy();
    let mut drift_max = 0.0f64;
    for step in 1..=steps {
        chaos.apply(sim.backend_mut(), step, k, true);
        sim.try_step(dt).expect("storm step");
        drift_max = drift_max.max(((sim.total_energy() - e0) / e0).abs());
        if let Some(c) = &rolling {
            let alive = sim.backend().alive_shards();
            let faults = sim.backend().fault_states();
            let lc = sim.backend().lifecycle_state();
            c.maybe_write_cluster(&sim, alive, &faults, Some(&lc)).expect("rolling checkpoint");
        }
        if step == chaos.cut {
            if let Some(c) = &cut_ck {
                let alive = sim.backend().alive_shards();
                let faults = sim.backend().fault_states();
                let lc = sim.backend().lifecycle_state();
                c.write_cluster(&sim.state, sim.time, sim.steps, alive, &faults, Some(&lc))
                    .expect("cut checkpoint");
            }
        }
    }

    let r = RunResult {
        completed: sim.steps,
        wall_s: wall.elapsed().as_secs_f64(),
        drift_max,
        ledger: sim.backend().ledger().events().to_vec(),
        evals: sim.backend().evals(),
        final_state: sim.state.clone(),
        final_time: sim.time,
        recovery: sim.backend().cluster_recovery_stats(),
        shard_recovery: sim.backend().shard_recovery_stats(),
    };
    eprintln!(
        "    [run {label}: {} steps, {} evals, {} ledger events, {}]",
        r.completed,
        r.evals,
        r.ledger.len(),
        fmt_secs(r.wall_s)
    );
    r
}

/// Run C: restore the cut checkpoint into a fresh backend — injectors
/// re-armed from the same schedule, technician actions up to the cut
/// replayed, fault-injector words and lifecycle payload restored — and
/// integrate to the end.
fn run_resume(
    cut_dir: &std::path::Path,
    cfg: ClusterTreeGrapeConfig,
    chaos: &Chaos,
    steps: u64,
    dt: f64,
) -> RunResult {
    let wall = std::time::Instant::now();
    let k = cfg.shards;
    let ck = latest(cut_dir).expect("read cut dir").expect("cut checkpoint present");
    assert_eq!(ck.step, chaos.cut, "cut checkpoint at the wrong step");
    let lc = ck.lifecycle.clone().expect("lifecycle payload in cut checkpoint");
    let (state, time) = ck.load_snapshot().expect("cut snapshot");

    let mut backend = ClusterTreeGrape::new(cfg);
    chaos.arm(&mut backend, chaos.jmem_rate, 0, true);
    for step in 1..=chaos.cut {
        chaos.apply(&mut backend, step, k, false);
    }
    for (slot, words) in &ck.shard_fault_states {
        backend.restore_fault_state(*slot, words).expect("restore fault words");
    }
    backend.restore_lifecycle(&lc);

    let mut sim = Simulation::resume(state, backend, time, ck.step).expect("resume");
    let e0 = sim.total_energy();
    let mut drift_max = 0.0f64;
    for step in ck.step + 1..=steps {
        chaos.apply(sim.backend_mut(), step, k, true);
        sim.try_step(dt).expect("resumed step");
        drift_max = drift_max.max(((sim.total_energy() - e0) / e0).abs());
    }

    let r = RunResult {
        completed: sim.steps,
        wall_s: wall.elapsed().as_secs_f64(),
        drift_max,
        ledger: sim.backend().ledger().events().to_vec(),
        evals: sim.backend().evals(),
        final_state: sim.state.clone(),
        final_time: sim.time,
        recovery: sim.backend().cluster_recovery_stats(),
        shard_recovery: sim.backend().shard_recovery_stats(),
    };
    eprintln!(
        "    [run C: resumed from step {}, finished {} steps in {}]",
        ck.step,
        r.completed,
        fmt_secs(r.wall_s)
    );
    r
}

/// Kill → re-admission spans per shard, in evals, read off the ledger.
fn mttr_spans(ledger: &[String]) -> Vec<(usize, u64, u64)> {
    fn eval_of(e: &str) -> Option<u64> {
        e.strip_prefix("eval ")?.split(':').next()?.parse().ok()
    }
    fn shard_of(e: &str, marker: &str) -> Option<usize> {
        let at = e.find(marker)? + marker.len();
        e[at..].split_whitespace().next()?.parse().ok()
    }
    let mut open: Vec<(usize, u64)> = Vec::new();
    let mut spans = Vec::new();
    for e in ledger {
        let Some(eval) = eval_of(e) else { continue };
        if e.contains("killed") {
            if let Some(k) = shard_of(e, "shard ") {
                open.push((k, eval));
            }
        } else if e.contains("re-admitted") {
            if let Some(k) = shard_of(e, "shard ") {
                if let Some(i) = open.iter().position(|&(ok, _)| ok == k) {
                    let (_, down) = open.remove(i);
                    spans.push((k, down, eval));
                }
            }
        }
    }
    spans
}

fn snapshot_bytes(state: &g5ic::Snapshot, time: f64, path: &std::path::Path) -> Vec<u8> {
    treegrape::snapshot_io::save(path, state, time).expect("serialize snapshot");
    std::fs::read(path).expect("read snapshot bytes")
}

fn json_recovery(r: &grape5::RecoveryStats) -> String {
    format!(
        "{{\"retries\": {}, \"j_reloads\": {}, \"validation_failures\": {}, \
         \"device_errors\": {}, \"quarantined_pipes\": {}, \"quarantined_boards\": {}}}",
        r.retries,
        r.j_reloads,
        r.validation_failures,
        r.device_errors,
        r.quarantined_pipes,
        r.quarantined_boards,
    )
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n: usize = args.get("n", if quick { 8_192 } else { 65_536 });
    let k: usize = args.get("k", if quick { 3 } else { 4 });
    let steps: u64 = args.get("steps", if quick { 40 } else { 200 });
    let dt: f64 = args.get("dt", 0.005);
    let n_crit: usize = args.get("n-crit", 128);
    let probe_interval: u64 = args.get("probe-interval", if quick { 4 } else { 8 });
    let every: u64 = args.get("checkpoint-every", if quick { 5 } else { 20 });
    let keep: usize = args.get("keep", if quick { 3 } else { 4 });
    let out_path: String = args.get("out", "BENCH_pr7.json".to_string());
    let ledger_path: String = args.get("ledger-out", "BENCH_pr7_ledger.txt".to_string());
    let ckpt_root: String = args.get("ckpt-dir", "endurance_ckpt".to_string());
    let skip_rerun = args.flag("skip-rerun");
    let skip_resume = args.flag("skip-resume");

    assert!(k >= 3, "the chaos schedule addresses shards 1, 2 and K-1: need K >= 3");
    let chaos = Chaos::plan(n, k, n_crit, steps);
    let cfg = endurance_cfg(k, n_crit, probe_interval);

    println!(
        "E13: chaos endurance — self-healing cluster under a seeded fault storm{}",
        if quick { " (--quick)" } else { "" }
    );
    println!(
        "     workload: Plummer N = {n}, K = {k}, {steps} steps, dt = {dt}, n_crit = {n_crit}, \
         chaos seed {CHAOS_SEED}"
    );
    println!(
        "     schedule: stuck pipe on shard 1 (call {}), dropout on shard 2 (call {}), \
         kills at steps {} and {} (shards 1, {}), heals at {} and {}, j-mem burst {}..{}, \
         cut at {}",
        chaos.stuck.after_call,
        chaos.dropout.after_call,
        chaos.kill1,
        chaos.kill2,
        k - 1,
        chaos.heal1,
        chaos.heal2,
        chaos.burst_on,
        chaos.burst_off,
        chaos.cut,
    );
    println!(
        "     supervisor: probe every {probe_interval} evals, straggler deadline 3.0 x median, \
         retries <= 20"
    );
    println!();

    let snap0 = plummer(n, 42);
    let root = std::path::Path::new(&ckpt_root);
    std::fs::remove_dir_all(root).ok();
    let rolling_dir = root.join("rolling");
    let cut_dir = root.join("cut");

    let a = run_storm(
        "A",
        &snap0,
        cfg,
        &chaos,
        steps,
        dt,
        Some((&rolling_dir, every, keep)),
        Some(&cut_dir),
    );
    let scrub_report = scrub(&rolling_dir, keep).expect("scrub retained checkpoints");

    let b = (!skip_rerun).then(|| run_storm("B", &snap0, cfg, &chaos, steps, dt, None, None));
    let c = (!skip_resume).then(|| run_resume(&cut_dir, cfg, &chaos, steps, dt));

    // ------------------------------------------------------------------
    // report
    let spans = mttr_spans(&a.ledger);
    let readmissions = a.ledger.iter().filter(|e| e.contains("re-admitted")).count();
    let kills = a.ledger.iter().filter(|e| e.contains("killed")).count();
    let restores = a.ledger.iter().filter(|e| e.contains("regained")).count();
    let stragglers = a.ledger.iter().filter(|e| e.contains("straggled")).count();
    let redecompositions = a.ledger.iter().filter(|e| e.contains("decomposed over")).count();
    let mttr_mean = if spans.is_empty() {
        0.0
    } else {
        spans.iter().map(|&(_, d, u)| (u - d) as f64).sum::<f64>() / spans.len() as f64
    };
    let mttr_max = spans.iter().map(|&(_, d, u)| u - d).max().unwrap_or(0);

    println!();
    println!("recovery ledger of run A ({} events):", a.ledger.len());
    rule(72);
    for e in &a.ledger {
        println!("  {e}");
    }
    rule(72);
    println!();
    println!(
        "completion: {}/{steps} steps, {} evals, max |dE/E0| = {:.3e} (envelope {DRIFT_ENVELOPE})",
        a.completed, a.evals, a.drift_max
    );
    println!(
        "lifecycle: {kills} kills, {readmissions} re-admissions, {restores} hardware restores, \
         {stragglers} straggler re-executions, {redecompositions} decompositions"
    );
    for &(shard, down, up) in &spans {
        println!(
            "  shard {shard}: down at eval {down}, re-admitted at eval {up} (MTTR {} evals)",
            up - down
        );
    }
    println!("MTTR: mean {mttr_mean:.1} evals, max {mttr_max} evals");
    println!(
        "recovery: cluster {} retries, {} j-reloads, {} quarantined pipes, {} quarantined boards",
        a.recovery.retries,
        a.recovery.j_reloads,
        a.recovery.quarantined_pipes,
        a.recovery.quarantined_boards
    );
    for (slot, sr) in &a.shard_recovery {
        println!(
            "  shard {slot}: {} retries, {} j-reloads, {} q-pipes, {} q-boards",
            sr.retries, sr.j_reloads, sr.quarantined_pipes, sr.quarantined_boards
        );
    }
    println!(
        "checkpoints: scrubbed {} retained manifests, {} valid, {} corrupt",
        scrub_report.checked,
        scrub_report.valid,
        scrub_report.corrupt.len()
    );

    // ------------------------------------------------------------------
    // verdicts
    let tmp = std::env::temp_dir().join(format!("g5_endurance_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).ok();
    let bytes_a = snapshot_bytes(&a.final_state, a.final_time, &tmp.join("a.snap"));

    let mut ok = true;
    let mut verdict = |label: &str, pass: bool, detail: String| {
        if !pass {
            ok = false;
        }
        println!("verdict {label:>13}: {} ({detail})", if pass { "PASS" } else { "FAIL" });
    };

    println!();
    verdict("completion", a.completed == steps, format!("{}/{steps} steps", a.completed));
    verdict(
        "energy",
        a.drift_max.is_finite() && a.drift_max < DRIFT_ENVELOPE,
        format!("max |dE/E0| {:.3e} < {DRIFT_ENVELOPE}", a.drift_max),
    );
    verdict(
        "self-healing",
        readmissions >= 2 && kills >= 2,
        format!("{kills} kills, {readmissions} re-admissions"),
    );
    verdict(
        "fault-classes",
        a.recovery.retries > 0
            && a.recovery.j_reloads > 0
            && a.recovery.quarantined_pipes >= 1
            && a.recovery.quarantined_boards >= 1,
        format!(
            "retries {}, j-reloads {}, q-pipes {}, q-boards {}",
            a.recovery.retries,
            a.recovery.j_reloads,
            a.recovery.quarantined_pipes,
            a.recovery.quarantined_boards
        ),
    );
    verdict(
        "scrub",
        scrub_report.corrupt.is_empty() && scrub_report.valid >= 1,
        format!("{} manifests valid", scrub_report.valid),
    );

    let mut determinism_pass = None;
    if let Some(b) = &b {
        let pass = b.ledger == a.ledger
            && b.final_state.pos == a.final_state.pos
            && b.final_state.vel == a.final_state.vel;
        determinism_pass = Some(pass);
        verdict(
            "determinism",
            pass,
            format!(
                "rerun ledger {} ({} events), final state {}",
                if b.ledger == a.ledger { "identical" } else { "DIFFERS" },
                b.ledger.len(),
                if b.final_state.pos == a.final_state.pos { "bit-identical" } else { "DIFFERS" }
            ),
        );
    }
    let mut resume_pass = None;
    if let Some(c) = &c {
        let bytes_c = snapshot_bytes(&c.final_state, c.final_time, &tmp.join("c.snap"));
        let pass = c.completed == steps && bytes_c == bytes_a;
        resume_pass = Some(pass);
        verdict(
            "resume",
            pass,
            format!(
                "resumed from step {}, final snapshot {} ({} bytes)",
                chaos.cut,
                if bytes_c == bytes_a { "byte-identical" } else { "DIFFERS" },
                bytes_a.len()
            ),
        );
    }
    std::fs::remove_dir_all(&tmp).ok();

    // ------------------------------------------------------------------
    // artifacts
    std::fs::write(&ledger_path, a.ledger.join("\n") + "\n").expect("write ledger artifact");
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"exp_endurance\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"chaos_seed\": {CHAOS_SEED},");
    let _ = writeln!(
        json,
        "  \"n\": {n}, \"k\": {k}, \"steps\": {steps}, \"dt\": {dt}, \"eps\": {EPS}, \
         \"n_crit\": {n_crit},"
    );
    let _ = writeln!(
        json,
        "  \"probe_interval\": {probe_interval}, \"straggler_factor\": 3.0, \
         \"checkpoint_every\": {every}, \"retention_keep\": {keep}, \"cut_step\": {},",
        chaos.cut
    );
    let _ = writeln!(json, "  \"completed_steps\": {},", a.completed);
    let _ = writeln!(json, "  \"evals\": {},", a.evals);
    let _ = writeln!(json, "  \"wall_s\": {},", a.wall_s);
    let _ = writeln!(json, "  \"max_energy_drift\": {},", a.drift_max);
    let _ = writeln!(json, "  \"drift_envelope\": {DRIFT_ENVELOPE},");
    let _ = writeln!(json, "  \"kills\": {kills},");
    let _ = writeln!(json, "  \"readmissions\": {readmissions},");
    let _ = writeln!(json, "  \"hardware_restores\": {restores},");
    let _ = writeln!(json, "  \"straggler_reexecutions\": {stragglers},");
    let _ = writeln!(json, "  \"redecompositions\": {redecompositions},");
    let _ = writeln!(json, "  \"mttr_evals_mean\": {mttr_mean},");
    let _ = writeln!(json, "  \"mttr_evals_max\": {mttr_max},");
    let _ = writeln!(json, "  \"recovery\": {},", json_recovery(&a.recovery));
    json.push_str("  \"shard_recovery\": {");
    let per: Vec<String> = a
        .shard_recovery
        .iter()
        .map(|(slot, sr)| format!("\"{slot}\": {}", json_recovery(sr)))
        .collect();
    json.push_str(&per.join(", "));
    json.push_str("},\n");
    let _ = writeln!(
        json,
        "  \"scrub\": {{\"checked\": {}, \"valid\": {}, \"corrupt\": {}}},",
        scrub_report.checked,
        scrub_report.valid,
        scrub_report.corrupt.len()
    );
    let _ = writeln!(
        json,
        "  \"determinism_rerun_identical\": {},",
        determinism_pass.map_or("null".into(), |p| p.to_string())
    );
    let _ = writeln!(
        json,
        "  \"resume_byte_identical\": {},",
        resume_pass.map_or("null".into(), |p| p.to_string())
    );
    json.push_str("  \"ledger\": [\n");
    let lines: Vec<String> =
        a.ledger.iter().map(|e| format!("    \"{}\"", e.replace('"', "'"))).collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write JSON report");
    println!();
    println!("wrote {out_path} and {ledger_path}");

    if !ok {
        std::process::exit(1);
    }
}
