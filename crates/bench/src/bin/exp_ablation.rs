//! **Ablations — the design choices behind the paper's system.**
//!
//! Four sweeps, each isolating one design axis:
//!
//! 1. **Pipeline word length** (LNS fractional bits): the GRAPE-3 → 5
//!    redesign; §2's claim that 0.3 % pairwise error "is more than
//!    enough" is visible as the force error saturating at the tree
//!    error long before the word gets as wide as f64.
//! 2. **Gaussian-log table size**: how many ROM address bits the LNS
//!    adder needs before quantization, not table resolution, dominates.
//! 3. **Monopole vs quadrupole, BH vs min-distance MAC**: the host
//!    treecode refinements GRAPE-5 *cannot* use (monopole-only
//!    pipeline); quantifies what the hardware constraint costs at
//!    equal θ.
//! 4. **Tree leaf capacity**: build-vs-traverse trade in host cost.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_ablation -- [--n 3000]
//! ```

use g5_bench::{plummer, rule, Args};
use g5tree::mac::MacKind;
use g5tree::traverse::Traversal;
use g5tree::tree::{Tree, TreeConfig};
use g5util::lns::LnsConfig;
use g5util::lns_table::GaussLogTable;
use grape5::Grape5Config;
use treegrape::accuracy::compare;
use treegrape::{DirectGrape, DirectHost, ForceBackend};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 3000);
    let eps = 0.01;
    let snap = plummer(n, 41);
    let exact = DirectHost::new(eps).compute(&snap.pos, &snap.mass);

    // ------------------------------------------------------------------
    println!("A1: pipeline word length (LNS fractional bits) vs whole-force error, N = {n}");
    rule(64);
    println!("{:>10} {:>14} {:>16}", "frac bits", "per-op err %", "force rms err %");
    rule(64);
    for bits in [4u32, 6, 8, 10, 12, 16] {
        let lns = LnsConfig::new(bits, -512, 511);
        let cfg = Grape5Config { lns, ..Grape5Config::paper() };
        let fs = DirectGrape::new(cfg, eps).compute(&snap.pos, &snap.mass);
        let e = compare(&fs, &exact);
        println!("{bits:>10} {:>14.4} {:>16.4}", lns.unit_relative_error() * 100.0, e.rms * 100.0);
    }
    println!("(GRAPE-3 ~ 6 bits, GRAPE-5 = 8 bits; the paper's tree error ~0.1 % makes");
    println!(" anything beyond ~8 bits invisible in the total force — §2's argument)");

    // ------------------------------------------------------------------
    println!();
    println!("A2: Gaussian-log ROM size vs adder accuracy");
    rule(56);
    println!("{:>12} {:>10} {:>18}", "addr bits", "entries", "max |sb err|");
    rule(56);
    for addr in [4u32, 6, 8, 10, 12, 14] {
        let t = GaussLogTable::new(addr, 24, 16.0);
        println!("{addr:>12} {:>10} {:>18.3e}", t.len(), t.sb_max_error(1 << 16));
    }

    // ------------------------------------------------------------------
    println!();
    println!("A3: host-treecode refinements GRAPE cannot use (theta = 0.9, N = {n})");
    rule(76);
    println!("{:<34} {:>14} {:>14}", "variant", "interactions", "force rms err %");
    rule(76);
    let theta = 0.9;
    for (label, quad, kind) in [
        ("monopole, Barnes-Hut MAC (paper)", false, MacKind::BarnesHut),
        ("monopole, min-distance MAC", false, MacKind::MinDistance),
        ("quadrupole, Barnes-Hut MAC", true, MacKind::BarnesHut),
        ("quadrupole, min-distance MAC", true, MacKind::MinDistance),
    ] {
        let tree_config = TreeConfig { quadrupole: quad, ..TreeConfig::default() };
        let tree = Tree::build_with(&snap.pos, &snap.mass, tree_config);
        let mut tr = Traversal::new(theta);
        tr.mac.kind = kind;
        let tally = tr.modified_tally(&tree, 256);
        // force evaluation with the same MAC kind
        let mut out = vec![g5tree::eval::PointForce::ZERO; snap.len()];
        let mut list = Vec::new();
        for g in tr.find_groups(&tree, 256) {
            tr.modified_list(&tree, g, &mut list);
            g5tree::eval::eval_group(&tree, g, &list, eps, &mut out);
        }
        let fs = treegrape::backends::ForceSet {
            acc: out.iter().map(|p| p.acc).collect(),
            pot: out.iter().map(|p| p.pot).collect(),
            tally,
            timers: treegrape::PhaseTimers::default(),
        };
        let e = compare(&fs, &exact);
        println!("{label:<34} {:>14} {:>14.4}", tally.interactions, e.rms * 100.0);
    }

    // ------------------------------------------------------------------
    println!();
    println!("A4: tree leaf capacity vs host work (theta = 0.75, n_crit = 256)");
    rule(70);
    println!("{:>10} {:>10} {:>14} {:>14}", "leaf cap", "nodes", "list terms", "build ms");
    rule(70);
    for cap in [1usize, 4, 8, 16, 32] {
        let cfg = TreeConfig { leaf_capacity: cap, ..TreeConfig::default() };
        let t0 = std::time::Instant::now();
        let tree = Tree::build_with(&snap.pos, &snap.mass, cfg);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let tally = Traversal::new(0.75).modified_tally(&tree, 256);
        println!("{cap:>10} {:>10} {:>14} {:>14.2}", tree.nodes().len(), tally.terms, build_ms);
    }
}
