//! **E14 — benchmark suite driver, cross-PR trajectory ledger, and
//! regression gate.**
//!
//! Runs the kernel, host, cluster, endurance, flagship, and serve
//! harnesses (`exp_kernel`, `exp_host`, `exp_cluster`, `exp_endurance`,
//! `exp_flagship`, `exp_serve`) as sibling binaries, aggregates the kernel/host
//! headline numbers into the suite report, and maintains
//! `BENCH_trajectory.json` — a cumulative, commit-keyed ledger of each
//! PR's headline metrics, so a regression in any later PR is visible as
//! a broken monotone series instead of requiring archaeology across
//! per-PR report files.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_suite -- \
//!     [--quick] [--append] [--gate] [--gate-only] \
//!     [--out BENCH_pr8.json] [--trajectory BENCH_trajectory.json] \
//!     [--kernel-json K.json] [--host-json H.json] \
//!     [--cluster-json C.json] [--endurance-json E.json] \
//!     [--flagship-json F.json] [--serve-json S.json]
//! ```
//!
//! Without `--append` the trajectory is (re)seeded: the committed
//! `BENCH_pr3/4/6/7.json` reports are mined for their headline numbers,
//! each keyed by the commit that last touched its file, and this run's
//! rows are added at `HEAD`. With `--append` the existing ledger is
//! kept verbatim and only this run's rows are appended — the mode CI
//! and future PRs use. `--kernel-json` etc. reuse existing reports
//! instead of re-running the harnesses; rows mined from a reused report
//! are keyed by the commit that last touched the file and skipped
//! entirely when an identical (metric, n, value) row is already in the
//! ledger.
//!
//! **The gate.** `--gate` fails the run (exit 1) if, for any
//! (metric, n) series in the final ledger, the newest entry is more
//! than 10 % worse than the best earlier entry. "Worse" is
//! direction-aware: speedups and interaction rates are
//! higher-is-better; drift envelopes and modeled seconds are
//! lower-is-better. `--gate-only` runs just that check against the
//! committed ledger without executing any harness — the cheap CI mode
//! that makes a regressed appended row fail the build.

use g5_bench::Args;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;

/// Pull a numeric field out of one hand-rolled JSON line.
fn json_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// First value of `key` anywhere in a report.
fn json_f64_any(text: &str, key: &str) -> Option<f64> {
    text.lines().find_map(|l| json_f64(l, key))
}

/// Pull a string field out of one hand-rolled JSON line.
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Direction of goodness for a trajectory metric: drift envelopes and
/// modeled/wall seconds regress upward, speedups and rates regress
/// downward.
fn lower_is_better(metric: &str) -> bool {
    metric.contains("drift") || (metric.ends_with("_s") && !metric.ends_with("_per_s"))
}

/// (metric, n, value) triples parsed from ledger entry lines, in ledger
/// (chronological) order.
fn parse_rows(lines: &[String]) -> Vec<(String, u64, f64)> {
    lines
        .iter()
        .filter_map(|l| {
            Some((json_str(l, "metric")?, json_f64(l, "n")? as u64, json_f64(l, "value")?))
        })
        .collect()
}

/// The regression check: for every (metric, n) series with at least two
/// entries, the newest must be within `tol` (fractional) of the best
/// earlier value in the metric's good direction. Returns one message
/// per failing series.
fn gate_failures(rows: &[(String, u64, f64)], tol: f64) -> Vec<String> {
    use std::collections::BTreeMap;
    let mut series: BTreeMap<(String, u64), Vec<f64>> = BTreeMap::new();
    for (m, n, v) in rows {
        series.entry((m.clone(), *n)).or_default().push(*v);
    }
    let mut fails = Vec::new();
    for ((metric, n), vs) in series {
        if vs.len() < 2 {
            continue;
        }
        let newest = *vs.last().unwrap();
        let prior = &vs[..vs.len() - 1];
        let lb = lower_is_better(&metric);
        let best = if lb {
            prior.iter().copied().fold(f64::INFINITY, f64::min)
        } else {
            prior.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        };
        let regressed = if lb { newest > best * (1.0 + tol) } else { newest < best * (1.0 - tol) };
        if regressed {
            let pct = 100.0 * (newest - best) / best;
            fails.push(format!(
                "{metric} (n = {n}, {}): newest {newest:.6e} vs best-known {best:.6e} ({pct:+.1}%)",
                if lb { "lower is better" } else { "higher is better" },
            ));
        }
    }
    fails
}

/// Run the gate over ledger lines; returns true when clean.
fn run_gate(lines: &[String]) -> bool {
    let fails = gate_failures(&parse_rows(lines), 0.10);
    println!();
    if fails.is_empty() {
        println!("gate: no (metric, n) series regressed by more than 10% — PASS");
        true
    } else {
        println!("gate: {} series regressed by more than 10% — FAIL", fails.len());
        for f in &fails {
            println!("  {f}");
        }
        false
    }
}

/// Short hash of the commit that last touched `path` (`HEAD` if None).
fn commit_for(path: Option<&str>) -> String {
    let out = match path {
        Some(p) => Command::new("git").args(["log", "-1", "--format=%h", "--", p]).output(),
        None => Command::new("git").args(["rev-parse", "--short", "HEAD"]).output(),
    };
    match out {
        Ok(o) if o.status.success() => {
            let h = String::from_utf8_lossy(&o.stdout).trim().to_string();
            if h.is_empty() {
                "unknown".into()
            } else {
                h
            }
        }
        _ => "unknown".into(),
    }
}

/// Run a sibling harness binary with `--out` into `out`, inheriting
/// stdout so its tables stream to the user.
fn run_sibling(name: &str, out: &PathBuf, quick: bool) -> String {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut cmd = Command::new(dir.join(name));
    cmd.arg("--out").arg(out);
    if quick {
        cmd.arg("--quick");
    }
    println!(">>> running {name}{}", if quick { " --quick" } else { "" });
    let status = cmd.status().unwrap_or_else(|e| panic!("spawn {name}: {e}"));
    assert!(status.success(), "{name} failed with {status}");
    std::fs::read_to_string(out).expect("harness report readable")
}

/// One trajectory row: a PR's headline metric at a commit.
struct Entry {
    pr: &'static str,
    commit: String,
    metric: &'static str,
    n: u64,
    value: f64,
}

impl Entry {
    fn json(&self) -> String {
        format!(
            "    {{\"pr\": \"{}\", \"commit\": \"{}\", \"metric\": \"{}\", \
             \"n\": {}, \"value\": {}}}",
            self.pr, self.commit, self.metric, self.n, self.value
        )
    }
}

/// Headline rows mined from the committed per-PR reports (the seed of
/// the trajectory; absent files are skipped with a note).
fn seed_entries() -> Vec<Entry> {
    let mut out = Vec::new();
    let mut mine = |pr: &'static str,
                    file: &str,
                    metric: &'static str,
                    pick: &dyn Fn(&str) -> Option<(u64, f64)>| {
        match std::fs::read_to_string(file) {
            Ok(text) => match pick(&text) {
                Some((n, value)) => {
                    out.push(Entry { pr, commit: commit_for(Some(file)), metric, n, value })
                }
                None => println!("note: no {metric} found in {file}; skipping seed row"),
            },
            Err(_) => println!("note: {file} not present; skipping {pr} seed row"),
        }
    };
    // pr3: largest-N LNS batch-vs-reference kernel speedup
    mine("pr3", "BENCH_pr3.json", "kernel_lns_speedup", &|t| {
        t.lines()
            .filter(|l| l.contains("\"mode\": \"lns\""))
            .filter_map(|l| Some((json_f64(l, "n")? as u64, json_f64(l, "speedup")?)))
            .max_by_key(|&(n, _)| n)
    });
    // pr4: best host-phase speedup at the headline size
    mine("pr4", "BENCH_pr4.json", "host_phase_speedup", &|t| {
        t.lines()
            .filter_map(|l| Some((json_f64(l, "n")? as u64, json_f64(l, "speedup")?)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    });
    // pr6: peak cluster aggregate interaction rate
    mine("pr6", "BENCH_pr6.json", "cluster_interactions_per_s", &|t| {
        t.lines()
            .filter_map(|l| Some((json_f64(l, "n")? as u64, json_f64(l, "interactions_per_s")?)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    });
    // pr7: chaos-endurance energy-drift envelope actually reached
    mine("pr7", "BENCH_pr7.json", "endurance_max_energy_drift", &|t| {
        Some((json_f64_any(t, "n")? as u64, json_f64_any(t, "max_energy_drift")?))
    });
    out
}

/// The PR label stamped on rows appended by this build of the suite.
const CURRENT_PR: &str = "pr10";

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let append = args.flag("append");
    let gate = args.flag("gate");
    let out_path: String = args.get("out", "BENCH_pr8.json".to_string());
    let traj_path: String = args.get("trajectory", "BENCH_trajectory.json".to_string());

    if args.flag("gate-only") {
        let text = std::fs::read_to_string(&traj_path).expect("trajectory ledger readable");
        let lines: Vec<String> = text
            .lines()
            .filter(|l| l.trim_start().starts_with("{\"pr\""))
            .map(|l| l.to_string())
            .collect();
        println!("gate-only: checking {} ledger entries in {traj_path}", lines.len());
        if !run_gate(&lines) {
            std::process::exit(1);
        }
        return;
    }

    let kernel_json: String = args.get("kernel-json", String::new());
    let host_json: String = args.get("host-json", String::new());
    let cluster_json: String = args.get("cluster-json", String::new());
    let endurance_json: String = args.get("endurance-json", String::new());
    let flagship_json: String = args.get("flagship-json", String::new());
    let serve_json: String = args.get("serve-json", String::new());

    // run each harness, or reuse an existing report; a reused report's
    // rows are keyed by the commit that last touched the file
    let tmp = std::env::temp_dir();
    let get = |name: &str, json: &String, out: &str| -> (String, String) {
        if json.is_empty() {
            (run_sibling(name, &tmp.join(out), quick), commit_for(None))
        } else {
            // a reused report keeps its own commit key; a not-yet-
            // committed report (this PR's fresh numbers) keys at HEAD
            let c = match commit_for(Some(json)) {
                c if c == "unknown" => commit_for(None),
                c => c,
            };
            (std::fs::read_to_string(json).unwrap_or_else(|e| panic!("read {json}: {e}")), c)
        }
    };
    let (kernel_text, kernel_commit) = get("exp_kernel", &kernel_json, "exp_suite_kernel.json");
    let (host_text, host_commit) = get("exp_host", &host_json, "exp_suite_host.json");
    let (cluster_text, cluster_commit) =
        get("exp_cluster", &cluster_json, "exp_suite_cluster.json");
    let (endurance_text, endurance_commit) =
        get("exp_endurance", &endurance_json, "exp_suite_endurance.json");
    let (flagship_text, flagship_commit) =
        get("exp_flagship", &flagship_json, "exp_suite_flagship.json");
    let (serve_text, serve_commit) = get("exp_serve", &serve_json, "exp_suite_serve.json");

    // ---- mine this run's PR 8 headline numbers ----
    let exact_rows: Vec<&str> = kernel_text
        .lines()
        .filter(|l| l.contains("\"mode\": \"exact\"") && json_f64(l, "lane_speedup").is_some())
        .collect();
    assert!(!exact_rows.is_empty(), "exp_kernel report carries no exact-mode lane rows");
    let headline_kernel = exact_rows
        .iter()
        .max_by_key(|l| json_f64(l, "n").unwrap_or(0.0) as u64)
        .expect("exact rows present");
    let (kn, lane_speedup) = (
        json_f64(headline_kernel, "n").unwrap() as u64,
        json_f64(headline_kernel, "lane_speedup").unwrap(),
    );
    // a raw exp_host report carries "sort_n"; a reused suite aggregate
    // carries the same number as "n" on its "host_sort" line
    let sort_n = json_f64_any(&host_text, "sort_n")
        .or_else(|| {
            host_text.lines().find(|l| l.contains("\"host_sort\"")).and_then(|l| json_f64(l, "n"))
        })
        .expect("sort_n in exp_host report") as u64;
    let sort_speedup = json_f64_any(&host_text, "sort_speedup").expect("sort_speedup");
    let build_radix = json_f64_any(&host_text, "build_radix_s").expect("build_radix_s");
    let build_cmp = json_f64_any(&host_text, "build_comparison_s").expect("build_comparison_s");
    let head = commit_for(None);

    // ---- mine the cluster / endurance / flagship headline numbers ----
    let (cluster_n, cluster_rate) = cluster_text
        .lines()
        .filter_map(|l| Some((json_f64(l, "n")? as u64, json_f64(l, "interactions_per_s")?)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("interactions_per_s rows in exp_cluster report");
    let endurance_n = json_f64_any(&endurance_text, "n").expect("n in exp_endurance report") as u64;
    let endurance_drift =
        json_f64_any(&endurance_text, "max_energy_drift").expect("max_energy_drift");
    let gate_line = flagship_text
        .lines()
        .find(|l| l.contains("overlap_critical_path_speedup"))
        .expect("gate line in exp_flagship report");
    let (overlap_n, overlap_speedup) = (
        json_f64(gate_line, "n").expect("gate n") as u64,
        json_f64(gate_line, "overlap_critical_path_speedup").expect("overlap speedup"),
    );
    let seg_line = flagship_text
        .lines()
        .find(|l| l.contains("\"segment\""))
        .expect("segment line in exp_flagship report");
    let flagship_n = json_f64(seg_line, "n").expect("segment n") as u64;
    let flagship_rate = json_f64_any(&flagship_text, "flagship_interactions_per_s")
        .expect("flagship_interactions_per_s");

    // ---- mine the serve (multi-tenant job service) headline numbers ----
    let serve_jobs = json_f64_any(&serve_text, "jobs").expect("jobs in exp_serve report") as u64;
    let serve_rate = json_f64_any(&serve_text, "aggregate_interactions_per_s")
        .expect("aggregate_interactions_per_s in exp_serve report");
    let serve_p95 = json_f64_any(&serve_text, "p95_latency_s").expect("p95_latency_s");
    let serve_jain = json_f64_any(&serve_text, "jain_fairness").expect("jain_fairness");

    // ---- BENCH_pr8.json: the aggregated PR 8 report ----
    let mut text = String::new();
    writeln!(text, "{{").unwrap();
    writeln!(text, "  \"experiment\": \"exp_suite\",").unwrap();
    writeln!(text, "  \"commit\": \"{head}\",").unwrap();
    writeln!(text, "  \"quick\": {quick},").unwrap();
    writeln!(text, "  \"kernel_exact\": [").unwrap();
    for (i, l) in exact_rows.iter().enumerate() {
        let comma = if i + 1 < exact_rows.len() { "," } else { "" };
        writeln!(text, "{}{comma}", l.trim_end().trim_end_matches(',')).unwrap();
    }
    writeln!(text, "  ],").unwrap();
    writeln!(
        text,
        "  \"host_sort\": {{\"n\": {sort_n}, \"sort_speedup\": {sort_speedup}, \
         \"build_radix_s\": {build_radix}, \"build_comparison_s\": {build_cmp}}},"
    )
    .unwrap();
    let lane_gate = exact_rows
        .iter()
        .filter(|l| json_f64(l, "n").unwrap_or(0.0) as u64 >= 65_536)
        .all(|l| json_f64(l, "lane_speedup").unwrap_or(0.0) >= 3.0);
    writeln!(
        text,
        "  \"gates\": {{\"lane_speedup_ge_3x\": {}, \"radix_build_faster\": {}}}",
        if quick { "\"not-evaluated-in-quick\"".to_string() } else { lane_gate.to_string() },
        build_cmp > build_radix
    )
    .unwrap();
    writeln!(text, "}}").unwrap();
    std::fs::write(&out_path, &text).unwrap();
    println!();
    println!("wrote PR 8 aggregate to {out_path}");

    // ---- trajectory ledger ----
    let this_run = [
        Entry {
            pr: CURRENT_PR,
            commit: kernel_commit,
            metric: "kernel_exact_lane_speedup",
            n: kn,
            value: lane_speedup,
        },
        Entry {
            pr: CURRENT_PR,
            commit: host_commit,
            metric: "morton_sort_speedup",
            n: sort_n,
            value: sort_speedup,
        },
        Entry {
            pr: CURRENT_PR,
            commit: cluster_commit,
            metric: "cluster_interactions_per_s",
            n: cluster_n,
            value: cluster_rate,
        },
        Entry {
            pr: CURRENT_PR,
            commit: endurance_commit,
            metric: "endurance_max_energy_drift",
            n: endurance_n,
            value: endurance_drift,
        },
        Entry {
            pr: CURRENT_PR,
            commit: flagship_commit.clone(),
            metric: "overlap_critical_path_speedup",
            n: overlap_n,
            value: overlap_speedup,
        },
        Entry {
            pr: CURRENT_PR,
            commit: flagship_commit,
            metric: "flagship_interactions_per_s",
            n: flagship_n,
            value: flagship_rate,
        },
        Entry {
            pr: CURRENT_PR,
            commit: serve_commit.clone(),
            metric: "serve_aggregate_interactions_per_s",
            n: serve_jobs,
            value: serve_rate,
        },
        Entry {
            pr: CURRENT_PR,
            commit: serve_commit.clone(),
            metric: "serve_p95_latency_s",
            n: serve_jobs,
            value: serve_p95,
        },
        Entry {
            pr: CURRENT_PR,
            commit: serve_commit,
            metric: "serve_jain_fairness",
            n: serve_jobs,
            value: serve_jain,
        },
    ];
    let existing = std::fs::read_to_string(&traj_path).ok();
    let mut lines: Vec<String> = match (&existing, append) {
        (Some(text), true) => text
            .lines()
            .filter(|l| l.trim_start().starts_with("{\"pr\""))
            .map(|l| l.trim_end().trim_end_matches(',').to_string())
            .collect(),
        _ => seed_entries().iter().map(|e| e.json()).collect(),
    };
    // a reused report re-mines a number the ledger already carries —
    // skip rows whose (metric, n, value) is already present verbatim
    let prior_rows = parse_rows(&lines);
    let appended: Vec<String> = this_run
        .iter()
        .filter(|e| {
            !prior_rows
                .iter()
                .any(|(m, n, v)| m == e.metric && *n == e.n && v.to_bits() == e.value.to_bits())
        })
        .map(|e| e.json())
        .collect();
    let appended_count = appended.len();
    lines.extend(appended);
    let mut t = String::new();
    writeln!(t, "{{").unwrap();
    writeln!(t, "  \"schema\": \"bench-trajectory-v1\",").unwrap();
    writeln!(t, "  \"entries\": [").unwrap();
    for (i, l) in lines.iter().enumerate() {
        let comma = if i + 1 < lines.len() { "," } else { "" };
        writeln!(t, "{l}{comma}").unwrap();
    }
    writeln!(t, "  ]").unwrap();
    writeln!(t, "}}").unwrap();
    std::fs::write(&traj_path, &t).unwrap();
    println!(
        "{} {} with {} entries ({} this run)",
        if append && existing.is_some() { "appended to" } else { "seeded" },
        traj_path,
        lines.len(),
        appended_count
    );
    println!();
    println!(
        "kernel/host headline: exact lanes {lane_speedup:.2}x at N = {kn}; \
         Morton radix sort {sort_speedup:.2}x at N = {sort_n} \
         (build {:.2} ms radix vs {:.2} ms comparison)",
        build_radix * 1e3,
        build_cmp * 1e3
    );
    println!(
        "cluster/flagship headline: {cluster_rate:.3e} inter/s at N = {cluster_n}; \
         overlap {overlap_speedup:.2}x at N = {overlap_n}; \
         flagship {flagship_rate:.3e} inter/s at N = {flagship_n}; \
         endurance drift {endurance_drift:.3e} at N = {endurance_n}"
    );
    println!(
        "serve headline: {serve_rate:.3e} aggregate inter/s across {serve_jobs} tenant jobs; \
         p95 turnaround {serve_p95:.2} s; Jain fairness {serve_jain:.3}"
    );

    if gate && !run_gate(&lines) {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::{gate_failures, lower_is_better, parse_rows};

    fn row(metric: &str, n: u64, value: f64) -> (String, u64, f64) {
        (metric.to_string(), n, value)
    }

    #[test]
    fn direction_classification() {
        // higher-is-better families
        assert!(!lower_is_better("kernel_exact_lane_speedup"));
        assert!(!lower_is_better("overlap_critical_path_speedup"));
        assert!(!lower_is_better("cluster_interactions_per_s"));
        assert!(!lower_is_better("flagship_interactions_per_s"));
        assert!(!lower_is_better("serve_aggregate_interactions_per_s"));
        assert!(!lower_is_better("serve_jain_fairness"));
        // lower-is-better families
        assert!(lower_is_better("endurance_max_energy_drift"));
        assert!(lower_is_better("critical_path_s"));
        assert!(lower_is_better("modeled_total_s"));
        assert!(lower_is_better("serve_p95_latency_s"));
    }

    #[test]
    fn improvement_and_within_tolerance_pass() {
        let rows = [
            row("x_speedup", 100, 2.0),
            row("x_speedup", 100, 2.5), // improvement
            row("y_drift", 100, 1e-3),
            row("y_drift", 100, 1.05e-3), // 5% worse, inside 10%
        ];
        assert!(gate_failures(&rows, 0.10).is_empty());
    }

    #[test]
    fn higher_better_regression_fails() {
        let rows = [row("x_speedup", 100, 2.0), row("x_speedup", 100, 1.7)];
        let fails = gate_failures(&rows, 0.10);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("x_speedup"), "{fails:?}");
    }

    #[test]
    fn lower_better_regression_fails() {
        let rows = [row("y_drift", 100, 1e-3), row("y_drift", 100, 1.2e-3)];
        assert_eq!(gate_failures(&rows, 0.10).len(), 1);
    }

    #[test]
    fn best_known_is_best_not_latest() {
        // latest-but-one dipped; newest only has to beat the BEST prior
        // entry's 10% envelope, so a recovery to near-best passes while
        // a value 10% under the best still fails
        let rows =
            [row("x_speedup", 100, 3.0), row("x_speedup", 100, 2.0), row("x_speedup", 100, 2.95)];
        assert!(gate_failures(&rows, 0.10).is_empty());
        let rows =
            [row("x_speedup", 100, 3.0), row("x_speedup", 100, 2.0), row("x_speedup", 100, 2.6)];
        assert_eq!(gate_failures(&rows, 0.10).len(), 1);
    }

    #[test]
    fn distinct_n_are_distinct_series_and_singletons_skip() {
        let rows = [
            row("x_speedup", 100, 3.0),
            row("x_speedup", 200, 1.0), // different n: not compared to the 3.0
            row("z_rate_per_s", 100, 5.0), // singleton: nothing to compare
        ];
        assert!(gate_failures(&rows, 0.10).is_empty());
    }

    #[test]
    fn ledger_lines_parse() {
        let lines = vec![
            "    {\"pr\": \"pr3\", \"commit\": \"abc\", \"metric\": \"kernel_lns_speedup\", \
             \"n\": 262144, \"value\": 3.25}"
                .to_string(),
            "not an entry".to_string(),
        ];
        let rows = parse_rows(&lines);
        assert_eq!(rows, vec![("kernel_lns_speedup".to_string(), 262144, 3.25)]);
    }
}
