//! **E14 — benchmark suite driver and cross-PR trajectory ledger.**
//!
//! Runs the kernel and host harnesses (`exp_kernel`, `exp_host`) as
//! sibling binaries, aggregates their PR 8 headline numbers into
//! `BENCH_pr8.json`, and maintains `BENCH_trajectory.json` — a
//! cumulative, commit-keyed ledger of each PR's headline metric, so a
//! regression in any later PR is visible as a broken monotone series
//! instead of requiring archaeology across per-PR report files.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_suite -- \
//!     [--quick] [--append] [--out BENCH_pr8.json] \
//!     [--trajectory BENCH_trajectory.json] \
//!     [--kernel-json K.json] [--host-json H.json]
//! ```
//!
//! Without `--append` the trajectory is (re)seeded: the committed
//! `BENCH_pr3/4/6/7.json` reports are mined for their headline numbers,
//! each keyed by the commit that last touched its file, and this run's
//! PR 8 rows are added at `HEAD`. With `--append` the existing ledger
//! is kept verbatim and only this run's rows are appended — the mode CI
//! and future PRs use. `--kernel-json` / `--host-json` reuse existing
//! reports instead of re-running the harnesses.

use g5_bench::Args;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;

/// Pull a numeric field out of one hand-rolled JSON line.
fn json_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// First value of `key` anywhere in a report.
fn json_f64_any(text: &str, key: &str) -> Option<f64> {
    text.lines().find_map(|l| json_f64(l, key))
}

/// Short hash of the commit that last touched `path` (`HEAD` if None).
fn commit_for(path: Option<&str>) -> String {
    let out = match path {
        Some(p) => Command::new("git").args(["log", "-1", "--format=%h", "--", p]).output(),
        None => Command::new("git").args(["rev-parse", "--short", "HEAD"]).output(),
    };
    match out {
        Ok(o) if o.status.success() => {
            let h = String::from_utf8_lossy(&o.stdout).trim().to_string();
            if h.is_empty() {
                "unknown".into()
            } else {
                h
            }
        }
        _ => "unknown".into(),
    }
}

/// Run a sibling harness binary with `--out` into `out`, inheriting
/// stdout so its tables stream to the user.
fn run_sibling(name: &str, out: &PathBuf, quick: bool) -> String {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut cmd = Command::new(dir.join(name));
    cmd.arg("--out").arg(out);
    if quick {
        cmd.arg("--quick");
    }
    println!(">>> running {name}{}", if quick { " --quick" } else { "" });
    let status = cmd.status().unwrap_or_else(|e| panic!("spawn {name}: {e}"));
    assert!(status.success(), "{name} failed with {status}");
    std::fs::read_to_string(out).expect("harness report readable")
}

/// One trajectory row: a PR's headline metric at a commit.
struct Entry {
    pr: &'static str,
    commit: String,
    metric: &'static str,
    n: u64,
    value: f64,
}

impl Entry {
    fn json(&self) -> String {
        format!(
            "    {{\"pr\": \"{}\", \"commit\": \"{}\", \"metric\": \"{}\", \
             \"n\": {}, \"value\": {}}}",
            self.pr, self.commit, self.metric, self.n, self.value
        )
    }
}

/// Headline rows mined from the committed per-PR reports (the seed of
/// the trajectory; absent files are skipped with a note).
fn seed_entries() -> Vec<Entry> {
    let mut out = Vec::new();
    let mut mine = |pr: &'static str,
                    file: &str,
                    metric: &'static str,
                    pick: &dyn Fn(&str) -> Option<(u64, f64)>| {
        match std::fs::read_to_string(file) {
            Ok(text) => match pick(&text) {
                Some((n, value)) => {
                    out.push(Entry { pr, commit: commit_for(Some(file)), metric, n, value })
                }
                None => println!("note: no {metric} found in {file}; skipping seed row"),
            },
            Err(_) => println!("note: {file} not present; skipping {pr} seed row"),
        }
    };
    // pr3: largest-N LNS batch-vs-reference kernel speedup
    mine("pr3", "BENCH_pr3.json", "kernel_lns_speedup", &|t| {
        t.lines()
            .filter(|l| l.contains("\"mode\": \"lns\""))
            .filter_map(|l| Some((json_f64(l, "n")? as u64, json_f64(l, "speedup")?)))
            .max_by_key(|&(n, _)| n)
    });
    // pr4: best host-phase speedup at the headline size
    mine("pr4", "BENCH_pr4.json", "host_phase_speedup", &|t| {
        t.lines()
            .filter_map(|l| Some((json_f64(l, "n")? as u64, json_f64(l, "speedup")?)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    });
    // pr6: peak cluster aggregate interaction rate
    mine("pr6", "BENCH_pr6.json", "cluster_interactions_per_s", &|t| {
        t.lines()
            .filter_map(|l| Some((json_f64(l, "n")? as u64, json_f64(l, "interactions_per_s")?)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    });
    // pr7: chaos-endurance energy-drift envelope actually reached
    mine("pr7", "BENCH_pr7.json", "endurance_max_energy_drift", &|t| {
        Some((json_f64_any(t, "n")? as u64, json_f64_any(t, "max_energy_drift")?))
    });
    out
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let append = args.flag("append");
    let out_path: String = args.get("out", "BENCH_pr8.json".to_string());
    let traj_path: String = args.get("trajectory", "BENCH_trajectory.json".to_string());
    let kernel_json: String = args.get("kernel-json", String::new());
    let host_json: String = args.get("host-json", String::new());

    let tmp = std::env::temp_dir();
    let kernel_text = if kernel_json.is_empty() {
        run_sibling("exp_kernel", &tmp.join("exp_suite_kernel.json"), quick)
    } else {
        std::fs::read_to_string(&kernel_json).expect("kernel report readable")
    };
    let host_text = if host_json.is_empty() {
        run_sibling("exp_host", &tmp.join("exp_suite_host.json"), quick)
    } else {
        std::fs::read_to_string(&host_json).expect("host report readable")
    };

    // ---- mine this run's PR 8 headline numbers ----
    let exact_rows: Vec<&str> = kernel_text
        .lines()
        .filter(|l| l.contains("\"mode\": \"exact\"") && json_f64(l, "lane_speedup").is_some())
        .collect();
    assert!(!exact_rows.is_empty(), "exp_kernel report carries no exact-mode lane rows");
    let headline_kernel = exact_rows
        .iter()
        .max_by_key(|l| json_f64(l, "n").unwrap_or(0.0) as u64)
        .expect("exact rows present");
    let (kn, lane_speedup) = (
        json_f64(headline_kernel, "n").unwrap() as u64,
        json_f64(headline_kernel, "lane_speedup").unwrap(),
    );
    let sort_n = json_f64_any(&host_text, "sort_n").expect("sort_n in exp_host report") as u64;
    let sort_speedup = json_f64_any(&host_text, "sort_speedup").expect("sort_speedup");
    let build_radix = json_f64_any(&host_text, "build_radix_s").expect("build_radix_s");
    let build_cmp = json_f64_any(&host_text, "build_comparison_s").expect("build_comparison_s");
    let head = commit_for(None);

    // ---- BENCH_pr8.json: the aggregated PR 8 report ----
    let mut text = String::new();
    writeln!(text, "{{").unwrap();
    writeln!(text, "  \"experiment\": \"exp_suite\",").unwrap();
    writeln!(text, "  \"commit\": \"{head}\",").unwrap();
    writeln!(text, "  \"quick\": {quick},").unwrap();
    writeln!(text, "  \"kernel_exact\": [").unwrap();
    for (i, l) in exact_rows.iter().enumerate() {
        let comma = if i + 1 < exact_rows.len() { "," } else { "" };
        writeln!(text, "{}{comma}", l.trim_end().trim_end_matches(',')).unwrap();
    }
    writeln!(text, "  ],").unwrap();
    writeln!(
        text,
        "  \"host_sort\": {{\"n\": {sort_n}, \"sort_speedup\": {sort_speedup}, \
         \"build_radix_s\": {build_radix}, \"build_comparison_s\": {build_cmp}}},"
    )
    .unwrap();
    let lane_gate = exact_rows
        .iter()
        .filter(|l| json_f64(l, "n").unwrap_or(0.0) as u64 >= 65_536)
        .all(|l| json_f64(l, "lane_speedup").unwrap_or(0.0) >= 3.0);
    writeln!(
        text,
        "  \"gates\": {{\"lane_speedup_ge_3x\": {}, \"radix_build_faster\": {}}}",
        if quick { "\"not-evaluated-in-quick\"".to_string() } else { lane_gate.to_string() },
        build_cmp > build_radix
    )
    .unwrap();
    writeln!(text, "}}").unwrap();
    std::fs::write(&out_path, &text).unwrap();
    println!();
    println!("wrote PR 8 aggregate to {out_path}");

    // ---- trajectory ledger ----
    let pr8_rows = [
        Entry {
            pr: "pr8",
            commit: head.clone(),
            metric: "kernel_exact_lane_speedup",
            n: kn,
            value: lane_speedup,
        },
        Entry {
            pr: "pr8",
            commit: head.clone(),
            metric: "morton_sort_speedup",
            n: sort_n,
            value: sort_speedup,
        },
    ];
    let existing = std::fs::read_to_string(&traj_path).ok();
    let mut lines: Vec<String> = match (&existing, append) {
        (Some(text), true) => text
            .lines()
            .filter(|l| l.trim_start().starts_with("{\"pr\""))
            .map(|l| l.trim_end().trim_end_matches(',').to_string())
            .collect(),
        _ => seed_entries().iter().map(|e| e.json()).collect(),
    };
    lines.extend(pr8_rows.iter().map(|e| e.json()));
    let mut t = String::new();
    writeln!(t, "{{").unwrap();
    writeln!(t, "  \"schema\": \"bench-trajectory-v1\",").unwrap();
    writeln!(t, "  \"entries\": [").unwrap();
    for (i, l) in lines.iter().enumerate() {
        let comma = if i + 1 < lines.len() { "," } else { "" };
        writeln!(t, "{l}{comma}").unwrap();
    }
    writeln!(t, "  ]").unwrap();
    writeln!(t, "}}").unwrap();
    std::fs::write(&traj_path, &t).unwrap();
    println!(
        "{} {} with {} entries ({} this run)",
        if append && existing.is_some() { "appended to" } else { "seeded" },
        traj_path,
        lines.len(),
        pr8_rows.len()
    );
    println!();
    println!(
        "PR 8 headline: exact lanes {lane_speedup:.2}x at N = {kn}; \
         Morton radix sort {sort_speedup:.2}x at N = {sort_n} \
         (build {:.2} ms radix vs {:.2} ms comparison)",
        build_radix * 1e3,
        build_cmp * 1e3
    );
}
