//! **E2 — the optimal group size n_g of §3.**
//!
//! "The modified tree algorithm reduces the calculation cost of the
//! host computer by roughly a factor of n_g. On the other hand, the
//! amount of work on GRAPE-5 increases as we increase n_g [...] There
//! is, therefore, an optimal n_g at which the total computing time is
//! minimum. [...] For the present configuration, the optimal n_g is
//! around 2000."
//!
//! This binary sweeps n_g over a clustered snapshot, runs the actual
//! modified-tree-on-GRAPE force computation at each value, and prices
//! the measured work on the DS10 + GRAPE-5 clock models, printing the
//! U-shaped host/GRAPE/total columns and the located minimum.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_optimal_ng -- \
//!     [--n 131072] [--theta 0.75] [--workload plummer|cdm]
//! ```

use g5_bench::{cdm, fmt_secs, plummer, rule, Args};
use grape5::Grape5Config;
use treegrape::perf::{step_time_at_ng, HostModel};
use treegrape::{ForceBackend, TreeGrape, TreeGrapeConfig};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 131_072);
    let theta: f64 = args.get("theta", 0.75);
    let workload: String = args.get("workload", "plummer".to_string());

    println!("E2: optimal n_g sweep on a {workload} workload, N = {n}, theta = {theta}");
    let snap = match workload.as_str() {
        "cdm" => cdm(n, 7).snapshot,
        "plummer" => plummer(n, 7),
        other => panic!("unknown workload {other:?} (use plummer or cdm)"),
    };
    let n = snap.len();
    let eps = 0.01;
    let host = HostModel::ds10();
    let hw = Grape5Config::paper();

    let sweep: Vec<usize> = vec![125, 250, 500, 1000, 2000, 4000, 8000, 16000];
    println!();
    rule(98);
    println!(
        "{:>7} {:>10} {:>14} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "n_g",
        "groups",
        "interactions",
        "avg list",
        "host/step",
        "pipe/step",
        "xfer/step",
        "total/step"
    );
    rule(98);

    let mut best: Option<(usize, f64)> = None;
    for &ng in &sweep {
        let cfg = TreeGrapeConfig {
            theta,
            n_crit: ng,
            eps,
            grape: Grape5Config::paper_exact(),
            ..TreeGrapeConfig::paper(eps)
        };
        let mut backend = TreeGrape::new(cfg);
        let fs = backend.compute(&snap.pos, &snap.mass);
        let acc = backend.accounting();
        let step = step_time_at_ng(&host, &hw, n, &fs.tally, &acc);
        let total = step.total_s();
        println!(
            "{:>7} {:>10} {:>14.3e} {:>12.0} {:>12} {:>12} {:>12} {:>12}",
            ng,
            fs.tally.lists,
            fs.tally.interactions as f64,
            fs.tally.mean_len_per_target(n as u64),
            fmt_secs(step.host_s),
            fmt_secs(step.pipeline_s),
            fmt_secs(step.transfer_s),
            fmt_secs(total),
        );
        if best.map(|(_, t)| total < t).unwrap_or(true) {
            best = Some((ng, total));
        }
    }
    rule(98);
    let (ng_opt, t_opt) = best.unwrap();
    println!(
        "optimal n_g = {ng_opt} ({} per step); paper reports optimal n_g ~ 2000 \
         for the DS10 + 2-board GRAPE-5 at N = 2.1M",
        fmt_secs(t_opt)
    );
    println!(
        "(the minimum shifts with N: host tree cost grows ~N log N while the \
         direct n_g² term in GRAPE work is N-independent)"
    );
}
