//! **E12 — PC-GRAPE cluster sharding: aggregate interactions/s vs
//! shard count K.**
//!
//! The GRAPE-6A follow-up to the paper scaled this exact treecode by
//! giving each PC in a cluster its own GRAPE card and a Morton domain
//! of the particle set. This harness measures what that buys on the
//! reproduction's [`ClusterTreeGrape`] backend: one force evaluation
//! per K ∈ {1, 2, 4, 8}, each shard's device work priced by its own
//! [`ClockAccounting`] on the paper's hardware clocks.
//!
//! The headline metric is **aggregate interactions per second**: total
//! pairwise interactions across all shards, divided by the modeled
//! *critical-path* device time — the max over shards of the per-shard
//! clock report, because a real cluster runs its shards concurrently
//! and finishes with the slowest one. The modeled clock is exact and
//! deterministic (cycles and words counted from the real call
//! schedule), so one step per K suffices and the number is
//! machine-independent; host-phase wall times (decompose / exchange /
//! build / traverse) are reported alongside for the record.
//!
//! At K = 1 this is exactly the single-device `TreeGrape` rate. Near-
//! linear scaling holds as long as (a) the Morton slices stay balanced
//! and (b) the LET exchange — remote terms resolved per group at MAC
//! accuracy and appended to the group's j-list — stays small next to
//! the local lists, which it does because a group sees a *remote*
//! domain almost entirely through accepted cell monopoles.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_cluster -- \
//!     [--quick] [--n 262144] [--ks 1,2,4,8] [--steps 1] \
//!     [--out BENCH_pr6.json] [--baseline BENCH_pr6.json]
//! ```
//!
//! `--quick` (CI smoke): N = 32,768, K ∈ {1, 2}.

use g5_bench::{fmt_count, fmt_secs, plummer, rule, Args};
use grape5::ClockReport;
use std::fmt::Write as _;
use std::time::Instant;
use treegrape::cluster::{ClusterTreeGrape, ClusterTreeGrapeConfig};
use treegrape::ForceBackend;

const SEED: u64 = 42;
const EPS: f64 = 0.01;

/// One (N, K) cell: totals over `steps` force evaluations.
struct ClusterCell {
    n: usize,
    k: usize,
    steps: u64,
    /// Pairwise interactions summed over shards and steps.
    interactions: u64,
    /// Host-generated list terms (local group lists + LET imports).
    terms: u64,
    /// Modeled critical-path device seconds: Σ over steps of
    /// max-over-shards per-step clock report totals.
    critical_path_s: f64,
    /// Modeled aggregate device seconds (Σ over shards), for the
    /// efficiency column.
    aggregate_s: f64,
    /// Host wall seconds measured on the reproducing machine.
    decompose_s: f64,
    exchange_s: f64,
    build_s: f64,
    traverse_cpu_s: f64,
    host_wall_s: f64,
    /// Cluster-wide recovery summary (all slots merged) and the
    /// per-shard breakdown of any slot that saw recovery activity — a
    /// clean benchmark reports all-zeros, which is itself the check.
    recovery: grape5::RecoveryStats,
    shard_recovery: Vec<(usize, grape5::RecoveryStats)>,
}

impl ClusterCell {
    /// Aggregate modeled throughput: all shards' interactions over the
    /// critical path.
    fn rate(&self) -> f64 {
        self.interactions as f64 / self.critical_path_s
    }
    /// How evenly the shards were loaded: mean over max of per-shard
    /// modeled time (1.0 = perfectly balanced).
    fn balance(&self) -> f64 {
        if self.critical_path_s == 0.0 {
            return 1.0;
        }
        self.aggregate_s / (self.k as f64 * self.critical_path_s)
    }
}

/// Run one (N, K) cell on a fresh backend and snapshot.
fn measure(n: usize, k: usize, steps: u64) -> ClusterCell {
    let snap = plummer(n, SEED);
    let cfg = ClusterTreeGrapeConfig::paper(EPS, k);
    let mut backend = ClusterTreeGrape::new(cfg);

    let mut cell = ClusterCell {
        n,
        k,
        steps,
        interactions: 0,
        terms: 0,
        critical_path_s: 0.0,
        aggregate_s: 0.0,
        decompose_s: 0.0,
        exchange_s: 0.0,
        build_s: 0.0,
        traverse_cpu_s: 0.0,
        host_wall_s: 0.0,
        recovery: grape5::RecoveryStats::default(),
        shard_recovery: Vec::new(),
    };
    let mut prior: Vec<grape5::ClockAccounting> =
        (0..k).map(|s| backend.shard_accounting(s)).collect();
    for _ in 0..steps {
        let t0 = Instant::now();
        let fs = backend.compute(&snap.pos, &snap.mass);
        cell.host_wall_s += t0.elapsed().as_secs_f64();

        // per-shard modeled time this step: accounting delta priced on
        // the paper's clocks; the cluster's step time is the slowest
        // shard's (shards run concurrently on real hardware)
        let mut step_max = 0.0f64;
        for (s, p) in prior.iter_mut().enumerate() {
            let now = backend.shard_accounting(s);
            let delta = grape5::ClockAccounting {
                pipeline_cycles: now.pipeline_cycles - p.pipeline_cycles,
                iface_words: now.iface_words - p.iface_words,
                calls: now.calls - p.calls,
                interactions: now.interactions - p.interactions,
                j_words: now.j_words - p.j_words,
            };
            *p = now;
            let report: ClockReport = delta.report(&cfg.base.grape);
            step_max = step_max.max(report.total_s());
            cell.aggregate_s += report.total_s();
        }
        cell.critical_path_s += step_max;
        cell.interactions += fs.tally.interactions;
        cell.terms += fs.tally.terms;
        cell.decompose_s += fs.timers.decompose_s;
        cell.exchange_s += fs.timers.exchange_s;
        cell.build_s += fs.timers.build_s + fs.timers.refresh_s;
        cell.traverse_cpu_s += fs.timers.traverse_s;
    }
    assert_eq!(backend.alive_shards(), k, "no shard may die in a clean benchmark");
    cell.recovery = backend.cluster_recovery_stats();
    cell.shard_recovery = backend.shard_recovery_stats();
    cell
}

fn result_row(c: &ClusterCell) {
    println!(
        "{:>8} {:>3} {:>16} {:>12} {:>11.4} {:>11.1} {:>8.3} {:>9.1}%",
        c.n,
        c.k,
        fmt_count(c.interactions),
        fmt_count(c.terms),
        c.critical_path_s / c.steps as f64,
        c.rate() / 1e6,
        c.host_wall_s / c.steps as f64,
        100.0 * c.balance(),
    );
}

fn json_line(c: &ClusterCell, speedup: f64) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"n\": {}, \"k\": {}, \"steps\": {}, \"interactions\": {}, \"terms\": {}, \
         \"critical_path_s_per_step\": {}, \"aggregate_device_s_per_step\": {}, \
         \"interactions_per_s\": {}, \"speedup_vs_k1\": {}, \"balance\": {}, \
         \"decompose_s_per_step\": {}, \"exchange_s_per_step\": {}, \
         \"build_s_per_step\": {}, \"traverse_cpu_s_per_step\": {}, \
         \"host_wall_s_per_step\": {}",
        c.n,
        c.k,
        c.steps,
        c.interactions,
        c.terms,
        c.critical_path_s / c.steps as f64,
        c.aggregate_s / c.steps as f64,
        c.rate(),
        speedup,
        c.balance(),
        c.decompose_s / c.steps as f64,
        c.exchange_s / c.steps as f64,
        c.build_s / c.steps as f64,
        c.traverse_cpu_s / c.steps as f64,
        c.host_wall_s / c.steps as f64,
    )
    .unwrap();
    let r = &c.recovery;
    write!(
        s,
        ", \"recovery\": {{\"retries\": {}, \"j_reloads\": {}, \"validation_failures\": {}, \
         \"device_errors\": {}, \"quarantined_pipes\": {}, \"quarantined_boards\": {}}}}}",
        r.retries,
        r.j_reloads,
        r.validation_failures,
        r.device_errors,
        r.quarantined_pipes,
        r.quarantined_boards,
    )
    .unwrap();
    s
}

/// Pull a numeric field out of one hand-rolled JSON result line.
fn json_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn print_baseline_delta(results: &[ClusterCell], old: &str) {
    println!();
    println!("delta vs committed baseline (aggregate modeled interactions/s):");
    for c in results {
        let tag = format!("\"n\": {}, \"k\": {},", c.n, c.k);
        let prior =
            old.lines().find(|l| l.contains(&tag)).and_then(|l| json_f64(l, "interactions_per_s"));
        match prior {
            Some(p) if p > 0.0 => {
                println!(
                    "  N = {:>7} K = {}  {:.3e} -> {:.3e} inter/s  ({:+.1}%)",
                    c.n,
                    c.k,
                    p,
                    c.rate(),
                    100.0 * (c.rate() - p) / p
                );
            }
            _ => println!("  N = {:>7} K = {}  (no baseline entry)", c.n, c.k),
        }
    }
    println!("(the modeled rate is deterministic; any delta is a real behavior change)");
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let out_path: String = args.get("out", "BENCH_pr6.json".to_string());
    let base_path: String = args.get("baseline", out_path.clone());
    let baseline = std::fs::read_to_string(&base_path).ok();

    let n: usize = args.get("n", if quick { 32_768 } else { 262_144 });
    let steps: u64 = args.get("steps", 1);
    let ks_raw: String = args.get("ks", if quick { "1,2".into() } else { "1,2,4,8".into() });
    let ks: Vec<usize> =
        ks_raw.split(',').map(|s| s.trim().parse().expect("bad --ks entry")).collect();

    println!(
        "E12: PC-GRAPE cluster sharding — K domain-decomposed trees over K devices{}",
        if quick { " (--quick)" } else { "" }
    );
    println!(
        "     workload: Plummer sphere N = {n}, seed {SEED}, paper operating point \
         (theta 0.75, n_crit 2000, exact arithmetic), {steps} step(s) per K"
    );
    println!(
        "     metric: Σ interactions / max-over-shards modeled device seconds \
         (shards run concurrently on real hardware)"
    );
    println!();
    rule(96);
    println!(
        "{:>8} {:>3} {:>16} {:>12} {:>11} {:>11} {:>8} {:>10}",
        "N", "K", "interactions", "terms", "crit-path", "aggregate", "host", "balance"
    );
    println!(
        "{:>8} {:>3} {:>16} {:>12} {:>11} {:>11} {:>8} {:>10}",
        "", "", "", "", "s/step", "Minter/s", "s/step", ""
    );
    rule(96);

    let mut results: Vec<ClusterCell> = Vec::new();
    for &k in &ks {
        let t0 = Instant::now();
        let c = measure(n, k, steps);
        result_row(&c);
        results.push(c);
        eprintln!("    [K = {k} done in {}]", fmt_secs(t0.elapsed().as_secs_f64()));
    }
    rule(96);

    let r1 = results.iter().find(|c| c.k == 1).map(|c| c.rate());
    if let Some(r1) = r1 {
        println!();
        println!("scaling vs K = 1:");
        for c in &results {
            println!(
                "  K = {}  {:>8.1} Minter/s  speedup {:.2}x  (ideal {}x)",
                c.k,
                c.rate() / 1e6,
                c.rate() / r1,
                c.k
            );
        }
        if let Some(c4) = results.iter().find(|c| c.k == 4) {
            let s4 = c4.rate() / r1;
            println!();
            println!(
                "headline: K = 4 aggregate throughput {s4:.2}x of K = 1 \
                 (gate: >= 3x) — {}",
                if s4 >= 3.0 { "PASS" } else { "FAIL" }
            );
            assert!(s4 >= 3.0, "K=4 scaling gate failed: {s4:.2}x < 3x");
        }
    }

    println!();
    println!("recovery summary (retries / j-reloads / quarantined pipes / boards):");
    for c in &results {
        let r = &c.recovery;
        println!(
            "  K = {}  cluster: {} / {} / {} / {}{}",
            c.k,
            r.retries,
            r.j_reloads,
            r.quarantined_pipes,
            r.quarantined_boards,
            if c.shard_recovery.is_empty() { "  (all shards clean)" } else { "" },
        );
        for (slot, sr) in &c.shard_recovery {
            println!(
                "         shard {slot}: {} / {} / {} / {}",
                sr.retries, sr.j_reloads, sr.quarantined_pipes, sr.quarantined_boards
            );
        }
    }

    // JSON report
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"exp_cluster\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"theta\": 0.75,");
    let _ = writeln!(json, "  \"n_crit\": 2000,");
    let _ = writeln!(json, "  \"eps\": {EPS},");
    json.push_str("  \"results\": [\n");
    let lines: Vec<String> =
        results.iter().map(|c| json_line(c, r1.map_or(1.0, |r| c.rate() / r))).collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("could not write JSON report");
    println!();
    println!("wrote {out_path}");

    if let Some(old) = baseline {
        print_baseline_delta(&results, &old);
    }
}
