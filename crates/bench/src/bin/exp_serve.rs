//! **E16 — multi-tenant job-service load generation: `g5serve` under a
//! storm of concurrent tenants.**
//!
//! The paper's $7.0/Mflops is a *facility* price: real GRAPE
//! installations multiplexed many users' runs onto the boards. This
//! harness drives the [`g5serve`] job server the way a shared facility
//! is driven — a burst of concurrent small jobs (mixed Plummer and
//! Hernquist realizations, tree and cluster backends, exact and LNS
//! arithmetic, a seeded fault storm armed on a subset) — and measures
//! what multi-tenancy costs:
//!
//! * **latency** — p50/p95/p99 turnaround (submit → terminal) across
//!   the fleet;
//! * **throughput** — aggregate pairwise interactions/s across all
//!   workers vs. a single-job baseline: the same fleet run to
//!   completion one job at a time on a one-worker server (matched
//!   total work, no multiplexing). The gate requires the multiplexed
//!   aggregate to stay >= 0.8x the sequential baseline (relaxed to
//!   0.5x under `--quick`, whose tiny jobs make the ratio noisy),
//!   i.e. scheduling, checkpointing and resume recomputation may not
//!   eat the pool;
//! * **fairness** — Jain's index over per-job turnaround relative to a
//!   simulated ideal discrete round-robin schedule (same specs,
//!   workers, quantum, measured per-step costs, makespan-normalized);
//!   a perfectly fair schedule scores 1.0, a starved job drags the
//!   index down;
//! * **durability** — the server is `kill()`ed mid-storm (twice in
//!   full mode) and reopened over the same directory; every job must
//!   still complete, and a spot-checked subset must produce final
//!   snapshots *byte-identical* to uninterrupted reference runs;
//! * **taxonomy** — deliberately doomed submissions (an impossible
//!   j-memory demand, immediate cancellations) must surface as their
//!   typed [`JobError`] kinds in the status API.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_serve -- \
//!     [--quick] [--jobs 120] [--workers 6] [--quantum 8] \
//!     [--dir serve_state] [--out BENCH_pr10.json]
//! ```
//!
//! `--quick` (CI smoke): 24 jobs, 3 workers, one kill — the same storm,
//! compressed.

use g5_bench::{fmt_count, fmt_secs, rule, Args};
use g5serve::{job_dir_name, JobError, JobId, JobSpec, JobState, Server, ServerConfig};
use grape5::{ArithMode, FaultConfig, RecoveryStats};
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};
use treegrape::{snapshot_io, BackendSpec, Simulation};

/// Fault-storm seed family (per-job streams are `STORM_SEED + j`).
const STORM_SEED: u64 = 1600;

/// The tenant mix: job `j` of `jobs`. Sizes, lengths, IC families,
/// arithmetic modes and backends interleave deterministically so every
/// run of the harness submits the identical fleet.
fn tenant(j: u64, quick: bool) -> JobSpec {
    let (n_base, n_step, steps_base) = if quick { (64, 8, 6) } else { (96, 16, 12) };
    let n = n_base + n_step * (j % 13) as usize;
    let steps = steps_base + 3 * (j % 9);
    let mut spec = if j.is_multiple_of(2) {
        JobSpec::plummer(n, 7_000 + j, steps)
    } else {
        JobSpec::hernquist(n, 8_000 + j, steps)
    };
    spec.checkpoint_every = 4;
    if j % 5 == 2 {
        // LNS tenants: the paper's native arithmetic
        spec.backend.mode = ArithMode::Lns;
    }
    if j.is_multiple_of(4) {
        // seeded fault storm: transient readback + j-memory corruption,
        // healed by the validate/retry stack under the job's feet
        let storm = FaultConfig {
            transient_rate: 0.05,
            jmem_corrupt_rate: 0.02,
            ..FaultConfig::none(STORM_SEED + j)
        };
        spec.backend = spec.backend.with_fault(storm);
    }
    if j % 16 == 15 {
        // a few tenants bring the 2-shard cluster backend
        spec.backend = BackendSpec::cluster(spec.backend.eps, 2);
    }
    spec
}

/// Uninterrupted reference run of one spec: no server, one process,
/// one unbroken integration — the byte-identity oracle.
fn reference_final_bytes(spec: &JobSpec, scratch: &Path) -> Vec<u8> {
    let mut sim =
        Simulation::try_new(spec.make_ic(), spec.backend.build(), 0.0).expect("reference init");
    sim.try_run(spec.dt, spec.steps).expect("reference run");
    snapshot_io::save(scratch, &sim.state, sim.time).expect("reference save");
    std::fs::read(scratch).expect("reference read")
}

/// Record terminal times and durable progress for the storm fleet.
/// Returns (terminal count, total steps done).
fn poll_fleet(server: &Server, ids: &[JobId], done_at: &mut [Option<Instant>]) -> (usize, u64) {
    let (mut terminal, mut steps) = (0usize, 0u64);
    for (i, &id) in ids.iter().enumerate() {
        let st = server.status(id).expect("storm job known to server");
        steps += st.steps_done;
        if st.state.is_terminal() {
            terminal += 1;
            if done_at[i].is_none() {
                done_at[i] = Some(Instant::now());
            }
        }
    }
    (terminal, steps)
}

/// `q`-th percentile (0 < q <= 1) of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 = perfectly
/// even allocation, 1/n = one job got everything.
fn jain(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    if s2 <= 0.0 {
        1.0
    } else {
        s * s / (n * s2)
    }
}

/// Finish times of an ideal discrete round-robin schedule: FIFO queue,
/// `workers` equal workers, each slice integrates up to `quantum`
/// steps of job `j` at its measured per-step cost `w[j]`. This is the
/// schedule the server's strict-FIFO re-queue discipline should
/// approximate; measured turnarounds are compared against it.
fn rr_ideal(steps: &[u64], w: &[f64], workers: usize, quantum: u64) -> Vec<f64> {
    let mut worker_free = vec![0.0f64; workers];
    let mut ready = vec![0.0f64; steps.len()];
    let mut remaining = steps.to_vec();
    let mut finish = vec![0.0f64; steps.len()];
    let mut queue: std::collections::VecDeque<usize> = (0..steps.len()).collect();
    while let Some(j) = queue.pop_front() {
        let wi = (0..workers)
            .min_by(|&a, &b| worker_free[a].total_cmp(&worker_free[b]))
            .expect("at least one worker");
        let run = remaining[j].min(quantum);
        let t_end = worker_free[wi].max(ready[j]) + w[j] * run as f64;
        worker_free[wi] = t_end;
        remaining[j] -= run;
        if remaining[j] == 0 {
            finish[j] = t_end;
        } else {
            ready[j] = t_end;
            queue.push_back(j);
        }
    }
    finish
}

fn json_recovery(r: &RecoveryStats) -> String {
    format!(
        "{{\"retries\": {}, \"j_reloads\": {}, \"validation_failures\": {}, \
         \"device_errors\": {}, \"quarantined_pipes\": {}, \"quarantined_boards\": {}}}",
        r.retries,
        r.j_reloads,
        r.validation_failures,
        r.device_errors,
        r.quarantined_pipes,
        r.quarantined_boards,
    )
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let jobs: u64 = args.get("jobs", if quick { 24 } else { 120 });
    // workers default scales with the machine: multi-tenancy needs at
    // least two, more than the core count only adds context switching
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let workers: usize = args.get("workers", cores.clamp(2, if quick { 3 } else { 6 }));
    let quantum: u64 = args.get("quantum", if quick { 6 } else { 12 });
    let out_path: String = args.get("out", "BENCH_pr10.json".to_string());
    let dir: String = args.get(
        "dir",
        std::env::temp_dir()
            .join(format!("g5serve_bench_{}", std::process::id()))
            .to_string_lossy()
            .into_owned(),
    );
    let kills_planned: usize = args.get("kills", if quick { 1 } else { 2 });

    let dir = std::path::PathBuf::from(dir);
    std::fs::remove_dir_all(&dir).ok();
    let cfg = ServerConfig {
        workers,
        quantum,
        jmem_budget: 1 << 16,
        resident_budget: 1 << 16,
        ..ServerConfig::new(&dir)
    };

    let specs: Vec<JobSpec> = (0..jobs).map(|j| tenant(j, quick)).collect();
    let total_steps: u64 = specs.iter().map(|s| s.steps).sum();
    let faulted = specs.iter().filter(|s| s.backend.fault.is_some()).count();
    let clusters = specs.iter().filter(|s| s.backend.devices() > 1).count();
    let lns = specs.iter().filter(|s| s.backend.mode == ArithMode::Lns).count();

    println!("E16: multi-tenant job service under load{}", if quick { " (--quick)" } else { "" });
    println!(
        "     fleet: {jobs} jobs ({faulted} fault-stormed, {clusters} cluster-backed, \
         {lns} LNS), {total_steps} total steps"
    );
    println!(
        "     server: {workers} workers, quantum {quantum} steps, {kills_planned} mid-storm \
         kill/restart cycles, dir {}",
        dir.display()
    );
    println!();

    // ------------------------------------------------------------------
    // single-job baseline: the *same fleet*, run to completion one job
    // at a time on a one-worker, no-preemption server — matched total
    // work without any multiplexing, the throughput yardstick
    let base_dir = dir.join("baseline");
    let solo = Server::open(ServerConfig {
        workers: 1,
        quantum: u64::MAX,
        ..ServerConfig::new(&base_dir)
    })
    .expect("open baseline server");
    let t_base = Instant::now();
    let mut base_inter = 0u64;
    let mut base_w = Vec::with_capacity(specs.len());
    for (j, spec) in specs.iter().enumerate() {
        let id = solo.submit(*spec).expect("submit baseline job");
        assert_eq!(solo.wait(id), JobState::Completed, "baseline job {j} failed");
        let st = solo.status(id).expect("baseline status");
        base_inter += st.interactions;
        base_w.push(st.interactions as f64 / spec.steps as f64);
    }
    let base_wall = t_base.elapsed().as_secs_f64();
    solo.shutdown();
    let baseline_rate = base_inter as f64 / base_wall.max(1e-9);
    println!(
        "baseline: {jobs} tenants solo, back to back -> {} interactions in {} = \
         {:.3e} inter/s",
        fmt_count(base_inter),
        fmt_secs(base_wall),
        baseline_rate
    );

    // ------------------------------------------------------------------
    // the storm: submit the whole fleet as one burst, plus doomed
    // tenants exercising the failure taxonomy
    let mut server = Server::open(cfg.clone()).expect("open server");
    let t0 = Instant::now();
    let ids: Vec<JobId> = specs.iter().map(|s| server.submit(*s).expect("submit")).collect();
    let events = server.subscribe(ids[0]).expect("subscribe to job 0");

    // an impossible j-memory demand: rejected at admission, never runs
    let rejected = server.submit(JobSpec::plummer(70_000, 1, 4)).expect("submit over-budget job");
    // immediate cancellations: one likely still queued, one long runner
    let cancel_a = server.submit(JobSpec::plummer(64, 2, 10_000)).expect("submit cancel-a");
    let cancel_b = server.submit(JobSpec::plummer(64, 3, 10_000)).expect("submit cancel-b");
    server.cancel(cancel_a);

    let mut done_at: Vec<Option<Instant>> = vec![None; ids.len()];
    let mut kills_done = 0usize;
    let mut downtime = Duration::ZERO;
    loop {
        let (terminal, steps) = poll_fleet(&server, &ids, &mut done_at);
        if terminal == ids.len() {
            break;
        }
        // kill the server once the fleet has durable progress: at ~25%
        // and (full mode) ~55% of total steps
        let next_kill_at = total_steps * (25 + 30 * kills_done as u64) / 100;
        if kills_done < kills_planned && steps >= next_kill_at {
            poll_fleet(&server, &ids, &mut done_at);
            let t = Instant::now();
            println!(
                "  kill {} at {}: {terminal} jobs terminal, {steps}/{total_steps} steps durable",
                kills_done + 1,
                fmt_secs(t0.elapsed().as_secs_f64())
            );
            server.kill();
            server = Server::open(cfg.clone()).expect("reopen server after kill");
            downtime += t.elapsed();
            kills_done += 1;
            if kills_done == kills_planned {
                // the long cancel-b tenant may have been resurrected as
                // non-terminal by replay; put it back out of the way
                server.cancel(cancel_b);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // make sure the doomed tenants are terminal too before reading
    // taxonomy off the status API
    server.cancel(cancel_b);
    for id in [rejected, cancel_a, cancel_b] {
        server.wait(id);
    }
    let wall = t0.elapsed().as_secs_f64();

    // ------------------------------------------------------------------
    // fleet accounting
    let storm: Vec<_> = ids.iter().map(|&id| server.status(id).expect("status")).collect();
    let lost: Vec<JobId> = ids
        .iter()
        .zip(&storm)
        .zip(&specs)
        .filter(|((_, st), spec)| st.state != JobState::Completed || st.steps_done != spec.steps)
        .map(|((&id, _), _)| id)
        .collect();
    // aggregate throughput is *useful* work over storm wall time: the
    // fleet's work is the baseline's by construction (same specs), so
    // resume recomputation is charged as overhead, not credited as
    // throughput — and in-memory counters zeroed by the kills don't
    // understate it
    let aggregate_rate = base_inter as f64 / wall;
    let interactions: u64 = storm.iter().map(|s| s.interactions).sum();
    let busy_total: f64 = storm.iter().map(|s| s.busy_s).sum();
    let utilization = busy_total / (workers.min(cores) as f64 * wall);
    let preemptions: u64 = storm.iter().map(|s| s.preemptions).sum();
    let resumes: u64 = storm.iter().map(|s| s.resumes).sum();
    let max_drift = storm.iter().map(|s| s.drift.abs()).fold(0.0f64, f64::max);
    let mut recovery = RecoveryStats::default();
    for s in &storm {
        recovery = recovery.merged(s.recovery);
    }

    let latency_raw: Vec<f64> = done_at
        .iter()
        .map(|t| t.expect("every storm job recorded terminal").duration_since(t0).as_secs_f64())
        .collect();
    // fairness against the discrete round-robin ideal: simulate the
    // schedule the server's strict-FIFO re-queue should produce (same
    // specs, workers, quantum, baseline-measured per-step costs),
    // normalize both ideal and measured turnarounds by their makespans,
    // and take Jain over ideal/measured — 1.0 means every job ran
    // exactly on its fair schedule, a starved job drags the index down
    let makespan = latency_raw.iter().copied().fold(0.0f64, f64::max);
    let steps_of: Vec<u64> = specs.iter().map(|s| s.steps).collect();
    let ideal = rr_ideal(&steps_of, &base_w, workers, quantum);
    let ideal_makespan = ideal.iter().copied().fold(0.0f64, f64::max);
    let rr_ratio: Vec<f64> = ideal
        .iter()
        .zip(&latency_raw)
        .map(|(i, l)| (i / ideal_makespan) / (l / makespan).max(1e-9))
        .collect();
    let fairness = jain(&rr_ratio);
    let mut latencies = latency_raw.clone();
    latencies.sort_by(f64::total_cmp);
    let (p50, p95, p99) =
        (percentile(&latencies, 0.50), percentile(&latencies, 0.95), percentile(&latencies, 0.99));

    // taxonomy over every submission, storm and doomed alike
    let mut completed = 0u64;
    let mut taxonomy = [
        ("admission-rejected", 0u64),
        ("backend-fatal", 0),
        ("checkpoint-corrupt", 0),
        ("cancelled", 0),
    ];
    for st in server.statuses() {
        match &st.state {
            JobState::Completed => completed += 1,
            JobState::Failed(e) => {
                let k = e.kind();
                let slot = taxonomy.iter_mut().find(|(name, _)| *name == k).expect("known kind");
                slot.1 += 1;
            }
            other => panic!("non-terminal job after storm: {other:?}"),
        }
    }
    let rejected_ok = matches!(
        server.status(rejected).expect("rejected status").state,
        JobState::Failed(JobError::AdmissionRejected { .. })
    );
    let cancel_ok = [cancel_a, cancel_b].iter().all(|&id| {
        matches!(
            server.status(id).expect("cancel status").state,
            JobState::Failed(JobError::Cancelled)
        )
    });

    // ------------------------------------------------------------------
    // byte-identity spot check: mixed subset (faulted, LNS, cluster,
    // plain) vs. uninterrupted reference runs
    let mut subset: Vec<u64> = vec![0, 1, jobs / 4, jobs / 2, 3 * jobs / 4, jobs - 1];
    if let Some(c) = (0..jobs).find(|j| j % 16 == 15) {
        subset.push(c);
    }
    subset.sort_unstable();
    subset.dedup();
    let mut identical = 0usize;
    for &j in &subset {
        let id = ids[j as usize];
        let served = std::fs::read(dir.join(job_dir_name(id)).join("final.g5snap"))
            .expect("final snapshot persisted");
        let reference =
            reference_final_bytes(&specs[j as usize], &dir.join(format!("ref_{id}.g5snap")));
        if served == reference {
            identical += 1;
        } else {
            println!("  BYTE MISMATCH: job {id} diverged from its uninterrupted reference");
        }
    }

    let ev_count = events.try_iter().count();
    server.shutdown();

    // ------------------------------------------------------------------
    // report
    println!();
    rule(74);
    println!(
        "storm: {jobs} jobs in {} wall ({} across {kills_done} kill/restart cycles), \
         {} useful interactions ({} measured on workers since the last kill)",
        fmt_secs(wall),
        fmt_secs(downtime.as_secs_f64()),
        fmt_count(base_inter),
        fmt_count(interactions)
    );
    // quick mode is a structural smoke test on whatever CI core it
    // lands on: jobs are tiny enough that scheduler noise swamps the
    // throughput ratio, so the gate relaxes to a floor that still
    // catches a collapsed pool
    let thr_gate = if quick { 0.5 } else { 0.8 };
    println!(
        "throughput: aggregate {:.3e} inter/s vs solo baseline {:.3e} inter/s \
         ({:.2}x, gate >= {thr_gate}x)",
        aggregate_rate,
        baseline_rate,
        aggregate_rate / baseline_rate
    );
    println!(
        "latency: p50 {} / p95 {} / p99 {} turnaround; fairness (Jain vs round-robin ideal) {:.3}",
        fmt_secs(p50),
        fmt_secs(p95),
        fmt_secs(p99),
        fairness
    );
    println!(
        "scheduling: {preemptions} preemptions, {resumes} resumes, worker utilization {:.1}% \
         ({} busy over {workers} workers), max |dE/E0| {max_drift:.3e}",
        100.0 * utilization,
        fmt_secs(busy_total),
    );
    println!(
        "recovery: {} retries, {} j-reloads, {} validation failures across the fleet",
        recovery.retries, recovery.j_reloads, recovery.validation_failures
    );
    println!(
        "taxonomy: {completed} completed; {}",
        taxonomy.iter().map(|(k, c)| format!("{k} {c}")).collect::<Vec<_>>().join(", ")
    );
    println!("events: {ev_count} progress events streamed on job {}'s channel", ids[0]);
    println!(
        "durability: {}/{} spot-checked jobs byte-identical to uninterrupted references",
        identical,
        subset.len()
    );

    // ------------------------------------------------------------------
    // verdicts
    let mut ok = true;
    let mut verdict = |label: &str, pass: bool, detail: String| {
        if !pass {
            ok = false;
        }
        println!("verdict {label:>14}: {} ({detail})", if pass { "PASS" } else { "FAIL" });
    };
    println!();
    verdict("zero-lost", lost.is_empty(), format!("{} jobs lost/short: {lost:?}", lost.len()));
    verdict(
        "byte-identity",
        identical == subset.len(),
        format!("{identical}/{} references matched", subset.len()),
    );
    verdict("kills", kills_done == kills_planned, format!("{kills_done}/{kills_planned} cycles"));
    verdict(
        "throughput",
        aggregate_rate >= thr_gate * baseline_rate,
        format!("{:.2}x baseline (gate {thr_gate}x)", aggregate_rate / baseline_rate),
    );
    verdict("fairness", fairness >= 0.5, format!("Jain {fairness:.3}"));
    verdict(
        "taxonomy",
        rejected_ok && cancel_ok,
        format!("admission-rejected {rejected_ok}, cancelled {cancel_ok}"),
    );
    verdict(
        "fault-storm",
        recovery.retries > 0 && recovery.j_reloads > 0,
        format!("{} retries, {} j-reloads healed", recovery.retries, recovery.j_reloads),
    );

    // ------------------------------------------------------------------
    // artifact
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"exp_serve\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"jobs\": {jobs}, \"workers\": {workers}, \"quantum\": {quantum}, \
         \"total_steps\": {total_steps},"
    );
    let _ = writeln!(
        json,
        "  \"faulted_jobs\": {faulted}, \"cluster_jobs\": {clusters}, \"lns_jobs\": {lns},"
    );
    let _ = writeln!(json, "  \"kills\": {kills_done},");
    let _ = writeln!(json, "  \"wall_s\": {wall},");
    let _ = writeln!(json, "  \"restart_downtime_s\": {},", downtime.as_secs_f64());
    let _ = writeln!(json, "  \"interactions_measured\": {interactions},");
    let _ = writeln!(json, "  \"aggregate_interactions_per_s\": {aggregate_rate},");
    let _ = writeln!(json, "  \"baseline_interactions\": {base_inter},");
    let _ = writeln!(json, "  \"baseline_interactions_per_s\": {baseline_rate},");
    let _ = writeln!(json, "  \"throughput_vs_baseline\": {},", aggregate_rate / baseline_rate);
    let _ = writeln!(json, "  \"p50_latency_s\": {p50},");
    let _ = writeln!(json, "  \"p95_latency_s\": {p95},");
    let _ = writeln!(json, "  \"p99_latency_s\": {p99},");
    let _ = writeln!(json, "  \"jain_fairness\": {fairness},");
    let _ = writeln!(json, "  \"preemptions\": {preemptions}, \"resumes\": {resumes},");
    let _ = writeln!(json, "  \"max_energy_drift\": {max_drift},");
    let _ = writeln!(json, "  \"recovery\": {},", json_recovery(&recovery));
    let _ = writeln!(json, "  \"taxonomy\": {{");
    let _ = writeln!(json, "    \"completed\": {completed},");
    let tax: Vec<String> = taxonomy.iter().map(|(k, c)| format!("    \"{k}\": {c}")).collect();
    json.push_str(&tax.join(",\n"));
    json.push_str("\n  },\n");
    let _ = writeln!(
        json,
        "  \"byte_identity\": {{\"checked\": {}, \"identical\": {identical}}},",
        subset.len()
    );
    let _ = writeln!(json, "  \"lost_jobs\": {},", lost.len());
    let _ = writeln!(json, "  \"gates\": {{\"throughput_gate\": {thr_gate}, \"throughput_ok\": {}, \"zero_lost\": {}, \"byte_identical\": {}}}", aggregate_rate >= thr_gate * baseline_rate, lost.is_empty(), identical == subset.len());
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write JSON report");
    println!();
    println!("wrote {out_path}");

    std::fs::remove_dir_all(&dir).ok();
    if !ok {
        std::process::exit(1);
    }
}
