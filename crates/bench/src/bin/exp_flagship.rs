//! **E15 — overlapped step pipeline + the paper's 2,159,038-particle
//! flagship run.**
//!
//! The paper's headline number is a 2,159,038-particle treecode
//! simulation run for 999 steps on GRAPE-5. This harness reproduces
//! that workload on the [`ClusterTreeGrape`] backend in three phases:
//!
//! 1. **Overlap gate** — one force evaluation at N = 262,144, K = 8,
//!    phase-barrier reference vs the overlapped pipeline (producer-side
//!    LET resolution + double-buffered j-memory loads), each priced on
//!    its own modeled device clock. The overlapped critical path must
//!    be ≥ 1.3× shorter per step. Both paths issue the identical device
//!    call schedule, so forces and counters are bit-identical — only
//!    the clock pricing and host overlap differ.
//! 2. **Flagship segment** — the full N = 2,159,038 set, K = 8
//!    overlapped, integrated for `--segment` steps with a checkpoint
//!    cut mid-segment. The run is then killed and resumed from the cut
//!    into a fresh backend; the resumed endpoint must match the
//!    straight-through endpoint byte for byte.
//! 3. **999-step projection** — the measured per-step modeled critical
//!    path extended to the paper's 999 steps (the modeled clock is
//!    deterministic, so segment × 999 is exact, not an extrapolation),
//!    with aggregate interactions/s and sustained Gflops under the
//!    paper's 38-op convention.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_flagship -- \
//!     [--quick] [--segment 3] [--full] [--resume] \
//!     [--n 2159038] [--k 8] [--steps 999] \
//!     [--checkpoint-dir artifacts/flagship_ckpt] [--out BENCH_pr9.json]
//! ```
//!
//! Default mode runs the gate + segment + projection and writes the
//! JSON report. `--full` instead runs the entire 999-step simulation
//! with rolling retained checkpoints; `--resume` restarts a `--full`
//! run from the latest checkpoint. `--quick` (CI smoke): gate at
//! N = 32,768 K = 2, segment at N = 65,536.

use g5_bench::{fmt_count, fmt_secs, plummer, rule, Args};
use grape5::{ClockAccounting, ClockReport};
use std::fmt::Write as _;
use std::time::Instant;
use treegrape::checkpoint::{latest, Checkpointer};
use treegrape::cluster::{ClusterTreeGrape, ClusterTreeGrapeConfig};
use treegrape::{snapshot_io, ForceBackend, Simulation};

const SEED: u64 = 42;
const EPS: f64 = 0.01;
/// The paper's flagship particle count and step count.
const N_FLAGSHIP: usize = 2_159_038;
const STEPS_FLAGSHIP: u64 = 999;
const DT: f64 = 0.005;
/// Pipeline ops per interaction, the paper's Gflops convention.
const OPS: f64 = 38.0;

/// Modeled device seconds for one step: the critical path is the max
/// over shards of the per-shard accounting delta priced on `cfg`'s
/// clocks, because shards run concurrently on real hardware.
struct ShardClocks {
    prior: Vec<ClockAccounting>,
}

impl ShardClocks {
    fn new(backend: &ClusterTreeGrape, k: usize) -> ShardClocks {
        ShardClocks { prior: (0..k).map(|s| backend.shard_accounting(s)).collect() }
    }

    /// Price the step since the last call; returns (critical-path s,
    /// aggregate s, interactions).
    fn step(
        &mut self,
        backend: &ClusterTreeGrape,
        cfg: &ClusterTreeGrapeConfig,
    ) -> (f64, f64, u64) {
        let mut crit = 0.0f64;
        let mut agg = 0.0f64;
        let mut inter = 0u64;
        for (s, p) in self.prior.iter_mut().enumerate() {
            let now = backend.shard_accounting(s);
            let delta = ClockAccounting {
                pipeline_cycles: now.pipeline_cycles - p.pipeline_cycles,
                iface_words: now.iface_words - p.iface_words,
                calls: now.calls - p.calls,
                interactions: now.interactions - p.interactions,
                j_words: now.j_words - p.j_words,
            };
            *p = now;
            let report: ClockReport = delta.report(&cfg.base.grape);
            crit = crit.max(report.total_s());
            agg += report.total_s();
            inter += delta.interactions;
        }
        (crit, agg, inter)
    }
}

/// Phase 1 cell: one force evaluation under `cfg`.
struct GateCell {
    label: &'static str,
    critical_path_s: f64,
    interactions: u64,
    terms: u64,
    host_wall_s: f64,
    exchange_s: f64,
}

fn measure_gate(
    snap: &g5ic::Snapshot,
    cfg: ClusterTreeGrapeConfig,
    label: &'static str,
) -> GateCell {
    let k = cfg.shards;
    let mut backend = ClusterTreeGrape::new(cfg);
    let mut clocks = ShardClocks::new(&backend, k);
    let t0 = Instant::now();
    let fs = backend.compute(&snap.pos, &snap.mass);
    let host_wall_s = t0.elapsed().as_secs_f64();
    let (crit, _agg, _inter) = clocks.step(&backend, &cfg);
    assert_eq!(backend.alive_shards(), k, "no shard may die in a clean benchmark");
    GateCell {
        label,
        critical_path_s: crit,
        interactions: fs.tally.interactions,
        terms: fs.tally.terms,
        host_wall_s,
        exchange_s: fs.timers.exchange_s,
    }
}

/// Phase 2 result: the measured segment plus the kill + resume check.
struct SegmentResult {
    n: usize,
    k: usize,
    steps: u64,
    cut: u64,
    critical_path_s: f64,
    aggregate_s: f64,
    interactions: u64,
    host_wall_s: f64,
    resume_identical: bool,
}

/// Integrate `steps` steps of the flagship set, cut a checkpoint at
/// `cut`, then kill + resume from the cut and byte-compare endpoints.
fn run_segment(
    n: usize,
    cfg: &ClusterTreeGrapeConfig,
    steps: u64,
    ckpt_dir: &std::path::Path,
) -> SegmentResult {
    let k = cfg.shards;
    let cut = steps.div_ceil(2);
    let snap0 = plummer(n, SEED);
    let _ = std::fs::remove_dir_all(ckpt_dir);
    let cut_ck = Checkpointer::new(ckpt_dir, cut.max(1)).expect("create checkpoint dir");

    // straight-through run, priced per step on the modeled clock
    let backend = ClusterTreeGrape::new(*cfg);
    let wall = Instant::now();
    let mut sim = Simulation::try_new(snap0, backend, 0.0).expect("initial forces");
    let mut clocks = ShardClocks::new(sim.backend(), k);
    // the initial force evaluation belongs to step 0, not the segment
    let (_c0, _a0, _i0) = clocks.step(sim.backend(), cfg);
    let mut crit = 0.0f64;
    let mut agg = 0.0f64;
    let mut inter = 0u64;
    for step in 1..=steps {
        sim.try_step(DT).expect("segment step");
        let (c, a, i) = clocks.step(sim.backend(), cfg);
        crit += c;
        agg += a;
        inter += i;
        if step == cut {
            let alive = sim.backend().alive_shards();
            let faults = sim.backend().fault_states();
            let lc = sim.backend().lifecycle_state();
            cut_ck
                .write_cluster(&sim.state, sim.time, sim.steps, alive, &faults, Some(&lc))
                .expect("cut checkpoint");
        }
        eprintln!(
            "    [segment step {step}/{steps}: modeled crit-path {} this step]",
            fmt_secs(crit / step as f64)
        );
    }
    let host_wall_s = wall.elapsed().as_secs_f64();

    // kill + resume: fresh backend restored from the cut, integrated to
    // the same endpoint
    let ck = latest(ckpt_dir).expect("read checkpoint dir").expect("cut checkpoint present");
    assert_eq!(ck.step, cut, "cut checkpoint at the wrong step");
    let lc = ck.lifecycle.clone().expect("lifecycle payload in cut checkpoint");
    let (state, time) = ck.load_snapshot().expect("cut snapshot");
    let mut backend = ClusterTreeGrape::new(*cfg);
    for (slot, words) in &ck.shard_fault_states {
        backend.restore_fault_state(*slot, words).expect("restore fault words");
    }
    backend.restore_lifecycle(&lc);
    let mut resumed = Simulation::resume(state, backend, time, ck.step).expect("resume");
    for _ in cut + 1..=steps {
        resumed.try_step(DT).expect("resumed step");
    }

    let a = snapshot_bytes(&sim.state, sim.time, &ckpt_dir.join("endpoint_a.g5snap"));
    let b = snapshot_bytes(&resumed.state, resumed.time, &ckpt_dir.join("endpoint_b.g5snap"));
    SegmentResult {
        n,
        k,
        steps,
        cut,
        critical_path_s: crit,
        aggregate_s: agg,
        interactions: inter,
        host_wall_s,
        resume_identical: a == b,
    }
}

fn snapshot_bytes(state: &g5ic::Snapshot, time: f64, path: &std::path::Path) -> Vec<u8> {
    snapshot_io::save(path, state, time).expect("serialize snapshot");
    std::fs::read(path).expect("read snapshot bytes")
}

/// `--full` mode: the actual 999-step run with rolling retained
/// checkpoints; `--resume` restarts from the latest one.
fn run_full(
    n: usize,
    cfg: &ClusterTreeGrapeConfig,
    steps: u64,
    dir: &std::path::Path,
    resume: bool,
) {
    let k = cfg.shards;
    let ck = Checkpointer::new(dir, 5).expect("create checkpoint dir").with_retention(3);
    let mut sim = if resume {
        let c = latest(dir).expect("read checkpoint dir").expect("no checkpoint to resume from");
        let lc = c.lifecycle.clone().expect("lifecycle payload");
        let (state, time) = c.load_snapshot().expect("checkpoint snapshot");
        let mut backend = ClusterTreeGrape::new(*cfg);
        for (slot, words) in &c.shard_fault_states {
            backend.restore_fault_state(*slot, words).expect("restore fault words");
        }
        backend.restore_lifecycle(&lc);
        println!("resuming flagship run from step {} (t = {})", c.step, time);
        Simulation::resume(state, backend, time, c.step).expect("resume")
    } else {
        println!("starting flagship run: N = {n}, K = {k}, {steps} steps");
        Simulation::try_new(plummer(n, SEED), ClusterTreeGrape::new(*cfg), 0.0)
            .expect("initial forces")
    };
    let mut clocks = ShardClocks::new(sim.backend(), k);
    let _ = clocks.step(sim.backend(), cfg);
    while sim.steps < steps {
        let t0 = Instant::now();
        sim.try_step(DT).expect("flagship step");
        let (crit, _, inter) = clocks.step(sim.backend(), cfg);
        let alive = sim.backend().alive_shards();
        let faults = sim.backend().fault_states();
        let lc = sim.backend().lifecycle_state();
        ck.maybe_write_cluster(&sim, alive, &faults, Some(&lc)).expect("rolling checkpoint");
        println!(
            "step {:>4}/{steps}  modeled {}  ({} inter, host wall {})",
            sim.steps,
            fmt_secs(crit),
            fmt_count(inter),
            fmt_secs(t0.elapsed().as_secs_f64()),
        );
    }
    println!("flagship run complete at t = {}", sim.time);
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let out_path: String = args.get("out", "BENCH_pr9.json".to_string());
    // artifacts/ convention (PR 9): generated state stays out of the
    // repo root
    let ckpt_dir: String = args.get("checkpoint-dir", "artifacts/flagship_ckpt".to_string());
    let n: usize = args.get("n", if quick { 65_536 } else { N_FLAGSHIP });
    let k: usize = args.get("k", if quick { 2 } else { 8 });
    let steps: u64 = args.get("steps", STEPS_FLAGSHIP);
    let segment: u64 = args.get("segment", if quick { 2 } else { 3 });
    let n_gate: usize = args.get("n-gate", if quick { 32_768 } else { 262_144 });

    let cfg = ClusterTreeGrapeConfig::paper_overlapped(EPS, k);
    if args.flag("full") || args.flag("resume") {
        run_full(n, &cfg, steps, std::path::Path::new(&ckpt_dir), args.flag("resume"));
        return;
    }

    println!(
        "E15: overlapped cluster step pipeline + the paper's {}-particle flagship run{}",
        fmt_count(N_FLAGSHIP as u64),
        if quick { " (--quick)" } else { "" }
    );
    println!(
        "     workload: Plummer sphere, seed {SEED}, paper operating point \
         (theta 0.75, n_crit 2000, exact arithmetic), dt = {DT}"
    );
    println!();

    // ---- phase 1: overlap gate --------------------------------------
    println!("phase 1: overlap gate — barrier vs overlapped pipeline, N = {n_gate}, K = {k}");
    rule(96);
    println!(
        "{:>10} {:>11} {:>16} {:>12} {:>9} {:>9}",
        "path", "crit-path", "interactions", "terms", "exchange", "host"
    );
    rule(96);
    let snap_gate = plummer(n_gate, SEED);
    let barrier = measure_gate(&snap_gate, ClusterTreeGrapeConfig::paper(EPS, k), "barrier");
    let overlapped = measure_gate(&snap_gate, cfg, "overlapped");
    for c in [&barrier, &overlapped] {
        println!(
            "{:>10} {:>11} {:>16} {:>12} {:>9} {:>9}",
            c.label,
            fmt_secs(c.critical_path_s),
            fmt_count(c.interactions),
            fmt_count(c.terms),
            fmt_secs(c.exchange_s),
            fmt_secs(c.host_wall_s),
        );
    }
    rule(96);
    assert_eq!(
        (barrier.interactions, barrier.terms),
        (overlapped.interactions, overlapped.terms),
        "the overlapped pipeline must issue the identical device schedule"
    );
    let gate_speedup = barrier.critical_path_s / overlapped.critical_path_s;
    println!(
        "overlap speedup on the modeled critical path: {gate_speedup:.3}x (gate: >= 1.3x) — {}",
        if gate_speedup >= 1.3 { "PASS" } else { "FAIL" }
    );
    if !quick {
        assert!(gate_speedup >= 1.3, "overlap gate failed: {gate_speedup:.3}x < 1.3x");
    }

    // ---- phase 2: flagship segment ----------------------------------
    println!();
    println!(
        "phase 2: flagship segment — N = {n}, K = {k}, {segment} steps, \
         checkpoint cut + kill/resume byte-identity"
    );
    let seg = run_segment(n, &cfg, segment, std::path::Path::new(&ckpt_dir));
    let crit_per_step = seg.critical_path_s / seg.steps as f64;
    let inter_per_step = seg.interactions as f64 / seg.steps as f64;
    println!(
        "  measured: {} modeled crit-path/step, {} interactions/step, host wall {}",
        fmt_secs(crit_per_step),
        fmt_count(inter_per_step as u64),
        fmt_secs(seg.host_wall_s),
    );
    println!(
        "  kill + resume from the step-{} cut: endpoints {}",
        seg.cut,
        if seg.resume_identical { "byte-identical — PASS" } else { "DIFFER — FAIL" }
    );
    assert!(seg.resume_identical, "resumed flagship endpoint diverged from the straight run");

    // ---- phase 3: 999-step projection -------------------------------
    // the modeled clock is deterministic and the per-step schedule is
    // stable (same tree depth, same n_crit), so per-step × 999 is the
    // modeled duration of the paper's full run
    let total_s = crit_per_step * STEPS_FLAGSHIP as f64;
    let rate = inter_per_step / crit_per_step;
    let gflops = rate * OPS / 1e9;
    println!();
    println!("phase 3: the paper's {STEPS_FLAGSHIP}-step run on the modeled device clock");
    println!("  per step:     {} critical path", fmt_secs(crit_per_step));
    println!("  full run:     {} ({STEPS_FLAGSHIP} steps)", fmt_secs(total_s));
    println!("  throughput:   {:.3e} interactions/s aggregate over K = {k}", rate);
    println!("  sustained:    {gflops:.2} Gflops ({OPS} ops/interaction)");

    // ---- JSON report ------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"exp_flagship\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"eps\": {EPS},");
    let _ = writeln!(json, "  \"dt\": {DT},");
    let _ = writeln!(
        json,
        "  \"gate\": {{\"n\": {n_gate}, \"k\": {k}, \
         \"barrier_critical_path_s\": {}, \"overlapped_critical_path_s\": {}, \
         \"overlap_critical_path_speedup\": {gate_speedup}, \"interactions\": {}}},",
        barrier.critical_path_s, overlapped.critical_path_s, barrier.interactions,
    );
    let _ = writeln!(
        json,
        "  \"segment\": {{\"n\": {}, \"k\": {}, \"steps\": {}, \"cut\": {}, \
         \"critical_path_s_per_step\": {crit_per_step}, \
         \"aggregate_device_s_per_step\": {}, \"interactions_per_step\": {}, \
         \"host_wall_s\": {}, \"resume_identical\": {}}},",
        seg.n,
        seg.k,
        seg.steps,
        seg.cut,
        seg.aggregate_s / seg.steps as f64,
        inter_per_step,
        seg.host_wall_s,
        seg.resume_identical,
    );
    let _ = writeln!(
        json,
        "  \"projection\": {{\"steps\": {STEPS_FLAGSHIP}, \"modeled_total_s\": {total_s}, \
         \"flagship_interactions_per_s\": {rate}, \"sustained_gflops\": {gflops}}}",
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("could not write JSON report");
    println!();
    println!("wrote {out_path}");
}
