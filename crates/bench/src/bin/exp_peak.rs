//! **E5 — peak speed and pipeline efficiency (§2).**
//!
//! "The theoretical peak speed of the GRAPE-5 system is 109.44 Gflops.
//! Total number of pipeline processors is 32. Each processor pipeline
//! operates 38 operations in a clock cycle."
//!
//! This binary drives direct O(N²) summations through the simulated
//! hardware and prices the counted work at the real clocks, showing how
//! the sustained speed approaches the 109.44 Gflops peak as N (and thus
//! the j-stream length amortizing latency and transfer) grows — the
//! same saturation curve every GRAPE paper plots.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_peak
//! ```

use g5_bench::{plummer, rule, Args};
use grape5::Grape5Config;
use treegrape::{DirectGrape, ForceBackend};

fn main() {
    let args = Args::parse();
    let n_max: usize = args.get("nmax", 65_536);
    let hw = Grape5Config::paper();
    println!(
        "E5: pipeline saturation toward the theoretical peak ({:.2} Gflops = {} pipes x {} MHz x 38 ops)",
        hw.peak_flops() / 1e9,
        hw.total_pipes(),
        hw.chip_clock_hz / 1e6
    );

    println!();
    rule(86);
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "N", "interactions", "pipe s", "xfer s", "latency s", "Gflops", "% of peak"
    );
    rule(86);
    let mut n = 1024usize;
    while n <= n_max {
        let snap = plummer(n, 23);
        let mut backend = DirectGrape::new(Grape5Config::paper_exact(), 0.01);
        let _ = backend.compute(&snap.pos, &snap.mass);
        let report = backend.grape_accounting().unwrap().report(&hw);
        println!(
            "{n:>8} {:>14.3e} {:>12.4} {:>12.4} {:>12.4} {:>12.2} {:>9.1}%",
            report.interactions as f64,
            report.pipeline_s,
            report.transfer_s,
            report.latency_s,
            report.gflops(),
            report.efficiency(&hw) * 100.0
        );
        n *= 2;
    }
    rule(86);
    println!("pipeline-only limit: 38 ops x 32 pipes x 90 MHz = 109.44 Gflops;");
    println!("the interface words (7 per i-particle) and per-call latency set the saturation N.");
}
