//! **E9 — fault injection, recovery and checkpoint/restart.**
//!
//! Runs a mid-size Plummer sphere with the paper's system under each
//! fault class of the GRAPE fault model (`grape5::fault`) and records
//! what recovery costs and what it preserves:
//!
//! * **transient / j-memory / stuck-pipe** faults are healed by the
//!   validate–retry–reload path, so the trajectory must be
//!   **bit-identical** to the fault-free run;
//! * **board dropout** degrades the machine (the dead board is
//!   quarantined and the j-set redistributed), so the run completes
//!   with a small energy error instead of crashing;
//! * an energy watchdog checkpoints and aborts rather than integrating
//!   garbage if drift ever exceeds tolerance.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_faults -- \
//!     [--n 8000] [--steps 40] [--dt 0.005] [--eps 0.01] \
//!     [--transient 0.05] [--jmem 0.05] \
//!     [--plan-workers W] [--channel-depth D] \
//!     [--checkpoint-every 10] [--checkpoint-dir dir] [--resume]
//! ```
//!
//! With `--checkpoint-every` set, every case writes periodic
//! checkpoints (fault-injector RNG state included) into a per-case
//! subdirectory; `--resume` continues each case from its newest valid
//! checkpoint, reproducing the uninterrupted run bit-for-bit.

use g5_bench::{fmt_secs, plan_from_args, plummer, rule, Args};
use grape5::fault::{BoardDropout, FaultConfig, StuckPipe};
use grape5::RetryPolicy;
use treegrape::checkpoint::{latest, Checkpointer};
use treegrape::diagnostics::EnergyWatchdog;
use treegrape::{ForceBackend, Simulation, TreeGrape, TreeGrapeConfig};

struct CaseResult {
    label: &'static str,
    completed: u64,
    wall_s: f64,
    stats: grape5::RecoveryStats,
    energy_drift: f64,
    final_state: Option<g5ic::Snapshot>,
    resumed_from: Option<u64>,
    /// Seconds the device consumer spent starved on an empty plan
    /// channel, summed over the run.
    blocked_s: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    label: &'static str,
    fault: Option<FaultConfig>,
    snap0: &g5ic::Snapshot,
    cfg: TreeGrapeConfig,
    steps: u64,
    dt: f64,
    ckpt: Option<(&std::path::Path, u64)>,
    resume: bool,
) -> CaseResult {
    let wall = std::time::Instant::now();
    let mut backend = TreeGrape::new(cfg);
    if let Some(f) = fault {
        backend.grape_mut().set_fault_injector(f);
    }

    let case_ckpt = ckpt.map(|(dir, every)| {
        Checkpointer::new(&dir.join(label), every).expect("create checkpoint dir")
    });

    // resume from the newest valid checkpoint of this case, restoring
    // the fault-injector RNG so the replayed fault schedule matches
    let mut resumed_from = None;
    let mut sim = if resume {
        match case_ckpt.as_ref().and_then(|c| latest(c.dir()).ok().flatten()) {
            Some(ck) => {
                let (state, time) = ck.load_snapshot().expect("checkpoint snapshot");
                if let Some(words) = &ck.fault_state {
                    backend.grape_mut().restore_fault_state(words).expect("restore fault state");
                }
                resumed_from = Some(ck.step);
                Simulation::resume(state, backend, time, ck.step).expect("resume simulation")
            }
            None => Simulation::try_new(snap0.clone(), backend, 0.0).expect("initial forces"),
        }
    } else {
        Simulation::try_new(snap0.clone(), backend, 0.0).expect("initial forces")
    };

    // watchdog against the run's own initial energy; generous tolerance
    // — tripping it means the recovery stack let garbage through
    let mut watchdog = EnergyWatchdog::new(0.05);
    watchdog.check(sim.total_energy()).expect("initial energy finite");

    let mut failure: Option<String> = None;
    while sim.steps < steps {
        if let Err(e) = sim.try_step(dt) {
            failure = Some(e.to_string());
            break;
        }
        if let Err(e) = watchdog.check(sim.total_energy()) {
            // checkpoint-and-abort: save the last state for the
            // post-mortem rather than integrating garbage
            if let Some(c) = &case_ckpt {
                let words = sim.backend_mut().grape_mut().fault_state_words();
                c.write(&sim.state, sim.time, sim.steps, words.as_deref()).ok();
            }
            failure = Some(e.to_string());
            break;
        }
        if let Some(c) = &case_ckpt {
            let words = sim.backend_mut().grape_mut().fault_state_words();
            c.maybe_write(&sim, words.as_deref()).expect("write checkpoint");
        }
    }
    if let Some(msg) = failure {
        println!("  [{label}] aborted at step {}: {msg}", sim.steps);
    }

    let e0 = watchdog.baseline().unwrap();
    let drift = ((sim.total_energy() - e0) / e0).abs();
    CaseResult {
        label,
        completed: sim.steps,
        wall_s: wall.elapsed().as_secs_f64(),
        stats: sim.backend().recovery_stats().unwrap_or_default(),
        energy_drift: drift,
        final_state: Some(sim.state.clone()),
        resumed_from,
        blocked_s: sim.phase_timers().consumer_blocked_s,
    }
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 8_000);
    let steps: u64 = args.get("steps", 40);
    let dt: f64 = args.get("dt", 0.005);
    let eps: f64 = args.get("eps", 0.01);
    let transient_rate: f64 = args.get("transient", 0.05);
    let jmem_rate: f64 = args.get("jmem", 0.05);
    let ckpt_every: u64 = args.get("checkpoint-every", 0);
    let ckpt_dir: String = args.get("checkpoint-dir", "faults_ckpt".to_string());
    let resume = args.flag("resume");
    let plan = plan_from_args(&args);

    println!("E9: fault injection and recovery (N = {n}, {steps} steps, dt = {dt}, eps = {eps})");
    let snap0 = plummer(n, 2);
    let cfg = TreeGrapeConfig {
        n_crit: 500,
        retry: RetryPolicy::default(),
        plan,
        ..TreeGrapeConfig::paper(eps)
    };
    let ckpt = (ckpt_every > 0).then(|| (std::path::Path::new(&ckpt_dir), ckpt_every));
    if let Some((dir, every)) = ckpt {
        println!("checkpointing every {every} steps into {dir:?} (resume: {resume})");
    }

    let cases: Vec<(&'static str, Option<FaultConfig>)> = vec![
        ("clean", None),
        ("transient", Some(FaultConfig::transient(101, transient_rate))),
        ("jmem", Some(FaultConfig::jmem(102, jmem_rate))),
        (
            "stuck-pipe",
            Some(FaultConfig::stuck(103, StuckPipe { after_call: 5, board: 1, pipe: 9 })),
        ),
        (
            "dropout",
            Some(FaultConfig::dropout(104, BoardDropout { after_call: steps / 2, board: 0 })),
        ),
    ];

    let results: Vec<CaseResult> = cases
        .iter()
        .map(|&(label, fault)| run_case(label, fault, &snap0, cfg, steps, dt, ckpt, resume))
        .collect();
    let clean = &results[0];

    println!();
    println!(
        "{:>12} {:>6} {:>10} {:>8} {:>8} {:>7} {:>8} {:>11} {:>9} {:>10} {:>9}",
        "fault",
        "steps",
        "wall",
        "retries",
        "reloads",
        "q-pipe",
        "q-board",
        "|dE/E0|",
        "blocked",
        "overhead",
        "vs clean"
    );
    rule(108);
    for r in &results {
        let overhead = r.wall_s / clean.wall_s - 1.0;
        let identical = match (&r.final_state, &clean.final_state) {
            (Some(a), Some(b)) => {
                if a.pos == b.pos && a.vel == b.vel {
                    "bit-ident"
                } else {
                    "differs"
                }
            }
            _ => "n/a",
        };
        println!(
            "{:>12} {:>6} {:>10} {:>8} {:>8} {:>7} {:>8} {:>11.2e} {:>9} {:>9.1}% {:>9}",
            r.label,
            r.completed,
            fmt_secs(r.wall_s),
            r.stats.retries,
            r.stats.j_reloads,
            r.stats.quarantined_pipes,
            r.stats.quarantined_boards,
            r.energy_drift,
            fmt_secs(r.blocked_s),
            overhead * 100.0,
            identical,
        );
        if let Some(step) = r.resumed_from {
            println!("{:>12}   (resumed from checkpoint at step {step})", "");
        }
    }

    println!();
    println!("transient/jmem/stuck-pipe recovery must be bit-identical to the clean run;");
    println!("dropout degrades to fewer boards (fixed-point re-grouping), so it matches to");
    println!("rounding and is judged by |dE/E0| against the clean run's drift instead.");

    // machine-checkable verdicts for the CI smoke run
    let mut ok = true;
    for r in &results[1..4] {
        let ident = r.final_state.as_ref().map(|s| {
            s.pos == clean.final_state.as_ref().unwrap().pos
                && s.vel == clean.final_state.as_ref().unwrap().vel
        }) == Some(true);
        let pass = r.completed == steps && ident && r.stats.retries > 0;
        if !pass {
            ok = false;
        }
        println!(
            "verdict {:>12}: {} (completed {}, recovered {} faults, bit-identical {})",
            r.label,
            if pass { "PASS" } else { "FAIL" },
            r.completed,
            r.stats.retries,
            ident
        );
    }
    let dropout = &results[4];
    let pass = dropout.completed == steps
        && dropout.stats.quarantined_boards >= 1
        && dropout.energy_drift < 0.05;
    if !pass {
        ok = false;
    }
    println!(
        "verdict {:>12}: {} (completed {}, quarantined {} boards, |dE/E0| {:.2e})",
        dropout.label,
        if pass { "PASS" } else { "FAIL" },
        dropout.completed,
        dropout.stats.quarantined_boards,
        dropout.energy_drift
    );
    if !ok {
        std::process::exit(1);
    }
}
