//! **E8 — O(N log N) vs O(N²) scaling (§1's motivation).**
//!
//! "The calculation cost of the astrophysical N-body simulation rapidly
//! increases for large N, because it is proportional to N² if we use a
//! straightforward approach. [...] Hierarchical tree algorithm is one
//! of such fast algorithms which reduce the calculation cost from
//! O(N²) to O(N log N)."
//!
//! Sweeps N, measures interaction counts and wall-clock of direct
//! summation vs the modified treecode (both in `f64` on this machine),
//! and fits the growth exponents.
//!
//! ```text
//! cargo run --release -p g5-bench --bin exp_scaling -- [--nmax 131072]
//! ```

use g5_bench::{fmt_secs, plummer, rule, Args};
use treegrape::{DirectHost, ForceBackend, TreeHost};

fn main() {
    let args = Args::parse();
    let n_max: usize = args.get("nmax", 131_072);
    let theta: f64 = args.get("theta", 0.75);
    let eps = 0.01;

    println!("E8: direct O(N^2) vs treecode O(N log N), theta = {theta}");
    println!();
    rule(92);
    println!(
        "{:>8} {:>14} {:>12} {:>14} {:>12} {:>10}",
        "N", "direct int", "direct time", "tree int", "tree time", "speedup"
    );
    rule(92);

    let mut rows: Vec<(usize, u64, f64, u64, f64)> = Vec::new();
    let mut n = 4096usize;
    while n <= n_max {
        let snap = plummer(n, 9);
        let t0 = std::time::Instant::now();
        let fd = DirectHost::new(eps).compute(&snap.pos, &snap.mass);
        let td = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let ft = TreeHost::modified(theta, 512, eps).compute(&snap.pos, &snap.mass);
        let tt = t1.elapsed().as_secs_f64();
        println!(
            "{n:>8} {:>14.3e} {:>12} {:>14.3e} {:>12} {:>9.1}x",
            fd.tally.interactions as f64,
            fmt_secs(td),
            ft.tally.interactions as f64,
            fmt_secs(tt),
            td / tt
        );
        rows.push((n, fd.tally.interactions, td, ft.tally.interactions, tt));
        n *= 2;
    }
    rule(92);

    // growth exponents between the extreme rows: slope of log(cost)/log(N)
    if rows.len() >= 2 {
        let (n0, d0, _, t0, _) = rows[0];
        let (n1, d1, _, t1, _) = rows[rows.len() - 1];
        let ln = (n1 as f64 / n0 as f64).ln();
        let exp_direct = (d1 as f64 / d0 as f64).ln() / ln;
        let exp_tree = (t1 as f64 / t0 as f64).ln() / ln;
        println!(
            "interaction-count growth exponents: direct N^{exp_direct:.2}, tree N^{exp_tree:.2}"
        );
        println!("(expected: direct exactly 2; tree slightly above 1 from the log N list growth)");
    }
}
