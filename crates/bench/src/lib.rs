//! Shared plumbing for the experiment binaries: a tiny `--key value`
//! argument parser, workload constructors, and table printing.
//!
//! Each binary in `src/bin/` regenerates one evaluated item of the
//! paper; see `DESIGN.md` §5 for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

use g5ic::{plummer_sphere, CosmologicalIc, Snapshot, ZeldovichConfig};
use rand::SeedableRng;
use std::collections::HashMap;

/// Minimal `--key value` / `--flag` command-line parser.
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parse `std::env::args`, treating `--key value` pairs and bare
    /// `--flag`s (stored as `"true"`).
    pub fn parse() -> Args {
        let mut map = HashMap::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    map.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    map.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            } else {
                eprintln!("ignoring stray argument {a:?}");
                i += 1;
            }
        }
        Args { map }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.map.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                panic!("could not parse --{key} {v:?}");
            }),
        }
    }

    /// Flag lookup.
    pub fn flag(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }
}

/// A deterministic Plummer model (clustered workload) of `n` particles.
pub fn plummer(n: usize, seed: u64) -> Snapshot {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    plummer_sphere(n, &mut rng)
}

/// Streaming-plan scheduling from the shared CLI surface:
/// `--plan-workers W` (0 = serial in-order reference, omitted = default
/// cores − 1) and `--channel-depth D`.
pub fn plan_from_args(args: &Args) -> g5tree::plan::PlanConfig {
    let depth: usize = args.get("channel-depth", g5tree::plan::PlanConfig::default().channel_depth);
    match args.get::<i64>("plan-workers", -1) {
        -1 => g5tree::plan::PlanConfig { channel_depth: depth, ..Default::default() },
        0 => g5tree::plan::PlanConfig::serial(),
        w => g5tree::plan::PlanConfig::overlapped(w as usize, depth),
    }
}

/// A standard-CDM sphere realization with at least `n_target` particles.
pub fn cdm(n_target: usize, seed: u64) -> CosmologicalIc {
    CosmologicalIc::generate(&ZeldovichConfig::for_target_particles(n_target, seed))
}

/// Print a horizontal rule sized to a table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format a big count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Seconds, human-formatted.
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.2} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.2} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(29_000_000_000_000), "29,000,000,000,000");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.005), "5.00 ms");
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(90.0), "1.5 min");
        assert_eq!(fmt_secs(30141.0), "8.37 h");
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = plummer(100, 5);
        let b = plummer(100, 5);
        assert_eq!(a.pos, b.pos);
    }
}
