//! Cloud-in-cell (CIC) mass assignment and force interpolation on a
//! periodic grid — the "PM" half of P³M.

use g5util::vec3::Vec3;

/// A periodic scalar mesh of side `n` over a box of side `box_l`.
#[derive(Debug, Clone)]
pub struct Mesh {
    n: usize,
    box_l: f64,
    data: Vec<f64>,
}

impl Mesh {
    /// A zeroed `n³` mesh.
    pub fn zeros(n: usize, box_l: f64) -> Mesh {
        assert!(n >= 2, "mesh too small");
        assert!(box_l > 0.0, "non-positive box");
        Mesh { n, box_l, data: vec![0.0; n * n * n] }
    }

    /// Mesh cells per dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Box side length.
    pub fn box_l(&self) -> f64 {
        self.box_l
    }

    /// Cell spacing.
    pub fn h(&self) -> f64 {
        self.box_l / self.n as f64
    }

    /// Linear index with periodic wrapping.
    #[inline]
    pub fn idx(&self, i: i64, j: i64, k: i64) -> usize {
        let n = self.n as i64;
        let (i, j, k) =
            (i.rem_euclid(n) as usize, j.rem_euclid(n) as usize, k.rem_euclid(n) as usize);
        (i * self.n + j) * self.n + k
    }

    /// Raw values.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw values.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The CIC weights and base cell of a position: returns the lower
    /// cell index per axis and the fractional offsets.
    #[inline]
    fn cic_base(&self, p: Vec3) -> ([i64; 3], [f64; 3]) {
        let mut base = [0i64; 3];
        let mut frac = [0.0f64; 3];
        for (c, &x) in [p.x, p.y, p.z].iter().enumerate() {
            // cell centers at (i + 0.5) h: shift by half a cell
            let u = (x / self.h()) - 0.5;
            let f = u.floor();
            base[c] = f as i64;
            frac[c] = u - f;
        }
        (base, frac)
    }

    /// Deposit mass `m` at position `p` with CIC weights.
    pub fn deposit(&mut self, p: Vec3, m: f64) {
        let (b, f) = self.cic_base(p);
        for (di, wi) in [(0i64, 1.0 - f[0]), (1, f[0])] {
            for (dj, wj) in [(0i64, 1.0 - f[1]), (1, f[1])] {
                for (dk, wk) in [(0i64, 1.0 - f[2]), (1, f[2])] {
                    let idx = self.idx(b[0] + di, b[1] + dj, b[2] + dk);
                    self.data[idx] += m * wi * wj * wk;
                }
            }
        }
    }

    /// Gather the mesh value at `p` with the same CIC weights
    /// (force interpolation must match assignment to avoid
    /// self-forces).
    pub fn gather(&self, p: Vec3) -> f64 {
        let (b, f) = self.cic_base(p);
        let mut v = 0.0;
        for (di, wi) in [(0i64, 1.0 - f[0]), (1, f[0])] {
            for (dj, wj) in [(0i64, 1.0 - f[1]), (1, f[1])] {
                for (dk, wk) in [(0i64, 1.0 - f[2]), (1, f[2])] {
                    v += self.data[self.idx(b[0] + di, b[1] + dj, b[2] + dk)] * wi * wj * wk;
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_conserves_mass() {
        let mut m = Mesh::zeros(8, 4.0);
        m.deposit(Vec3::new(1.2, 3.9, 0.01), 2.5);
        m.deposit(Vec3::new(0.0, 0.0, 0.0), 1.5); // on the seam: wraps
        let total: f64 = m.data().iter().sum();
        assert!((total - 4.0).abs() < 1e-12);
        assert!(m.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn deposit_at_cell_center_is_a_point_mass() {
        let mut m = Mesh::zeros(8, 8.0);
        // cell centers at (i + 0.5) h with h = 1
        m.deposit(Vec3::new(2.5, 3.5, 4.5), 1.0);
        assert!((m.data()[m.idx(2, 3, 4)] - 1.0).abs() < 1e-12);
        assert_eq!(m.data().iter().filter(|&&v| v > 1e-12).count(), 1);
    }

    #[test]
    fn gather_matches_deposit_weights() {
        // gather of a field deposited at the same point recovers the
        // sum of squared weights; for a cell-center deposit it is exact
        let mut m = Mesh::zeros(8, 8.0);
        m.deposit(Vec3::new(2.5, 3.5, 4.5), 3.0);
        assert!((m.gather(Vec3::new(2.5, 3.5, 4.5)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gather_interpolates_linear_fields_exactly() {
        // CIC is trilinear: an affine function of cell index is
        // reproduced exactly away from the periodic seam
        let mut m = Mesh::zeros(16, 16.0);
        for i in 0..16i64 {
            for j in 0..16i64 {
                for k in 0..16i64 {
                    let idx = m.idx(i, j, k);
                    m.data_mut()[idx] = 2.0 * i as f64 - j as f64 + 0.5 * k as f64;
                }
            }
        }
        // point inside, away from wrap: cell coordinates u = x/h - 0.5
        let p = Vec3::new(5.25, 7.75, 3.5);
        let expect = 2.0 * (5.25 - 0.5) - (7.75 - 0.5) + 0.5 * (3.5 - 0.5);
        assert!((m.gather(p) - expect).abs() < 1e-12, "{} vs {expect}", m.gather(p));
    }

    #[test]
    fn periodic_wrapping_of_deposit() {
        let mut m = Mesh::zeros(4, 4.0);
        // just left of the seam: weight splits between cells 3 and 0
        m.deposit(Vec3::new(3.9, 0.5, 0.5), 1.0);
        let hi = m.data()[m.idx(3, 0, 0)];
        let lo = m.data()[m.idx(0, 0, 0)];
        assert!(hi > 0.0 && lo > 0.0);
        assert!((hi + lo - 1.0).abs() < 1e-12);
    }
}
