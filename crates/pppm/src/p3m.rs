//! The combined P³M solver: PM long-range + PP short-range **through
//! the simulated GRAPE-5's cutoff hardware**.
//!
//! The short-range pair force `m·dx/r³·[erfc(r/2r_s) + (r/r_s√π)
//! e^(−r²/4r_s²)]` is exactly what [`grape5::cutoff::CutoffTable::treepm`]
//! tabulates, so the PP phase loads each particle's neighbourhood
//! (gathered by the periodic cell list, minimum-imaged) into GRAPE
//! j-memory and lets the pipelines evaluate it — the hardware usage
//! pattern the GRAPE-5 designers built the cutoff unit for.

use crate::cell_list::{min_image, CellList};
use crate::pm::PmSolver;
use g5util::vec3::Vec3;
use grape5::cutoff::CutoffTable;
use grape5::{ClockAccounting, Grape5, Grape5Config};

/// P³M parameters.
#[derive(Debug, Clone, Copy)]
pub struct P3mConfig {
    /// Mesh cells per dimension (power of two).
    pub mesh_n: usize,
    /// Box side.
    pub box_l: f64,
    /// Ewald split scale r_s.
    pub rs: f64,
    /// PP cutoff radius (conventionally ≈ 4–5 r_s; must be ≤ L/2).
    pub rcut: f64,
    /// Hardware description for the PP phase.
    pub grape: Grape5Config,
}

impl P3mConfig {
    /// A conventional setup for a given box: mesh cell ≈ r_s,
    /// cutoff = 4.5 r_s, fast exact-mode hardware arithmetic.
    pub fn standard(mesh_n: usize, box_l: f64) -> P3mConfig {
        let rs = 1.25 * box_l / mesh_n as f64;
        P3mConfig { mesh_n, box_l, rs, rcut: 4.5 * rs, grape: Grape5Config::paper_exact() }
    }
}

/// A ready P³M solver holding the opened GRAPE with its cutoff table.
pub struct P3mSolver {
    cfg: P3mConfig,
    pm: PmSolver,
    g5: Grape5,
}

impl P3mSolver {
    /// Open the hardware, load the `erfc` cutoff table, set up the mesh.
    pub fn new(cfg: P3mConfig) -> P3mSolver {
        assert!(cfg.rcut > cfg.rs && cfg.rcut <= cfg.box_l / 2.0, "bad cutoff radius");
        let pm = PmSolver::new(cfg.mesh_n, cfg.box_l, cfg.rs);
        let mut g5 = Grape5::open(cfg.grape);
        // displacements live in [-rcut, rcut]: declare a window just
        // beyond, with the target at the origin
        g5.set_range(-1.01 * cfg.rcut, 1.01 * cfg.rcut);
        g5.set_eps(0.0);
        g5.set_cutoff(Some(CutoffTable::treepm(cfg.rs, cfg.rcut, 12, 24)));
        P3mSolver { cfg, pm, g5 }
    }

    /// The configuration in use.
    pub fn config(&self) -> &P3mConfig {
        &self.cfg
    }

    /// GRAPE-side work accounting for the PP phase.
    pub fn grape_accounting(&self) -> ClockAccounting {
        self.g5.accounting()
    }

    /// Total periodic accelerations: PM long-range + GRAPE PP
    /// short-range.
    pub fn accelerations(&mut self, pos: &[Vec3], mass: &[f64]) -> Vec<Vec3> {
        assert_eq!(pos.len(), mass.len(), "position/mass length mismatch");
        let mut acc = self.pm.accelerations(pos, mass);

        // PP phase: for each target, gather minimum-imaged neighbours
        // and evaluate the cutoff force on the hardware. Targets are
        // batched per cell-list bucket for call efficiency at test
        // scale; one call per target keeps the code transparent.
        let cl = CellList::build(pos, self.cfg.box_l, self.cfg.rcut);
        let rcut2 = self.cfg.rcut * self.cfg.rcut;
        let mut jpos: Vec<Vec3> = Vec::with_capacity(128);
        let mut jmass: Vec<f64> = Vec::with_capacity(128);
        for (i, &xi) in pos.iter().enumerate() {
            jpos.clear();
            jmass.clear();
            cl.for_neighbours(xi, |j| {
                if j == i {
                    return;
                }
                let d = min_image(xi, pos[j], self.cfg.box_l);
                if d.norm2() < rcut2 {
                    jpos.push(d); // neighbour relative to the target at the origin
                    jmass.push(mass[j]);
                }
            });
            if jpos.is_empty() {
                continue;
            }
            self.g5.set_j_particles(&jpos, &jmass);
            let f = self.g5.force_on(&[Vec3::ZERO]);
            acc[i] += f[0].acc;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ewald::EwaldSum;
    use rand::{Rng, SeedableRng};

    fn random_box(n: usize, box_l: f64, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(0.0..box_l),
                    rng.random_range(0.0..box_l),
                    rng.random_range(0.0..box_l),
                )
            })
            .collect();
        let mass = (0..n).map(|_| rng.random_range(0.5..1.5)).collect();
        (pos, mass)
    }

    /// The headline validation: P³M through the GRAPE cutoff hardware
    /// reproduces exact Ewald forces to ~1 %.
    #[test]
    fn p3m_matches_ewald() {
        let box_l = 16.0;
        let (pos, mass) = random_box(160, box_l, 7);
        let exact = EwaldSum::new(box_l).accelerations(&pos, &mass);
        let mut solver = P3mSolver::new(P3mConfig::standard(16, box_l));
        let p3m = solver.accelerations(&pos, &mass);
        let mut sum = 0.0;
        for (a, b) in p3m.iter().zip(&exact) {
            sum += (*a - *b).norm2() / b.norm2().max(1e-20);
        }
        let rms = (sum / pos.len() as f64).sqrt();
        assert!(rms < 0.03, "P3M vs Ewald rms relative error {rms}");
        // and the hardware actually did the PP work
        assert!(solver.grape_accounting().interactions > 0);
    }

    #[test]
    fn close_pair_dominated_by_pp() {
        // a pair at separation << rs: PP must carry essentially the
        // whole Newtonian force
        let box_l = 16.0;
        let d = 0.4;
        let pos = vec![Vec3::new(8.0 - d / 2.0, 8.0, 8.0), Vec3::new(8.0 + d / 2.0, 8.0, 8.0)];
        let mass = vec![1.0, 1.0];
        let mut solver = P3mSolver::new(P3mConfig::standard(16, box_l));
        let acc = solver.accelerations(&pos, &mass);
        let newton = 1.0 / (d * d);
        assert!((acc[0].x - newton).abs() / newton < 0.02, "{} vs {newton}", acc[0].x);
    }

    #[test]
    fn momentum_conservation() {
        let box_l = 16.0;
        let (pos, mass) = random_box(120, box_l, 8);
        let mut solver = P3mSolver::new(P3mConfig::standard(16, box_l));
        let acc = solver.accelerations(&pos, &mass);
        let net: Vec3 = acc.iter().zip(&mass).map(|(&a, &m)| a * m).sum();
        let typical: f64 =
            acc.iter().zip(&mass).map(|(a, &m)| (*a * m).norm()).sum::<f64>() / pos.len() as f64;
        assert!(net.norm() < 0.01 * typical * pos.len() as f64, "net {net:?}");
    }

    #[test]
    #[should_panic(expected = "bad cutoff radius")]
    fn cutoff_beyond_half_box_rejected() {
        let mut cfg = P3mConfig::standard(8, 8.0);
        cfg.rcut = 5.0;
        let _ = P3mSolver::new(cfg);
    }
}
