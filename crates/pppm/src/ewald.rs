//! Brute-force Ewald summation — the exact force in a periodic box,
//! used as the reference the P³M solver is validated against.
//!
//! The 1/r² force of every particle and all its periodic images is
//! split with parameter α into a short-range real-space lattice sum
//! (erfc-screened, truncated at a few images) and a long-range
//! reciprocal-space sum (Gaussian-damped, truncated at `k_max`
//! harmonics). O(N² · terms): affordable only at test scale, which is
//! its entire job.

use crate::cell_list::min_image;
use g5util::vec3::Vec3;
use grape5::cutoff::erfc;
use rayon::prelude::*;

/// An Ewald summation context for a cubic box.
#[derive(Debug, Clone)]
pub struct EwaldSum {
    box_l: f64,
    alpha: f64,
    real_images: i64,
    kvecs: Vec<(Vec3, f64)>, // (k vector, 4π e^{−k²/4α²}/(k² V))
}

impl EwaldSum {
    /// Standard test-accuracy setup: `α = 2/r_typical`… in practice
    /// `α = 5.6/L`, 2 real-space image shells, harmonics to `|n| ≤ 6`
    /// give ~1e-5 relative force accuracy for box-scale problems.
    pub fn new(box_l: f64) -> EwaldSum {
        assert!(box_l > 0.0, "non-positive box");
        let alpha = 5.6 / box_l;
        let kmax = 6i64;
        let kf = std::f64::consts::TAU / box_l;
        let volume = box_l * box_l * box_l;
        let mut kvecs = Vec::new();
        for nx in -kmax..=kmax {
            for ny in -kmax..=kmax {
                for nz in -kmax..=kmax {
                    if nx == 0 && ny == 0 && nz == 0 {
                        continue;
                    }
                    let n2 = nx * nx + ny * ny + nz * nz;
                    if n2 > kmax * kmax {
                        continue;
                    }
                    let k = Vec3::new(kf * nx as f64, kf * ny as f64, kf * nz as f64);
                    let k2 = k.norm2();
                    let coef = 4.0 * std::f64::consts::PI * (-k2 / (4.0 * alpha * alpha)).exp()
                        / (k2 * volume);
                    kvecs.push((k, coef));
                }
            }
        }
        EwaldSum { box_l, alpha, real_images: 2, kvecs }
    }

    /// Exact periodic accelerations on every particle.
    pub fn accelerations(&self, pos: &[Vec3], mass: &[f64]) -> Vec<Vec3> {
        assert_eq!(pos.len(), mass.len(), "position/mass length mismatch");
        let a = self.alpha;
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
        pos.par_iter()
            .enumerate()
            .map(|(i, &xi)| {
                let mut acc = Vec3::ZERO;
                for (j, (&xj, &mj)) in pos.iter().zip(mass).enumerate() {
                    // real-space lattice sum over image shells
                    let d0 = min_image(xi, xj, self.box_l);
                    for nx in -self.real_images..=self.real_images {
                        for ny in -self.real_images..=self.real_images {
                            for nz in -self.real_images..=self.real_images {
                                let d = d0
                                    + Vec3::new(
                                        nx as f64 * self.box_l,
                                        ny as f64 * self.box_l,
                                        nz as f64 * self.box_l,
                                    );
                                let r2 = d.norm2();
                                if r2 == 0.0 {
                                    continue; // self term
                                }
                                let r = r2.sqrt();
                                let screening =
                                    erfc(a * r) + two_over_sqrt_pi * a * r * (-a * a * r2).exp();
                                acc += d * (mj * screening / (r2 * r));
                            }
                        }
                    }
                    // reciprocal-space sum
                    if j != i {
                        for &(k, coef) in &self.kvecs {
                            let phase = k.dot(d0);
                            acc += k * (mj * coef * phase.sin());
                        }
                    }
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_pair_is_essentially_newtonian() {
        // separation << box: periodic corrections are tiny
        let box_l = 20.0;
        let d = 0.5;
        let pos =
            vec![Vec3::new(10.0 - d / 2.0, 10.0, 10.0), Vec3::new(10.0 + d / 2.0, 10.0, 10.0)];
        let mass = vec![1.0, 1.0];
        let acc = EwaldSum::new(box_l).accelerations(&pos, &mass);
        let newton = 1.0 / (d * d);
        assert!((acc[0].x - newton).abs() / newton < 1e-3, "{} vs {newton}", acc[0].x);
        assert!((acc[0] + acc[1]).norm() < 1e-9 * newton);
    }

    #[test]
    fn cubic_lattice_feels_no_force() {
        // a perfect lattice is an equilibrium of the periodic problem
        let box_l = 8.0;
        let mut pos = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    pos.push(Vec3::new(
                        i as f64 * 2.0 + 1.0,
                        j as f64 * 2.0 + 1.0,
                        k as f64 * 2.0 + 1.0,
                    ));
                }
            }
        }
        let mass = vec![1.0; pos.len()];
        let acc = EwaldSum::new(box_l).accelerations(&pos, &mass);
        for a in &acc {
            assert!(a.norm() < 1e-8, "lattice site feels {a:?}");
        }
    }

    #[test]
    fn forces_are_periodic() {
        // translating every particle by the box vector changes nothing
        let box_l = 10.0;
        let pos =
            vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(6.0, 7.0, 3.5), Vec3::new(9.0, 0.5, 8.0)];
        let shifted: Vec<Vec3> = pos.iter().map(|&p| p + Vec3::new(box_l, 0.0, -box_l)).collect();
        let mass = vec![1.0, 2.0, 0.5];
        let e = EwaldSum::new(box_l);
        let a = e.accelerations(&pos, &mass);
        let b = e.accelerations(&shifted, &mass);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).norm() < 1e-9);
        }
    }

    #[test]
    fn alpha_independence() {
        // the physical force must not depend on the (internal) split;
        // build a second context with a different alpha by scaling the
        // box reference: compare two box sizes mapped onto each other
        let box_l = 12.0;
        let pos = vec![Vec3::new(2.0, 3.0, 4.0), Vec3::new(8.0, 9.0, 10.0)];
        let mass = vec![1.0, 3.0];
        let e1 = EwaldSum::new(box_l);
        let mut e2 = EwaldSum::new(box_l);
        // manually perturb alpha and rebuild the k table consistently
        e2 = EwaldSum { alpha: e1.alpha * 1.3, ..e2 };
        let kf = std::f64::consts::TAU / box_l;
        let volume = box_l * box_l * box_l;
        e2.kvecs = (-6i64..=6)
            .flat_map(|nx| (-6i64..=6).flat_map(move |ny| (-6i64..=6).map(move |nz| (nx, ny, nz))))
            .filter(|&(x, y, z)| (x, y, z) != (0, 0, 0) && x * x + y * y + z * z <= 36)
            .map(|(x, y, z)| {
                let k = Vec3::new(kf * x as f64, kf * y as f64, kf * z as f64);
                let k2 = k.norm2();
                let coef = 4.0 * std::f64::consts::PI * (-k2 / (4.0 * e2.alpha * e2.alpha)).exp()
                    / (k2 * volume);
                (k, coef)
            })
            .collect();
        let a = e1.accelerations(&pos, &mass);
        let b = e2.accelerations(&pos, &mass);
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (*x - *y).norm() < 1e-4 * x.norm().max(1e-12),
                "alpha dependence: {x:?} vs {y:?}"
            );
        }
    }
}
