//! Periodic cell-list neighbour search.
//!
//! The box is divided into `nc³` cells with side ≥ the interaction
//! cutoff; all neighbours of a particle within the cutoff then lie in
//! its own or the 26 adjacent cells (minimum-image convention). This is
//! the standard O(N) short-range pair harvester of P³M and MD codes.

use g5util::vec3::Vec3;

/// A built cell list over a snapshot of positions.
#[derive(Debug, Clone)]
pub struct CellList {
    box_l: f64,
    nc: usize,
    /// head[c] = first particle in cell c, linked through `next`.
    head: Vec<i32>,
    next: Vec<i32>,
}

impl CellList {
    /// Build for positions in `[0, L)³` with interaction cutoff
    /// `rcut` (cells are at least that wide).
    ///
    /// # Panics
    /// If `rcut` exceeds `L/2` (minimum image breaks down) or inputs
    /// are degenerate.
    pub fn build(pos: &[Vec3], box_l: f64, rcut: f64) -> CellList {
        assert!(box_l > 0.0, "non-positive box");
        assert!(rcut > 0.0 && rcut <= box_l / 2.0, "cutoff {rcut} outside (0, L/2]");
        let nc = ((box_l / rcut).floor() as usize).clamp(1, 64);
        let mut head = vec![-1i32; nc * nc * nc];
        let mut next = vec![-1i32; pos.len()];
        for (i, p) in pos.iter().enumerate() {
            let c = Self::cell_of(*p, box_l, nc);
            next[i] = head[c];
            head[c] = i as i32;
        }
        CellList { box_l, nc, head, next }
    }

    fn cell_of(p: Vec3, box_l: f64, nc: usize) -> usize {
        let f = |x: f64| {
            let u = (x / box_l).rem_euclid(1.0);
            ((u * nc as f64) as usize).min(nc - 1)
        };
        (f(p.x) * nc + f(p.y)) * nc + f(p.z)
    }

    /// Cells per dimension.
    pub fn cells_per_dim(&self) -> usize {
        self.nc
    }

    /// Visit every particle index in the 27-cell neighbourhood of `p`
    /// (including `p`'s own cell; the caller filters self-pairs).
    pub fn for_neighbours<F: FnMut(usize)>(&self, p: Vec3, mut f: F) {
        let nc = self.nc as i64;
        let cell = |x: f64| {
            let u = (x / self.box_l).rem_euclid(1.0);
            ((u * nc as f64) as i64).min(nc - 1)
        };
        let (cx, cy, cz) = (cell(p.x), cell(p.y), cell(p.z));
        // with fewer than 3 cells per dim, ±1 offsets alias: visit each
        // distinct cell once
        let offsets: &[i64] = if nc >= 3 {
            &[-1, 0, 1]
        } else if nc == 2 {
            &[0, 1]
        } else {
            &[0]
        };
        for &dx in offsets {
            for &dy in offsets {
                for &dz in offsets {
                    let ix = (cx + dx).rem_euclid(nc) as usize;
                    let iy = (cy + dy).rem_euclid(nc) as usize;
                    let iz = (cz + dz).rem_euclid(nc) as usize;
                    let mut k = self.head[(ix * self.nc + iy) * self.nc + iz];
                    while k >= 0 {
                        f(k as usize);
                        k = self.next[k as usize];
                    }
                }
            }
        }
    }
}

/// Minimum-image displacement from `a` to `b` in a periodic box.
#[inline]
pub fn min_image(a: Vec3, b: Vec3, box_l: f64) -> Vec3 {
    let wrap = |d: f64| d - box_l * (d / box_l).round();
    Vec3::new(wrap(b.x - a.x), wrap(b.y - a.y), wrap(b.z - a.z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(0.0..box_l),
                    rng.random_range(0.0..box_l),
                    rng.random_range(0.0..box_l),
                )
            })
            .collect()
    }

    #[test]
    fn min_image_wraps() {
        let a = Vec3::new(0.1, 0.0, 0.0);
        let b = Vec3::new(9.9, 0.0, 0.0);
        let d = min_image(a, b, 10.0);
        assert!((d.x + 0.2).abs() < 1e-12, "wrapped distance {d:?}");
        assert!((min_image(b, a, 10.0).x - 0.2).abs() < 1e-12);
    }

    #[test]
    fn finds_every_pair_a_brute_force_finds() {
        let box_l = 10.0;
        let rcut = 1.3;
        let pos = cloud(300, box_l, 1);
        let cl = CellList::build(&pos, box_l, rcut);
        for (i, &p) in pos.iter().enumerate() {
            // brute-force neighbour set
            let mut expect: Vec<usize> = (0..pos.len())
                .filter(|&j| j != i && min_image(p, pos[j], box_l).norm() < rcut)
                .collect();
            expect.sort_unstable();
            let mut got = Vec::new();
            cl.for_neighbours(p, |j| {
                if j != i && min_image(p, pos[j], box_l).norm() < rcut {
                    got.push(j);
                }
            });
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, expect, "neighbour mismatch for particle {i}");
        }
    }

    #[test]
    fn small_cell_counts_visit_each_particle_once() {
        // rcut > L/3 gives nc = 2: offsets must not double-visit
        let box_l = 4.0;
        let pos = cloud(50, box_l, 2);
        let cl = CellList::build(&pos, box_l, 1.9);
        assert!(cl.cells_per_dim() <= 2);
        let mut count = vec![0usize; pos.len()];
        cl.for_neighbours(pos[0], |j| count[j] += 1);
        assert!(count.iter().all(|&c| c == 1), "duplicate visits: {count:?}");
    }

    #[test]
    fn positions_outside_box_are_wrapped() {
        let pos = vec![Vec3::new(-0.1, 10.2, 5.0)];
        let cl = CellList::build(&pos, 10.0, 1.0);
        let mut seen = false;
        cl.for_neighbours(Vec3::new(9.95, 0.1, 5.0), |j| seen |= j == 0);
        assert!(seen, "wrapped particle must be found near the seam");
    }

    #[test]
    #[should_panic(expected = "outside (0, L/2]")]
    fn oversized_cutoff_rejected() {
        CellList::build(&[Vec3::ZERO], 10.0, 6.0);
    }
}
