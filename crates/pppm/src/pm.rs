//! The particle–mesh (PM) long-range solver.
//!
//! Pipeline: CIC mass assignment → FFT → multiply by the Ewald-split
//! long-range Green's function `−4π e^(−k² r_s²) / k²`, deconvolved by
//! the squared CIC window (once for assignment, once for
//! interpolation) → ik differentiation → three inverse FFTs → CIC
//! gather of the acceleration at each particle.
//!
//! The `e^(−k² r_s²)` factor is the Fourier transform of the
//! `erf(r/2r_s)/r` potential, so the PM force plus the `erfc` PP force
//! (evaluated on GRAPE's cutoff tables) sums to the exact periodic
//! 1/r² force — the Ewald split that every P³M/TreePM code uses.

use crate::mesh::Mesh;
use g5ic::fft::{Cpx, Grid3};
use g5util::vec3::Vec3;

/// PM solver parameters.
#[derive(Debug, Clone, Copy)]
pub struct PmSolver {
    /// Mesh cells per dimension (power of two).
    pub n: usize,
    /// Box side.
    pub box_l: f64,
    /// Ewald split scale r_s (the PP/PM handover length).
    pub rs: f64,
}

impl PmSolver {
    /// Construct, validating the geometry.
    pub fn new(n: usize, box_l: f64, rs: f64) -> PmSolver {
        assert!(n.is_power_of_two() && n >= 4, "mesh side must be a power of two >= 4");
        assert!(box_l > 0.0, "non-positive box");
        assert!(rs > 0.0, "non-positive split scale");
        let h = box_l / n as f64;
        assert!(rs >= h, "split scale {rs} under-resolved by the mesh (h = {h})");
        PmSolver { n, box_l, rs }
    }

    /// Long-range accelerations for all particles.
    pub fn accelerations(&self, pos: &[Vec3], mass: &[f64]) -> Vec<Vec3> {
        assert_eq!(pos.len(), mass.len(), "position/mass length mismatch");
        let n = self.n;
        let h = self.box_l / n as f64;

        // 1. CIC density (mass per cell volume)
        let mut rho = Mesh::zeros(n, self.box_l);
        for (&p, &m) in pos.iter().zip(mass) {
            rho.deposit(p, m);
        }
        let inv_vol = 1.0 / (h * h * h);

        let mut grid = Grid3::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    *grid.get_mut(i, j, k) = Cpx::real(rho.data()[(i * n + j) * n + k] * inv_vol);
                }
            }
        }
        grid.fft3(false);

        // 2. Green's function, deconvolution, ik differentiation
        let kf = std::f64::consts::TAU / self.box_l;
        let mut ax_k = Grid3::zeros(n);
        let mut ay_k = Grid3::zeros(n);
        let mut az_k = Grid3::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let kv = [
                        kf * grid.freq(i) as f64,
                        kf * grid.freq(j) as f64,
                        kf * grid.freq(k) as f64,
                    ];
                    let k2 = kv[0] * kv[0] + kv[1] * kv[1] + kv[2] * kv[2];
                    if k2 == 0.0 {
                        continue; // mean field: the Jeans swindle
                    }
                    // squared CIC window (assignment) applied twice
                    // (assignment + interpolation) => W^2 here, W^2 in
                    // the gather's implicit smoothing: deconvolve W^2
                    let w = cic_window(kv[0], h) * cic_window(kv[1], h) * cic_window(kv[2], h);
                    let green = -4.0 * std::f64::consts::PI * (-k2 * self.rs * self.rs).exp()
                        / (k2 * w * w);
                    let phi = grid.get(i, j, k).scale(green);
                    // a = -ik phi
                    let mika = |kc: f64| Cpx::new(phi.im * kc, -phi.re * kc);
                    *ax_k.get_mut(i, j, k) = mika(kv[0]);
                    *ay_k.get_mut(i, j, k) = mika(kv[1]);
                    *az_k.get_mut(i, j, k) = mika(kv[2]);
                }
            }
        }

        // 3. back to real space, gather per particle
        ax_k.fft3(true);
        ay_k.fft3(true);
        az_k.fft3(true);
        let mut mesh_ax = Mesh::zeros(n, self.box_l);
        let mut mesh_ay = Mesh::zeros(n, self.box_l);
        let mut mesh_az = Mesh::zeros(n, self.box_l);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let idx = (i * n + j) * n + k;
                    mesh_ax.data_mut()[idx] = ax_k.get(i, j, k).re;
                    mesh_ay.data_mut()[idx] = ay_k.get(i, j, k).re;
                    mesh_az.data_mut()[idx] = az_k.get(i, j, k).re;
                }
            }
        }
        pos.iter()
            .map(|&p| Vec3::new(mesh_ax.gather(p), mesh_ay.gather(p), mesh_az.gather(p)))
            .collect()
    }
}

/// The CIC assignment window in k-space: `sinc²(k h / 2)` per axis.
#[inline]
fn cic_window(k: f64, h: f64) -> f64 {
    let x = 0.5 * k * h;
    if x.abs() < 1e-12 {
        1.0
    } else {
        let s = x.sin() / x;
        s * s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn uniform_density_gives_zero_force() {
        // one particle per cell center: perfectly uniform density
        let n = 8;
        let box_l = 8.0;
        let mut pos = Vec::new();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    pos.push(Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5));
                }
            }
        }
        let mass = vec![1.0; pos.len()];
        let acc = PmSolver::new(n, box_l, 1.2).accelerations(&pos, &mass);
        for a in &acc {
            assert!(a.norm() < 1e-10, "uniform lattice must feel no PM force: {a:?}");
        }
    }

    #[test]
    fn momentum_is_conserved() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let box_l = 16.0;
        let pos: Vec<Vec3> = (0..200)
            .map(|_| {
                Vec3::new(
                    rng.random_range(0.0..box_l),
                    rng.random_range(0.0..box_l),
                    rng.random_range(0.0..box_l),
                )
            })
            .collect();
        let mass: Vec<f64> = (0..200).map(|_| rng.random_range(0.5..2.0)).collect();
        let acc = PmSolver::new(16, box_l, 1.5).accelerations(&pos, &mass);
        let net: Vec3 = acc.iter().zip(&mass).map(|(&a, &m)| a * m).sum();
        let typical: f64 =
            acc.iter().zip(&mass).map(|(a, &m)| (*a * m).norm()).sum::<f64>() / 200.0;
        assert!(net.norm() < 1e-6 * typical.max(1e-12) * 200.0, "net momentum {net:?}");
    }

    #[test]
    fn pair_force_is_attractive_and_antisymmetric() {
        let box_l = 32.0;
        let pos = vec![Vec3::new(10.0, 16.0, 16.0), Vec3::new(22.0, 16.0, 16.0)];
        let mass = vec![1.0, 1.0];
        let acc = PmSolver::new(32, box_l, 2.0).accelerations(&pos, &mass);
        assert!(acc[0].x > 0.0, "particle 0 must be pulled toward +x: {:?}", acc[0]);
        assert!(acc[1].x < 0.0);
        assert!((acc[0] + acc[1]).norm() < 1e-8 * acc[0].norm().max(1e-12) + 1e-10);
    }

    #[test]
    fn far_pair_matches_newton() {
        // separation >> rs and << L/2: the PM force approximates the
        // Newtonian pair force plus small periodic-image corrections
        let box_l = 64.0;
        let d = 12.0;
        let pos =
            vec![Vec3::new(32.0 - d / 2.0, 32.0, 32.0), Vec3::new(32.0 + d / 2.0, 32.0, 32.0)];
        let mass = vec![1.0, 1.0];
        let acc = PmSolver::new(64, box_l, 1.5).accelerations(&pos, &mass);
        let newton = 1.0 / (d * d);
        let rel = (acc[0].x - newton).abs() / newton;
        assert!(rel < 0.05, "PM far force {} vs Newton {newton} (rel {rel})", acc[0].x);
    }

    #[test]
    #[should_panic(expected = "under-resolved")]
    fn tiny_split_scale_rejected() {
        PmSolver::new(8, 8.0, 0.1);
    }
}
