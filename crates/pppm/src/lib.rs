#![warn(missing_docs)]
//! # g5pppm — P³M gravity on GRAPE-5 hardware
//!
//! The treecode of the reproduced paper is one of GRAPE-5's two design
//! targets; the other is **P³M** (particle–particle/particle–mesh,
//! Hockney & Eastwood 1988) in a periodic box, which is why the G5 chip
//! carries user-loadable **cutoff tables** (see [`grape5::cutoff`]).
//! This crate implements that second mode end to end:
//!
//! * [`cell_list`] — periodic cell-list neighbour search for the
//!   short-range (PP) pair sum;
//! * [`mesh`] — cloud-in-cell (CIC) mass assignment and force
//!   interpolation on a periodic grid;
//! * [`pm`] — the FFT Poisson solver with the Ewald-split long-range
//!   kernel `−4π/k² · e^(−k²·r_s²)`, CIC deconvolution and
//!   ik-differentiation;
//! * [`p3m`] — the combined solver: PM long-range + PP short-range
//!   (the `erfc` shape) evaluated **through the simulated GRAPE-5**
//!   with its cutoff table loaded — exactly how the hardware was used;
//! * [`ewald`] — brute-force Ewald summation, the exact periodic
//!   reference the tests validate against.
//!
//! Conventions: G = 1, cubic box `[0, L)³`, periodic in all axes; `acc`
//! is acceleration and potentials are omitted (the P³M experiments of
//! the era validated forces).

pub mod cell_list;
pub mod ewald;
pub mod mesh;
pub mod p3m;
pub mod pm;

pub use ewald::EwaldSum;
pub use p3m::{P3mConfig, P3mSolver};
