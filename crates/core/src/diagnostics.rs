//! Conserved-quantity and structure diagnostics.

use g5ic::Snapshot;
use g5util::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A bundle of diagnostics measured from one snapshot (plus its
/// per-particle potentials, if energies are wanted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Kinetic energy `½ Σ m v²`.
    pub kinetic: f64,
    /// Potential energy `−½ Σ m·pot` (pot is the positive `Σ m_j/r`).
    pub potential: f64,
    /// `T + U`.
    pub total_energy: f64,
    /// Virial ratio `2T/|U|` (NaN when U = 0).
    pub virial_ratio: f64,
    /// Total momentum.
    pub momentum: Vec3,
    /// Total angular momentum about the origin.
    pub angular_momentum: Vec3,
    /// Mass-weighted center of mass.
    pub center_of_mass: Vec3,
}

impl Diagnostics {
    /// Measure a snapshot. `pot` must be the per-particle positive
    /// potentials in the same order (pass `&[]` to skip energies).
    pub fn measure(state: &Snapshot, pot: &[f64]) -> Diagnostics {
        assert!(pot.is_empty() || pot.len() == state.len(), "potential array length mismatch");
        let kinetic: f64 =
            state.vel.iter().zip(&state.mass).map(|(v, &m)| 0.5 * m * v.norm2()).sum();
        let potential: f64 = if pot.is_empty() {
            0.0
        } else {
            -0.5 * state.mass.iter().zip(pot).map(|(&m, &p)| m * p).sum::<f64>()
        };
        let angular_momentum = state
            .pos
            .iter()
            .zip(&state.vel)
            .zip(&state.mass)
            .map(|((&x, &v), &m)| x.cross(v) * m)
            .sum();
        Diagnostics {
            kinetic,
            potential,
            total_energy: kinetic + potential,
            virial_ratio: if potential == 0.0 { f64::NAN } else { 2.0 * kinetic / potential.abs() },
            momentum: state.momentum(),
            angular_momentum,
            center_of_mass: state.center_of_mass(),
        }
    }
}

/// The energy-drift watchdog tripped: integrating further would
/// silently compound garbage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDriftExceeded {
    /// Baseline total energy the watchdog was armed with.
    pub baseline: f64,
    /// Total energy at the failing check.
    pub energy: f64,
    /// `|energy − baseline| / scale` at the failing check.
    pub drift: f64,
    /// The configured tolerance the drift exceeded.
    pub tolerance: f64,
}

impl std::fmt::Display for EnergyDriftExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "energy drift {:.3e} exceeds tolerance {:.3e} (E {} -> {})",
            self.drift, self.tolerance, self.baseline, self.energy
        )
    }
}

impl std::error::Error for EnergyDriftExceeded {}

/// Watches total energy against a baseline and trips when relative
/// drift exceeds a tolerance — the signal for a long run to checkpoint
/// and abort instead of silently integrating a corrupted trajectory
/// (an undetected device fault, a too-large timestep, a bad resume).
///
/// The first [`check`](EnergyWatchdog::check) arms the baseline; each
/// later call compares against it. The drift scale defaults to
/// `|baseline|` but can be pinned (e.g. to the initial kinetic energy
/// for cosmological runs, whose total energy starts near zero).
#[derive(Debug, Clone, Copy)]
pub struct EnergyWatchdog {
    tolerance: f64,
    scale: Option<f64>,
    baseline: Option<f64>,
}

impl EnergyWatchdog {
    /// Watchdog tripping at relative drift `tolerance`.
    pub fn new(tolerance: f64) -> EnergyWatchdog {
        assert!(tolerance > 0.0, "non-positive drift tolerance");
        EnergyWatchdog { tolerance, scale: None, baseline: None }
    }

    /// Pin the drift denominator instead of using `|baseline|`.
    pub fn with_scale(mut self, scale: f64) -> EnergyWatchdog {
        assert!(scale > 0.0, "non-positive drift scale");
        self.scale = Some(scale);
        self
    }

    /// Record (first call) or test (later calls) a total energy.
    /// Returns the current relative drift, or `Err` when it exceeds
    /// the tolerance. A non-finite energy trips immediately.
    pub fn check(&mut self, energy: f64) -> Result<f64, EnergyDriftExceeded> {
        let Some(baseline) = self.baseline else {
            if !energy.is_finite() {
                return Err(EnergyDriftExceeded {
                    baseline: energy,
                    energy,
                    drift: f64::INFINITY,
                    tolerance: self.tolerance,
                });
            }
            self.baseline = Some(energy);
            return Ok(0.0);
        };
        let scale = self.scale.unwrap_or_else(|| baseline.abs().max(f64::MIN_POSITIVE));
        let drift = ((energy - baseline) / scale).abs();
        // NaN drift (non-finite energy) must trip, not slip through a
        // false comparison
        use std::cmp::Ordering::{Equal, Less};
        if !matches!(drift.partial_cmp(&self.tolerance), Some(Less | Equal)) {
            return Err(EnergyDriftExceeded { baseline, energy, drift, tolerance: self.tolerance });
        }
        Ok(drift)
    }

    /// The armed baseline, if any check has run.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }
}

/// Radii enclosing the given mass fractions, about the center of mass
/// (Lagrangian radii) — the standard collapse/clustering tracker.
pub fn lagrangian_radii(state: &Snapshot, fractions: &[f64]) -> Vec<f64> {
    assert!(!state.is_empty(), "empty snapshot");
    let com = state.center_of_mass();
    let mut rm: Vec<(f64, f64)> =
        state.pos.iter().zip(&state.mass).map(|(&p, &m)| ((p - com).norm(), m)).collect();
    rm.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let total: f64 = state.total_mass();
    let mut out = Vec::with_capacity(fractions.len());
    for &f in fractions {
        assert!((0.0..=1.0).contains(&f), "mass fraction {f} outside [0,1]");
        let target = f * total;
        let mut acc = 0.0;
        let mut radius = rm.last().map(|x| x.0).unwrap_or(0.0);
        for &(r, m) in &rm {
            acc += m;
            if acc >= target {
                radius = r;
                break;
            }
        }
        out.push(radius);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_body() -> (Snapshot, Vec<f64>) {
        let state = Snapshot {
            pos: vec![Vec3::new(0.5, 0.0, 0.0), Vec3::new(-0.5, 0.0, 0.0)],
            vel: vec![Vec3::new(0.0, 0.5, 0.0), Vec3::new(0.0, -0.5, 0.0)],
            mass: vec![0.5, 0.5],
        };
        // pot_i = m_j / r = 0.5
        (state, vec![0.5, 0.5])
    }

    #[test]
    fn circular_binary_diagnostics() {
        let (state, pot) = two_body();
        let d = Diagnostics::measure(&state, &pot);
        assert!((d.kinetic - 0.125).abs() < 1e-15); // 2 × ½·0.5·0.25
        assert!((d.potential + 0.25).abs() < 1e-15); // −m₁m₂/r = −0.25
        assert!((d.total_energy + 0.125).abs() < 1e-15);
        // circular orbit is virialized: 2T/|U| = 1
        assert!((d.virial_ratio - 1.0).abs() < 1e-12);
        assert!(d.momentum.norm() < 1e-15);
        // L_z = 2 × 0.5·0.5·0.5 = 0.25
        assert!((d.angular_momentum - Vec3::new(0.0, 0.0, 0.25)).norm() < 1e-15);
        assert!(d.center_of_mass.norm() < 1e-15);
    }

    #[test]
    fn empty_potential_skips_energy() {
        let (state, _) = two_body();
        let d = Diagnostics::measure(&state, &[]);
        assert_eq!(d.potential, 0.0);
        assert!(d.virial_ratio.is_nan());
    }

    #[test]
    fn lagrangian_radii_ordering() {
        let state = Snapshot {
            pos: (1..=10).map(|k| Vec3::new(k as f64, 0.0, 0.0)).collect(),
            vel: vec![Vec3::ZERO; 10],
            mass: vec![1.0; 10],
        };
        let r = lagrangian_radii(&state, &[0.1, 0.5, 0.9]);
        assert!(r[0] <= r[1] && r[1] <= r[2]);
        // COM at x=5.5; half-mass radius encloses 5 particles
        assert!((r[1] - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_fraction_rejected() {
        let (state, _) = two_body();
        lagrangian_radii(&state, &[1.5]);
    }

    #[test]
    fn watchdog_arms_then_trips() {
        let mut w = EnergyWatchdog::new(0.01);
        assert_eq!(w.check(-0.25).unwrap(), 0.0); // arms the baseline
        assert_eq!(w.baseline(), Some(-0.25));
        assert!(w.check(-0.2501).unwrap() < 0.01); // tiny drift passes
        let e = w.check(-0.30).unwrap_err(); // 20% drift trips
        assert!(e.drift > 0.01 && e.tolerance == 0.01);
        assert!(e.to_string().contains("energy drift"));
    }

    #[test]
    fn watchdog_pinned_scale() {
        // cosmological runs: E_total ≈ 0, so drift is measured against
        // a pinned scale (initial kinetic energy), not |baseline|
        let mut w = EnergyWatchdog::new(0.05).with_scale(1.0);
        w.check(1e-9).unwrap();
        assert!(w.check(0.04).is_ok());
        assert!(w.check(0.06).is_err());
    }

    #[test]
    fn watchdog_trips_on_non_finite_energy() {
        let mut w = EnergyWatchdog::new(0.5);
        assert!(w.check(f64::NAN).is_err());

        let mut w = EnergyWatchdog::new(0.5);
        w.check(1.0).unwrap();
        assert!(w.check(f64::NAN).is_err());
        assert!(w.check(f64::INFINITY).is_err());
    }
}
