//! Clustering statistics: the two-point correlation function ξ(r) and
//! radial density profiles.
//!
//! Figure 4 of the paper shows clustering qualitatively; ξ(r) is the
//! standard quantitative companion — it vanishes for an unclustered
//! (uniform) particle load and rises steeply at small separations as
//! structure forms, which is how the reproduction's E7 run demonstrates
//! that the z = 0 state is genuinely clustered rather than noisy.

use g5util::vec3::Vec3;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Parameters of the ξ(r) estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationConfig {
    /// Smallest separation bin edge.
    pub r_min: f64,
    /// Largest separation bin edge.
    pub r_max: f64,
    /// Number of logarithmic bins.
    pub bins: usize,
    /// Subsample the catalog to at most this many particles (pair
    /// counting is O(N²)).
    pub max_particles: usize,
    /// RNG seed for the subsample and the random catalog.
    pub seed: u64,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig { r_min: 1e-3, r_max: 1.0, bins: 12, max_particles: 4000, seed: 1 }
    }
}

/// One ξ(r) bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrBin {
    /// Geometric bin center.
    pub r: f64,
    /// Natural-estimator correlation `DD/⟨RR⟩ − 1` against the analytic
    /// uniform-ball expectation.
    pub xi: f64,
    /// Data–data pair count.
    pub dd: u64,
    /// Expected uniform pair count in this bin.
    pub rr_expected: f64,
}

/// CDF of pair separations in a uniform ball of radius `r_ball`:
/// `P(s) = (s/R)³ − (9/16)(s/R)⁴ + (1/32)(s/R)⁶`, clamped at 1 for
/// `s ≥ 2R`.
fn uniform_ball_pair_cdf(s: f64, r_ball: f64) -> f64 {
    let x = (s / r_ball).clamp(0.0, 2.0);
    (x.powi(3) - 9.0 / 16.0 * x.powi(4) + x.powi(6) / 32.0).min(1.0)
}

/// Estimate ξ(r) of a particle set against the *analytic* expectation
/// for a uniform ball covering the data (no random-catalog shot noise —
/// essential in the small-r bins where a same-size random catalog would
/// have no pairs at all).
pub fn two_point_correlation(pos: &[Vec3], cfg: &CorrelationConfig) -> Vec<CorrBin> {
    assert!(pos.len() >= 2, "need at least two particles");
    assert!(cfg.r_max > cfg.r_min && cfg.r_min > 0.0, "bad separation range");
    assert!(cfg.bins > 0, "zero bins");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed);

    // subsample data
    let data: Vec<Vec3> = if pos.len() <= cfg.max_particles {
        pos.to_vec()
    } else {
        let mut idx: Vec<usize> = (0..pos.len()).collect();
        for k in 0..cfg.max_particles {
            let j = rng.random_range(k..idx.len());
            idx.swap(k, j);
        }
        idx[..cfg.max_particles].iter().map(|&i| pos[i]).collect()
    };

    // bounding ball (centroid of the subsample, max radius)
    let center = data.iter().copied().sum::<Vec3>() / data.len() as f64;
    let radius = data.iter().map(|p| p.dist(center)).fold(0.0, f64::max).max(cfg.r_min);

    let dd = pair_histogram(&data, cfg);
    let n_pairs = (data.len() * (data.len() - 1) / 2) as f64;

    let log_min = cfg.r_min.ln();
    let log_step = (cfg.r_max / cfg.r_min).ln() / cfg.bins as f64;
    (0..cfg.bins)
        .map(|b| {
            let lo = (log_min + b as f64 * log_step).exp();
            let hi = (log_min + (b as f64 + 1.0) * log_step).exp();
            let r = (lo * hi).sqrt();
            let rr_expected =
                n_pairs * (uniform_ball_pair_cdf(hi, radius) - uniform_ball_pair_cdf(lo, radius));
            let xi = if rr_expected <= 0.0 { f64::NAN } else { dd[b] as f64 / rr_expected - 1.0 };
            CorrBin { r, xi, dd: dd[b], rr_expected }
        })
        .collect()
}

/// Log-binned pair-separation histogram (unique pairs).
fn pair_histogram(pts: &[Vec3], cfg: &CorrelationConfig) -> Vec<u64> {
    let log_min = cfg.r_min.ln();
    let inv_step = cfg.bins as f64 / (cfg.r_max / cfg.r_min).ln();
    let r2_min = cfg.r_min * cfg.r_min;
    let r2_max = cfg.r_max * cfg.r_max;
    pts.par_iter()
        .enumerate()
        .map(|(i, &a)| {
            let mut local = vec![0u64; cfg.bins];
            for &b in &pts[i + 1..] {
                let r2 = a.dist2(b);
                if r2 < r2_min || r2 >= r2_max {
                    continue;
                }
                let bin = ((0.5 * r2.ln() - log_min) * inv_step) as usize;
                local[bin.min(cfg.bins - 1)] += 1;
            }
            local
        })
        .reduce(
            || vec![0u64; cfg.bins],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Radial mass-density profile about `center`: `bins` equal-width
/// shells out to `r_max`, returning `(shell center, density)` pairs.
pub fn radial_density_profile(
    pos: &[Vec3],
    mass: &[f64],
    center: Vec3,
    r_max: f64,
    bins: usize,
) -> Vec<(f64, f64)> {
    assert_eq!(pos.len(), mass.len(), "position/mass length mismatch");
    assert!(r_max > 0.0 && bins > 0, "bad profile parameters");
    let mut shell_mass = vec![0.0f64; bins];
    let width = r_max / bins as f64;
    for (p, &m) in pos.iter().zip(mass) {
        let r = p.dist(center);
        if r < r_max {
            shell_mass[(r / width) as usize] += m;
        }
    }
    (0..bins)
        .map(|b| {
            let r_lo = b as f64 * width;
            let r_hi = r_lo + width;
            let vol = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
            (r_lo + 0.5 * width, shell_mass[b] / vol)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use g5ic::{plummer_sphere, uniform_sphere};

    #[test]
    fn uniform_sphere_has_near_zero_xi() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let s = uniform_sphere(3000, 1.0, 0.0, &mut rng);
        let cfg = CorrelationConfig { r_min: 0.05, r_max: 0.8, bins: 8, ..Default::default() };
        let xi = two_point_correlation(&s.pos, &cfg);
        for b in &xi {
            assert!(b.xi.abs() < 0.25, "uniform xi({:.2}) = {}", b.r, b.xi);
        }
    }

    #[test]
    fn clustered_model_has_positive_small_scale_xi() {
        // a centrally concentrated Plummer sphere is strongly
        // "clustered" relative to a uniform ball of its own extent
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let s = plummer_sphere(3000, &mut rng);
        let cfg = CorrelationConfig { r_min: 0.02, r_max: 2.0, bins: 10, ..Default::default() };
        let xi = two_point_correlation(&s.pos, &cfg);
        assert!(xi[0].xi > 3.0, "small-scale xi = {}", xi[0].xi);
        // and xi declines outward
        let first = xi.iter().find(|b| b.xi.is_finite()).unwrap().xi;
        let last = xi.iter().rev().find(|b| b.xi.is_finite()).unwrap().xi;
        assert!(first > last);
    }

    #[test]
    fn subsampling_keeps_estimate_usable() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let s = plummer_sphere(8000, &mut rng);
        let cfg =
            CorrelationConfig { r_min: 0.05, r_max: 1.0, bins: 6, max_particles: 1000, seed: 9 };
        let xi = two_point_correlation(&s.pos, &cfg);
        assert_eq!(xi.len(), 6);
        assert!(xi[0].xi > 1.0);
    }

    #[test]
    fn radial_profile_of_uniform_sphere_is_flat() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let s = uniform_sphere(40_000, 1.0, 0.0, &mut rng);
        let prof = radial_density_profile(&s.pos, &s.mass, Vec3::ZERO, 1.0, 5);
        let rho0 = 1.0 / (4.0 / 3.0 * std::f64::consts::PI);
        // skip the innermost shell (few particles, noisy)
        for &(r, rho) in &prof[1..4] {
            assert!((rho - rho0).abs() / rho0 < 0.1, "rho({r:.2}) = {rho} vs {rho0}");
        }
    }

    #[test]
    fn plummer_profile_declines() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let s = plummer_sphere(20_000, &mut rng);
        let prof = radial_density_profile(&s.pos, &s.mass, Vec3::ZERO, 3.0, 6);
        assert!(prof[0].1 > 10.0 * prof[5].1, "profile must fall steeply");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn correlation_needs_pairs() {
        two_point_correlation(&[Vec3::ZERO], &CorrelationConfig::default());
    }
}
