//! Compact binary snapshot I/O.
//!
//! Format `G5SNAP1\n`: magic, little-endian `u64` particle count and
//! `f64` simulation time, then positions, velocities and masses as
//! contiguous `f64` arrays. Simple, versioned, endian-explicit — enough
//! for checkpointing the experiment runs without an external
//! serialization dependency.

use g5ic::Snapshot;
use g5util::vec3::Vec3;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"G5SNAP1\n";

/// Save a snapshot and its simulation time.
pub fn save(path: &Path, snap: &Snapshot, time: f64) -> io::Result<()> {
    snap.validate();
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(snap.len() as u64).to_le_bytes())?;
    w.write_all(&time.to_le_bytes())?;
    for p in &snap.pos {
        write_vec3(&mut w, *p)?;
    }
    for v in &snap.vel {
        write_vec3(&mut w, *v)?;
    }
    for &m in &snap.mass {
        w.write_all(&m.to_le_bytes())?;
    }
    w.flush()
}

/// Load a snapshot; returns `(snapshot, time)`.
pub fn load(path: &Path) -> io::Result<(Snapshot, f64)> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad snapshot magic"));
    }
    let n = read_u64(&mut r)? as usize;
    let time = read_f64(&mut r)?;
    // sanity bound: refuse absurd counts rather than OOM on a bad file
    if n == 0 || n > 1 << 31 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible particle count"));
    }
    let mut snap = Snapshot {
        pos: Vec::with_capacity(n),
        vel: Vec::with_capacity(n),
        mass: Vec::with_capacity(n),
    };
    for _ in 0..n {
        snap.pos.push(read_vec3(&mut r)?);
    }
    for _ in 0..n {
        snap.vel.push(read_vec3(&mut r)?);
    }
    for _ in 0..n {
        snap.mass.push(read_f64(&mut r)?);
    }
    Ok((snap, time))
}

fn write_vec3<W: Write>(w: &mut W, v: Vec3) -> io::Result<()> {
    w.write_all(&v.x.to_le_bytes())?;
    w.write_all(&v.y.to_le_bytes())?;
    w.write_all(&v.z.to_le_bytes())
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_vec3<R: Read>(r: &mut R) -> io::Result<Vec3> {
    Ok(Vec3::new(read_f64(r)?, read_f64(r)?, read_f64(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("g5snap_test_{}_{name}", std::process::id()))
    }

    fn sample() -> Snapshot {
        Snapshot {
            pos: vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(-0.5, 0.0, 9.9)],
            vel: vec![Vec3::new(0.1, 0.2, 0.3), Vec3::ZERO],
            mass: vec![0.25, 0.75],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let path = tmp("roundtrip");
        let snap = sample();
        save(&path, &snap, 12.5).unwrap();
        let (back, time) = load(&path).unwrap();
        assert_eq!(back.pos, snap.pos);
        assert_eq!(back.vel, snap.vel);
        assert_eq!(back.mass, snap.mass);
        assert_eq!(time, 12.5);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTASNAPxxxxxxxxxxxxxxxx").unwrap();
        let err = load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("truncated");
        let snap = sample();
        save(&path, &snap, 0.0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn implausible_count_rejected() {
        let path = tmp("hugecount");
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&u64::MAX.to_le_bytes());
        data.extend_from_slice(&0.0f64.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }
}
