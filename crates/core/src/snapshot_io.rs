//! Compact binary snapshot I/O.
//!
//! Format `G5SNAP2\n`: magic, little-endian `u64` particle count and
//! `f64` simulation time, positions, velocities and masses as
//! contiguous `f64` arrays, then a CRC32 (IEEE) footer over everything
//! after the magic. Simple, versioned, endian-explicit — enough for
//! checkpointing the experiment runs without an external serialization
//! dependency, and self-validating: a truncated or bit-rotted
//! checkpoint is rejected at load instead of resuming a run from
//! garbage. The previous `G5SNAP1\n` format (no footer) is still
//! readable.

use g5ic::Snapshot;
use g5util::vec3::Vec3;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC_V1: &[u8; 8] = b"G5SNAP1\n";
const MAGIC_V2: &[u8; 8] = b"G5SNAP2\n";

// ----------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320)
// ----------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC32 (IEEE) — the checksum in `G5SNAP2` footers.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Fold `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = CRC_TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }

    /// One-shot checksum of a byte slice.
    pub fn of(bytes: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(bytes);
        c.finish()
    }
}

/// Writer adapter that checksums everything passing through.
struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reader adapter that checksums everything passing through.
struct CrcReader<R: Read> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

// ----------------------------------------------------------------------
// Save / load
// ----------------------------------------------------------------------

/// Save a snapshot and its simulation time (current `G5SNAP2` format,
/// with CRC32 footer).
pub fn save(path: &Path, snap: &Snapshot, time: f64) -> io::Result<()> {
    snap.validate();
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC_V2)?;
    let mut w = CrcWriter { inner: w, crc: Crc32::new() };
    w.write_all(&(snap.len() as u64).to_le_bytes())?;
    w.write_all(&time.to_le_bytes())?;
    for p in &snap.pos {
        write_vec3(&mut w, *p)?;
    }
    for v in &snap.vel {
        write_vec3(&mut w, *v)?;
    }
    for &m in &snap.mass {
        w.write_all(&m.to_le_bytes())?;
    }
    let crc = w.crc.finish();
    let mut inner = w.inner;
    inner.write_all(&crc.to_le_bytes())?;
    inner.flush()
}

/// Load a snapshot; returns `(snapshot, time)`. Reads both `G5SNAP2`
/// (verifying the CRC32 footer) and the legacy unchecksummed
/// `G5SNAP1`.
pub fn load(path: &Path) -> io::Result<(Snapshot, f64)> {
    let mut file = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    let checksummed = match &magic {
        m if m == MAGIC_V2 => true,
        m if m == MAGIC_V1 => false,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad snapshot magic")),
    };
    let mut r = CrcReader { inner: file, crc: Crc32::new() };
    let n = read_u64(&mut r)? as usize;
    let time = read_f64(&mut r)?;
    // sanity bound: refuse absurd counts rather than OOM on a bad file
    if n == 0 || n > 1 << 31 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible particle count"));
    }
    let mut snap = Snapshot {
        pos: Vec::with_capacity(n),
        vel: Vec::with_capacity(n),
        mass: Vec::with_capacity(n),
    };
    for _ in 0..n {
        snap.pos.push(read_vec3(&mut r)?);
    }
    for _ in 0..n {
        snap.vel.push(read_vec3(&mut r)?);
    }
    for _ in 0..n {
        snap.mass.push(read_f64(&mut r)?);
    }
    if checksummed {
        let computed = r.crc.finish();
        let mut footer = [0u8; 4];
        r.inner.read_exact(&mut footer)?;
        if computed != u32::from_le_bytes(footer) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot checksum mismatch (truncated or corrupted file)",
            ));
        }
    }
    Ok((snap, time))
}

fn write_vec3<W: Write>(w: &mut W, v: Vec3) -> io::Result<()> {
    w.write_all(&v.x.to_le_bytes())?;
    w.write_all(&v.y.to_le_bytes())?;
    w.write_all(&v.z.to_le_bytes())
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_vec3<R: Read>(r: &mut R) -> io::Result<Vec3> {
    Ok(Vec3::new(read_f64(r)?, read_f64(r)?, read_f64(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("g5snap_test_{}_{name}", std::process::id()))
    }

    fn sample() -> Snapshot {
        Snapshot {
            pos: vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(-0.5, 0.0, 9.9)],
            vel: vec![Vec3::new(0.1, 0.2, 0.3), Vec3::ZERO],
            mass: vec![0.25, 0.75],
        }
    }

    #[test]
    fn crc32_known_vector() {
        // the classic IEEE test vector
        assert_eq!(Crc32::of(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::of(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let path = tmp("roundtrip");
        let snap = sample();
        save(&path, &snap, 12.5).unwrap();
        let (back, time) = load(&path).unwrap();
        assert_eq!(back.pos, snap.pos);
        assert_eq!(back.vel, snap.vel);
        assert_eq!(back.mass, snap.mass);
        assert_eq!(time, 12.5);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_v1_still_loads() {
        // hand-write the old unchecksummed format
        let path = tmp("legacy");
        let snap = sample();
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC_V1);
        data.extend_from_slice(&(snap.len() as u64).to_le_bytes());
        data.extend_from_slice(&3.25f64.to_le_bytes());
        for p in snap.pos.iter().chain(&snap.vel) {
            for c in [p.x, p.y, p.z] {
                data.extend_from_slice(&c.to_le_bytes());
            }
        }
        for &m in &snap.mass {
            data.extend_from_slice(&m.to_le_bytes());
        }
        std::fs::write(&path, &data).unwrap();
        let (back, time) = load(&path).unwrap();
        assert_eq!(back.pos, snap.pos);
        assert_eq!(time, 3.25);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTASNAPxxxxxxxxxxxxxxxx").unwrap();
        let err = load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("truncated");
        let snap = sample();
        save(&path, &snap, 0.0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn every_single_flipped_bit_is_caught() {
        // corrupt each byte of the payload in turn: the CRC must catch
        // all of them (bit-rot round trip)
        let path = tmp("bitrot");
        let snap = sample();
        save(&path, &snap, 7.0).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for i in 8..clean.len() - 4 {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            let res = load(&path);
            assert!(res.is_err(), "flipped byte {i} loaded successfully");
        }
        // and the pristine file still loads
        std::fs::write(&path, &clean).unwrap();
        load(&path).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn implausible_count_rejected() {
        let path = tmp("hugecount");
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC_V2);
        data.extend_from_slice(&u64::MAX.to_le_bytes());
        data.extend_from_slice(&0.0f64.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }
}
