//! The cluster backend: K domain-decomposed trees over K pooled
//! GRAPE-5 devices.
//!
//! This is the PC-GRAPE cluster configuration of the GRAPE-6A follow-up
//! work, folded into one process: the snapshot is partitioned into K
//! Morton-contiguous domains ([`g5tree::domain`]), each domain builds a
//! local octree and streams its group lists into its *own* simulated
//! device. Remote mass enters as a local-essential-tree exchange
//! resolved **per group**: while a group's local list streams, the
//! group's bounding sphere walks every remote shard's tree with the
//! same MAC ([`g5tree::domain::let_terms_into`]) and the accepted cell
//! monopoles / opened bodies are appended to that group's j-list. The
//! remote terms a group sees are therefore the terms the monolithic
//! tree would have put on its list — not a coarse whole-domain import,
//! which for adjacent Morton slices degenerates to opening essentially
//! every remote body. Shards evaluate concurrently in scoped threads;
//! on real hardware each shard is a PC+GRAPE pair, so the cluster's
//! critical path is the *slowest* shard, which is what the
//! `exp_cluster` harness reports.
//!
//! ## Equivalences and error bounds
//!
//! * **K = 1 is bit-identical to [`TreeGrape`]**: the single-shard
//!   decomposition is the identity permutation, the local tree is the
//!   tree `TreeGrape` would build, the device session opens over the
//!   same position window, and there are no remote trees to walk — so
//!   the same device calls happen in the same order on the same words.
//! * **K > 1 stays at treecode accuracy**: every imported term was
//!   accepted by the same MAC against the receiving *group's* drift-
//!   inflated sphere — the exact acceptance test the monolithic
//!   traversal applies to its own distant cells (see
//!   [`g5tree::domain`] for the soundness argument).
//!
//! ## Shard loss
//!
//! Per-board faults inside a shard are absorbed by the existing
//! [`DeviceSession`] retry/quarantine machinery. When a shard's device
//! is exhausted entirely (all boards quarantined), the backend marks
//! the shard dead, throws away the decomposition, and re-decomposes
//! the snapshot over the survivors — forces still come out of the same
//! `try_compute` call, one shard poorer. `tree_age` restarts at 1 on
//! every re-decomposition, so a drift bound accumulated against the old
//! shard boundaries can never survive into the new ones.

use crate::backends::{ForceBackend, ForceError, ForceSet, TreeGrapeConfig};
use crate::checkpoint::ClusterLifecycle;
use crate::perf::PhaseTimers;
use g5tree::domain::{let_terms_into, Decomposition};
use g5tree::mac::Mac;
use g5tree::plan::{self, PlanPool};
use g5tree::traverse::{Group, Traversal, TraverseScratch};
use g5tree::tree::Tree;
use g5util::counters::InteractionTally;
use g5util::vec3::Vec3;
use grape5::{
    ClockAccounting, ClusterSession, DeviceError, DeviceSession, FaultConfig, Grape5, ProbeOutcome,
    RecoveryStats, ShardHealth,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The shard lifecycle supervisor's knobs. The default turns both
/// mechanisms **off**, which keeps the backend's device-call sequence
/// bit-identical to a supervisor-less run — self-healing is opt-in.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifecyclePolicy {
    /// Re-probe dead shards and quarantined hardware every this many
    /// evaluations (`0` = never probe). A passing probe re-admits the
    /// hardware and triggers a capacity-weighted re-decomposition.
    pub probe_interval: u64,
    /// Straggler deadline: a shard whose *modeled* device time for one
    /// evaluation exceeds `factor × median` is declared Degraded and
    /// its groups re-execute on the fastest survivor within the same
    /// `try_compute`. `None` = no deadline. Deadlines compare modeled
    /// clock only, never host wall-clock, so firing is deterministic.
    pub straggler_factor: Option<f64>,
}

/// Configuration of the [`ClusterTreeGrape`] backend: the single-device
/// operating point plus the shard count.
#[derive(Debug, Clone, Copy)]
pub struct ClusterTreeGrapeConfig {
    /// Per-shard treecode + device parameters (θ, n_crit, ε, hardware,
    /// streaming plan, retry policy, refresh policy). Every shard runs
    /// an identical device.
    pub base: TreeGrapeConfig,
    /// Number of domain shards (= devices) to open.
    pub shards: usize,
    /// Shard lifecycle supervision (probing + straggler deadlines).
    pub lifecycle: LifecyclePolicy,
    /// Overlapped step pipeline: resolve each group's LET terms on the
    /// plan's *producer* side (inside the bounded-channel stream), so
    /// remote-tree walks for group k+1 overlap the device evaluation of
    /// group k instead of serializing in front of every device call.
    /// Off (the default) keeps the phase-barrier reference path:
    /// consumer-side LET resolution, serial modeled-clock pricing. The
    /// two paths make identical device calls on identical words, so
    /// forces, tallies, and recorded hardware counters are bit-identical
    /// either way (see the `overlapped_*` tests).
    pub overlap: bool,
}

impl ClusterTreeGrapeConfig {
    /// The paper's operating point on `shards` paper-configured
    /// devices, supervisor off, phase-barrier reference pipeline.
    pub fn paper(eps: f64, shards: usize) -> Self {
        ClusterTreeGrapeConfig {
            base: TreeGrapeConfig::paper(eps),
            shards,
            lifecycle: LifecyclePolicy::default(),
            overlap: false,
        }
    }

    /// The paper's operating point with the overlapped step pipeline:
    /// producer-side LET resolution plus double-buffered j-memory loads
    /// ([`grape5::Grape5Config::double_buffer_j`]) on the modeled
    /// device clock. Recorded hardware counters stay bit-identical to
    /// [`ClusterTreeGrapeConfig::paper`]; only host scheduling and the
    /// modeled pricing of j-load transfer change.
    pub fn paper_overlapped(eps: f64, shards: usize) -> Self {
        let mut cfg = Self::paper(eps, shards);
        cfg.overlap = true;
        cfg.base.grape.double_buffer_j = true;
        cfg
    }
}

/// Ordered record of every recovery-relevant event of a cluster run —
/// kills, quarantines, probes, re-admissions, stragglers,
/// re-decompositions — for post-mortem and for determinism checks (two
/// runs of the same seeded schedule must produce identical ledgers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryLedger {
    events: Vec<String>,
}

impl RecoveryLedger {
    fn record(&mut self, eval: u64, msg: impl AsRef<str>) {
        self.events.push(format!("eval {eval}: {}", msg.as_ref()));
    }

    /// The events, oldest first, as `"eval N: <what happened>"` lines.
    pub fn events(&self) -> &[String] {
        &self.events
    }
}

/// Everything one shard owns between evaluations: its gathered
/// particles, local tree, group partition, streaming pool, and
/// last-evaluation timers.
struct ShardState {
    pos: Vec<Vec3>,
    mass: Vec<f64>,
    tree: Option<Tree>,
    groups: Vec<Group>,
    gscratch: TraverseScratch,
    pool: PlanPool,
    timers: PhaseTimers,
    /// Dense per-shard force output, recycled across evaluations so a
    /// steady-state step allocates no result buffers (at flagship scale
    /// that is K shard-sized accelerations + potentials per step).
    acc: Vec<Vec3>,
    pot: Vec<f64>,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState {
            pos: Vec::new(),
            mass: Vec::new(),
            tree: None,
            groups: Vec::new(),
            gscratch: TraverseScratch::default(),
            pool: PlanPool::new(),
            timers: PhaseTimers::default(),
            acc: Vec::new(),
            pot: Vec::new(),
        }
    }
}

/// What one shard's evaluation thread hands back to the assembler.
struct ShardOutcome {
    slot: usize,
    acc: Vec<Vec3>,
    pot: Vec<f64>,
    tally: InteractionTally,
    produce_s: f64,
    device_s: f64,
    /// Wall seconds this shard spent walking *remote* trees — the
    /// in-line LET exchange cost.
    exchange_s: f64,
    consumer_blocked_s: f64,
    wall_s: f64,
    recovery: RecoveryStats,
    err: Option<ForceError>,
}

impl ShardOutcome {
    /// Outcome synthesized when a shard's evaluation thread panicked:
    /// no usable forces, a typed [`ForceError::ShardPanic`] that the
    /// assembler classifies shard-fatal (kill + re-decompose), exactly
    /// like a dead device.
    fn panicked(slot: usize, payload: Box<dyn std::any::Any + Send>) -> ShardOutcome {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        ShardOutcome {
            slot,
            acc: Vec::new(),
            pot: Vec::new(),
            tally: InteractionTally::default(),
            produce_s: 0.0,
            device_s: 0.0,
            exchange_s: 0.0,
            consumer_blocked_s: 0.0,
            wall_s: 0.0,
            recovery: RecoveryStats::default(),
            err: Some(ForceError::ShardPanic(msg)),
        }
    }
}

/// Barnes' modified treecode, domain-decomposed over a pool of
/// GRAPE-5 devices — one local tree and one device per shard, remote
/// mass imported at MAC accuracy, whole-shard loss recovered by
/// re-decomposition over the survivors.
pub struct ClusterTreeGrape {
    /// Operating parameters.
    pub cfg: ClusterTreeGrapeConfig,
    cluster: ClusterSession,
    recovery: RecoveryStats,
    /// Current partition, or `None` when the next evaluation must
    /// re-decompose (fresh backend, snapshot size change, shard death).
    decomp: Option<Decomposition>,
    /// Shard slots the current decomposition's domains map to,
    /// ascending: domain `d` lives on slot `live[d]`.
    live: Vec<usize>,
    shards_state: Vec<ShardState>,
    /// Evaluations served by the current decomposition's trees (1 right
    /// after a (re)build, counting up between rebuilds).
    tree_age: u32,
    /// Evaluations completed — the supervisor's probe/deadline clock.
    evals: u64,
    /// Measured per-slot throughput (interactions per modeled device
    /// second), `0.0` until a slot has served an evaluation. Feeds the
    /// capacity weights of the next re-decomposition.
    measured_rate: Vec<f64>,
    /// Per-slot modeled-clock snapshot `(interactions, total seconds)`
    /// at the end of the previous evaluation, for per-eval deltas.
    prev_clock: Vec<(u64, f64)>,
    /// Cut weights of the decomposition currently in force (domain
    /// order) — checkpointed so a resume replays the same cuts.
    cut_weights: Vec<u64>,
    /// Per-slot recovery totals (cluster-wide summary = their merge).
    shard_recovery: Vec<RecoveryStats>,
    ledger: RecoveryLedger,
    /// Morton order of the *previous* decomposition's sort — the warm
    /// start for the next re-sort ([`g5util::morton_sort`]'s
    /// incremental path). Falls back to a from-scratch sort whenever
    /// the snapshot size changes; either way the resulting order is
    /// bitwise the from-scratch order, so cuts are hint-independent.
    order_hint: Option<Vec<u32>>,
    /// Cut weights a checkpoint restore pinned for the replay
    /// evaluation, consumed by the first rebuild after the restore.
    replay_weights: Option<Vec<u64>>,
    /// True during the resume-recompute evaluation: the supervisor
    /// stands down (no eval counting, probes, rate updates, straggler
    /// re-execution, or ledger writes) so the replayed evaluation makes
    /// exactly the device calls the interrupted one made.
    replaying: bool,
    /// Test hook: slots whose next evaluation thread panics on entry —
    /// the deterministic drill for the panic-containment path.
    #[cfg(test)]
    panic_next_eval: Vec<usize>,
}

impl ClusterTreeGrape {
    /// Open `cfg.shards` simulated devices.
    ///
    /// Panics on a zero shard count, or unless
    /// `tree_config.leaf_capacity <= n_crit` (a leaf larger than
    /// `n_crit` cannot be split into groups).
    pub fn new(cfg: ClusterTreeGrapeConfig) -> Self {
        assert!(cfg.shards >= 1, "cluster needs at least one shard");
        assert!(
            cfg.base.tree_config.leaf_capacity <= cfg.base.n_crit,
            "leaf_capacity {} > n_crit {}: groups could not honor n_crit",
            cfg.base.tree_config.leaf_capacity,
            cfg.base.n_crit
        );
        assert!(cfg.base.refresh.interval >= 1, "refresh interval must be positive");
        let cluster = ClusterSession::open(cfg.base.grape, cfg.shards);
        let shards_state = (0..cfg.shards).map(|_| ShardState::new()).collect();
        ClusterTreeGrape {
            cfg,
            cluster,
            recovery: RecoveryStats::default(),
            decomp: None,
            live: Vec::new(),
            shards_state,
            tree_age: 0,
            evals: 0,
            measured_rate: vec![0.0; cfg.shards],
            prev_clock: vec![(0, 0.0); cfg.shards],
            cut_weights: Vec::new(),
            shard_recovery: vec![RecoveryStats::default(); cfg.shards],
            ledger: RecoveryLedger::default(),
            order_hint: None,
            replay_weights: None,
            replaying: false,
            #[cfg(test)]
            panic_next_eval: Vec::new(),
        }
    }

    /// Total shard slots (alive + dead).
    pub fn shards(&self) -> usize {
        self.cluster.shards()
    }

    /// Shards still alive.
    pub fn alive_shards(&self) -> usize {
        self.cluster.alive()
    }

    /// Evaluations served by the current decomposition (0 before the
    /// first, reset to 1 by every rebuild — including the forced
    /// rebuild after a shard boundary change).
    pub fn tree_age(&self) -> u32 {
        self.tree_age
    }

    /// The current partition, if one is live.
    pub fn decomposition(&self) -> Option<&Decomposition> {
        self.decomp.as_ref()
    }

    /// Kill shard `k` by hand (the test/fault-drill entry point — in
    /// anger, shard death is detected from device errors). Invalidates
    /// the decomposition so the next evaluation re-decomposes over the
    /// survivors.
    pub fn kill_shard(&mut self, k: usize) {
        let prior = self.cluster.kill(k);
        if prior.is_some_and(|h| h.in_service()) && !self.replaying {
            self.ledger.record(self.evals, format!("shard {k} killed by operator"));
        }
        self.decomp = None;
        self.live.clear();
    }

    /// Lifecycle state of shard `k` (`None` out of range).
    pub fn shard_health(&self, k: usize) -> Option<ShardHealth> {
        self.cluster.health(k)
    }

    /// Lifecycle state of every slot.
    pub fn shard_healths(&self) -> Vec<ShardHealth> {
        self.cluster.healths()
    }

    /// The recovery ledger so far.
    pub fn ledger(&self) -> &RecoveryLedger {
        &self.ledger
    }

    /// Evaluations completed (the supervisor's clock).
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Per-slot recovery totals, `(slot, stats)` for slots with any
    /// recovery activity.
    pub fn shard_recovery_stats(&self) -> Vec<(usize, RecoveryStats)> {
        self.shard_recovery
            .iter()
            .enumerate()
            .filter(|(_, r)| **r != RecoveryStats::default())
            .map(|(k, r)| (k, *r))
            .collect()
    }

    /// Cluster-wide recovery summary: every slot's stats merged.
    pub fn cluster_recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Repair shard `k`'s persistent faults (stuck pipe, board
    /// dropout) — the chaos harness's "technician swaps the card"
    /// event. The hardware stays quarantined until a probe re-tests it.
    pub fn clear_persistent_faults(&mut self, k: usize) {
        self.cluster.device_mut(k).clear_persistent_faults();
    }

    /// Arm shard `k`'s fault injector.
    pub fn set_fault_injector(&mut self, k: usize, fault: FaultConfig) {
        self.cluster.set_fault_injector(k, fault);
    }

    /// Arm every shard's injector from one base configuration with
    /// per-shard derived seeds ([`FaultConfig::for_shard`]).
    pub fn set_fault_injectors(&mut self, base: FaultConfig) {
        self.cluster.set_fault_injectors(base);
    }

    /// Serialized fault-injector state per alive shard — the payload a
    /// cluster checkpoint manifest records.
    pub fn fault_states(&self) -> Vec<(usize, Vec<u64>)> {
        self.cluster.fault_states()
    }

    /// Restore shard `k`'s fault-injector state (the injector must be
    /// armed first).
    pub fn restore_fault_state(&mut self, k: usize, words: &[u64]) -> Result<(), DeviceError> {
        self.cluster.restore_fault_state(k, words)
    }

    /// Clock accounting of shard `k` alone — the critical-path metric
    /// (max over shards) is derived from these.
    pub fn shard_accounting(&self, k: usize) -> ClockAccounting {
        self.cluster.shard_accounting(k)
    }

    /// Reset every shard's clock accounting.
    pub fn reset_accounting(&mut self) {
        self.cluster.reset_accounting();
    }

    /// Last evaluation's per-shard timers, as `(slot, timers)` over the
    /// shards that took part.
    pub fn shard_timers(&self) -> Vec<(usize, PhaseTimers)> {
        self.live.iter().map(|&k| (k, self.shards_state[k].timers)).collect()
    }

    /// Bring every live shard's tree up to date: refresh the frozen
    /// trees when the policy allows, (re)decompose and rebuild
    /// otherwise. Returns `(decompose_s, build_s, refresh_s)`.
    fn ensure_decomposition(
        &mut self,
        pos: &[Vec3],
        mass: &[f64],
        tr: &Traversal,
    ) -> (f64, f64, f64) {
        let alive: Vec<usize> =
            (0..self.cluster.shards()).filter(|&k| self.cluster.is_alive(k)).collect();
        let mut refresh_s = 0.0;
        let reusable =
            self.decomp.as_ref().is_some_and(|d| d.total() == pos.len() && self.live == alive)
                && self.tree_age < self.cfg.base.refresh.interval;
        if reusable {
            let decomp = self.decomp.as_ref().expect("reusable implies a decomposition");
            let limit_frac = self.cfg.base.refresh.max_drift_frac;
            let mut ok = true;
            for (d, &k) in self.live.iter().enumerate() {
                let st = &mut self.shards_state[k];
                let t0 = Instant::now();
                decomp.gather(d, pos, mass, &mut st.pos, &mut st.mass);
                let tree = st.tree.as_mut().expect("live shard has a tree");
                let drift = tree.refresh(&st.pos, &st.mass);
                let dt = t0.elapsed().as_secs_f64();
                st.timers = PhaseTimers { refresh_s: dt, ..PhaseTimers::default() };
                refresh_s += dt;
                // each shard's root half-width is its own length scale
                if drift > limit_frac * tree.nodes()[0].half {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.tree_age += 1;
                return (0.0, 0.0, refresh_s);
            }
            // some shard blew the drift valve: the refresh work is
            // discarded and this evaluation pays for a rebuild instead
        }

        let t0 = Instant::now();
        // A checkpoint restore pins the interrupted run's cut weights
        // for the replay evaluation; otherwise weigh by capacity.
        let weights = match self.replay_weights.take() {
            Some(w) if w.len() == alive.len() => w,
            _ => self.capacity_weights(&alive),
        };
        // Incremental Morton maintenance: between refreshes most
        // particles keep their rank, so re-sorting only the drifted
        // runs against the previous order's backbone beats a full sort.
        // The merged order is bitwise the from-scratch order ((code,
        // index) keys are unique), so the cuts are hint-independent.
        let (decomp, order) =
            Decomposition::morton_weighted_hinted(pos, &weights, self.order_hint.as_deref());
        self.order_hint = Some(order);
        let decompose_s = t0.elapsed().as_secs_f64();
        // Routine same-membership, same-weights rebuilds (tree aging)
        // are not recovery events; membership or weight changes are.
        if !self.replaying && (self.live != alive || self.cut_weights != weights) {
            self.ledger.record(
                self.evals,
                format!("decomposed over {} shards {alive:?}, weights {weights:?}", alive.len()),
            );
        }
        self.cut_weights = weights;
        let mut build_s = 0.0;
        for (d, &k) in alive.iter().enumerate() {
            let st = &mut self.shards_state[k];
            let t1 = Instant::now();
            decomp.gather(d, pos, mass, &mut st.pos, &mut st.mass);
            // the retiring tree's order seeds the rebuild's sort; a
            // membership change (re-decomposition) mismatches lengths
            // and falls back to the from-scratch sort automatically
            let prev = st.tree.take();
            let tree = Tree::build_with_hint(
                &st.pos,
                &st.mass,
                self.cfg.base.tree_config,
                prev.as_ref().map(|t| t.order()),
            );
            tr.find_groups_into(&tree, self.cfg.base.n_crit, &mut st.gscratch, &mut st.groups);
            st.tree = Some(tree);
            let dt = t1.elapsed().as_secs_f64();
            st.timers = PhaseTimers { build_s: dt, ..PhaseTimers::default() };
            build_s += dt;
        }
        self.decomp = Some(decomp);
        self.live = alive;
        // Fresh trees, zero drift: a drift bound accumulated against
        // the *old* shard boundaries must never price the new ones.
        self.tree_age = 1;
        (decompose_s, build_s + refresh_s, 0.0)
    }

    /// Cut weight of each serving slot: alive boards × a 1–8 throughput
    /// quantile from measured interactions/s. A healthy, unmeasured
    /// cluster (full boards, no rates yet) produces *equal* weights, so
    /// its cuts are bit-identical to the unweighted decomposition.
    fn capacity_weights(&self, alive: &[usize]) -> Vec<u64> {
        let max_rate = alive.iter().map(|&k| self.measured_rate[k]).fold(0.0_f64, f64::max);
        alive
            .iter()
            .map(|&k| {
                let boards = (self.cluster.device(k).active_boards() as u64).max(1);
                let rate = self.measured_rate[k];
                // Wide power-of-two bands: healthy measurement spread
                // (small shards differ by 10–30% in per-call overhead)
                // maps into ONE bucket, so a healthy cluster keeps
                // equal weights and its cuts stay bit-identical to the
                // unweighted split; only real slowdowns (≳ 2x) move
                // the cuts.
                let quantile = if max_rate > 0.0 && rate > 0.0 {
                    let r = rate / max_rate;
                    if r >= 0.6 {
                        8
                    } else if r >= 0.3 {
                        4
                    } else if r >= 0.15 {
                        2
                    } else {
                        1
                    }
                } else {
                    8
                };
                boards * quantile
            })
            .collect()
    }

    /// The supervisor's checkpointable state: shard healths, measured
    /// rates, the weights of the decomposition in force, the eval
    /// clock, and the recovery ledger.
    pub fn lifecycle_state(&self) -> ClusterLifecycle {
        ClusterLifecycle {
            evals: self.evals,
            // Probation is transient within a probe call; persist the
            // three durable states (Readmitted checkpoints as Degraded:
            // both are "serving, watched").
            healths: self
                .cluster
                .healths()
                .into_iter()
                .enumerate()
                .map(|(k, h)| {
                    let durable = match h {
                        ShardHealth::Probation | ShardHealth::Readmitted => ShardHealth::Degraded,
                        other => other,
                    };
                    (k, durable.code())
                })
                .collect(),
            rates: self
                .measured_rate
                .iter()
                .enumerate()
                .filter(|(_, r)| **r > 0.0)
                .map(|(k, r)| (k, r.to_bits()))
                .collect(),
            cut_weights: self.cut_weights.clone(),
            ledger: self.ledger.events.clone(),
        }
    }

    /// Restore the supervisor from a checkpoint and enter replay mode:
    /// the next evaluation (the resume's force recompute) re-creates
    /// the interrupted run's decomposition from the stored cut weights
    /// and makes no supervisor decisions of its own, so the resumed
    /// trajectory and ledger are bit-identical to the uninterrupted
    /// run's.
    pub fn restore_lifecycle(&mut self, lc: &ClusterLifecycle) {
        for &(k, code) in &lc.healths {
            if let Some(h) = ShardHealth::from_code(code) {
                self.cluster.set_health(k, h);
            }
        }
        for r in self.measured_rate.iter_mut() {
            *r = 0.0;
        }
        for &(k, bits) in &lc.rates {
            if k < self.measured_rate.len() {
                self.measured_rate[k] = f64::from_bits(bits);
            }
        }
        self.evals = lc.evals;
        self.ledger = RecoveryLedger { events: lc.ledger.clone() };
        self.replay_weights = (!lc.cut_weights.is_empty()).then(|| lc.cut_weights.clone());
        self.replaying = true;
        self.decomp = None;
        self.live.clear();
    }
}

/// One shard's full force evaluation: stream the local group lists into
/// the shard's device, appending each group's remote (LET) terms to its
/// j-list as it goes.
///
/// Remote mass is resolved per group: the group's drift-inflated sphere
/// walks every remote shard's tree with the force MAC, so the imported
/// terms are exactly the terms the monolithic traversal would have put
/// on this group's list. With no remote trees (K = 1) the group list
/// streams untouched.
///
/// Two schedules resolve those remote terms:
///
/// * **barrier** (`overlap == false`, the reference): the consumer
///   copies the local list into scratch and walks the remote trees in
///   front of every device call — LET resolution serializes with
///   device time.
/// * **overlapped** (`overlap == true`): the remote walk runs as a
///   [`plan::stream_with_augment`] producer hook, inside the bounded
///   channel — group k+1's LET terms resolve while the device
///   evaluates group k, and the consumer issues the device call
///   straight from the (already combined) `GroupWork` lists with no
///   copy. Terms append in the same fixed slot order, so the device
///   sees identical words in both schedules and forces, tallies, and
///   hardware counters are bit-identical.
///
/// `window_pos` is the **full** snapshot — every shard quantizes over
/// the same position window, which keeps K = 1 bit-identical to
/// [`TreeGrape`] and spares shards from re-ranging as particles
/// migrate between domains.
///
/// `acc_buf`/`pot_buf` are recycled dense output buffers (any length);
/// they come back through the outcome for reuse next evaluation.
#[allow(clippy::too_many_arguments)]
fn shard_eval(
    slot: usize,
    g5: &mut Grape5,
    st: &ShardState,
    remote: &[&Tree],
    window_pos: &[Vec3],
    cfg: &TreeGrapeConfig,
    overlap: bool,
    mut acc_buf: Vec<Vec3>,
    mut pot_buf: Vec<f64>,
) -> ShardOutcome {
    let t_all = Instant::now();
    let n = st.pos.len();
    acc_buf.clear();
    acc_buf.resize(n, Vec3::ZERO);
    pot_buf.clear();
    pot_buf.resize(n, 0.0);
    let mut out = ShardOutcome {
        slot,
        acc: acc_buf,
        pot: pot_buf,
        tally: InteractionTally::default(),
        produce_s: 0.0,
        device_s: 0.0,
        exchange_s: 0.0,
        consumer_blocked_s: 0.0,
        wall_s: 0.0,
        recovery: RecoveryStats::default(),
        err: None,
    };
    let tree = st.tree.as_ref().expect("evaluated shard has a tree");
    let tr = Traversal::new(cfg.theta);
    let mac = Mac::new(cfg.theta);
    let mut session = match DeviceSession::try_open(g5, window_pos, cfg.eps) {
        Ok(s) => s.with_retry(cfg.retry),
        Err(e) => {
            out.err = Some(e.into());
            out.wall_s = t_all.elapsed().as_secs_f64();
            return out;
        }
    };
    let mut device_s = 0.0;
    let exchange_s;
    let remote_terms;
    let remote_inter;
    let mut device_err: Option<DeviceError> = None;
    let acc = &mut out.acc;
    let pot = &mut out.pot;
    let stats = if overlap && !remote.is_empty() {
        // Producer-side LET: the augment hook appends remote terms to
        // the group's own (pooled) j-lists inside the stream, so the
        // walk overlaps device evaluation of earlier groups. Atomics
        // because the hook runs on plan worker threads.
        let exch_ns = AtomicU64::new(0);
        let r_terms = AtomicU64::new(0);
        let r_inter = AtomicU64::new(0);
        let augment = |work: &mut plan::GroupWork| {
            let te = Instant::now();
            let before = work.jpos.len();
            let sphere = tr.group_sphere(tree, work.group);
            for src in remote {
                let_terms_into(src, &mac, &sphere, &mut work.jpos, &mut work.jmass);
            }
            let added = (work.jpos.len() - before) as u64;
            r_terms.fetch_add(added, Ordering::Relaxed);
            r_inter.fetch_add(added * work.xi.len() as u64, Ordering::Relaxed);
            exch_ns.fetch_add(te.elapsed().as_nanos() as u64, Ordering::Relaxed);
        };
        let stats = plan::stream_with_augment(
            tree,
            &tr,
            &st.groups,
            &cfg.plan,
            &st.pool,
            &augment,
            |work| {
                if device_err.is_some() {
                    return;
                }
                let t = Instant::now();
                match session.try_force_for(&work.jpos, &work.jmass, &work.xi) {
                    Ok(forces) => {
                        for (t_idx, f) in work.targets.iter().zip(forces) {
                            acc[*t_idx] = f.acc;
                            pot[*t_idx] = f.pot;
                        }
                    }
                    Err(e) => device_err = Some(e),
                }
                device_s += t.elapsed().as_secs_f64();
            },
        );
        exchange_s = exch_ns.load(Ordering::Relaxed) as f64 * 1e-9;
        remote_terms = r_terms.load(Ordering::Relaxed);
        remote_inter = r_inter.load(Ordering::Relaxed);
        stats
    } else {
        // Barrier reference: consumer-side LET in front of every device
        // call, combined list in retained scratch so a steady state
        // allocates nothing.
        let mut exch = 0.0;
        let mut terms = 0u64;
        let mut inter = 0u64;
        let mut rjp: Vec<Vec3> = Vec::new();
        let mut rjm: Vec<f64> = Vec::new();
        let stats = plan::stream_with(tree, &tr, &st.groups, &cfg.plan, &st.pool, |work| {
            if device_err.is_some() {
                return;
            }
            let (jp, jm): (&[Vec3], &[f64]) = if remote.is_empty() {
                (&work.jpos, &work.jmass)
            } else {
                let te = Instant::now();
                rjp.clear();
                rjm.clear();
                rjp.extend_from_slice(&work.jpos);
                rjm.extend_from_slice(&work.jmass);
                let sphere = tr.group_sphere(tree, work.group);
                for src in remote {
                    let_terms_into(src, &mac, &sphere, &mut rjp, &mut rjm);
                }
                let added = (rjp.len() - work.jpos.len()) as u64;
                terms += added;
                inter += added * work.xi.len() as u64;
                exch += te.elapsed().as_secs_f64();
                (&rjp, &rjm)
            };
            let t = Instant::now();
            match session.try_force_for(jp, jm, &work.xi) {
                Ok(forces) => {
                    for (t_idx, f) in work.targets.iter().zip(forces) {
                        acc[*t_idx] = f.acc;
                        pot[*t_idx] = f.pot;
                    }
                }
                Err(e) => device_err = Some(e),
            }
            device_s += t.elapsed().as_secs_f64();
        });
        exchange_s = exch;
        remote_terms = terms;
        remote_inter = inter;
        stats
    };
    out.tally = out.tally.merged(InteractionTally {
        interactions: remote_inter,
        terms: remote_terms,
        lists: 0,
    });

    out.recovery = session.recovery_stats();
    out.device_s = device_s;
    out.exchange_s = exchange_s;
    match stats {
        Ok(s) => {
            out.tally = out.tally.merged(s.tally);
            out.produce_s = s.produce_s;
            out.consumer_blocked_s = s.consumer_blocked_s;
        }
        Err(e) => {
            if out.err.is_none() {
                out.err = Some(e.into());
            }
        }
    }
    if let Some(e) = device_err {
        if out.err.is_none() {
            out.err = Some(e.into());
        }
    }
    out.wall_s = t_all.elapsed().as_secs_f64();
    out
}

impl ForceBackend for ClusterTreeGrape {
    fn try_compute(&mut self, pos: &[Vec3], mass: &[f64]) -> Result<ForceSet, ForceError> {
        assert_eq!(pos.len(), mass.len(), "position/mass length mismatch");
        let t_all = Instant::now();
        let tr = Traversal::new(self.cfg.base.theta);
        // Supervisor tick. A replay evaluation (checkpoint resume)
        // re-creates an evaluation the interrupted run already made
        // its decisions for, so the supervisor stands down entirely.
        // Shards that must stay watched through this evaluation's
        // end-of-eval promotion: freshly probed-in hardware plus any
        // shard flagged below (quarantine activity, straggler).
        let mut flagged: Vec<usize> = Vec::new();
        if !self.replaying {
            self.evals += 1;
            let interval = self.cfg.lifecycle.probe_interval;
            if interval > 0 && self.evals.is_multiple_of(interval) {
                for oc in self.cluster.probe_all() {
                    match oc {
                        ProbeOutcome::Readmitted { slot } => {
                            self.ledger
                                .record(self.evals, format!("shard {slot} re-admitted by probe"));
                            flagged.push(slot);
                            self.decomp = None;
                            self.live.clear();
                        }
                        ProbeOutcome::StillDead { slot } => {
                            self.ledger
                                .record(self.evals, format!("shard {slot} probed, still dead"));
                        }
                        ProbeOutcome::HardwareRestored { slot, boards, pipes } => {
                            self.ledger.record(
                                self.evals,
                                format!("shard {slot} regained {boards} board(s), {pipes} pipe(s)"),
                            );
                            flagged.push(slot);
                            self.decomp = None;
                            self.live.clear();
                        }
                    }
                }
            }
        }
        loop {
            if self.cluster.alive() == 0 {
                return Err(DeviceError::NoBoardsLeft.into());
            }
            let (decompose_s, build_s, refresh_s) = self.ensure_decomposition(pos, mass, &tr);

            // One scoped thread per live shard; each owns its device
            // exclusively, reads the *other* shards' trees immutably
            // (the in-line LET exchange), and writes a shard-local
            // dense result, so no output cell is shared across threads.
            // Each thread takes its slot's recycled output buffers and
            // hands them back through the outcome. A panic anywhere in
            // the evaluation is caught at the thread boundary and
            // synthesized into a typed shard-fatal outcome — one
            // shard's bug costs its shard, not the whole process.
            #[cfg(test)]
            let panic_slots = std::mem::take(&mut self.panic_next_eval);
            #[cfg(test)]
            let panic_slots = &panic_slots;
            let mut bufs: Vec<Option<(Vec<Vec3>, Vec<f64>)>> = self
                .shards_state
                .iter_mut()
                .map(|st| Some((std::mem::take(&mut st.acc), std::mem::take(&mut st.pot))))
                .collect();
            let overlap = self.cfg.overlap;
            let devices = self.cluster.alive_devices_mut();
            let states = &self.shards_state;
            let live = &self.live;
            let cfg = &self.cfg.base;
            let mut outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
                let handles: Vec<_> = devices
                    .into_iter()
                    .map(|(slot, g5)| {
                        let st = &states[slot];
                        let remote: Vec<&Tree> = live
                            .iter()
                            .filter(|&&k| k != slot)
                            .map(|&k| states[k].tree.as_ref().expect("live shard has a tree"))
                            .collect();
                        let (abuf, pbuf) =
                            bufs[slot].take().expect("each slot evaluates at most once");
                        scope.spawn(move || {
                            catch_unwind(AssertUnwindSafe(|| {
                                #[cfg(test)]
                                if panic_slots.contains(&slot) {
                                    panic!("injected shard panic");
                                }
                                shard_eval(slot, g5, st, &remote, pos, cfg, overlap, abuf, pbuf)
                            }))
                            .unwrap_or_else(|payload| ShardOutcome::panicked(slot, payload))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard evaluation thread panicked outside its guard"))
                    .collect()
            });

            // Per-evaluation *modeled* clock deltas — taken before any
            // straggler re-execution, so re-executed work never
            // pollutes a shard's own throughput measurement. Modeled
            // time, never host wall-clock: deadlines and capacity
            // weights must be deterministic.
            let mut step_secs: Vec<(usize, f64)> = Vec::with_capacity(outcomes.len());
            for o in &outcomes {
                let acct = self.cluster.shard_accounting(o.slot);
                let secs = acct.report(&self.cfg.base.grape).total_s();
                let inter = acct.interactions;
                let (p_inter, p_secs) = self.prev_clock[o.slot];
                // accounting may be reset externally between evals
                let d_secs = if secs >= p_secs { secs - p_secs } else { secs };
                let d_inter = if inter >= p_inter { inter - p_inter } else { inter };
                self.prev_clock[o.slot] = (inter, secs);
                step_secs.push((o.slot, d_secs));
                if !self.replaying && d_secs > 0.0 && d_inter > 0 {
                    self.measured_rate[o.slot] = d_inter as f64 / d_secs;
                }
            }

            let mut fatal: Vec<(usize, String)> = Vec::new();
            let mut first_err: Option<ForceError> = None;
            for o in &outcomes {
                self.recovery = self.recovery.merged(o.recovery);
                self.shard_recovery[o.slot] = self.shard_recovery[o.slot].merged(o.recovery);
                if o.recovery.quarantined_boards > 0 || o.recovery.quarantined_pipes > 0 {
                    self.cluster.mark_degraded(o.slot);
                    flagged.push(o.slot);
                    if !self.replaying {
                        self.ledger.record(
                            self.evals,
                            format!(
                                "shard {} quarantined {} board(s), {} pipe(s)",
                                o.slot, o.recovery.quarantined_boards, o.recovery.quarantined_pipes
                            ),
                        );
                    }
                }
                match &o.err {
                    Some(ForceError::Device(de)) if ClusterSession::shard_fatal(de) => {
                        fatal.push((o.slot, "shard-fatal device error".to_string()));
                    }
                    // A panicked evaluation thread is a dead shard: its
                    // forces never materialized and its state is
                    // suspect, so the survivors re-own its particles.
                    Some(ForceError::ShardPanic(msg)) => {
                        fatal.push((o.slot, format!("evaluation thread panicked: {msg}")));
                    }
                    Some(e) if first_err.is_none() => first_err = Some(e.clone()),
                    Some(_) => {}
                    None => {}
                }
            }
            if !fatal.is_empty() {
                // Whole-shard loss: survivors re-own the dead shards'
                // particles and this evaluation starts over. Work the
                // healthy shards did this round is discarded — shard
                // death is rare enough that simplicity wins.
                for (k, why) in &fatal {
                    self.cluster.kill(*k);
                    if !self.replaying {
                        self.ledger.record(self.evals, format!("shard {k} killed ({why})"));
                    }
                }
                self.decomp = None;
                self.live.clear();
                if self.cluster.alive() == 0 {
                    return Err(DeviceError::NoBoardsLeft.into());
                }
                continue;
            }
            if let Some(e) = first_err {
                return Err(e);
            }

            // Straggler deadline: a shard whose modeled time for this
            // evaluation exceeds factor × median is Degraded and its
            // interaction groups re-execute on the fastest survivor —
            // same trees, same LET machinery, same position window.
            // Entirely off when no factor is set (the default), and
            // during replay (the interrupted run already decided).
            if let Some(factor) = self.cfg.lifecycle.straggler_factor {
                if !self.replaying && outcomes.len() >= 2 {
                    let mut times: Vec<f64> = step_secs.iter().map(|&(_, t)| t).collect();
                    times.sort_by(|a, b| a.partial_cmp(b).expect("modeled times are finite"));
                    let mid = times.len() / 2;
                    let median = if times.len().is_multiple_of(2) {
                        0.5 * (times[mid - 1] + times[mid])
                    } else {
                        times[mid]
                    };
                    let lagging: Vec<usize> =
                        (0..outcomes.len()).filter(|&i| step_secs[i].1 > factor * median).collect();
                    if !lagging.is_empty() && lagging.len() < outcomes.len() {
                        let survivor = (0..outcomes.len())
                            .filter(|i| !lagging.contains(i))
                            .min_by(|&a, &b| {
                                step_secs[a]
                                    .1
                                    .partial_cmp(&step_secs[b].1)
                                    .expect("modeled times are finite")
                                    .then(step_secs[a].0.cmp(&step_secs[b].0))
                            })
                            .map(|i| step_secs[i].0)
                            .expect("a non-straggler exists");
                        for &i in &lagging {
                            let (slot, t) = step_secs[i];
                            let st = &self.shards_state[slot];
                            let remote: Vec<&Tree> = self
                                .live
                                .iter()
                                .filter(|&&k| k != slot)
                                .map(|&k| {
                                    self.shards_state[k]
                                        .tree
                                        .as_ref()
                                        .expect("live shard has a tree")
                                })
                                .collect();
                            let g5 = self.cluster.device_mut(survivor);
                            let redo = shard_eval(
                                slot,
                                g5,
                                st,
                                &remote,
                                pos,
                                &self.cfg.base,
                                self.cfg.overlap,
                                Vec::new(),
                                Vec::new(),
                            );
                            if redo.err.is_none() {
                                self.recovery = self.recovery.merged(redo.recovery);
                                self.shard_recovery[survivor] =
                                    self.shard_recovery[survivor].merged(redo.recovery);
                                let o = &mut outcomes[i];
                                o.acc = redo.acc;
                                o.pot = redo.pot;
                                o.tally = redo.tally;
                                self.cluster.mark_degraded(slot);
                                flagged.push(slot);
                                self.ledger.record(
                                    self.evals,
                                    format!(
                                        "shard {slot} straggled ({t:.3e} s > {factor} x median \
                                         {median:.3e} s); groups re-executed on shard {survivor}"
                                    ),
                                );
                            } else {
                                self.ledger.record(
                                    self.evals,
                                    format!(
                                        "shard {slot} straggled but re-execution on shard \
                                         {survivor} failed; original result kept"
                                    ),
                                );
                            }
                            // the survivor's own throughput must not be
                            // charged for the straggler's groups
                            let acct = self.cluster.shard_accounting(survivor);
                            self.prev_clock[survivor] =
                                (acct.interactions, acct.report(&self.cfg.base.grape).total_s());
                        }
                    }
                }
            }

            let decomp = self.decomp.as_ref().expect("evaluated with a decomposition");
            let mut out = ForceSet::zeros(pos.len());
            for (d, o) in outcomes.iter_mut().enumerate() {
                for (j, &gi) in decomp.owned(d).iter().enumerate() {
                    out.acc[gi as usize] = o.acc[j];
                    out.pot[gi as usize] = o.pot[j];
                }
                out.tally = out.tally.merged(o.tally);
                let st = &mut self.shards_state[o.slot];
                st.timers.traverse_s = o.produce_s;
                st.timers.device_s = o.device_s;
                st.timers.exchange_s = o.exchange_s;
                st.timers.consumer_blocked_s = o.consumer_blocked_s;
                st.timers.force_wall_s = o.wall_s;
                // the dense result buffers go home for next evaluation
                st.acc = std::mem::take(&mut o.acc);
                st.pot = std::mem::take(&mut o.pot);
            }
            let mut timers = PhaseTimers {
                build_s,
                refresh_s,
                decompose_s,
                exchange_s: 0.0,
                traverse_s: 0.0,
                device_s: 0.0,
                consumer_blocked_s: 0.0,
                force_wall_s: 0.0,
                step_wall_s: 0.0,
            };
            for o in &outcomes {
                timers.traverse_s += o.produce_s;
                timers.device_s += o.device_s;
                timers.exchange_s += o.exchange_s;
                timers.consumer_blocked_s += o.consumer_blocked_s;
            }
            timers.force_wall_s = t_all.elapsed().as_secs_f64();
            out.timers = timers;
            // A clean evaluation promotes watched shards: Degraded and
            // freshly Readmitted shards that served without incident
            // return to Alive. Flagged shards stay Degraded.
            for o in &outcomes {
                if !flagged.contains(&o.slot) {
                    self.cluster.mark_alive(o.slot);
                }
            }
            self.replaying = false;
            return Ok(out);
        }
    }

    fn name(&self) -> &'static str {
        "cluster-tree-grape"
    }

    fn grape_accounting(&self) -> Option<ClockAccounting> {
        Some(self.cluster.accounting())
    }

    fn recovery_stats(&self) -> Option<RecoveryStats> {
        Some(self.recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{DirectHost, TreeGrape};
    use g5ic::plummer_sphere;
    use g5tree::eval::rms_relative_error;
    use g5tree::plan::PlanConfig;
    use grape5::Grape5Config;
    use rand::SeedableRng;

    fn plummer(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let s = plummer_sphere(n, &mut rng);
        (s.pos, s.mass)
    }

    fn small_cfg(shards: usize) -> ClusterTreeGrapeConfig {
        let mut base = TreeGrapeConfig::paper(0.01);
        base.n_crit = 64;
        base.grape = Grape5Config::single_board();
        base.plan = PlanConfig::serial();
        ClusterTreeGrapeConfig {
            base,
            shards,
            lifecycle: LifecyclePolicy::default(),
            overlap: false,
        }
    }

    #[test]
    fn k1_matches_treegrape_bit_for_bit() {
        let (pos, mass) = plummer(700, 11);
        let mut mono = TreeGrape::new(small_cfg(1).base);
        let mut cluster = ClusterTreeGrape::new(small_cfg(1));
        let a = mono.compute(&pos, &mass);
        let b = cluster.compute(&pos, &mass);
        assert_eq!(a.acc, b.acc);
        assert_eq!(a.pot, b.pot);
        assert_eq!(a.tally, b.tally);
        assert_eq!(mono.accounting(), cluster.shard_accounting(0));
    }

    #[test]
    fn sharded_forces_stay_at_treecode_accuracy() {
        let (pos, mass) = plummer(1500, 12);
        let exact = DirectHost { eps: 0.01 }.compute(&pos, &mass);
        let mut mono = TreeGrape::new(small_cfg(1).base);
        let fs1 = mono.compute(&pos, &mass);
        let tol = 3.0 * rms_relative_error(&to_pf(&exact), &to_pf(&fs1)).max(1e-4);
        for k in [2, 3, 4] {
            let mut cl = ClusterTreeGrape::new(small_cfg(k));
            let fsk = cl.compute(&pos, &mass);
            let err = rms_relative_error(&to_pf(&exact), &to_pf(&fsk));
            assert!(err < tol, "K={k} rms error {err} vs tolerance {tol}");
        }
    }

    fn to_pf(fs: &ForceSet) -> Vec<g5tree::eval::PointForce> {
        fs.acc
            .iter()
            .zip(&fs.pot)
            .map(|(&a, &p)| g5tree::eval::PointForce { acc: a, pot: p })
            .collect()
    }

    #[test]
    fn shard_kill_triggers_redecomposition_over_survivors() {
        let (pos, mass) = plummer(800, 13);
        let exact = DirectHost { eps: 0.01 }.compute(&pos, &mass);
        let mut cl = ClusterTreeGrape::new(small_cfg(3));
        let before = cl.compute(&pos, &mass);
        assert_eq!(cl.alive_shards(), 3);
        let tol = 3.0 * rms_relative_error(&to_pf(&exact), &to_pf(&before)).max(1e-4);
        cl.kill_shard(1);
        let after = cl.compute(&pos, &mass);
        assert_eq!(cl.alive_shards(), 2);
        assert_eq!(cl.decomposition().unwrap().shards(), 2);
        // survivors own everything; forces stay at treecode accuracy
        // (the K=2 boundaries differ from K=3, so compare to exact)
        let err = rms_relative_error(&to_pf(&exact), &to_pf(&after));
        assert!(err < tol, "post-kill rms error {err} vs tolerance {tol}");
    }

    #[test]
    fn tree_age_resets_on_redecomposition() {
        let (pos, mass) = plummer(600, 14);
        let mut cfg = small_cfg(3);
        cfg.base.refresh =
            crate::backends::RefreshPolicy { interval: 100, max_drift_frac: f64::INFINITY };
        let mut cl = ClusterTreeGrape::new(cfg);
        for _ in 0..4 {
            cl.compute(&pos, &mass);
        }
        assert_eq!(cl.tree_age(), 4);
        cl.kill_shard(0);
        cl.compute(&pos, &mass);
        assert_eq!(cl.tree_age(), 1, "re-decomposition must reset tree age");
        cl.compute(&pos, &mass);
        assert_eq!(cl.tree_age(), 2);
    }

    #[test]
    fn supervisor_off_is_bit_identical_to_supervised_noop() {
        // with every shard healthy and deadlines generous, an armed
        // supervisor must never change a force bit or write a ledger
        // event beyond the initial decomposition
        let (pos, mass) = plummer(600, 21);
        let mut plain = ClusterTreeGrape::new(small_cfg(3));
        let mut cfg = small_cfg(3);
        cfg.lifecycle = LifecyclePolicy { probe_interval: 2, straggler_factor: Some(1e9) };
        let mut watched = ClusterTreeGrape::new(cfg);
        for _ in 0..3 {
            let a = plain.compute(&pos, &mass);
            let b = watched.compute(&pos, &mass);
            assert_eq!(a.acc, b.acc);
            assert_eq!(a.pot, b.pot);
        }
        assert_eq!(watched.evals(), 3);
        assert_eq!(
            watched.ledger().events().len(),
            1,
            "only the initial decomposition may be on the ledger: {:?}",
            watched.ledger().events()
        );
        assert!(watched.ledger().events()[0].contains("decomposed over 3 shards"));
        assert!(watched.shard_healths().iter().all(|&h| h == grape5::ShardHealth::Alive));
    }

    #[test]
    fn probe_readmits_killed_shard_and_redecomposes() {
        let (pos, mass) = plummer(800, 22);
        let mut cfg = small_cfg(3);
        cfg.lifecycle.probe_interval = 3;
        let mut cl = ClusterTreeGrape::new(cfg);
        cl.compute(&pos, &mass); // eval 1
        cl.kill_shard(1);
        cl.compute(&pos, &mass); // eval 2: survivors re-own the domain
        assert_eq!(cl.alive_shards(), 2);
        assert_eq!(cl.decomposition().unwrap().shards(), 2);
        cl.compute(&pos, &mass); // eval 3: probe fires, shard 1 healthy -> readmitted
        assert_eq!(cl.alive_shards(), 3, "probe must re-admit the healthy killed shard");
        assert_eq!(cl.decomposition().unwrap().shards(), 3);
        assert_eq!(cl.shard_health(1), Some(grape5::ShardHealth::Readmitted));
        cl.compute(&pos, &mass); // eval 4: clean service promotes it
        assert_eq!(cl.shard_health(1), Some(grape5::ShardHealth::Alive));
        let events = cl.ledger().events();
        assert!(events.iter().any(|e| e.contains("shard 1 killed by operator")), "{events:?}");
        assert!(events.iter().any(|e| e.contains("shard 1 re-admitted by probe")), "{events:?}");
        // kill -> 2-shard decomposition -> readmit -> 3-shard again
        assert!(events.iter().filter(|e| e.contains("decomposed over")).count() >= 3, "{events:?}");
    }

    fn straggler_cl(pos: &[Vec3], mass: &[f64]) -> (ClusterTreeGrape, ForceSet) {
        let mut cfg = small_cfg(3);
        cfg.lifecycle.straggler_factor = Some(1.1);
        let mut cl = ClusterTreeGrape::new(cfg);
        // timing-only handicap: 15 of shard 1's 16 pipes out of
        // service, so its modeled eval time blows the 1.1 x median
        // deadline while its arithmetic stays exact
        for p in 0..15 {
            cl.cluster.device_mut(1).quarantine_pipe(0, p);
        }
        let fs = cl.compute(pos, mass);
        (cl, fs)
    }

    #[test]
    fn straggler_deadline_fires_deterministically_and_recovers() {
        let (pos, mass) = plummer(900, 23);
        let exact = DirectHost { eps: 0.01 }.compute(&pos, &mass);
        let (cl, fs) = straggler_cl(&pos, &mass);
        assert_eq!(cl.shard_health(1), Some(grape5::ShardHealth::Degraded));
        let events = cl.ledger().events();
        assert!(
            events.iter().any(|e| e.contains("shard 1 straggled") && e.contains("re-executed")),
            "{events:?}"
        );
        // the survivor-recomputed forces are still treecode-accurate
        let err = rms_relative_error(&to_pf(&exact), &to_pf(&fs));
        assert!(err < 1e-2, "post-straggler rms error {err}");
        // a clean follow-up eval (handicap is timing-only, so shard 1
        // keeps straggling -> stays Degraded; the deadline decision is
        // pure modeled clock, so the rerun ledger is identical)
        let (cl2, fs2) = straggler_cl(&pos, &mass);
        assert_eq!(cl.ledger(), cl2.ledger(), "deadline must be deterministic");
        assert_eq!(fs.acc, fs2.acc);
    }

    #[test]
    fn board_loss_shifts_cut_weights() {
        let (pos, mass) = plummer(800, 24);
        let mut cfg = small_cfg(3);
        cfg.base.grape = Grape5Config::paper(); // 2 boards per shard
        let mut cl = ClusterTreeGrape::new(cfg);
        cl.compute(&pos, &mass);
        let n0 = cl.decomposition().unwrap().owned(1).len();
        // shard 1 loses one of its two boards; refresh interval 1 means
        // the next eval re-decomposes with fresh capacity weights
        cl.cluster.device_mut(1).quarantine_board(0);
        cl.compute(&pos, &mass);
        let n1 = cl.decomposition().unwrap().owned(1).len();
        assert!(n1 < n0, "half the boards must shrink shard 1's domain ({n0} -> {n1})");
        let events = cl.ledger().events();
        assert!(
            events.iter().filter(|e| e.contains("decomposed over 3 shards")).count() >= 2,
            "weight change must re-decompose: {events:?}"
        );
    }

    #[test]
    fn overlapped_matches_barrier_bit_for_bit() {
        // producer-side LET (overlap) and consumer-side LET (barrier)
        // must make identical device calls: same forces, same tallies,
        // same recorded hardware counters — per shard, at every K
        let (pos, mass) = plummer(1100, 31);
        for k in [2, 3, 4] {
            let mut barrier = ClusterTreeGrape::new(small_cfg(k));
            let mut over_cfg = small_cfg(k);
            over_cfg.overlap = true;
            over_cfg.base.grape.double_buffer_j = true;
            over_cfg.base.plan = PlanConfig::overlapped(2, 2);
            let mut over = ClusterTreeGrape::new(over_cfg);
            let a = barrier.compute(&pos, &mass);
            let b = over.compute(&pos, &mass);
            assert_eq!(a.acc, b.acc, "K={k}");
            assert_eq!(a.pot, b.pot, "K={k}");
            assert_eq!(a.tally, b.tally, "K={k}");
            for s in 0..k {
                assert_eq!(
                    barrier.shard_accounting(s),
                    over.shard_accounting(s),
                    "K={k} shard {s} counters must not depend on the schedule"
                );
            }
        }
    }

    #[test]
    fn overlapped_k1_matches_treegrape_bit_for_bit() {
        // the overlapped pipeline collapses to the monolithic backend
        // at K=1: augment is a no-op with no remote trees, and the
        // double-buffer flag changes pricing, never counters
        let (pos, mass) = plummer(700, 11);
        let mut mono = TreeGrape::new(small_cfg(1).base);
        let mut cfg = small_cfg(1);
        cfg.overlap = true;
        cfg.base.grape.double_buffer_j = true;
        let mut cluster = ClusterTreeGrape::new(cfg);
        let a = mono.compute(&pos, &mass);
        let b = cluster.compute(&pos, &mass);
        assert_eq!(a.acc, b.acc);
        assert_eq!(a.pot, b.pot);
        assert_eq!(a.tally, b.tally);
        assert_eq!(mono.accounting(), cluster.shard_accounting(0));
    }

    #[test]
    fn double_buffer_pricing_hides_j_load_on_the_modeled_clock() {
        let (pos, mass) = plummer(900, 33);
        let mut cl = ClusterTreeGrape::new(small_cfg(2));
        cl.compute(&pos, &mass);
        let acct = cl.shard_accounting(0);
        assert!(acct.j_words > 0, "group j-lists must be tracked as j-loads");
        let serial_cfg = small_cfg(2).base.grape;
        let db_cfg = grape5::Grape5Config { double_buffer_j: true, ..serial_cfg };
        let serial = acct.report(&serial_cfg);
        let db = acct.report(&db_cfg);
        assert_eq!(serial.hidden_s, 0.0);
        assert!(db.hidden_s > 0.0);
        assert!(db.total_s() < serial.total_s(), "overlap must shorten the critical path");
        assert!(
            (serial.total_s() - db.total_s() - db.hidden_s).abs() < 1e-12,
            "the entire gain must be accounted j-load overlap"
        );
    }

    #[test]
    fn shard_panic_is_shard_fatal_and_survivors_reown() {
        let (pos, mass) = plummer(800, 35);
        let exact = DirectHost { eps: 0.01 }.compute(&pos, &mass);
        let mut cl = ClusterTreeGrape::new(small_cfg(3));
        cl.panic_next_eval = vec![1];
        let fs = cl.try_compute(&pos, &mass).expect("panic must be contained, not propagated");
        assert_eq!(cl.alive_shards(), 2, "panicked shard must be killed");
        assert_eq!(cl.decomposition().unwrap().shards(), 2);
        let events = cl.ledger().events();
        assert!(
            events
                .iter()
                .any(|e| e.contains("evaluation thread panicked") && e.contains("shard 1 killed")),
            "{events:?}"
        );
        // forces still came out, at treecode accuracy, from the survivors
        let err = rms_relative_error(&to_pf(&exact), &to_pf(&fs));
        assert!(err < 1e-2, "post-panic rms error {err}");
    }

    #[test]
    fn hinted_rebuilds_are_bit_identical_across_steps() {
        // every rebuild after the first reuses the previous Morton
        // order (decomposition hint + per-shard tree hints); a drifted
        // second step must still equal what a hint-less fresh backend
        // computes on the same snapshot
        let (pos, mass) = plummer(900, 37);
        let mut warm = ClusterTreeGrape::new(small_cfg(3));
        warm.compute(&pos, &mass);
        let mut drifted = pos.clone();
        for (i, p) in drifted.iter_mut().enumerate() {
            let k = 1e-3 * ((i % 7) as f64 - 3.0);
            *p += Vec3::new(k, -0.5 * k, 0.25 * k);
        }
        let a = warm.compute(&drifted, &mass); // hinted re-sort path
        let mut cold = ClusterTreeGrape::new(small_cfg(3));
        let b = cold.compute(&drifted, &mass); // from-scratch sort path
        assert_eq!(a.acc, b.acc);
        assert_eq!(a.pot, b.pot);
        assert_eq!(a.tally, b.tally);
    }

    #[test]
    fn timers_record_cluster_phases() {
        let (pos, mass) = plummer(500, 15);
        let mut cl = ClusterTreeGrape::new(small_cfg(2));
        let fs = cl.compute(&pos, &mass);
        assert!(fs.timers.decompose_s > 0.0);
        assert!(fs.timers.build_s > 0.0);
        assert!(fs.timers.device_s > 0.0);
        assert!(fs.timers.exchange_s > 0.0, "K=2 must walk remote trees");
        let per_shard = cl.shard_timers();
        assert_eq!(per_shard.len(), 2);
        assert!(per_shard.iter().all(|(_, t)| t.device_s > 0.0));
    }
}
